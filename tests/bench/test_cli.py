"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_micro_command(capsys):
    assert main(["micro", "Hypercall", "--levels", "1", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "Hypercall" in out and "cycles/op" in out


def test_micro_dvh_preset(capsys):
    assert main(["micro", "ProgramTimer", "--levels", "2", "--dvh", "full",
                 "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    # DVH virtual timer: a few thousand cycles, not tens of thousands.
    value = int(out.split(":")[1].split("cycles")[0].strip().replace(",", ""))
    assert value < 10_000


def test_app_command_with_report(capsys):
    assert main(
        ["app", "hackbench", "--levels", "0", "--scale", "0.1", "--report"]
    ) == 0
    out = capsys.readouterr().out
    assert "hackbench" in out
    assert "Cycle attribution" in out


def test_micro_slo_prints_latency_table(capsys):
    assert main(["micro", "Hypercall", "--levels", "1", "--iterations", "5",
                 "--slo"]) == 0
    out = capsys.readouterr().out
    assert "Request latency" in out
    assert "p99 cy" in out


def test_app_slo_prints_latency_table(capsys):
    assert main(["app", "netperf_rr", "--levels", "0", "--scale", "0.1",
                 "--slo"]) == 0
    out = capsys.readouterr().out
    assert "Request latency" in out
    assert "netperf_rr" in out


def test_app_poisson_arrival(capsys):
    assert main(["app", "netperf_rr", "--levels", "0", "--scale", "0.1",
                 "--arrival", "poisson", "--offered", "30000"]) == 0
    out = capsys.readouterr().out
    assert "arrival=poisson" in out


def test_app_poisson_needs_offered_rate(capsys):
    assert main(["app", "netperf_rr", "--levels", "0", "--scale", "0.1",
                 "--arrival", "poisson"]) == 1
    assert "offered_tps" in capsys.readouterr().out


def test_app_arrival_rejected_for_non_rr(capsys):
    assert main(["app", "hackbench", "--levels", "0", "--scale", "0.1",
                 "--arrival", "poisson", "--offered", "100"]) == 1
    assert "no arrival process" in capsys.readouterr().out


def test_app_io_default_follows_dvh():
    parser = build_parser()
    from repro.cli import _stack_config

    args = parser.parse_args(["app", "memcached", "--levels", "2", "--dvh", "full"])
    assert _stack_config(args).io_model == "vp"
    args = parser.parse_args(["app", "memcached", "--levels", "2"])
    assert _stack_config(args).io_model == "virtio"
    args = parser.parse_args(["app", "memcached", "--levels", "0"])
    assert _stack_config(args).io_model == "native"


def test_figure_rejects_unknown_number():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "12"])


def test_xen_flag(capsys):
    assert main(
        ["micro", "Hypercall", "--levels", "2", "--guest-hv", "xen",
         "--iterations", "5"]
    ) == 0
    out = capsys.readouterr().out
    value = int(out.split(":")[1].split("cycles")[0].strip().replace(",", ""))
    assert value > 45_000  # Xen guest hypervisor costs more than KVM's ~38K


def test_figure_command_chart(capsys):
    assert main(
        ["figure", "7", "--apps", "hackbench", "--scale", "0.1", "--chart"]
    ) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "|" in out and "#" in out  # bars


def test_figure_command_table(capsys):
    assert main(["figure", "8", "--apps", "hackbench", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "+ virtual idle (= DVH)" in out


def test_migration_command(capsys):
    assert main(["migration"]) == 0
    out = capsys.readouterr().out
    assert "MIGRATION NOT SUPPORTED" in out


def test_analyze_command(capsys):
    assert main(["analyze", "hackbench", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "— forwarded" in out


# ----------------------------------------------------------------------
# Flag parity: every leaf subcommand accepts the uniform flag set
# ----------------------------------------------------------------------
#: Minimal valid argv for every leaf subcommand the parser defines.
LEAF_COMMANDS = [
    ["table3"],
    ["figure", "7"],
    ["migration"],
    ["micro", "Hypercall"],
    ["trace"],
    ["analyze", "hackbench"],
    ["app", "hackbench"],
    ["faults", "fuzz"],
    ["faults", "plan"],
    ["cluster", "demo"],
    ["cluster", "migrate"],
    ["cluster", "sweep"],
    ["dc", "demo"],
    ["dc", "run"],
    ["dc", "sweep"],
    ["dc", "validate"],
    ["slo"],
    ["study"],
    ["audit"],
]


@pytest.mark.parametrize("argv", LEAF_COMMANDS, ids=lambda a: "-".join(a))
def test_flag_parity_on_every_subcommand(argv):
    args = build_parser().parse_args(
        argv
        + ["--seed", "7", "--no-fast-forward", "--audit", "--jobs", "3",
           "--json"]
    )
    assert args.seed == 7
    assert args.no_fast_forward is True
    assert args.audit is True
    assert args.jobs == 3
    assert args.json is True


@pytest.mark.parametrize("argv", LEAF_COMMANDS, ids=lambda a: "-".join(a))
def test_pre_subcommand_seed_survives(argv):
    """SUPPRESS defaults: `repro --seed 9 <cmd>` keeps seed 9 even
    though the subcommand defines its own --seed."""
    args = build_parser().parse_args(["--seed", "9"] + argv)
    assert args.seed == 9
    assert args.no_fast_forward is False


def test_study_command_renders_report(capsys):
    import json as json_mod

    spec = {
        "name": "cli-trim",
        "variants": ["baseline", "dvh"],
        "micro_benches": ["Hypercall"],
        "micro_guest_hvs": ["kvm"],
        "micro_iterations": 3,
        "app_names": [],
        "migration": False,
        "cluster_hosts": 0,
    }
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        json_mod.dump(spec, fh)
        path = fh.name
    assert main(["study", "--spec", path]) == 0
    out = capsys.readouterr().out
    assert "head-to-head study 'cli-trim'" in out
    assert "Hypercall" in out
    assert main(["study", "--spec", path, "--json"]) == 0
    data = json_mod.loads(capsys.readouterr().out)
    assert data["spec"] == "cli-trim"
    assert len(data["rows"]) == 2


def test_study_command_rejects_bad_spec(capsys):
    assert main(["study", "--spec", "/nonexistent/spec.json"]) == 1
    assert "spec error" in capsys.readouterr().out
