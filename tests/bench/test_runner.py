"""Tests for the bench harness (runners + formatters)."""

import dataclasses
import json

import pytest

from repro.bench.configs import (
    CONFIG_SETS,
    FIG7_CONFIGS,
    FIG8_CONFIGS,
    FIG9_CONFIGS,
    FIG10_CONFIGS,
    TABLE3_CONFIGS,
)
from repro.bench.runner import (
    run_figure,
    run_figure7,
    run_migration_experiment,
    run_table3,
)
from repro.bench.tables import (
    PAPER_TABLE3,
    format_figure,
    format_migration,
    format_table3,
)


def test_config_factories_produce_fresh_configs():
    for name, factory in FIG7_CONFIGS:
        a, b = factory(), factory()
        assert a is not b
        assert a.levels == b.levels


def test_figure_configs_have_native_first():
    for configs in (FIG7_CONFIGS, FIG8_CONFIGS, FIG9_CONFIGS, FIG10_CONFIGS):
        assert configs[0][0] == "native"
        assert configs[0][1]().levels == 0


def test_table3_columns_match_paper():
    names = [n for n, _ in TABLE3_CONFIGS]
    assert names == list(PAPER_TABLE3["Hypercall"].keys())


def test_run_table3_single_bench():
    result = run_table3(iterations=5, benches=["Hypercall"])
    assert set(result.cells) == {"Hypercall"}
    row = result.cells["Hypercall"]
    assert set(row) == set(result.configs)
    text = format_table3(result)
    assert "Hypercall" in text and "(paper)" in text


def test_run_figure_dispatch():
    with pytest.raises(ValueError, match="no such figure"):
        run_figure("11")


def test_run_figure7_single_app():
    result = run_figure7(apps=["hackbench"], scales={0: 0.1, 1: 0.1, 2: 0.1})
    assert set(result.overheads) == {"hackbench"}
    row = result.overheads["hackbench"]
    assert set(row) == set(result.configs)
    assert all(v >= 0.8 for v in row.values())
    text = format_figure(result)
    assert "hackbench" in text
    assert "Native baselines" in text


def test_migration_experiment_rows_and_format():
    rows = run_migration_experiment()
    scenarios = [r.scenario for r in rows]
    assert "nested VM (passthrough)" in scenarios
    text = format_migration(rows)
    assert "MIGRATION NOT SUPPORTED" in text
    supported = [r for r in rows if r.supported]
    assert len(supported) == len(rows) - 1
    assert all(r.total_s > 0 for r in supported)


# ----------------------------------------------------------------------
# Parallel harness
# ----------------------------------------------------------------------
def test_config_sets_registry_covers_every_figure():
    assert set(CONFIG_SETS) == {"table3", "7", "8", "9", "10"}
    assert CONFIG_SETS["7"] is FIG7_CONFIGS
    assert CONFIG_SETS["table3"] is TABLE3_CONFIGS


def _figure_bytes(result) -> bytes:
    """Canonical serialization of a FigureResult for equality checks."""
    payload = {
        "title": result.title,
        "configs": result.configs,
        "overheads": result.overheads,
        "native": {k: dataclasses.asdict(v) for k, v in result.native.items()},
    }
    return json.dumps(payload, sort_keys=True).encode()


def test_figure_parallel_results_byte_identical_to_serial():
    """Same seed, serial vs --jobs N: byte-identical FigureResult."""
    scales = {0: 0.1, 1: 0.1, 2: 0.1}
    serial = run_figure7(apps=["netperf_rr"], scales=scales)
    parallel = run_figure7(apps=["netperf_rr"], scales=scales, jobs=2)
    assert _figure_bytes(parallel) == _figure_bytes(serial)


def test_table3_parallel_results_identical_to_serial():
    serial = run_table3(iterations=3, benches=["Hypercall", "SendIPI"])
    parallel = run_table3(iterations=3, benches=["Hypercall", "SendIPI"], jobs=2)
    assert dataclasses.asdict(parallel) == dataclasses.asdict(serial)
    assert list(parallel.cells) == list(serial.cells)


def test_jobs_zero_means_auto_and_stays_deterministic():
    serial = run_table3(iterations=2, benches=["Hypercall"])
    auto = run_table3(iterations=2, benches=["Hypercall"], jobs=0)
    assert dataclasses.asdict(auto) == dataclasses.asdict(serial)
