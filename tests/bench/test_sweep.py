"""Tests for the sweep utilities."""

import dataclasses

import pytest

from repro.bench.sweep import (
    SweepResult,
    format_sweep,
    sweep_cost,
    sweep_levels,
    sweep_spec,
)
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import NETPERF_RR
from repro.workloads.engines import run_rr
from repro.workloads.microbench import run_microbenchmark


def hypercall(stack):
    return run_microbenchmark(stack, "Hypercall", 8)


def test_sweep_levels_monotonic():
    result = sweep_levels(hypercall, levels=(1, 2, 3))
    assert result.monotonic_increasing()
    assert result.spread() > 100  # two decades across L1..L3


def test_sweep_cost_merge_sensitivity():
    """Scaling the VMRESUME merge cost moves the nested hypercall cost,
    monotonically."""
    result = sweep_cost(
        "emul_vmresume_merge",
        factors=(0.5, 1.0, 2.0),
        measure=hypercall,
        config=StackConfig(levels=2),
    )
    assert result.monotonic_increasing()
    # ...but the nested cost is not dominated by it (spread well under 2x
    # for a 4x parameter range): the ordering claims are robust.
    assert result.spread() < 1.6


def test_sweep_spec_concurrency():
    spec = dataclasses.replace(NETPERF_RR, txns=24, workers=4)
    result = sweep_spec(
        spec,
        "concurrency",
        values=(1, 4),
        runner=run_rr,
        stack_factory=lambda: build_stack(StackConfig(levels=0)),
    )
    # More outstanding requests, more throughput (parallel workers).
    assert result.points[1][1] > result.points[0][1]


def test_spread_and_format():
    r = SweepResult(parameter="x", metric="m", points=[(1, 10.0), (2, 30.0)])
    assert r.spread() == 3.0
    text = format_sweep(r)
    assert "Sweep of x" in text and "spread: 3.00x" in text


def test_spread_with_zero_floor():
    r = SweepResult(parameter="x", metric="m", points=[(1, 0.0), (2, 5.0)])
    assert r.spread() == float("inf")
