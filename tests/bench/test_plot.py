"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.plot import ascii_bar, ascii_figure
from repro.bench.runner import FigureResult


def test_bar_proportions():
    assert ascii_bar(5, 10, 10) == "|#####     |"
    assert ascii_bar(10, 10, 10) == "|##########|"
    assert ascii_bar(0, 10, 10) == "|          |"


def test_bar_clipping_marker():
    bar = ascii_bar(25, 10, 10)
    assert bar.endswith(">|")
    assert bar.count("#") == 9


def test_bar_rejects_bad_axis():
    with pytest.raises(ValueError):
        ascii_bar(1, 0, 10)


def sample_result():
    r = FigureResult(title="Test figure", configs=["A", "B"])
    r.overheads = {
        "app1": {"A": 1.0, "B": 5.0},
        "app2": {"A": 2.0, "B": 100.0},
    }
    return r


def test_figure_renders_all_rows():
    text = ascii_figure(sample_result(), width=20)
    assert "Test figure" in text
    assert "app1" in text and "app2" in text
    assert text.count("|") == 2 * 4  # two bars per app
    assert "100.00" in text


def test_figure_clip_annotation():
    text = ascii_figure(sample_result(), width=20, clip=10.0)
    assert "clipped at 10.0x" in text
    assert ">" in text  # the 100x bar is off scale


def test_empty_figure():
    r = FigureResult(title="Empty", configs=[])
    assert "no data" in ascii_figure(r)
