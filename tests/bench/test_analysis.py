"""Tests for the exit-breakdown analysis."""

from repro.bench.analysis import (
    DEFAULT_BREAKDOWN_CONFIGS,
    exit_breakdown,
    format_breakdown,
)
from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig


def test_breakdown_contrasts_nested_vs_dvh():
    rows = exit_breakdown("memcached", scale=0.15)
    nested, dvh = rows
    assert nested.config == "Nested VM"
    # Nested: doorbells are forwarded; DVH: handled at L0.
    assert sum(nested.interventions_per_txn.values()) > 0.5
    assert sum(dvh.interventions_per_txn.values()) < 0.2
    assert dvh.dvh_handled_per_txn > 0.5
    # And the throughput difference is visible in the same rows.
    assert dvh.throughput > 1.5 * nested.throughput


def test_breakdown_exit_counts_scale_per_txn():
    rows = exit_breakdown(
        "netperf_rr",
        configs=[("L2", lambda: StackConfig(levels=2, io_model="virtio"))],
        scale=0.1,
    )
    (row,) = rows
    # Every RR transaction kicks the doorbell at least once...
    assert row.exits_per_txn.get("mmio", 0) >= 1.0
    # ...and programs timers about twice per transaction at the leaf,
    # plus the guest hypervisor's own re-programming while emulating
    # them (the counts aggregate exits from every level).
    assert 1.5 <= row.exits_per_txn.get("apic_timer", 0) <= 4.5
    # The bulk of the exits are the L1 handler's VMX instructions —
    # exit multiplication in one number.
    assert row.exits_per_txn.get("vmx", 0) > 20


def test_format_breakdown_renders_rows():
    rows = exit_breakdown("hackbench", scale=0.1)
    text = format_breakdown(rows, app="hackbench")
    assert "hackbench" in text
    assert "— forwarded" in text
    assert "throughput" in text
    for name, _ in DEFAULT_BREAKDOWN_CONFIGS:
        assert name in text
