"""The runtime invariant auditor: green on clean runs, red on leaks.

The regression tests here monkeypatch the migration-lifecycle fixes
back *out* and assert the audit turns red — the tripwire the ISSUE asks
for: reintroducing the leaked-dirty-log / paused-backend bug must fail
``make audit``, not just the two hand-written unit tests.
"""

import pytest

from repro.audit import Auditor
from repro.audit.checks import (
    fabric_conservation_violations,
    lifecycle_violations,
    orphaned_process_violations,
)
from repro.audit.runner import render_audit, run_audit
from repro.core.features import DvhFeatures
from repro.core.migration import LiveMigration
from repro.hv.stack import StackConfig, build_stack
from repro.hw.mem import DirtyLog
from repro.sim import Simulator


def make_stack(levels=2):
    stack = build_stack(
        StackConfig(levels=levels, io_model="vp", dvh=DvhFeatures.full())
    )
    stack.settle()
    return stack


# ----------------------------------------------------------------------
# Lifecycle hooks around LiveMigration
# ----------------------------------------------------------------------
def test_clean_audited_migration_is_green():
    stack = make_stack()
    auditor = Auditor().attach(stack)
    mig = LiveMigration(
        stack.machine, stack.leaf_vm, devices=[stack.net.device]
    )
    stack.sim.run_process(mig.run(), "m")
    report = auditor.finish()
    assert report.ok, report.render()
    assert report.observed["migrations"] == 1
    assert report.observed["migration_ok"] == 1
    assert report.checks_run >= 2


def test_audit_does_not_perturb_the_migration():
    """Auditing only observes: identical MigrationResult with and
    without an auditor attached."""

    def run(audited):
        stack = make_stack()
        if audited:
            Auditor().attach(stack)
        mig = LiveMigration(
            stack.machine, stack.leaf_vm, devices=[stack.net.device]
        )
        return stack.sim.run_process(mig.run(), "m")

    assert run(False) == run(True)


def test_reverted_teardown_trips_the_auditor(monkeypatch):
    monkeypatch.setattr(
        LiveMigration, "_teardown", lambda self, cpu_log, backends: None
    )
    stack = make_stack()
    auditor = Auditor().attach(stack)
    mig = LiveMigration(
        stack.machine, stack.leaf_vm, devices=[stack.net.device]
    )
    stack.sim.run_process(mig.run(), "m")
    report = auditor.finish()
    assert not report.ok
    checks = {v.check for v in report.violations}
    assert "migration-lifecycle" in checks
    messages = "\n".join(v.message for v in report.violations)
    assert "still attached" in messages
    assert "dirty logging still enabled" in messages


def test_stale_log_from_a_leaked_attempt_is_flagged_at_start():
    """The stacked-dirty-log leak: a log left behind by a previous
    attempt is caught the moment the next migration starts."""
    stack = make_stack()
    auditor = Auditor().attach(stack)
    stack.leaf_vm.memory.attach_dirty_log(DirtyLog("leaked-prior-attempt"))
    mig = LiveMigration(
        stack.machine, stack.leaf_vm, devices=[stack.net.device]
    )
    stack.sim.run_process(mig.run(), "m")
    report = auditor.finish()
    assert any(
        v.check == "migration-lifecycle" and "stale" in v.message
        for v in report.violations
    )
    # ... and again at finish: the leaked log is still attached.
    assert any(v.check == "lifecycle" for v in report.violations)


# ----------------------------------------------------------------------
# Dirty-page conservation (hook-level, no stack needed)
# ----------------------------------------------------------------------
class _FakeMem:
    def __init__(self):
        self._dirty_logs = set()


class _FakeVm:
    def __init__(self, name="vm0"):
        self.name = name
        self.memory = _FakeMem()


def test_dirty_conservation_binds_successful_migrations():
    auditor = Auditor()
    vm, log = _FakeVm(), object()
    auditor.on_migration_start(vm, log, [], [])
    auditor.on_pages_drained(vm, {1, 2, 3})
    auditor.on_pages_copied(vm, {1})
    auditor.on_migration_end(vm, "ok", log, [], [])
    assert any(v.check == "dirty-conservation" for v in auditor.violations)


def test_dirty_conservation_excuses_aborts():
    """An abort legitimately abandons drained pages: the VM never left
    the source, nothing was lost."""
    auditor = Auditor()
    vm, log = _FakeVm(), object()
    auditor.on_migration_start(vm, log, [], [])
    auditor.on_pages_drained(vm, {1, 2})
    auditor.on_migration_end(vm, "failed", log, [], [])
    assert not auditor.violations


def test_migration_never_reporting_end_is_flagged_at_finish():
    auditor = Auditor()
    auditor.on_migration_start(_FakeVm(), object(), [], [])
    report = auditor.finish()
    assert any("never reported" in v.message for v in report.violations)


# ----------------------------------------------------------------------
# Orphaned-process and fabric-conservation checks
# ----------------------------------------------------------------------
def test_orphaned_process_detection():
    sim = Simulator(seed=0)

    def forever():
        while True:
            yield 100

    proc = sim.spawn(forever(), "spinner")
    sim.run(until=1_000)
    assert orphaned_process_violations([proc])
    proc.cancel()
    assert not orphaned_process_violations([proc])

    def boom():
        yield 1
        raise RuntimeError("deliberate")

    crashed = sim.spawn(boom(), "boom")
    with pytest.raises(RuntimeError):
        sim.run()
    # A raised generator is retired (never rescheduled), not orphaned.
    assert not orphaned_process_violations([crashed])


def test_fabric_conservation_green_then_tamper_detected():
    from repro.cluster import Cluster

    cluster = Cluster(num_hosts=2, seed=0)
    cluster.stream("host0", "host1", 1 << 20)
    cluster.sim.run()
    assert fabric_conservation_violations(cluster.fabric) == []
    # Claim more metered bytes than the downlinks ever carried.
    cluster.fabric.metrics.cross_host[("host0", "host1", "net")] += 10**12
    assert fabric_conservation_violations(cluster.fabric)


def test_lifecycle_violations_on_manually_leaked_state():
    stack = make_stack()
    assert lifecycle_violations(stack) == []
    stack.leaf_vm.memory.attach_dirty_log(DirtyLog("leak"))
    backend = stack.machine.host_hv.backends[stack.net.device]
    backend.pause()
    out = lifecycle_violations(stack)
    assert any("dirty log" in v for v in out)
    assert any("left paused" in v for v in out)


# ----------------------------------------------------------------------
# Span reconciliation (cycle conservation)
# ----------------------------------------------------------------------
def test_traced_stack_reconciles_spans_against_metrics():
    from repro.workloads.microbench import run_microbenchmark

    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    auditor = Auditor().attach_stack(stack, trace=True)
    run_microbenchmark(stack, "ProgramTimer", 5)
    report = auditor.finish()
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# The full matrix: green on main, red with the fix reverted
# ----------------------------------------------------------------------
def test_audit_matrix_green_then_red_when_teardown_reverted(monkeypatch):
    run = run_audit(seed=0, episodes=0)
    assert run.ok, render_audit(run)
    assert len(run.scenarios) >= 18

    monkeypatch.setattr(
        LiveMigration, "_teardown", lambda self, cpu_log, backends: None
    )
    bad = run_audit(seed=0, episodes=0)
    assert not bad.ok
    assert "RED" in render_audit(bad)
    joined = "\n".join(v for s in bad.scenarios for v in s.violations)
    assert "still attached" in joined
    assert "left paused" in joined


def test_fuzzer_audit_flag_preserves_digests():
    from repro.faults.fuzz import TrapChainFuzzer

    base = TrapChainFuzzer(seed=7, episodes=3, replay_every=0).run()
    audited = TrapChainFuzzer(
        seed=7, episodes=3, replay_every=0, audit=True
    ).run()
    assert audited.ok
    assert [e.digest for e in base.episodes] == [
        e.digest for e in audited.episodes
    ]


def test_cli_audit_subcommand(capsys):
    from repro.cli import main

    assert main(["audit", "--episodes", "0"]) == 0
    out = capsys.readouterr().out
    assert "GREEN" in out
