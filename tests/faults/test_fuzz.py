"""Tests for the trap-chain fuzzer: invariants, episodes, campaigns."""

from repro.faults import (
    TrapChainFuzzer,
    check_invariants,
    run_fault_workload,
    state_digest,
)
from repro.faults.fuzz import FUZZ_CLASSES
from repro.faults.plan import FaultClass
from repro.hv.stack import StackConfig, build_stack


def test_fuzz_classes_exclude_migration_wire():
    assert set(FUZZ_CLASSES).isdisjoint(set(FaultClass.MIGRATION))


def test_invariants_green_on_clean_run():
    stack = build_stack(StackConfig(levels=2, io_model="virtio", workers=2))
    run_fault_workload(stack, ops_per_worker=15, seed=1)
    assert check_invariants(stack) == []


def test_invariants_catch_lost_wakeup():
    """A halted pCPU parking a vCPU with pending interrupts is exactly
    the lost-wakeup shape the checker must flag."""
    stack = build_stack(StackConfig(levels=2, io_model="virtio", workers=2))
    stack.settle()
    ctx = stack.ctx(0)

    def park():
        yield from ctx.wait_for_interrupt()

    stack.sim.spawn(park(), "parked")
    stack.sim.run()
    ctx.lapic.irr.add(0x41)  # latch an interrupt nobody will deliver
    violations = check_invariants(stack)
    assert any("lost wakeup" in v for v in violations)


def test_invariants_catch_negative_cycles():
    stack = build_stack(StackConfig(levels=1, io_model="virtio", workers=2))
    run_fault_workload(stack, ops_per_worker=5, seed=1)
    stack.metrics.cycles["bogus"] = -5
    violations = check_invariants(stack)
    assert any("negative cycle charge" in v for v in violations)


def test_state_digest_reflects_outcome():
    a = build_stack(StackConfig(levels=1, io_model="virtio", workers=2))
    run_fault_workload(a, ops_per_worker=10, seed=4)
    b = build_stack(StackConfig(levels=1, io_model="virtio", workers=2))
    run_fault_workload(b, ops_per_worker=10, seed=4)
    assert state_digest(a) == state_digest(b)

    c = build_stack(StackConfig(levels=1, io_model="virtio", workers=2))
    run_fault_workload(c, ops_per_worker=10, seed=5)
    assert state_digest(c) != state_digest(a)


def test_episode_deterministic_per_seed():
    fuzzer = TrapChainFuzzer(seed=21, episodes=1, replay_every=0)
    a = fuzzer.run_episode(0)
    b = fuzzer.run_episode(0)
    assert a.digest == b.digest
    assert a.injected == b.injected
    assert a.config_desc == b.config_desc


def test_small_campaign_all_green_with_replay():
    fuzzer = TrapChainFuzzer(seed=42, episodes=8, replay_every=4)
    campaign = fuzzer.run()
    assert campaign.ok, [e.violations for e in campaign.failures]
    assert len(campaign.episodes) == 8
    assert sum(1 for e in campaign.episodes if e.replay_checked) == 2
    # The campaign actually injected something somewhere.
    assert sum(campaign.injected_totals().values()) > 0


def test_campaign_totals_aggregate_episodes():
    fuzzer = TrapChainFuzzer(seed=13, episodes=4, replay_every=0)
    campaign = fuzzer.run()
    manual = {}
    for e in campaign.episodes:
        for kind, n in e.injected.items():
            manual[kind] = manual.get(kind, 0) + n
    assert campaign.injected_totals() == manual


def test_campaign_progress_callback():
    seen = []
    TrapChainFuzzer(seed=1, episodes=3, replay_every=0).run(progress=seen.append)
    assert [e.index for e in seen] == [0, 1, 2]
