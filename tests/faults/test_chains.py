"""Per-chain exit conservation (ChainTracker) tests."""

from repro.core.features import DvhFeatures
from repro.faults.chains import ChainTracker
from repro.faults.fuzz import build_faulted_stack, check_invariants
from repro.faults.plan import FaultPlan
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark


def test_tracker_balances_per_chain_on_clean_run():
    stack = build_stack(StackConfig(levels=2))
    tracker = ChainTracker()
    stack.machine.chain_tracker = tracker
    run_microbenchmark(stack, "Hypercall", iterations=2)
    assert tracker.chain_count > 0
    assert tracker.violations() == []
    # Every chain fully resolved, except possibly one HLT parked in L0's
    # halt emulation at drain time (the workload's final wait).
    for cid in tracker.exits:
        assert tracker.chain_slack(cid) in (0, 1)
    # Nested config: forwarded chains multiplied into deeper frames.
    assert max(tracker.max_depth.values()) >= 1
    assert sum(tracker.forwards.values()) > 0


def test_tracker_agrees_with_machine_wide_counters():
    stack = build_stack(
        StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full())
    )
    tracker = ChainTracker()
    stack.machine.chain_tracker = tracker
    run_microbenchmark(stack, "ProgramTimer", iterations=3)
    metrics = stack.metrics
    preempt = metrics.exits_for_reason("preemption_timer")
    assert sum(tracker.exits.values()) == metrics.total_exits() - preempt
    assert sum(tracker.forwards.values()) == metrics.guest_hv_interventions()
    assert sum(tracker.handled.values()) == sum(metrics.l0_handled.values())


def test_tracker_flags_unbalanced_chain():
    tracker = ChainTracker()

    class FakeEctx:
        def __init__(self, cid, reason, depth=0, level=2):
            from repro.hw.ops import ExitReason

            class E:
                pass

            self.chain_id = cid
            self.depth = depth
            self.origin_level = level
            self.exit_ = E()
            self.exit_.reason = ExitReason[reason]

        @property
        def reason(self):
            return self.exit_.reason

    good = FakeEctx(1, "VMCALL")
    tracker.on_exit(good)
    tracker.on_forward(good, owner=1)
    bad = FakeEctx(2, "CPUID")
    tracker.on_exit(bad)  # never handled nor forwarded
    out = tracker.violations()
    assert len(out) == 1
    assert "chain #2" in out[0]
    assert "non-hlt imbalance" in out[0]


def test_fuzz_invariants_include_chain_checks():
    plan = FaultPlan.random(7, intensity=0.05)
    stack, injector = build_faulted_stack(
        StackConfig(levels=2, workers=2), plan, seed=7
    )
    assert stack.machine.chain_tracker is not None
    from repro.faults.workload import run_fault_workload

    run_fault_workload(stack, ops_per_worker=10, seed=7, workers=2)
    assert check_invariants(stack, injector) == []
    assert stack.machine.chain_tracker.chain_count > 0
