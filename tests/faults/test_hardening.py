"""Tests for the hypervisor hardening paths the fault classes exercise:
lost-kick requeue, malformed-descriptor drop, DMA abort, migration
retry-with-backoff."""

import pytest

from repro.core.features import DvhFeatures
from repro.core.migration import LiveMigration, MigrationError
from repro.faults import (
    FaultClass,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_faulted_stack,
    run_fault_workload,
)
from repro.hv.stack import StackConfig, build_stack


def virtio_stack(levels=1):
    stack = build_stack(StackConfig(levels=levels, io_model="virtio", workers=2))
    stack.settle()
    return stack


# ----------------------------------------------------------------------
# Lost kicks: notification timeout + requeue
# ----------------------------------------------------------------------
def test_requeue_recovers_unkicked_work():
    """A posted TX descriptor whose doorbell never arrived is serviced
    after the notification-timeout probe re-signals the backend."""
    stack = virtio_stack()
    backend = stack.machine.host_hv.backends[stack.net.device]
    received = []
    stack.machine.client.on_receive(stack.flow, received.append)

    ctx = stack.ctx(0)
    stack.sim.run_process(
        stack.net.send(256, payload="lost", kick=False, queue=0, ctx=ctx)
    )
    assert stack.net.device.tx_q(0).avail_pending == 1
    assert not received

    assert backend.requeue_lost_notification() is True
    stack.sim.run()
    assert received and received[0].payload == "lost"
    assert stack.metrics.recoveries["virtio_requeue"] == 1


def test_requeue_is_noop_when_idle_or_paused():
    stack = virtio_stack()
    backend = stack.machine.host_hv.backends[stack.net.device]
    assert backend.requeue_lost_notification() is False
    backend.pause()
    assert backend.requeue_lost_notification() is False
    backend.resume()
    assert stack.metrics.recoveries.get("virtio_requeue", 0) == 0


def test_injected_kick_drops_recovered_by_watchdog():
    """With every doorbell dropped, the one-shot watchdog probes keep
    the datapath alive: work still completes, recoveries are counted."""
    plan = FaultPlan([FaultSpec(kind=FaultClass.VIRTIO_KICK_DROP, rate=1.0)])
    stack, injector = build_faulted_stack(
        StackConfig(levels=2, io_model="virtio", workers=2), plan, seed=7
    )
    ops = run_fault_workload(stack, ops_per_worker=20, seed=7)
    assert ops["send"] > 0
    assert injector.summary()[FaultClass.VIRTIO_KICK_DROP] > 0
    assert stack.metrics.recoveries["virtio_requeue"] > 0


# ----------------------------------------------------------------------
# Malformed descriptors: complete with zero bytes, never touch them
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad_length", [0, -1, 1 << 28])
def test_malformed_tx_descriptor_dropped(bad_length):
    stack = virtio_stack()
    backend = stack.machine.host_hv.backends[stack.net.device]
    received = []
    stack.machine.client.on_receive(stack.flow, received.append)

    backend.pause()
    ctx = stack.ctx(0)
    stack.sim.run_process(
        stack.net.send(512, payload="bad", kick=True, queue=0, ctx=ctx)
    )
    txq = stack.net.device.tx_q(0)
    assert txq.corrupt_next_avail(length=bad_length)
    backend.resume()
    stack.sim.run()

    # The descriptor was completed (ring stays consistent) with zero
    # bytes, and the bogus buffer never reached the wire.
    assert txq.avail_pending == 0
    assert stack.metrics.recoveries["virtio_malformed_drop"] == 1
    assert not received


def test_scheduled_ring_corruption_survived():
    """The injector's scheduled corruption against a loaded datapath:
    every fired corruption becomes a counted drop, never a crash."""
    plan = FaultPlan(
        [FaultSpec(kind=FaultClass.VIRTIO_MALFORMED, count=6, end=12_000_000)]
    )
    stack, injector = build_faulted_stack(
        StackConfig(levels=1, io_model="virtio", workers=2), plan, seed=3
    )
    run_fault_workload(stack, ops_per_worker=25, seed=3)
    fired = injector.summary().get(FaultClass.VIRTIO_MALFORMED, 0)
    assert stack.metrics.recoveries.get("virtio_malformed_drop", 0) == fired


# ----------------------------------------------------------------------
# DMA aborts on injected IOMMU faults
# ----------------------------------------------------------------------
def test_dma_abort_keeps_passthrough_device_alive():
    plan = FaultPlan([FaultSpec(kind=FaultClass.IOMMU_FAULT, rate=1.0)])
    stack, injector = build_faulted_stack(
        StackConfig(levels=2, io_model="passthrough", workers=2), plan, seed=9
    )
    # Completes without stranding any worker despite every DMA faulting.
    ops = run_fault_workload(stack, ops_per_worker=20, seed=9)
    assert ops["send"] > 0
    assert injector.summary()[FaultClass.IOMMU_FAULT] > 0
    assert stack.metrics.recoveries["dma_abort"] > 0


# ----------------------------------------------------------------------
# Migration: bounded retry-with-backoff and failure modes
# ----------------------------------------------------------------------
def dvh_stack():
    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    stack.settle()
    return stack


def test_migration_retries_through_link_flap():
    stack = dvh_stack()
    now = stack.sim.now
    plan = FaultPlan(
        [FaultSpec(kind=FaultClass.MIG_LINK_FLAP, start=now, end=now + 700_000)]
    )
    FaultInjector(stack.machine, plan, seed=1).attach(stack)
    mig = LiveMigration(
        stack.machine, stack.leaf_vm, devices=[stack.net.device]
    )
    res = stack.sim.run_process(mig.run())
    assert res.retries > 0
    assert stack.metrics.recoveries["migration_retry"] == res.retries
    assert res.total_s > 0


def test_migration_error_after_retry_budget():
    stack = dvh_stack()
    plan = FaultPlan([FaultSpec(kind=FaultClass.MIG_LINK_FLAP)])  # down forever
    FaultInjector(stack.machine, plan, seed=1).attach(stack)
    mig = LiveMigration(
        stack.machine, stack.leaf_vm, max_retries=3, retry_backoff_cycles=50_000
    )
    with pytest.raises(MigrationError, match="link down after 3 retries"):
        stack.sim.run_process(mig.run())


def test_migration_slower_on_degraded_wire():
    clean = dvh_stack()
    clean_res = clean.sim.run_process(
        LiveMigration(clean.machine, clean.leaf_vm).run()
    )

    degraded = dvh_stack()
    plan = FaultPlan(
        [
            FaultSpec(kind=FaultClass.MIG_BANDWIDTH, param=0.5),
            FaultSpec(kind=FaultClass.MIG_LOSS, param=0.10),
        ]
    )
    FaultInjector(degraded.machine, plan, seed=1).attach(degraded)
    slow_res = degraded.sim.run_process(
        LiveMigration(degraded.machine, degraded.leaf_vm).run()
    )
    # Half bandwidth + 10% retransmits: > 2x the clean transfer time.
    assert slow_res.total_s > 2.0 * clean_res.total_s
    assert slow_res.retries == 0
