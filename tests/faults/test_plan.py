"""Tests for fault plans (repro.faults.plan)."""

import pytest

from repro.faults.plan import FaultClass, FaultPlan, FaultSpec


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        FaultSpec(kind="cosmic_ray")


def test_rate_bounds_enforced():
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultClass.NIC_DROP, rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultClass.NIC_DROP, rate=-0.1)


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        FaultSpec(kind=FaultClass.IRQ_SPURIOUS, count=-1)


def test_duplicate_kind_rejected():
    spec = FaultSpec(kind=FaultClass.NIC_DROP, rate=0.1)
    with pytest.raises(ValueError):
        FaultPlan([spec, spec])


def test_active_window():
    spec = FaultSpec(kind=FaultClass.NIC_DROP, rate=0.1, start=100, end=200)
    assert not spec.active(99)
    assert spec.active(100)
    assert spec.active(199)
    assert not spec.active(200)
    forever = FaultSpec(kind=FaultClass.NIC_DROP, rate=0.1, start=50)
    assert forever.active(10**12)


def test_empty_plan():
    plan = FaultPlan.empty()
    assert plan.is_empty
    assert len(plan) == 0
    assert plan.kinds() == set()
    assert plan.describe() == "(empty plan)"
    assert plan.faulted_mechanisms() == ()


def test_random_plan_deterministic():
    a = FaultPlan.random(1234)
    b = FaultPlan.random(1234)
    assert a.describe() == b.describe()
    assert a.kinds() == b.kinds()


def test_random_plan_seed_sensitivity():
    # Over a few seeds at least one pair must differ (seed matters).
    descs = {FaultPlan.random(s).describe() for s in range(8)}
    assert len(descs) > 1


def test_random_plan_respects_class_pool():
    pool = (FaultClass.NIC_DROP, FaultClass.IRQ_DROP)
    for seed in range(10):
        plan = FaultPlan.random(seed, classes=pool)
        assert plan.kinds() <= set(pool)
        assert not plan.is_empty


def test_random_plan_rejects_unknown_class():
    with pytest.raises(ValueError):
        FaultPlan.random(0, classes=["not_a_fault"])


def test_spec_lookup_and_iteration():
    specs = [
        FaultSpec(kind=FaultClass.NIC_DROP, rate=0.2),
        FaultSpec(kind=FaultClass.IRQ_SPURIOUS, count=3),
    ]
    plan = FaultPlan(specs)
    assert plan.spec_for(FaultClass.NIC_DROP).rate == 0.2
    assert plan.spec_for(FaultClass.MIG_LOSS) is None
    assert list(plan) == specs
    assert "nic_drop" in plan.describe()


def test_faulted_mechanisms_from_spec():
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.DVH_CAP_FAULT,
                mechanisms=("virtual_passthrough",),
            )
        ]
    )
    assert plan.faulted_mechanisms() == ("virtual_passthrough",)
