"""Tests for the fault injector: determinism, identity, hook installs."""

import pytest

from repro.core.features import DvhFeatures
from repro.faults import (
    FaultClass,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_faulted_stack,
    degrade_config,
    run_fault_workload,
    state_digest,
)
from repro.hv.stack import StackConfig, build_stack


def l2_config(**overrides):
    base = dict(levels=2, io_model="virtio", workers=2)
    base.update(overrides)
    return StackConfig(**base)


def test_empty_plan_installs_nothing():
    stack = build_stack(l2_config())
    injector = FaultInjector(stack.machine, FaultPlan.empty(), seed=1).attach(stack)
    assert stack.machine.faults is injector
    assert stack.machine.nic.fault_hook is None
    assert stack.machine.iommu.fault_hook is None
    for ctx in stack.ctxs:
        assert ctx.lapic.fault_hook is None
    assert injector.summary() == {}


def test_empty_plan_run_byte_identical_to_no_injector():
    """The empty plan is the identity: attaching it changes nothing."""
    plain = build_stack(l2_config())
    run_fault_workload(plain, ops_per_worker=15, seed=3)
    baseline = state_digest(plain)

    faulted = build_stack(l2_config())
    injector = FaultInjector(faulted.machine, FaultPlan.empty(), seed=99).attach(
        faulted
    )
    run_fault_workload(faulted, ops_per_worker=15, seed=3)
    assert state_digest(faulted) == baseline
    assert injector.summary() == {}
    assert faulted.metrics.total_faults() == 0
    assert faulted.metrics.total_recoveries() == 0


def test_same_seed_same_outcome():
    digests = []
    for _ in range(2):
        plan = FaultPlan(
            [
                FaultSpec(kind=FaultClass.NIC_DROP, rate=0.3),
                FaultSpec(kind=FaultClass.IRQ_SPURIOUS, count=3, end=16_000_000),
            ]
        )
        stack, injector = build_faulted_stack(l2_config(), plan, seed=11)
        run_fault_workload(stack, ops_per_worker=15, seed=3)
        digests.append(state_digest(stack, injector))
    assert digests[0] == digests[1]


def test_injector_seed_changes_outcome():
    digests = []
    for inj_seed in (11, 12):
        plan = FaultPlan([FaultSpec(kind=FaultClass.NIC_DROP, rate=0.5)])
        stack, injector = build_faulted_stack(l2_config(), plan, seed=inj_seed)
        run_fault_workload(stack, ops_per_worker=15, seed=3)
        digests.append(state_digest(stack, injector))
    assert digests[0] != digests[1]


def test_reattach_rejected():
    stack = build_stack(l2_config())
    injector = FaultInjector(stack.machine, FaultPlan.empty()).attach(stack)
    with pytest.raises(RuntimeError):
        injector.attach(stack)


def test_nic_drop_recorded_in_metrics_and_summary():
    plan = FaultPlan([FaultSpec(kind=FaultClass.NIC_DROP, rate=1.0)])
    stack, injector = build_faulted_stack(l2_config(), plan, seed=5)
    run_fault_workload(stack, ops_per_worker=12, seed=2)
    dropped = injector.summary()[FaultClass.NIC_DROP]
    assert dropped > 0
    assert stack.metrics.faults[FaultClass.NIC_DROP] == dropped


def test_degrade_config_falls_back_to_virtio():
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.DVH_CAP_FAULT,
                mechanisms=("virtual_passthrough",),
            )
        ]
    )
    config = l2_config(io_model="vp", dvh=DvhFeatures.full())
    degraded, dropped = degrade_config(config, plan)
    assert degraded.io_model == "virtio"
    assert not degraded.dvh.virtual_passthrough
    # Dependency closure: posted vIOMMU interrupts need passthrough.
    assert not degraded.dvh.viommu_posted_interrupts
    assert "virtual_passthrough" in dropped
    assert "viommu_posted_interrupts" in dropped
    # Unrelated mechanisms survive.
    assert degraded.dvh.virtual_timer


def test_degrade_config_without_cap_fault_is_identity():
    config = l2_config(io_model="vp", dvh=DvhFeatures.full())
    plan = FaultPlan([FaultSpec(kind=FaultClass.NIC_DROP, rate=0.5)])
    degraded, dropped = degrade_config(config, plan)
    assert degraded is config
    assert dropped == []


def test_build_faulted_stack_counts_dvh_fallback():
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.DVH_CAP_FAULT,
                mechanisms=("virtual_passthrough",),
            )
        ]
    )
    stack, _injector = build_faulted_stack(
        l2_config(io_model="vp", dvh=DvhFeatures.full()), plan, seed=0
    )
    assert stack.config.io_model == "virtio"
    assert stack.metrics.faults[FaultClass.DVH_CAP_FAULT] >= 1
    assert stack.metrics.recoveries["dvh_fallback"] == 1


def test_cap_fault_on_plain_stack_is_not_counted():
    """Faulting a capability nobody requested injects nothing."""
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.DVH_CAP_FAULT,
                mechanisms=("virtual_passthrough",),
            )
        ]
    )
    stack, _injector = build_faulted_stack(l2_config(), plan, seed=0)
    assert stack.config.io_model == "virtio"
    assert stack.metrics.faults.get(FaultClass.DVH_CAP_FAULT, 0) == 0
    assert stack.metrics.recoveries.get("dvh_fallback", 0) == 0
