"""Tests for metrics reports."""

from repro.metrics import Metrics
from repro.metrics.report import (
    cycle_report,
    exit_report,
    full_report,
    interrupt_report,
    intervention_summary,
)


def sample_metrics() -> Metrics:
    m = Metrics()
    m.record_exit(2, "vmcall")
    m.record_exit(1, "vmx", count=17)
    m.record_forward(2, "vmcall", 1)
    m.record_l0_handled("apic_timer", dvh=True)
    m.record_exit(2, "apic_timer")
    m.record_interrupt("timer", "posted")
    m.record_interrupt("virtio", "injected")
    m.charge("guest_work", 10_000)
    m.charge("l0_emul", 5_000)
    return m


def test_exit_report_contains_levels_and_totals():
    text = exit_report(sample_metrics())
    assert "from L1" in text and "from L2" in text
    assert "vmcall" in text
    assert "TOTAL" in text
    assert "forwarded" in text


def test_cycle_report_shares_sum_to_100():
    text = cycle_report(sample_metrics())
    assert "guest_work" in text
    assert "%" in text


def test_cycle_report_with_frequency_shows_time():
    text = cycle_report(sample_metrics(), freq_hz=2_200_000_000)
    assert "ms" in text


def test_interrupt_report():
    text = interrupt_report(sample_metrics())
    assert "posted" in text and "injected" in text


def test_intervention_summary_math():
    s = intervention_summary(sample_metrics())
    assert s["hardware_exits"] == 19
    assert s["guest_hv_interventions"] == 1
    assert s["dvh_handled"] == 1
    assert s["intervention_ratio"] == 1 / 19


def test_intervention_summary_empty_metrics():
    s = intervention_summary(Metrics())
    assert s["intervention_ratio"] == 0.0


def test_full_report_combines_everything():
    text = full_report(sample_metrics(), freq_hz=2_200_000_000)
    assert "Hardware exits" in text
    assert "Cycle attribution" in text
    assert "Interrupt deliveries" in text
    assert "handled by DVH" in text


def test_metrics_diff_and_copy():
    m = sample_metrics()
    snap = m.copy()
    m.record_exit(2, "vmcall")
    delta = m.diff(snap)
    assert delta.exits[(2, "vmcall")] == 1
    assert delta.exits.get((1, "vmx"), 0) == 0
