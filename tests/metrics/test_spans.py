"""Span tracing: reconciliation against Metrics, invisibility to the
simulation, and chain rendering."""

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.sim.trace import Tracer
from repro.workloads.microbench import run_microbenchmark


def _run(config, name="ProgramTimer", iterations=2, trace=False, tracer=None):
    stack = build_stack(config)
    collector = None
    if trace:
        collector = stack.machine.enable_span_tracing(tracer=tracer)
    cycles = run_microbenchmark(stack, name, iterations)
    return stack, collector, cycles


def test_tracing_changes_nothing_observable():
    """Same seed, tracing on vs off: identical clock, cycles/op, and
    metrics snapshot (spans live entirely outside Metrics)."""
    cfg = StackConfig(levels=2, io_model="virtio")
    plain_stack, _, plain_cycles = _run(cfg, trace=False)
    traced_stack, collector, traced_cycles = _run(cfg, trace=True)
    assert traced_cycles == plain_cycles
    assert traced_stack.sim.now == plain_stack.sim.now
    assert traced_stack.metrics.snapshot() == plain_stack.metrics.snapshot()
    assert collector.spans_closed > 0


def test_dispatch_only_categories_reconcile_exactly():
    """hw_switch and dvh_emul are charged only inside dispatch, so their
    span-attributed totals must equal the flat counters to rounding."""
    for cfg in (
        StackConfig(levels=2, io_model="virtio"),
        StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full()),
    ):
        stack, collector, _ = _run(cfg, trace=True)
        rows = {category: row for category, *row in collector.reconcile(stack.metrics)}
        for category in ("hw_switch", "dvh_emul"):
            span_cy, metric_cy, unattributed = rows[category]
            assert abs(unattributed) < 1, (cfg, category, span_cy, metric_cy)
        # Nothing is ever over-attributed: spans never exceed metrics.
        for category, (span_cy, metric_cy, _u) in rows.items():
            assert span_cy <= metric_cy + 1e-9, (cfg, category)


def test_spans_off_by_default_and_zero_allocation():
    stack = build_stack(StackConfig(levels=2))
    assert stack.machine.spans is None
    run_microbenchmark(stack, "Hypercall", iterations=1)
    assert stack.machine.spans is None  # nothing turned it on


def test_span_events_flow_into_tracer():
    stack = build_stack(StackConfig(levels=2))
    tracer = Tracer(stack.sim, capacity=4096)
    collector = stack.machine.enable_span_tracing(tracer=tracer)
    run_microbenchmark(stack, "Hypercall", iterations=1)
    span_events = tracer.events(category="span")
    assert len(span_events) == collector.spans_closed
    sample = span_events[0]
    assert {"chain", "depth", "level", "reason", "handler", "hops", "cycles"} <= set(
        sample.fields
    )


def test_site_rows_sorted_and_render_chains():
    stack, collector, _ = _run(
        StackConfig(levels=2), name="Hypercall", iterations=2, trace=True
    )
    rows = collector.site_rows()
    assert rows == sorted(rows, key=lambda r: (-r[3], r[0], r[1], r[2]))
    text = collector.render_chains(last=2)
    assert "chain #" in text
    assert "vmcall" in text


def test_max_chains_bounds_retained_trees_not_aggregation():
    stack = build_stack(StackConfig(levels=2))
    collector = stack.machine.enable_span_tracing(max_chains=1)
    run_microbenchmark(stack, "Hypercall", iterations=3)
    assert len(collector.roots) == 1
    assert collector.chains_evicted > 0
    # Aggregates still cover every closed span.
    assert sum(collector.by_site.values()) > 0
    assert collector.spans_closed > len(collector.roots)
