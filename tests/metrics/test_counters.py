"""Direct unit tests for the Metrics table registry (snapshot/diff/copy)."""

from collections import Counter

from repro.metrics import Metrics


def populated() -> Metrics:
    m = Metrics()
    m.record_exit(2, "vmcall")
    m.record_exit(2, "vmcall")
    m.record_exit(1, "hlt")
    m.record_forward(2, "vmcall", 1)
    m.record_l0_handled("hlt")
    m.record_l0_handled("apic_timer", dvh=True)
    m.record_interrupt("ipi", "posted")
    m.charge("l0_emul", 1200)
    m.charge("guest_work", 3.5)
    m.count("packets", 7)
    m.record_fault("nic_drop", 2)
    m.record_recovery("virtio_requeue")
    return m


def test_tables_registry_matches_instance_counters():
    """Every Counter attribute is in _TABLES and vice versa: the registry
    cannot silently drift from the instance layout."""
    m = Metrics()
    counter_attrs = {
        name for name, value in vars(m).items() if isinstance(value, Counter)
    }
    assert counter_attrs == set(Metrics._TABLES)
    # Snapshot covers exactly the registry, in registry order.
    assert list(m.snapshot().keys()) == list(Metrics._TABLES)


def test_snapshot_is_plain_and_detached():
    m = populated()
    snap = m.snapshot()
    assert snap["exits"][(2, "vmcall")] == 2
    assert snap["dvh_handled"] == {"apic_timer": 1}
    assert snap["cycles"]["guest_work"] == 3.5
    # Mutating the snapshot must not touch the metrics (and vice versa).
    snap["exits"][(2, "vmcall")] = 99
    assert m.exits[(2, "vmcall")] == 2
    m.record_exit(2, "vmcall")
    assert snap["events"]["packets"] == 7


def test_copy_covers_every_table_and_is_independent():
    m = populated()
    c = m.copy()
    assert c.snapshot() == m.snapshot()
    for table in Metrics._TABLES:
        assert getattr(c, table) is not getattr(m, table)
    m.charge("l0_emul", 1)
    m.record_fault("irq_drop")
    assert c.cycles["l0_emul"] == 1200
    assert c.faults["irq_drop"] == 0


def test_diff_returns_only_positive_deltas_across_all_tables():
    m = populated()
    before = m.copy()
    m.record_exit(3, "mmio")
    m.record_forward(3, "mmio", 2)
    m.charge("dvh_emul", 800)
    m.count("packets", 3)
    m.record_recovery("virtio_requeue", 2)
    d = m.diff(before)
    assert d.exits == Counter({(3, "mmio"): 1})
    assert d.forwards == Counter({(3, "mmio", 2): 1})
    assert d.cycles == Counter({"dvh_emul": 800})
    assert d.events == Counter({"packets": 3})
    assert d.recoveries == Counter({"virtio_requeue": 2})
    # Tables with no new activity diff to empty, not to zero-entries.
    assert d.l0_handled == Counter()
    assert d.faults == Counter()


def test_diff_of_identical_metrics_is_empty_everywhere():
    m = populated()
    d = m.diff(m.copy())
    for table in Metrics._TABLES:
        assert getattr(d, table) == Counter()


def test_query_helpers_agree_with_tables():
    m = populated()
    assert m.total_exits() == 3
    assert m.exits_from_level(2) == 2
    assert m.exits_for_reason("hlt") == 1
    assert m.guest_hv_interventions() == 1
    assert m.forwards_to_level(1) == 1
    assert m.total_faults() == 2
    assert m.total_recoveries() == 1
