"""Latency histograms: bucket math, exactness, merge/diff, capture."""

import random

import pytest

from repro.metrics import (
    Histogram,
    Metrics,
    RequestCapture,
    exact_percentile,
)
from repro.metrics.hist import SUB, bucket_hi, bucket_index, bucket_lo


# ----------------------------------------------------------------------
# Bucket math
# ----------------------------------------------------------------------
def test_bucket_index_monotonic_and_contiguous():
    last = -1
    for v in range(0, 5000):
        idx = bucket_index(v)
        assert idx >= last  # monotonic
        assert idx - last <= 1  # contiguous: no skipped indices
        last = max(last, idx)


def test_bucket_bounds_round_trip():
    rng = random.Random(7)
    values = [rng.randrange(0, 1 << 40) for _ in range(2000)] + list(range(70))
    for v in values:
        idx = bucket_index(v)
        assert bucket_lo(idx) <= v <= bucket_hi(idx)
        # the low edge is the canonical representative of its own bucket
        assert bucket_index(bucket_lo(idx)) == idx


def test_small_values_get_exact_buckets():
    for v in range(SUB):
        assert bucket_lo(bucket_index(v)) == v


def test_relative_error_bounded():
    rng = random.Random(11)
    for _ in range(2000):
        v = rng.randrange(SUB, 1 << 40)
        width = bucket_hi(bucket_index(v)) - bucket_lo(bucket_index(v)) + 1
        assert width <= max(1, v // SUB + 1)


# ----------------------------------------------------------------------
# exact_percentile: the one shared nearest-rank rule
# ----------------------------------------------------------------------
def test_exact_percentile_matches_historic_rule():
    values = [5, 1, 9, 3, 7]
    for p in (0, 25, 50, 90, 99, 100):
        expected = sorted(values)[min(len(values) - 1, int(len(values) * p / 100))]
        assert exact_percentile(values, p) == expected


def test_exact_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        exact_percentile([], 50)
    with pytest.raises(ValueError):
        exact_percentile([1], 101)


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_mean_is_exact():
    rng = random.Random(3)
    values = [rng.randrange(0, 10_000_000) for _ in range(500)]
    h = Histogram()
    for v in values:
        h.record(v)
    assert h.mean() == sum(values) / len(values)
    assert len(h) == 500


def test_histogram_percentile_within_bucket_error():
    rng = random.Random(5)
    values = [rng.randrange(1, 1_000_000) for _ in range(1000)]
    h = Histogram()
    for v in values:
        h.record(v)
    for p in (50.0, 90.0, 99.0, 99.9):
        exact = exact_percentile(values, p)
        approx = h.percentile(p)
        # the bucketed percentile is the low edge of the exact value's bucket
        assert bucket_lo(bucket_index(exact)) == approx


def test_histogram_merge_is_order_independent():
    rng = random.Random(9)
    a, b, both = Histogram(), Histogram(), Histogram()
    for _ in range(300):
        v = rng.randrange(0, 1 << 30)
        (a if v % 2 else b).record(v)
        both.record(v)
    merged = a.copy().merge(b)
    assert merged.snapshot() == both.snapshot()
    assert merged.sum == both.sum and merged.total == both.total
    other_way = b.copy().merge(a)
    assert other_way.snapshot() == merged.snapshot()


def test_histogram_diff_windows_out_old_counts():
    h = Histogram()
    h.record(100), h.record(200)
    snap = h.copy()
    h.record(300), h.record(300)
    window = h.diff(snap)
    assert window.total == 2
    assert window.sum == 600
    assert window.percentile(50.0) == bucket_lo(bucket_index(300))


def test_histogram_count_above_is_conservative():
    h = Histogram()
    for v in (10, 100, 1000, 100_000):
        h.record(v)
    assert h.count_above(1000) == 1  # only 100_000's bucket is fully above
    assert h.count_above(0) == 4
    assert h.count_above(10**9) == 0


def test_histogram_empty_queries_raise():
    h = Histogram()
    with pytest.raises(ValueError):
        h.percentile(50.0)
    with pytest.raises(ValueError):
        h.mean()


def test_from_buckets_round_trips_metrics_table():
    m = Metrics()
    values = [123, 456, 789_000]
    for v in values:
        m.record_latency("svc", v)
    h = m.latency_histogram("svc")
    assert h.total == 3
    assert h.sum == sum(values)  # latency_sum keeps the exact sum
    assert m.latency_series() == ["svc"]


# ----------------------------------------------------------------------
# RequestCapture
# ----------------------------------------------------------------------
def test_capture_records_latency_not_service_time():
    m = Metrics()
    cap = RequestCapture(m, series="rr")
    cap.observe(enqueue=100, start=150, complete=400)
    h = cap.histogram()
    assert h.total == 1
    assert h.sum == 300  # complete - enqueue, queueing delay included


def test_capture_record_retention_is_bounded():
    m = Metrics()
    cap = RequestCapture(m, series="rr", keep_records=True, max_records=2)
    for i in range(5):
        cap.observe(i, i, i + 10, tenant="t0")
    assert len(cap.records) == 2
    assert cap.evicted == 3
    assert cap.histogram().total == 5  # histogram never loses counts
    rec = cap.records[0]
    assert (rec.latency, rec.service, rec.queue_delay) == (10, 10, 0)


def test_latency_tables_ride_metrics_snapshot_and_scale():
    m = Metrics()
    m.record_latency("svc", 5000, n=3)
    snap = m.snapshot()
    assert ("svc", bucket_index(5000)) in snap["latency"]
    # the fast-forward macro-event shape: one epoch's snapshot-diff
    # delta applied n-fold must be integer-exact
    clone = m.copy()
    delta = {t: dict(entries) for t, entries in snap.items()}
    clone.apply_scaled(delta, 4)
    h = clone.latency_histogram("svc")
    assert h.total == 15  # 3 + 3*4: integer-exact scaling
    assert h.sum == 5000 * 15
    assert m.latency_histogram("svc").total == 3  # original untouched


# ----------------------------------------------------------------------
# Edge cases: empty and single-bucket histograms (the generator sweep's
# cross-arch bugfix pass pinned these).
# ----------------------------------------------------------------------
def test_single_bucket_percentiles_are_the_bucket():
    h = Histogram()
    h.record(100, n=5)
    lo = bucket_lo(bucket_index(100))
    assert h.percentile(0) == h.percentile(50.0) == h.percentile(100.0) == lo
    assert h.count_above(lo - 1) == 5
    assert h.count_above(lo) == 0  # boundary bucket never counted


def test_empty_count_above_is_zero_not_phantom():
    h = Histogram()
    assert h.count_above(0) == 0
    assert len(h) == 0
    assert h.snapshot() == {}


def test_merge_with_empty_is_identity_both_ways():
    h = Histogram()
    for v in (3, 70, 9_000):
        h.record(v)
    into_empty = Histogram().merge(h)
    assert (into_empty.counts, into_empty.total, into_empty.sum) == (
        h.counts,
        h.total,
        h.sum,
    )
    merged = h.copy().merge(Histogram())
    assert (merged.counts, merged.total, merged.sum) == (h.counts, h.total, h.sum)


def test_merge_of_two_empties_stays_empty_and_queryable_errors():
    merged = Histogram().merge(Histogram())
    assert merged.total == 0
    with pytest.raises(ValueError):
        merged.percentile(99.0)


def test_exact_percentile_singleton_every_p():
    for p in (0, 50, 99, 99.9, 100):
        assert exact_percentile([7], p) == 7


def test_percentile_table_skips_empty_series():
    """p99 of an empty tenant series must not divide by zero: the table
    renderer drops series with no samples instead of querying them."""
    from repro.cluster.telemetry import percentile_table
    from repro.metrics import Metrics

    m = Metrics()
    table = percentile_table(m, lambda series: "virtio")
    assert table == {}
