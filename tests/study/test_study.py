"""Tests for the head-to-head study harness: spec parsing, variant
configurations, deterministic digests, and the headline comparisons."""

import pytest

from repro.ooh.grants import GrantConflictError
from repro.study import (
    VARIANTS,
    StudySpec,
    run_study,
    scenario_rankings,
    render_study,
    study_cell,
    study_tasks,
    variant_config,
)

#: A trimmed matrix that exercises every scenario family quickly.
TRIMMED = StudySpec(
    name="trimmed",
    variants=("baseline", "ooh"),
    micro_benches=("DevNotify",),
    micro_guest_hvs=("kvm",),
    micro_iterations=5,
    app_names=(),
    migration=False,
    cluster_hosts=0,
)


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
def test_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown study spec keys"):
        StudySpec.from_dict({"name": "x", "bogus": 1})


def test_spec_rejects_unknown_variant_bench_and_hv():
    with pytest.raises(ValueError, match="variant"):
        StudySpec(variants=("baseline", "nope"))
    with pytest.raises(ValueError, match="microbenchmark"):
        StudySpec(micro_benches=("NotABench",))
    with pytest.raises(ValueError, match="guest_hv"):
        StudySpec(micro_guest_hvs=("bhyve",))


def test_spec_from_dict_converts_lists_to_tuples():
    spec = StudySpec.from_dict(
        {"name": "t", "variants": ["dvh"], "micro_benches": ["Hypercall"]}
    )
    assert spec.variants == ("dvh",)
    assert spec.micro_benches == ("Hypercall",)


def test_example_spec_file_parses():
    spec = StudySpec.from_file("examples/study_matrix.json")
    assert spec.name == "example"
    assert spec.variants == VARIANTS


# ----------------------------------------------------------------------
# Variant configurations
# ----------------------------------------------------------------------
def test_every_variant_installs_the_ooh_layer():
    for variant in VARIANTS:
        config = variant_config(variant)
        assert config.ooh is not None, variant


def test_variant_grants_match_the_design():
    assert not variant_config("baseline").ooh.any_granted
    assert not variant_config("dvh").ooh.any_granted
    assert variant_config("ooh").ooh.dirty_ring
    assert variant_config("dvh+ooh").ooh.names() == ("dirty_logging",)


def test_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown study variant"):
        variant_config("hybrid")


def test_dvh_plus_full_grants_would_collide():
    """Why dvh+ooh carries only dirty_logging: the timer/IPI grants
    collide with the DVH ownership claims at build time."""
    from dataclasses import replace

    from repro.hv.stack import build_stack
    from repro.ooh.grants import GrantSet

    config = variant_config("dvh+ooh")
    with pytest.raises(GrantConflictError):
        build_stack(replace(config, ooh=GrantSet.full()))


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_tasks_are_plain_tuples_in_report_order():
    tasks = study_tasks(TRIMMED, seed=3)
    assert tasks == [
        ("micro", "baseline", "kvm", "DevNotify", 5, 3),
        ("micro", "ooh", "kvm", "DevNotify", 5, 3),
    ]


def test_digest_identical_across_jobs_and_fast_forward():
    serial = run_study(TRIMMED, seed=3, jobs=1)
    fanned = run_study(TRIMMED, seed=3, jobs=2)
    stepped = run_study(TRIMMED, seed=3, jobs=1, fast_forward=False)
    assert serial.digest == fanned.digest == stepped.digest
    assert serial.rows == fanned.rows == stepped.rows
    assert serial.to_json()["digest"] == serial.digest


# ----------------------------------------------------------------------
# Headline comparisons (the study's acceptance criteria)
# ----------------------------------------------------------------------
def test_dvh_beats_ooh_on_the_io_path():
    dvh = study_cell(("micro", "dvh", "kvm", "DevNotify", 5, 0))
    ooh = study_cell(("micro", "ooh", "kvm", "DevNotify", 5, 0))
    assert dvh["cycles"] < ooh["cycles"]


def test_ooh_beats_dvh_on_dirty_tracking_migration():
    dvh = study_cell(("migration", "dvh", 0))
    ooh = study_cell(("migration", "ooh", 0))
    assert ooh["dirty_tracking_cycles"] < dvh["dirty_tracking_cycles"]
    assert ooh["dirty_mode"] == "dirty_ring"
    assert dvh["dirty_mode"] == "forwarded"


def test_cluster_cell_reconciles_grants_per_tenant():
    ooh = study_cell(("cluster", "ooh", 2, 0))
    baseline = study_cell(("cluster", "baseline", 2, 0))
    assert ooh["outcome"] == baseline["outcome"] == "ok"
    assert ooh["pages_granted"] > 0 and ooh["pages_forwarded"] == 0
    assert baseline["pages_forwarded"] > 0 and baseline["pages_granted"] == 0
    assert ooh["dirty_tracking_cycles"] < baseline["dirty_tracking_cycles"]
    # The migration itself is identical — only tracking pricing differs.
    assert ooh["fabric_migration_bytes"] == baseline["fabric_migration_bytes"]


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def test_report_ranks_and_renders():
    result = run_study(TRIMMED, seed=3, jobs=1)
    rankings = scenario_rankings(result)
    ranked = rankings["micro/kvm/DevNotify"]
    assert [v for v, _ in ranked] == ["baseline", "ooh"] or [
        v for v, _ in ranked
    ] == ["ooh", "baseline"]
    text = render_study(result)
    assert result.digest[:16] in text
    assert "DevNotify" in text
    assert "headline" in text
