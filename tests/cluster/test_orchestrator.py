"""Cross-host live migration: the §3.6 asymmetry over a real fabric."""

import pytest

from repro.cluster import Cluster, FabricChannel, TenantSpec
from repro.core.migration import MigrationError, MigrationNotSupported
from repro.faults.plan import FaultClass, FaultPlan, FaultSpec


def two_hosts(seed=0, fault_plan=None):
    return Cluster(
        num_hosts=2, seed=seed, policy="spread", fault_plan=fault_plan
    )


def other_host(cluster, tenant_name):
    src = cluster.host_of(tenant_name)
    return [h for h in cluster.hosts if h.name != src.name][0]


def test_vp_tenant_migrates_within_downtime_limit():
    cluster = two_hosts()
    cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
    dst = other_host(cluster, "t")
    record = cluster.migrate("t", dst.name, downtime_limit_s=0.5)
    assert record.outcome == "ok"
    assert record.result.downtime_s < 0.5
    assert record.result.bytes_transferred > 0
    # The tenant moved: source books cleared, destination charged.
    assert cluster.host_of("t").name == dst.name
    assert cluster.tenants()["t"].migrations == 1


def test_virtio_tenant_migrates_too():
    cluster = two_hosts()
    cluster.place(TenantSpec(name="t", io_model="virtio", memory_gb=8))
    dst = other_host(cluster, "t")
    record = cluster.migrate("t", dst.name)
    assert record.outcome == "ok"
    assert record.result.rounds >= 1


def test_passthrough_tenant_refuses_migration():
    cluster = two_hosts()
    cluster.place(TenantSpec(name="t", io_model="passthrough", memory_gb=8))
    dst = other_host(cluster, "t")
    with pytest.raises(MigrationNotSupported):
        cluster.migrate("t", dst.name)
    # Nothing moved, not a byte of pre-copy traffic was sent.
    assert cluster.host_of("t").name != dst.name
    assert cluster.fabric.metrics.cross_host_bytes("migration") == 0
    assert cluster.orchestrator.records[-1].outcome == "unsupported"


def test_migration_traffic_consumes_fabric_bandwidth():
    """Dirty-page pre-copy is visible in the cross_host table and equals
    what LiveMigration reports moving."""
    cluster = two_hosts()
    cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
    record = cluster.migrate("t", other_host(cluster, "t").name)
    src, dst = record.src, record.dst
    metered = cluster.fabric.metrics.cross_host[(src, dst, "migration")]
    assert metered == record.result.bytes_transferred
    assert cluster.fabric.port(src).bytes_carried["out"] >= metered


def test_dirtying_workload_forces_precopy_rounds():
    # A downtime target tighter than the steady-state dirty set's fabric
    # transfer time keeps the convergence check (judged against actual
    # fabric bandwidth since the channel-aware fix) refusing to stop.
    cluster = two_hosts()
    cluster.place(
        TenantSpec(name="t", io_model="vp", memory_gb=8, dirty_pages=256)
    )
    record = cluster.migrate(
        "t", other_host(cluster, "t").name, downtime_target_s=1e-4
    )
    assert record.result.rounds >= 2


def test_partition_retries_then_succeeds_after_window():
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.FABRIC_PARTITION,
                start=0,
                end=50_000_000,
                mechanisms=("host1",),
            )
        ]
    )
    cluster = two_hosts(seed=3, fault_plan=plan)
    cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
    record = cluster.migrate("t", other_host(cluster, "t").name)
    assert record.outcome == "ok"
    # The orchestrator (whole-migration) or channel (chunk) level had to
    # retry at least once to get through.
    assert record.attempts > 1 or record.result.retries > 0
    assert cluster.sim.now >= 50_000_000


def test_permanent_partition_fails_after_retry_budget():
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.FABRIC_PARTITION,
                start=0,
                end=None,
                mechanisms=("host1",),
            )
        ]
    )
    cluster = two_hosts(seed=3, fault_plan=plan)
    cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
    with pytest.raises(MigrationError):
        cluster.migrate("t", other_host(cluster, "t").name)
    record = cluster.orchestrator.records[-1]
    assert record.outcome == "failed"
    assert record.attempts == 3
    # The tenant never moved.
    assert cluster.host_of("t").name == record.src


def test_degraded_fabric_slows_migration():
    def run(plan):
        cluster = two_hosts(seed=5, fault_plan=plan)
        cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
        return cluster.migrate("t", other_host(cluster, "t").name).result

    clean = run(None)
    degraded = run(
        FaultPlan([FaultSpec(kind=FaultClass.FABRIC_DEGRADE, param=0.25)])
    )
    assert degraded.total_s > 2 * clean.total_s


def test_fabric_channel_estimator_matches_actual_uncontended_transfer():
    cluster = two_hosts()
    channel = FabricChannel(cluster.fabric, "host0", "host1")
    nbytes = 4 << 20

    start = cluster.sim.now

    def proc():
        yield from channel.transfer(nbytes)

    cluster.sim.run_process(proc())
    actual = cluster.sim.now - start
    estimate = channel.transfer_cycles(nbytes)
    # Chunks pipeline on the wire, so the estimate (sequential frames)
    # bounds the actual from above, within a small factor.
    assert actual <= estimate
    assert estimate < 3 * actual


def test_evacuate_moves_movable_tenants_and_leaves_coupled_ones():
    cluster = Cluster(num_hosts=3, seed=0, policy="spread")
    cluster.place(TenantSpec(name="a", io_model="vp", memory_gb=8))
    cluster.place(TenantSpec(name="b", io_model="virtio", memory_gb=8))
    cluster.place(TenantSpec(name="c", io_model="passthrough", memory_gb=8))
    # Put everything on host0 for a clean evacuation scenario.
    for name in ("a", "b", "c"):
        if cluster.host_of(name).name != "host0":
            tenant = cluster.host_of(name).evict(name)
            cluster.host("host0").adopt(tenant)
    records = cluster.orchestrator.evacuate("host0")
    outcomes = {r.tenant: r.outcome for r in records}
    assert outcomes["a"] == "ok"
    assert outcomes["b"] == "ok"
    assert outcomes["c"] == "unsupported"
    assert sorted(cluster.host("host0").tenants) == ["c"]


def test_migrate_to_same_host_rejected():
    cluster = two_hosts()
    cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
    with pytest.raises(ValueError, match="already on"):
        cluster.migrate("t", cluster.host_of("t").name)


def test_bin_pack_evacuation_never_picks_the_source():
    """Regression: evacuate used to hand bin-pack the full host list,
    and bin-pack ranks the fullest host first — the host being drained.
    Destinations must come from the placement policy with the source
    excluded."""
    cluster = Cluster(num_hosts=3, seed=0, policy="bin-pack")
    # Bin-pack consolidates: all tenants land on one host.
    for i in range(3):
        cluster.place(TenantSpec(name=f"t{i}", io_model="vp", memory_gb=8))
    src = cluster.host_of("t0")
    assert all(cluster.host_of(f"t{i}").name == src.name for i in range(3))
    records = cluster.orchestrator.evacuate(src.name)
    assert len(records) == 3
    for record in records:
        assert record.outcome == "ok"
        assert record.dst != src.name
        assert cluster.host_of(record.tenant).name == record.dst
    assert cluster.host(src.name).tenants == {}


def test_evacuate_respects_extra_excludes():
    cluster = Cluster(num_hosts=3, seed=0, policy="spread")
    cluster.place(TenantSpec(name="t", io_model="vp", memory_gb=8))
    src = cluster.host_of("t")
    others = [h.name for h in cluster.hosts if h.name != src.name]
    records = cluster.orchestrator.evacuate(src.name, exclude={others[0]})
    assert records[0].outcome == "ok"
    assert records[0].dst == others[1]
