"""Placement policies and host capacity accounting."""

import pytest

from repro.cluster import Cluster, PlacementError, TenantSpec, make_policy
from repro.cluster.placement import POLICIES
from repro.hw.machine import GB


def test_policy_registry_and_unknown_name():
    assert set(POLICIES) == {"bin-pack", "spread", "load-balance"}
    with pytest.raises(ValueError, match="unknown placement policy"):
        make_policy("round-robin")


def test_spread_places_on_emptiest_host():
    cluster = Cluster(num_hosts=3, seed=0, policy="spread")
    for i in range(6):
        cluster.place(TenantSpec(name=f"t{i}", memory_gb=4))
    assert [len(h.tenants) for h in cluster.hosts] == [2, 2, 2]


def test_bin_pack_fills_one_host_first():
    cluster = Cluster(num_hosts=3, seed=0, policy="bin-pack")
    for i in range(4):
        cluster.place(TenantSpec(name=f"t{i}", memory_gb=4))
    counts = sorted(len(h.tenants) for h in cluster.hosts)
    assert counts == [0, 0, 4]


def test_bin_pack_spills_when_full():
    cluster = Cluster(num_hosts=2, seed=0, policy="bin-pack")
    # Host RAM is 192 GB; two 100 GB tenants cannot share one host.
    cluster.place(TenantSpec(name="big0", memory_gb=100))
    cluster.place(TenantSpec(name="big1", memory_gb=100))
    assert cluster.host_of("big0").name != cluster.host_of("big1").name


def test_load_balance_levels_cycle_load():
    cluster = Cluster(num_hosts=2, seed=0, policy="load-balance")
    cluster.place(TenantSpec(name="hot", memory_gb=4, load=10_000))
    cluster.place(TenantSpec(name="cold1", memory_gb=4, load=100))
    cluster.place(TenantSpec(name="cold2", memory_gb=4, load=100))
    hot_host = cluster.host_of("hot")
    assert cluster.host_of("cold1").name != hot_host.name
    assert cluster.host_of("cold2").name != hot_host.name


def test_placement_error_when_nothing_fits():
    cluster = Cluster(num_hosts=2, seed=0)
    with pytest.raises(PlacementError):
        cluster.place(TenantSpec(name="huge", memory_gb=1000))


def test_capacity_accounting_tracks_admit_and_evict():
    cluster = Cluster(num_hosts=1, seed=0)
    host = cluster.hosts[0]
    free_before = host.mem_free
    cluster.place(TenantSpec(name="a", memory_gb=8))
    assert host.mem_committed == 8 * GB
    assert host.mem_free == free_before - 8 * GB
    host.evict("a")
    assert host.mem_committed == 0
    assert host.mem_free == free_before


def test_ties_break_by_host_name():
    cluster = Cluster(num_hosts=3, seed=0, policy="spread")
    cluster.place(TenantSpec(name="first", memory_gb=4))
    assert cluster.host_of("first").name == "host0"


def test_tenant_spec_validation():
    with pytest.raises(ValueError, match="io_model"):
        TenantSpec(name="x", io_model="sr-iov")
    with pytest.raises(ValueError, match="memory_gb"):
        TenantSpec(name="x", memory_gb=0)
