"""The deterministic fleet latency model (cluster/telemetry.py)."""

from repro.cluster.host import TENANT_PASSTHROUGH, TENANT_VIRTIO, TENANT_VP
from repro.cluster.sweep import run_demo
from repro.cluster.telemetry import (
    BROWNOUT_MULT,
    DEGRADED_MULT,
    tenant_request_cycles,
)


def test_io_model_ordering_holds_at_any_load():
    for load in (0, 4000, 11_000):
        v = tenant_request_cycles(TENANT_VIRTIO, "t", 1, load, 12_000)
        p = tenant_request_cycles(TENANT_VP, "t", 1, load, 12_000)
        pt = tenant_request_cycles(TENANT_PASSTHROUGH, "t", 1, load, 12_000)
        assert v > p > pt > 0


def test_contention_grows_with_load():
    idle = tenant_request_cycles(TENANT_VP, "t", 1, 0, 12_000)
    half = tenant_request_cycles(TENANT_VP, "t", 1, 6_000, 12_000)
    full = tenant_request_cycles(TENANT_VP, "t", 1, 12_000, 12_000)
    assert idle < half < full
    assert full > 3 * idle  # quadratic contention triples the base


def test_brownout_and_degradation_multipliers():
    base = tenant_request_cycles(TENANT_VP, "t", 7, 0, 12_000)
    mig = tenant_request_cycles(TENANT_VP, "t", 7, 0, 12_000, migrating=True)
    deg = tenant_request_cycles(TENANT_VP, "t", 7, 0, 12_000, degraded=True)
    # jitter is a hash of (name, tick), identical across the calls, so
    # the multipliers show through within the jitter-scaled remainder
    assert mig > (BROWNOUT_MULT - 1) * base
    assert deg > (DEGRADED_MULT - 1) * base


def test_jitter_is_pure_hash_no_rng():
    a = tenant_request_cycles(TENANT_VP, "t0", 3, 100, 12_000)
    b = tenant_request_cycles(TENANT_VP, "t0", 3, 100, 12_000)
    assert a == b
    assert a != tenant_request_cycles(TENANT_VP, "t0", 4, 100, 12_000)


def test_demo_slo_summary_has_percentiles():
    summary = run_demo(seed=0, slo=True)
    table = summary["tenant_percentiles"]
    assert set(table) == {f"t{i}" for i in range(6)}
    models = {row["io_model"] for row in table.values()}
    assert models == {TENANT_VIRTIO, TENANT_VP, TENANT_PASSTHROUGH}
    again = run_demo(seed=0, slo=True)
    assert again["tenant_percentiles"] == table
    # slo sampling never perturbs the simulated run itself
    off = run_demo(seed=0, slo=False)
    assert off["trace"] == summary["trace"]
    assert "tenant_percentiles" not in off
