"""The ``python -m repro cluster`` subcommands."""

import json

import pytest

from repro.cli import build_parser, main


def test_cluster_requires_mode():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["cluster"])


def test_cluster_migrate_vp(capsys):
    assert main(["cluster", "migrate", "--io", "vp"]) == 0
    out = capsys.readouterr().out
    assert "migrated tenant0 (vp)" in out
    assert "downtime" in out
    assert "fabric migration bytes" in out


def test_cluster_migrate_passthrough_refused(capsys):
    assert main(["cluster", "migrate", "--io", "passthrough"]) == 1
    out = capsys.readouterr().out
    assert "hardware-coupled" in out


def test_cluster_migrate_json(capsys):
    assert main(["cluster", "migrate", "--io", "vp", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["migrations"][0]["outcome"] == "ok"
    assert summary["fabric"]["migration_bytes"] > 0
    assert "digest" in summary


def test_cluster_demo(capsys):
    assert main(
        ["cluster", "demo", "--hosts", "2", "--tenants", "4"]
    ) == 0
    out = capsys.readouterr().out
    assert "cluster up hosts=2" in out
    assert "migrations:" in out


def test_cluster_demo_seed_threads_through(capsys):
    """--seed before or after the subcommand, same bytes out."""
    assert main(["--seed", "9", "cluster", "demo", "--hosts", "2",
                 "--tenants", "3", "--json"]) == 0
    first = capsys.readouterr().out
    assert main(["cluster", "demo", "--hosts", "2", "--tenants", "3",
                 "--seed", "9", "--json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert json.loads(first)["seed"] == 9


def test_cluster_demo_with_fabric_faults(capsys):
    assert main(
        ["cluster", "demo", "--hosts", "2", "--tenants", "3",
         "--faults", "fabric_degrade", "--json", "--seed", "2"]
    ) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["fabric"]["migration_bytes"] > 0


def test_cluster_sweep(capsys):
    assert main(["cluster", "sweep", "--tenants", "3"]) == 0
    out = capsys.readouterr().out
    assert "bin-pack" in out and "spread" in out and "load-balance" in out


def test_cluster_sweep_json_serial_vs_jobs_identical(capsys):
    assert main(["cluster", "sweep", "--tenants", "3", "--json",
                 "--seed", "4"]) == 0
    serial = capsys.readouterr().out
    assert main(["cluster", "sweep", "--tenants", "3", "--json",
                 "--seed", "4", "--jobs", "4"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel
    rows = json.loads(serial)
    assert len(rows) == 6  # 3 policies x 2 host counts
