"""Direct tests of repro.cluster.placement: key functions, tie-breaks,
error paths — no Cluster scaffolding, just lazy hosts and policies."""

import pytest

from repro.cluster.host import LOAD_PER_WORKER, ClusterHost, TenantSpec
from repro.cluster.placement import (
    BinPackPolicy,
    LoadBalancePolicy,
    PlacementError,
    SpreadPolicy,
    make_policy,
)
from repro.sim import Simulator, default_costs


def lazy_hosts(names):
    """Hosts that never boot a stack — placement sees only bookkeeping."""
    sim = Simulator(seed=0)
    costs = default_costs()
    return [ClusterHost(n, sim, costs, lazy=True) for n in names]


def charge(host, name, memory_gb=4, load=1_000):
    host.tenants[name] = _FakeTenant(
        TenantSpec(name=name, memory_gb=memory_gb, load=load)
    )


class _FakeTenant:
    """Just enough of a Tenant for capacity accounting."""

    def __init__(self, spec):
        self.spec = spec
        self.memory_bytes = spec.memory_gb << 30


# ----------------------------------------------------------------------
# Tie-breaks: equal keys must resolve by host name, not input order
# ----------------------------------------------------------------------
def test_bin_pack_tie_breaks_by_name():
    hosts = lazy_hosts(["hz", "ha", "hm"])
    # All empty: -mem_committed is 0 everywhere, name decides.
    pick = BinPackPolicy().choose(hosts, TenantSpec(name="t"))
    assert pick.name == "ha"
    # Reversed input order, same answer.
    pick = BinPackPolicy().choose(list(reversed(hosts)), TenantSpec(name="t"))
    assert pick.name == "ha"


def test_spread_tie_breaks_by_name():
    hosts = lazy_hosts(["hz", "ha", "hm"])
    for h in hosts:
        charge(h, f"pre-{h.name}")  # one tenant each: equal keys
    pick = SpreadPolicy().choose(hosts, TenantSpec(name="t"))
    assert pick.name == "ha"
    pick = SpreadPolicy().choose(list(reversed(hosts)), TenantSpec(name="t"))
    assert pick.name == "ha"


def test_load_balance_tie_breaks_by_name():
    hosts = lazy_hosts(["hz", "ha", "hm"])
    for h in hosts:
        charge(h, f"pre-{h.name}", load=500)  # equal cycle load
    pick = LoadBalancePolicy().choose(hosts, TenantSpec(name="t"))
    assert pick.name == "ha"
    pick = LoadBalancePolicy().choose(
        list(reversed(hosts)), TenantSpec(name="t")
    )
    assert pick.name == "ha"


# ----------------------------------------------------------------------
# Keys actually rank (not just tie-break)
# ----------------------------------------------------------------------
def test_bin_pack_prefers_fullest_feasible():
    a, b = lazy_hosts(["a", "b"])
    charge(b, "big", memory_gb=32)
    pick = BinPackPolicy().choose([a, b], TenantSpec(name="t", memory_gb=4))
    assert pick.name == "b"


def test_load_balance_prefers_coldest():
    a, b = lazy_hosts(["a", "b"])
    charge(a, "hot", load=9_000)
    charge(b, "cold", load=100)
    pick = LoadBalancePolicy().choose([a, b], TenantSpec(name="t"))
    assert pick.name == "b"


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_placement_error_when_no_host_fits_memory():
    hosts = lazy_hosts(["a", "b"])
    with pytest.raises(PlacementError, match="no host fits"):
        BinPackPolicy().choose(hosts, TenantSpec(name="t", memory_gb=10_000))


def test_placement_error_on_empty_host_list():
    with pytest.raises(PlacementError):
        SpreadPolicy().choose([], TenantSpec(name="t"))


def test_make_policy_unknown_name_lists_choices():
    with pytest.raises(ValueError, match="unknown placement policy"):
        make_policy("first-fit")


def test_make_policy_builds_each_registered_policy():
    for name, cls in (
        ("bin-pack", BinPackPolicy),
        ("spread", SpreadPolicy),
        ("load-balance", LoadBalancePolicy),
    ):
        assert isinstance(make_policy(name), cls)


# ----------------------------------------------------------------------
# fits(): memory AND cycle-load headroom (and in-flight reservations)
# ----------------------------------------------------------------------
def test_fits_rejects_on_cycle_load_even_with_memory_free():
    (host,) = lazy_hosts(["a"])
    assert host.load_capacity == 2 * LOAD_PER_WORKER
    charge(host, "hog", memory_gb=1, load=host.load_capacity - 100)
    assert host.mem_free > 0
    assert not host.fits(TenantSpec(name="t", memory_gb=1, load=200))
    assert host.fits(TenantSpec(name="t", memory_gb=1, load=100))


def test_fits_counts_migration_reservations():
    (host,) = lazy_hosts(["a"])
    host.reserve(TenantSpec(name="inbound", memory_gb=4, load=5_000))
    assert host.mem_reserved > 0
    assert not host.fits(
        TenantSpec(name="t", memory_gb=1, load=host.load_capacity - 4_000)
    )
    host.release("inbound")
    assert host.fits(
        TenantSpec(name="t", memory_gb=1, load=host.load_capacity - 4_000)
    )
