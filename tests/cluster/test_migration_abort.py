"""Migration abort paths: a partition may kill a migration in any
phase — round 0, the iterative pre-copy rounds, or stop-and-copy (after
the backends are already paused) — and *every* one of those exits must
leave the tenant clean: CPU dirty log detached, device dirty logging
off, backends running.  Before the teardown fix, a stop-and-copy kill
left the backends paused forever and every retry stacked a fresh dirty
log on top of the leaked one.

The phase-targeted tests exploit determinism: a clean probe run of the
same seed measures when a phase happens, then the real run opens a
fabric partition window at exactly that instant.
"""

import pytest

from repro.cluster import Cluster, TenantSpec
from repro.cluster.orchestrator import FabricChannel
from repro.core.migration import MigrationError
from repro.faults.plan import FaultClass, FaultPlan, FaultSpec
from repro.hv.virtio_backend import HostVhost


def two_hosts(seed=0, fault_plan=None, num_hosts=2):
    return Cluster(
        num_hosts=num_hosts, seed=seed, policy="spread", fault_plan=fault_plan
    )


def other_host(cluster, tenant_name):
    src = cluster.host_of(tenant_name)
    return [h for h in cluster.hosts if h.name != src.name][0]


def place_vp(cluster, name="t"):
    cluster.place(TenantSpec(name=name, io_model="vp", memory_gb=8))
    return cluster.tenants()[name]


def assert_clean(cluster, tenant_name):
    """No migration-held resource leaked: dirty logs gone, device
    logging off, backends running."""
    tenant = cluster.tenants()[tenant_name]
    host = cluster.host_of(tenant_name)
    assert tenant.vm.memory._dirty_logs == set()
    for device in tenant.devices:
        backend = host.machine.host_hv.backends.get(device)
        if backend is not None:
            assert backend.dirty_log is None
            assert not backend.paused


def partition_plan(start, end):
    return FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.FABRIC_PARTITION,
                start=start,
                end=end,
                mechanisms=("host1",),
            )
        ]
    )


def probe_pause_time(seed=0, **migrate_kwargs):
    """Clean run of the canonical scenario; returns (t_start, t_pause,
    t_end): when the migration began, when stop-and-copy paused the
    backends, and when it all finished.  Deterministic, so the same
    instants recur in a faulted run of the same seed — up to the moment
    the first fault hits."""
    pauses = []
    orig_pause = HostVhost.pause

    def recording_pause(self):
        pauses.append(self.machine.sim.now)
        orig_pause(self)

    HostVhost.pause = recording_pause
    try:
        cluster = two_hosts(seed)
        place_vp(cluster)
        t_start = cluster.sim.now
        cluster.migrate("t", other_host(cluster, "t").name)
        return t_start, pauses[0], cluster.sim.now
    finally:
        HostVhost.pause = orig_pause


# ----------------------------------------------------------------------
# Kill during round 0 (the initial full copy)
# ----------------------------------------------------------------------
def test_round0_kill_retries_and_leaves_clean_state():
    cluster = two_hosts(fault_plan=partition_plan(0, 50_000_000))
    place_vp(cluster)
    record = cluster.migrate("t", other_host(cluster, "t").name)
    assert record.outcome == "ok"
    assert record.attempts > 1  # round-0 attempts died in the window
    assert cluster.host_of("t").name == record.dst
    assert_clean(cluster, "t")


def test_permanent_partition_leaves_no_stacked_logs():
    """Three attempts, three MigrationErrors — and zero leaked logs or
    paused backends afterwards (the old code left three stacked logs)."""
    cluster = two_hosts(fault_plan=partition_plan(0, None))
    place_vp(cluster)
    with pytest.raises(MigrationError):
        cluster.migrate("t", other_host(cluster, "t").name)
    record = cluster.orchestrator.records[-1]
    assert record.outcome == "failed"
    assert record.attempts == 3
    assert cluster.host_of("t").name == record.src  # never moved
    assert_clean(cluster, "t")


# ----------------------------------------------------------------------
# Kill during the iterative pre-copy rounds
# ----------------------------------------------------------------------
def test_iterative_round_kill_leaves_clean_state():
    # In the clean probe the migration converges after round 0, so
    # t_pause marks the end of the initial full copy.  With a tight
    # downtime target the channel-aware convergence check refuses to
    # stop there and keeps iterating — a window opening shortly *after*
    # t_pause lands inside those iterative re-copy rounds.
    t_start, t_pause, _t_end = probe_pause_time()
    mid_iterative = t_pause + (t_pause - t_start) // 10
    cluster = two_hosts(fault_plan=partition_plan(mid_iterative, None))
    place_vp(cluster)
    with pytest.raises(MigrationError):
        cluster.migrate(
            "t", other_host(cluster, "t").name, downtime_target_s=1e-4
        )
    assert cluster.orchestrator.records[-1].outcome == "failed"
    assert_clean(cluster, "t")


# ----------------------------------------------------------------------
# Kill during stop-and-copy (backends already paused — the key leak)
# ----------------------------------------------------------------------
def test_stop_and_copy_kill_resumes_backends():
    _start, t_pause, _end = probe_pause_time()
    cluster = two_hosts(fault_plan=partition_plan(t_pause + 1, None))
    place_vp(cluster)
    with pytest.raises(MigrationError):
        cluster.migrate("t", other_host(cluster, "t").name)
    # The first attempt died with the backends paused; teardown must
    # have resumed them, and no retry may find a stale log.
    assert_clean(cluster, "t")


def test_stop_and_copy_kill_then_retry_succeeds():
    _start, t_pause, _end = probe_pause_time()
    # Window long enough to exhaust attempt 1's chunk-retry budget
    # (~19M cycles of backoff), short enough that attempt 2 gets through.
    cluster = two_hosts(fault_plan=partition_plan(t_pause + 1, t_pause + 30_000_000))
    place_vp(cluster)
    record = cluster.migrate("t", other_host(cluster, "t").name)
    assert record.outcome == "ok"
    assert record.attempts > 1 or record.result.retries > 0
    assert cluster.host_of("t").name == record.dst
    assert_clean(cluster, "t")


# ----------------------------------------------------------------------
# Chunk retries carried across attempts (the dropped-retries bug)
# ----------------------------------------------------------------------
def test_chunk_retries_carried_across_attempts(monkeypatch):
    created = []
    orig_init = FabricChannel.__init__

    def recording_init(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)
        created.append(self)

    monkeypatch.setattr(FabricChannel, "__init__", recording_init)
    cluster = two_hosts(fault_plan=partition_plan(0, 50_000_000))
    place_vp(cluster)
    record = cluster.migrate("t", other_host(cluster, "t").name)
    assert record.outcome == "ok"
    assert record.attempts > 1
    assert len(created) == record.attempts  # one fresh channel each
    # The recorded total is the sum over every attempt's channel — the
    # old code reported only the last channel's count, dropping the
    # failed attempts' chunk retries.
    assert record.result.retries == sum(c.retries for c in created)
    assert sum(c.retries for c in created[:-1]) > 0


# ----------------------------------------------------------------------
# Evacuation under a fabric fault plan
# ----------------------------------------------------------------------
def test_evacuate_under_fault_plan_moves_tenants_cleanly():
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.FABRIC_PARTITION,
                start=0,
                end=40_000_000,
                mechanisms=("host1",),
            ),
            FaultSpec(kind=FaultClass.FABRIC_DEGRADE, param=0.5),
        ]
    )
    cluster = two_hosts(num_hosts=3, fault_plan=plan)
    cluster.place(TenantSpec(name="a", io_model="vp", memory_gb=8))
    cluster.place(TenantSpec(name="b", io_model="virtio", memory_gb=8))
    for name in ("a", "b"):
        if cluster.host_of(name).name != "host0":
            tenant = cluster.host_of(name).evict(name)
            cluster.host("host0").adopt(tenant)
    records = cluster.orchestrator.evacuate("host0")
    outcomes = {r.tenant: r.outcome for r in records}
    assert outcomes == {"a": "ok", "b": "ok"}
    assert cluster.host("host0").tenants == {}
    for name in ("a", "b"):
        assert_clean(cluster, name)
