"""Fabric: topology, serialization, metering, fault windows."""

import pytest

from repro.cluster.fabric import Fabric, FabricFrame, UndeliverableError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultClass, FaultPlan, FaultSpec
from repro.sim import Simulator, default_costs


def make_fabric(num_hosts=2, seed=0):
    sim = Simulator(seed=seed)
    fabric = Fabric(sim, default_costs())
    for i in range(num_hosts):
        fabric.attach(f"host{i}")
    return sim, fabric


def test_attach_rejects_duplicates_and_unknown_port():
    _sim, fabric = make_fabric()
    with pytest.raises(ValueError):
        fabric.attach("host0")
    with pytest.raises(UndeliverableError):
        fabric.port("nope")


def test_send_delivers_and_meters_cross_host_bytes():
    sim, fabric = make_fabric()
    got = []
    fabric.port("host1").receiver = got.append
    fabric.send(
        FabricFrame(src="host0", dst="host1", kind="net", size=1 << 20)
    )
    sim.run()
    assert [f.size for f in got] == [1 << 20]
    assert fabric.metrics.cross_host[("host0", "host1", "net")] == 1 << 20
    assert fabric.metrics.cross_host_bytes("net") == 1 << 20
    assert fabric.metrics.cross_host_bytes("migration") == 0
    assert fabric.port("host0").frames["tx"] == 1
    assert fabric.port("host1").frames["rx"] == 1


def test_delivery_takes_two_serializations_plus_latencies():
    sim, fabric = make_fabric()
    size = 1 << 20
    done = []
    fabric.port("host1").receiver = lambda f: done.append(sim.now)
    fabric.send(FabricFrame(src="host0", dst="host1", kind="net", size=size))
    sim.run()
    assert done == [fabric.frame_cycles(size)]


def test_uplink_contention_queues_frames():
    """Two frames out of the same host serialize back to back on the
    shared uplink: the second arrives one serialization later."""
    sim, fabric = make_fabric()
    size = 1 << 20
    arrivals = []
    fabric.port("host1").receiver = lambda f: arrivals.append(sim.now)
    for _ in range(2):
        fabric.send(
            FabricFrame(src="host0", dst="host1", kind="net", size=size)
        )
    sim.run()
    serialization = int(size * 8 / fabric.costs.fabric_bps * sim.freq_hz)
    assert arrivals[1] - arrivals[0] == serialization


def test_transfer_blocks_until_delivery():
    sim, fabric = make_fabric()

    def proc():
        result = yield from fabric.transfer(
            "host0", "host1", 4096, kind="control"
        )
        return (sim.now, result.size)

    when, size = sim.run_process(proc())
    assert size == 4096
    assert when == fabric.frame_cycles(4096)


def _partition_plan(host, start=0, end=10**9):
    return FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.FABRIC_PARTITION,
                start=start,
                end=end,
                mechanisms=(host,),
            )
        ]
    )


def test_partition_blocks_targeted_host_only():
    sim, fabric = make_fabric(num_hosts=3)
    FaultInjector(fabric, _partition_plan("host1"), seed=1).attach()
    assert fabric.link_blocked("host1")
    assert not fabric.link_blocked("host2")
    assert fabric.path_blocked("host0", "host1")
    assert not fabric.path_blocked("host0", "host2")

    def proc():
        yield from fabric.transfer("host0", "host1", 4096, kind="net")

    with pytest.raises(UndeliverableError):
        sim.run_process(proc())


def test_partition_window_expires():
    sim, fabric = make_fabric()
    FaultInjector(fabric, _partition_plan("host1", end=1000), seed=1).attach()
    assert fabric.path_blocked("host0", "host1")
    sim.run(until=2000)
    assert not fabric.path_blocked("host0", "host1")


def test_host_loss_mid_flight_triggers_notify_with_none():
    """A frame already on the wire when its destination dies is counted
    undeliverable and the blocking transfer raises."""
    size = 1 << 20
    sim, fabric = make_fabric()
    # Lose host1 after the frame is launched but before it lands.
    plan = FaultPlan(
        [
            FaultSpec(
                kind=FaultClass.FABRIC_HOST_LOSS,
                start=100,
                end=10**9,
                mechanisms=("host1",),
            )
        ]
    )
    FaultInjector(fabric, plan, seed=1).attach()

    def proc():
        yield from fabric.transfer("host0", "host1", size, kind="migration")

    with pytest.raises(UndeliverableError, match="lost in flight"):
        sim.run_process(proc())
    assert fabric.undeliverable == 1
    assert fabric.metrics.cross_host_bytes() == 0


def test_degrade_stretches_serialization():
    sim1, fabric1 = make_fabric()
    arrivals1 = []
    fabric1.port("host1").receiver = lambda f: arrivals1.append(sim1.now)
    fabric1.send(FabricFrame(src="host0", dst="host1", kind="net", size=1 << 20))
    sim1.run()

    sim2, fabric2 = make_fabric()
    plan = FaultPlan([FaultSpec(kind=FaultClass.FABRIC_DEGRADE, param=0.25)])
    FaultInjector(fabric2, plan, seed=1).attach()
    assert fabric2.bandwidth_factor() == 0.25
    arrivals2 = []
    fabric2.port("host1").receiver = lambda f: arrivals2.append(sim2.now)
    fabric2.send(FabricFrame(src="host0", dst="host1", kind="net", size=1 << 20))
    sim2.run()
    # 4x less bandwidth ~= 4x the serialization (latency terms equal).
    assert arrivals2[0] > 3 * arrivals1[0]
    # Goodput metering is unchanged: the tenant still got its bytes.
    assert fabric2.metrics.cross_host_bytes("net") == 1 << 20


def test_fabric_injector_records_fault_metrics():
    sim, fabric = make_fabric()
    injector = FaultInjector(fabric, _partition_plan("host0"), seed=3).attach()
    assert fabric.link_blocked("host0")
    assert injector.injected[FaultClass.FABRIC_PARTITION] == 1
    assert fabric.metrics.faults[FaultClass.FABRIC_PARTITION] == 1
