"""Property tests for fault-injection determinism.

Two properties the whole subsystem rests on:

* same seed => byte-identical outcome, for any plan/stack drawn from the
  fuzzer's space;
* a zero-fault plan is the identity: runs with an empty-plan injector
  attached are byte-identical to runs with no injector at all.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultClass,
    FaultInjector,
    FaultPlan,
    build_faulted_stack,
    run_fault_workload,
    state_digest,
)
from repro.faults.fuzz import FUZZ_CLASSES
from repro.hv.stack import StackConfig, build_stack

CONFIGS = [
    StackConfig(levels=1, io_model="virtio", workers=2),
    StackConfig(levels=2, io_model="virtio", workers=2),
    StackConfig(levels=2, io_model="passthrough", workers=2),
]


@settings(max_examples=10, deadline=None)
@given(
    plan_seed=st.integers(min_value=0, max_value=2**20),
    inj_seed=st.integers(min_value=0, max_value=2**20),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
def test_same_seed_byte_identical(plan_seed, inj_seed, config_index):
    digests = []
    for _ in range(2):
        plan = FaultPlan.random(plan_seed, classes=FUZZ_CLASSES, intensity=0.1)
        stack, injector = build_faulted_stack(
            CONFIGS[config_index], plan, seed=inj_seed
        )
        try:
            run_fault_workload(stack, ops_per_worker=10, seed=plan_seed)
        except RuntimeError:
            pass  # a stranded worker must at least strand identically
        digests.append(state_digest(stack, injector))
    assert digests[0] == digests[1]


@settings(max_examples=8, deadline=None)
@given(
    workload_seed=st.integers(min_value=0, max_value=2**20),
    config_index=st.integers(min_value=0, max_value=len(CONFIGS) - 1),
)
def test_zero_fault_plan_is_identity(workload_seed, config_index):
    plain = build_stack(CONFIGS[config_index])
    run_fault_workload(plain, ops_per_worker=10, seed=workload_seed)
    baseline = state_digest(plain)

    faulted = build_stack(CONFIGS[config_index])
    injector = FaultInjector(
        faulted.machine, FaultPlan.empty(), seed=workload_seed + 1
    ).attach(faulted)
    run_fault_workload(faulted, ops_per_worker=10, seed=workload_seed)
    assert state_digest(faulted) == baseline
    assert injector.summary() == {}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**30))
def test_random_plans_always_valid(seed):
    plan = FaultPlan.random(seed)
    assert not plan.is_empty
    for spec in plan:
        assert spec.kind in FaultClass.ALL
        assert 0.0 <= spec.rate <= 1.0
        assert spec.count >= 0
