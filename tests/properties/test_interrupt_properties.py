"""Property tests for LAPIC and posted-interrupt state machines."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hw.lapic import Lapic
from repro.hw.posted import PiDescriptor

vectors = st.integers(min_value=0x20, max_value=0xFE)


@given(st.lists(vectors, min_size=1, max_size=60))
def test_lapic_delivers_every_distinct_vector_once(vs):
    apic = Lapic(0)
    for v in vs:
        apic.set_irr(v)
    delivered = []
    while apic.has_pending():
        delivered.append(apic.ack())
    assert sorted(delivered, reverse=True) == delivered  # priority order
    assert set(delivered) == set(vs)
    assert len(delivered) == len(set(vs))  # coalescing


@given(st.lists(vectors, min_size=1, max_size=60))
def test_lapic_eoi_unwinds_isr_stack(vs):
    apic = Lapic(0)
    for v in vs:
        apic.set_irr(v)
    acked = []
    while apic.has_pending():
        acked.append(apic.ack())
    for expected in reversed(acked):
        assert apic.eoi() == expected
    assert apic.eoi() is None


@given(st.lists(vectors, min_size=1, max_size=50))
def test_pi_descriptor_exactly_one_notification_per_on_cycle(vs):
    pid = PiDescriptor()
    notifications = sum(1 for v in vs if pid.post(v))
    assert notifications == 1  # ON bit set once until synced
    apic = Lapic(0)
    moved = pid.sync_to(apic)
    assert moved == len(set(vs))
    assert apic.irr == set(vs)
    # After sync the next post notifies again.
    assert pid.post(0x21) is True


@given(st.lists(st.tuples(vectors, st.booleans()), min_size=1, max_size=80))
def test_pi_sync_never_loses_vectors(sequence):
    """Arbitrary interleavings of post and sync: every posted vector is
    eventually observable in the IRR (no lost interrupts)."""
    pid = PiDescriptor()
    apic = Lapic(0)
    posted = set()
    for vector, do_sync in sequence:
        pid.post(vector)
        posted.add(vector)
        if do_sync:
            pid.sync_to(apic)
    pid.sync_to(apic)
    assert posted <= apic.irr | set(apic.isr)
