"""System-level property tests: invariants over random configurations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.ops import Op
from repro.workloads.engines import AppResult


# ----------------------------------------------------------------------
# DVH soundness across random feature combinations
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    vp=st.booleans(),
    pi=st.booleans(),
    ipi=st.booleans(),
    timer=st.booleans(),
    idle=st.booleans(),
    levels=st.sampled_from([2, 3]),
)
def test_any_dvh_combination_builds_and_runs(vp, pi, ipi, timer, idle, levels):
    """Every subset of DVH mechanisms yields a working stack whose
    operations complete, never intervene more than vanilla, and always
    produce exactly one exit for a DVH-covered op."""
    dvh = DvhFeatures(
        virtual_passthrough=vp,
        viommu_posted_interrupts=pi,
        virtual_ipi=ipi,
        virtual_timer=timer,
        virtual_idle=idle,
    )
    io = "vp" if vp else "virtio"
    stack = build_stack(StackConfig(levels=levels, io_model=io, dvh=dvh))
    stack.settle()
    ctx = stack.ctx(0)
    before = stack.metrics.copy()
    measured = {}

    def ops():
        yield from ctx.program_timer(ctx.read_tsc() + 10**9)
        yield from ctx.send_ipi(1, 0xFD)
        # Snapshot before the armed timer eventually fires (the fire
        # path has its own delivery costs, measured elsewhere).
        measured["delta"] = stack.metrics.diff(before)

    stack.sim.run_process(ops())
    delta = measured["delta"]
    timer_fwd = sum(
        n for (_l, r, _o), n in delta.forwards.items() if r == "apic_timer"
    )
    ipi_fwd = sum(n for (_l, r, _o), n in delta.forwards.items() if r == "apic_icr")
    # With the mechanism on: zero guest-hypervisor interventions.  With it
    # off: at least one (at L3 the emulating hypervisor's own timer
    # programming forwards again — exit multiplication).
    assert (timer_fwd == 0) == bool(timer)
    assert (ipi_fwd == 0) == bool(ipi)
    if levels == 3 and not timer:
        assert timer_fwd >= 2


# ----------------------------------------------------------------------
# Execute-count batching semantics
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(count=st.integers(min_value=1, max_value=8))
def test_execute_count_multiplies_exits_and_cost(count):
    stack = build_stack(StackConfig(levels=1))
    stack.settle()
    ctx = stack.ctx(0)
    before = stack.metrics.copy()
    t0 = stack.sim.now

    def ops():
        yield from ctx.execute(Op.VMCALL, count=count)

    stack.sim.run_process(ops())
    delta = stack.metrics.diff(before)
    assert delta.exits[(1, "vmcall")] == count
    elapsed = stack.sim.now - t0
    single = stack.machine.costs.l0_roundtrip(stack.machine.costs.emul_hypercall)
    assert elapsed == count * single


# ----------------------------------------------------------------------
# AppResult math
# ----------------------------------------------------------------------
@given(
    a=st.floats(min_value=0.001, max_value=1e7),
    b=st.floats(min_value=0.001, max_value=1e7),
)
def test_overhead_antisymmetry_throughput(a, b):
    ra = AppResult("x", a, "t/s", True, 1.0, 10)
    rb = AppResult("x", b, "t/s", True, 1.0, 10)
    import math

    assert math.isclose(ra.overhead_vs(rb) * rb.overhead_vs(ra), 1.0, rel_tol=1e-9)


@given(
    lat=st.lists(st.integers(min_value=1, max_value=10**9), min_size=1, max_size=200)
)
def test_latency_percentiles_monotone(lat):
    r = AppResult("x", 1.0, "t/s", True, 1.0, len(lat), latencies=lat)
    p = [r.latency_percentile(q) for q in (0, 25, 50, 75, 99, 100)]
    assert p == sorted(p)
    assert p[0] == min(lat) / 2.2e9
    assert p[-1] == max(lat) / 2.2e9
