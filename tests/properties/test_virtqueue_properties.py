"""Property tests for virtqueue ring invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.devices.virtio import Virtqueue, VirtqueueFull

ops = st.lists(
    st.sampled_from(["add", "pop", "push", "reap"]), min_size=1, max_size=200
)


@given(ops, st.sampled_from([4, 8, 16]))
def test_ring_invariants_under_random_op_sequences(sequence, size):
    """FIFO order, index monotonicity, and conservation of descriptors
    under arbitrary interleavings of driver and device operations."""
    q = Virtqueue(0, size)
    submitted = []  # payloads in avail order
    inflight = []  # popped by the device, not yet pushed used
    completed = []  # pushed used, not yet reaped
    reaped = []
    counter = 0
    for op in sequence:
        if op == "add":
            try:
                q.add_buffer(0x1000 * counter, 64, payload=counter)
                submitted.append(counter)
                counter += 1
            except VirtqueueFull:
                assert len(submitted) + len(inflight) + len(completed) >= size
        elif op == "pop":
            item = q.pop_avail()
            if submitted:
                assert item is not None
                desc_id, _a, _l, payload = item
                assert payload == submitted.pop(0)  # FIFO
                inflight.append((desc_id, payload))
            else:
                assert item is None
        elif op == "push" and inflight:
            desc_id, payload = inflight.pop(0)
            q.push_used(desc_id, 64)
            completed.append(payload)
        elif op == "reap":
            got = [p for (_d, _w, p) in q.reap_used()]
            assert got == completed  # FIFO completion order
            reaped.extend(got)
            completed = []
    # Conservation: every descriptor is in exactly one state.
    assert q.free_descriptors == size - len(submitted) - len(inflight) - len(completed)
    # Index monotonicity.
    assert q.avail_idx >= q.last_avail >= 0
    assert q.used_idx >= q.last_used >= 0
    assert q.avail_idx == len(submitted) + len(inflight) + len(completed) + len(reaped)


@given(st.integers(min_value=1, max_value=1000))
def test_sustained_flow_never_leaks_descriptors(n):
    q = Virtqueue(0, 8)
    for i in range(n):
        q.add_buffer(0x1000, 64, payload=i)
        desc_id, _a, _l, p = q.pop_avail()
        assert p == i
        q.push_used(desc_id, 64)
        assert q.reap_used()[0][2] == i
    assert q.free_descriptors == 8
