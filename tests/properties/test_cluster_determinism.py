"""Cluster determinism: same seed => byte-identical event trace.

The cluster runs N machines on one shared simulator; these properties
pin down that the whole datacenter — placement, fabric frames, fault
windows, live migrations — is a pure function of the seed, and that
process-parallel sweeps produce exactly the bytes a serial run does.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, TenantSpec
from repro.cluster.sweep import cluster_cell, run_demo, run_sweep
from repro.faults.plan import FaultClass, FaultPlan


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_same_seed_same_trace(seed):
    traces = []
    for _ in range(2):
        cluster = Cluster(num_hosts=2, seed=seed, policy="spread")
        cluster.place(TenantSpec(name="a", io_model="vp", memory_gb=8))
        cluster.place(TenantSpec(name="b", io_model="virtio", memory_gb=8))
        src = cluster.host_of("a")
        dst = [h for h in cluster.hosts if h.name != src.name][0]
        cluster.migrate("a", dst.name)
        traces.append((cluster.trace(), cluster.digest()))
    assert traces[0] == traces[1]


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    fault_seed=st.integers(min_value=0, max_value=2**16),
)
def test_same_seed_same_trace_under_fabric_faults(seed, fault_seed):
    plan = FaultPlan.random(
        fault_seed, classes=FaultClass.FABRIC, max_classes=2
    )
    digests = []
    for _ in range(2):
        summary = run_demo(
            seed=seed, num_hosts=2, num_tenants=3, fault_plan=plan
        )
        digests.append(json.dumps(summary, sort_keys=True))
    assert digests[0] == digests[1]


def test_demo_trace_is_stable_across_runs():
    a = run_demo(seed=0, num_hosts=2, num_tenants=4)
    b = run_demo(seed=0, num_hosts=2, num_tenants=4)
    assert a["trace"] == b["trace"]
    assert a["digest"] == b["digest"]
    assert a == b


def test_different_seeds_are_labelled_not_aliased():
    """Different seeds must at least record their own seed (traces may
    coincide on quiet scenarios, digests of the summary include the
    seed line so they cannot)."""
    a = run_demo(seed=1, num_hosts=2, num_tenants=3)
    b = run_demo(seed=2, num_hosts=2, num_tenants=3)
    assert a["seed"] != b["seed"]
    assert a["trace"][0] != b["trace"][0]


def test_sweep_serial_and_parallel_byte_identical():
    serial = json.dumps(run_sweep(seed=7, num_tenants=3, jobs=1), sort_keys=True)
    parallel = json.dumps(run_sweep(seed=7, num_tenants=3, jobs=4), sort_keys=True)
    assert serial == parallel


def test_cluster_cell_is_pure():
    task = ("spread", 2, 3, 9)
    assert cluster_cell(task) == cluster_cell(task)


def test_cluster_layer_is_zero_cost_when_unused():
    """A single-machine stack run must not touch the cross_host table:
    the cluster layer is strictly additive."""
    from repro.hv.stack import StackConfig, build_stack
    from repro.workloads.microbench import run_microbenchmark

    stack = build_stack(StackConfig(levels=2, io_model="virtio", workers=2))
    run_microbenchmark(stack, "Hypercall", 5)
    assert len(stack.metrics.cross_host) == 0
    assert stack.metrics.snapshot()["cross_host"] == {}
