"""Property tests for the simulation engine and dirty logging."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.mem import PAGE_SIZE, DirtyLog, MemorySpace, pages_in_range
from repro.sim import Simulator


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_event_ordering_is_time_then_fifo(delays):
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.call_after(d, lambda i=i, d=d: fired.append((d, i)))
    sim.run()
    assert fired == sorted(fired)  # time-major, insertion-order minor


@given(
    st.lists(
        st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=10),
        min_size=1,
        max_size=8,
    )
)
def test_process_time_is_sum_of_delays(all_delays):
    sim = Simulator()
    ends = {}

    def proc(i, delays):
        for d in delays:
            yield d
        ends[i] = sim.now

    for i, delays in enumerate(all_delays):
        sim.spawn(proc(i, delays), f"p{i}")
    sim.run()
    for i, delays in enumerate(all_delays):
        assert ends[i] == sum(delays)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 24) - 1),
            st.integers(min_value=1, max_value=5 * PAGE_SIZE),
        ),
        min_size=1,
        max_size=50,
    )
)
def test_dirty_log_is_exactly_the_touched_pages(writes):
    """Migration correctness depends on this: the dirty log must contain
    exactly the pages covered by the writes made while attached."""
    mem = MemorySpace(1 << 25)
    log = DirtyLog()
    mem.attach_dirty_log(log)
    expected = set()
    for addr, size in writes:
        size = min(size, mem.size_bytes - addr)
        if size <= 0:
            continue
        mem.write_range(addr, size)
        expected.update(pages_in_range(addr, size))
    assert log.pages == expected


@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=20))
def test_simulation_determinism(seed, nprocs):
    def run():
        sim = Simulator(seed=seed)
        trace = []

        def proc(i):
            for _ in range(5):
                yield sim.rng.randrange(1, 50)
                trace.append((sim.now, i))

        for i in range(nprocs):
            sim.spawn(proc(i), f"p{i}")
        sim.run()
        return trace

    assert run() == run()
