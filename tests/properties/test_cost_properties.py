"""Property tests on the cost model and emergent cost structure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.sim import default_costs


@given(st.floats(min_value=1.1, max_value=4.0))
@settings(max_examples=10, deadline=None)
def test_hypercall_cost_scales_with_world_switch_price(factor):
    """Monotonicity: making hardware world switches more expensive can
    only increase the emergent microbenchmark cost, at every level."""
    from repro.workloads.microbench import run_microbenchmark

    def measure(scale):
        costs = default_costs().scaled(
            hw_exit=int(default_costs().hw_exit * scale),
            hw_entry=int(default_costs().hw_entry * scale),
        )
        stack = build_stack(StackConfig(levels=2))
        stack.machine.costs = costs
        # Rebind: the cost model is read through machine.costs everywhere.
        return run_microbenchmark(stack, "Hypercall", 10)

    assert measure(factor) > measure(1.0)


@settings(max_examples=8, deadline=None)
@given(levels=st.sampled_from([1, 2, 3]))
def test_more_levels_never_cheaper(levels):
    from repro.workloads.microbench import run_microbenchmark

    costs = {}
    for lv in range(1, levels + 1):
        stack = build_stack(StackConfig(levels=lv))
        costs[lv] = run_microbenchmark(stack, "Hypercall", 10)
    for lv in range(2, levels + 1):
        assert costs[lv] > costs[lv - 1]


@settings(max_examples=10, deadline=None)
@given(
    timer=st.booleans(),
    ipi=st.booleans(),
    idle=st.booleans(),
)
def test_dvh_features_never_hurt_their_own_microbenchmark(timer, ipi, idle):
    """Any combination of DVH mechanisms leaves the corresponding
    microbenchmark no worse than vanilla nested virtualization."""
    from repro.workloads.microbench import run_microbenchmark

    dvh = DvhFeatures.none().with_(
        virtual_timer=timer, virtual_ipi=ipi, virtual_idle=idle
    )
    base = build_stack(StackConfig(levels=2))
    with_dvh = build_stack(StackConfig(levels=2, dvh=dvh))
    for bench, flag in (("ProgramTimer", timer), ("SendIPI", ipi)):
        cost_base = run_microbenchmark(base, bench, 8)
        cost_dvh = run_microbenchmark(with_dvh, bench, 8)
        if flag:
            assert cost_dvh < cost_base
        else:
            assert cost_dvh < cost_base * 1.1  # never meaningfully worse
        base = build_stack(StackConfig(levels=2))
        with_dvh = build_stack(StackConfig(levels=2, dvh=dvh))
