"""Property tests for EPT page tables and shadow composition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.ept import EptViolation, PageTable, Perm, compose

pfns = st.integers(min_value=0, max_value=(1 << 36) - 1)
perms = st.sampled_from([Perm.R, Perm.RW, Perm.RWX, Perm.R | Perm.X])


@given(st.dictionaries(pfns, pfns, max_size=50))
def test_map_translate_roundtrip(mapping):
    table = PageTable()
    for k, v in mapping.items():
        table.map(k, v, Perm.RWX)
    for k, v in mapping.items():
        assert table.translate(k) == v
    assert len(table) == len(mapping)


@given(st.dictionaries(pfns, pfns, min_size=1, max_size=30), st.data())
def test_unmap_removes_exactly_one(mapping, data):
    table = PageTable()
    for k, v in mapping.items():
        table.map(k, v)
    victim = data.draw(st.sampled_from(sorted(mapping)))
    assert table.unmap(victim)
    assert victim not in table
    for k in mapping:
        if k != victim:
            assert table.translate(k) == mapping[k]


@given(
    st.dictionaries(pfns, st.tuples(pfns, perms), max_size=30),
    st.dictionaries(pfns, st.tuples(pfns, perms), max_size=30),
)
def test_compose_equals_sequential_translation(inner_map, outer_map):
    """compose(outer, inner) must agree with translating through inner
    then outer, including permission intersection — the §3.5 shadow-table
    correctness property."""
    inner, outer = PageTable(), PageTable()
    for k, (v, p) in inner_map.items():
        inner.map(k, v, p)
    for k, (v, p) in outer_map.items():
        outer.map(k, v, p)
    shadow = compose(outer, inner)
    for k, (v, p_in) in inner_map.items():
        entry = outer_map.get(v)
        if entry is None:
            assert k not in shadow
            continue
        target, p_out = entry
        joint = p_in & p_out
        if joint == Perm.NONE:
            assert k not in shadow
            continue
        assert shadow.translate(k, Perm.NONE | joint) == target
        # And a permission outside the intersection must fault.
        for bit in (Perm.R, Perm.W, Perm.X):
            if bit & ~joint:
                try:
                    shadow.translate(k, bit)
                    assert False, "expected violation"
                except EptViolation:
                    pass


@given(st.dictionaries(pfns, pfns, min_size=1, max_size=40))
def test_write_protect_then_unprotect_restores(mapping):
    table = PageTable()
    for k, v in mapping.items():
        table.map(k, v, Perm.RW)
    protected = table.write_protect_all()
    assert protected == len(mapping)
    for k in mapping:
        try:
            table.translate(k, Perm.W)
            assert False
        except EptViolation:
            pass
        table.unprotect(k)
        assert table.translate(k, Perm.W) == mapping[k]
    assert set(table.dirty_pages()) == set(mapping)


@given(st.lists(pfns, min_size=1, max_size=40, unique=True))
def test_entries_iteration_complete_and_sorted(keys):
    table = PageTable()
    for k in keys:
        table.map(k, k ^ 0xABC)
    listed = [pfn for pfn, _ in table.entries()]
    assert listed == sorted(keys)
