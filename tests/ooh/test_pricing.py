"""Dirty-tracking pricing: forwarded vs dirty_logging vs dirty_ring,
the migration wire-in, and per-tenant cluster grants."""

import pytest

from repro.hv.profiles import KVM_PROFILE, XEN_PROFILE
from repro.ooh.pricing import (
    PML_BUFFER_ENTRIES,
    dirty_ring_cycles,
    dirty_tracking_cycles,
    forwarded_dirty_page_cycles,
    granted_dirty_page_cycles,
)
from repro.sim.costs import CostModel

COSTS = CostModel()


# ----------------------------------------------------------------------
# The three pricing regimes
# ----------------------------------------------------------------------
def test_regime_ordering_per_page():
    forwarded = forwarded_dirty_page_cycles(COSTS, KVM_PROFILE)
    granted = granted_dirty_page_cycles(COSTS)
    ring = dirty_ring_cycles(COSTS, 10_000) / 10_000
    assert ring < granted < forwarded
    # The gap is the point: forwarding a dirty fault costs a full exit
    # chain, an order of magnitude past the granted single round trip.
    assert forwarded > 10 * granted


def test_forwarded_pricing_follows_the_guest_hv_profile():
    assert forwarded_dirty_page_cycles(
        COSTS, XEN_PROFILE
    ) > forwarded_dirty_page_cycles(COSTS, KVM_PROFILE)


def test_dirty_ring_flushes_per_buffer():
    per_entry = COSTS.pml_log_entry
    flush = COSTS.l0_roundtrip(COSTS.pml_flush)
    assert dirty_ring_cycles(COSTS, PML_BUFFER_ENTRIES) == (
        PML_BUFFER_ENTRIES * per_entry + flush
    )
    assert dirty_ring_cycles(COSTS, PML_BUFFER_ENTRIES + 1) == (
        (PML_BUFFER_ENTRIES + 1) * per_entry + 2 * flush
    )


def test_dispatch_on_mode():
    pages = 100
    assert dirty_tracking_cycles(COSTS, KVM_PROFILE, pages, None) == (
        pages * forwarded_dirty_page_cycles(COSTS, KVM_PROFILE)
    )
    assert dirty_tracking_cycles(
        COSTS, KVM_PROFILE, pages, "dirty_logging"
    ) == pages * granted_dirty_page_cycles(COSTS)
    assert dirty_tracking_cycles(
        COSTS, KVM_PROFILE, pages, "dirty_ring"
    ) == dirty_ring_cycles(COSTS, pages)
    assert dirty_tracking_cycles(COSTS, KVM_PROFILE, 0, "dirty_ring") == 0


# ----------------------------------------------------------------------
# Migration wire-in (the study's headline comparison, in miniature)
# ----------------------------------------------------------------------
def test_migration_prices_tracking_by_grant_mode():
    from repro.study.harness import _migration_cell

    baseline = _migration_cell("baseline", 0)
    ooh = _migration_cell("ooh", 0)
    assert baseline["pages_forwarded"] > 0 and baseline["pages_granted"] == 0
    assert ooh["pages_granted"] > 0 and ooh["pages_forwarded"] == 0
    assert ooh["dirty_tracking_cycles"] < baseline["dirty_tracking_cycles"]
    # Same migration either way: tracking is priced, not re-simulated.
    assert ooh["rounds"] == baseline["rounds"]
    assert ooh["bytes_transferred"] == baseline["bytes_transferred"]


def test_migration_without_ooh_layer_is_untouched():
    """A stack built without the OoH layer charges no tracking at all —
    the pre-existing migration pins stay byte-identical."""
    from repro.core.migration import LiveMigration
    from repro.hv.stack import StackConfig, build_stack

    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    stack.settle()
    mig = LiveMigration(stack.machine, stack.leaf_vm)
    stack.sim.run_process(mig.run(), "plain-mig")
    assert stack.machine.ooh is None
    assert stack.metrics.cycles.get("dirty_tracking", 0) == 0


# ----------------------------------------------------------------------
# Cluster tenants carry grants in their spec
# ----------------------------------------------------------------------
def test_tenant_spec_validates_grants():
    from repro.cluster import TenantSpec
    from repro.ooh.grants import GrantConflictError, UnknownGrantError

    with pytest.raises(UnknownGrantError):
        TenantSpec(name="t", io_model="vp", memory_gb=4, grants=("bogus",))
    with pytest.raises(GrantConflictError):
        TenantSpec(
            name="t", io_model="passthrough", memory_gb=4,
            grants=("dirty_logging",),
        )


def test_tenant_grants_install_on_the_hosting_machine():
    from repro.cluster import Cluster, TenantSpec

    cluster = Cluster(num_hosts=1, seed=0, policy="spread")
    cluster.place(
        TenantSpec(
            name="t0", io_model="vp", memory_gb=8, grants=("dirty_logging",)
        )
    )
    host = cluster.host_of("t0")
    assert host.machine.ooh is not None
    assert host.machine.ooh.active("dirty_logging")
