"""Tests for the OoH grant layer: declarative grant sets, build-time
misconfiguration rejection, and runtime grant-table state."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.dispatch import ExitHandlerRegistry
from repro.hv.stack import StackConfig, build_stack
from repro.hw.ops import ExitReason
from repro.ooh.grants import (
    GATED_REASONS,
    OOH_FEATURES,
    GrantConflictError,
    GrantSet,
    GrantTable,
    UnknownGrantError,
    register_ownership,
)


# ----------------------------------------------------------------------
# GrantSet construction
# ----------------------------------------------------------------------
def test_from_names_round_trips():
    grants = GrantSet.from_names(["dirty_logging", "timer_deadline"])
    assert grants.names() == ("dirty_logging", "timer_deadline")
    assert grants.any_granted


def test_from_names_rejects_unknown():
    with pytest.raises(UnknownGrantError, match="pml"):
        GrantSet.from_names(["pml"])


def test_preset_constructors():
    assert not GrantSet.none().any_granted
    assert GrantSet.migration().names() == ("dirty_logging",)
    full = GrantSet.full()
    assert full.dirty_ring and not full.dirty_logging
    assert full.posted_interrupts and full.timer_deadline


# ----------------------------------------------------------------------
# Build-time validation (each misconfiguration gets a typed error)
# ----------------------------------------------------------------------
def test_validate_requires_a_guest_hypervisor_level():
    with pytest.raises(GrantConflictError, match="levels"):
        GrantSet.migration().validate(1, "virtio", DvhFeatures())


def test_validate_rejects_both_dirty_modes():
    grants = GrantSet(dirty_logging=True, dirty_ring=True)
    with pytest.raises(GrantConflictError, match="dirty"):
        grants.validate(2, "virtio", DvhFeatures())


def test_validate_rejects_timer_grant_vs_dvh_virtual_timer():
    grants = GrantSet(timer_deadline=True)
    with pytest.raises(GrantConflictError, match="timer"):
        grants.validate(2, "vp", DvhFeatures.full())


def test_validate_rejects_pi_grant_vs_dvh_virtual_ipi():
    grants = GrantSet(posted_interrupts=True)
    with pytest.raises(GrantConflictError, match="IPI"):
        grants.validate(2, "vp", DvhFeatures.full())


def test_validate_rejects_dirty_tracking_on_passthrough():
    with pytest.raises(GrantConflictError, match="passthrough"):
        GrantSet.migration().validate(2, "passthrough", DvhFeatures())


def test_empty_grant_set_validates_anywhere():
    GrantSet.none().validate(0, "native", DvhFeatures())


def test_stack_build_rejects_misconfigured_grants():
    with pytest.raises(GrantConflictError):
        build_stack(StackConfig(levels=1, ooh=GrantSet.full()))
    with pytest.raises(GrantConflictError):
        build_stack(
            StackConfig(
                levels=2, io_model="vp", dvh=DvhFeatures.full(),
                ooh=GrantSet(timer_deadline=True),
            )
        )


def test_stack_build_installs_grant_table_and_capability_bits():
    stack = build_stack(StackConfig(levels=2, ooh=GrantSet.full()))
    ooh = stack.machine.ooh
    assert isinstance(ooh, GrantTable)
    assert ooh.active_names() == GrantSet.full().names()
    # Grants surface to the L1 guest hypervisor as capability bits.
    assert stack.hvs[1].capability.ooh_grants == ooh.configured_names()


# ----------------------------------------------------------------------
# GrantTable runtime state
# ----------------------------------------------------------------------
def test_revoke_downgrades_but_stays_configured():
    table = GrantTable(GrantSet.full())
    assert table.revoke("timer_deadline")
    assert not table.active("timer_deadline")
    assert table.configured("timer_deadline")
    assert table.revocations == 1
    # Revoking an already-revoked grant is not a second revocation.
    assert not table.revoke("timer_deadline")
    assert table.revocations == 1
    table.restore("timer_deadline")
    assert table.active("timer_deadline")


def test_restore_ignores_never_configured_features():
    table = GrantTable(GrantSet.migration())
    table.restore("posted_interrupts")
    assert not table.active("posted_interrupts")


def test_install_accumulates_grants():
    table = GrantTable(GrantSet.none())
    table.install(GrantSet.migration())
    table.install(GrantSet(posted_interrupts=True))
    assert table.active_names() == ("dirty_logging", "posted_interrupts")


def test_feature_for_attributes_even_when_revoked():
    table = GrantTable(GrantSet(posted_interrupts=True))
    assert table.feature_for(ExitReason.APIC_ICR) == "posted_interrupts"
    table.revoke("posted_interrupts")
    # Still attributed (as forwarded) — the grant is configured.
    assert table.feature_for(ExitReason.APIC_ICR) == "posted_interrupts"
    # Never configured: no attribution at all.
    assert table.feature_for(ExitReason.APIC_TIMER) is None


def test_dirty_mode_follows_active_state():
    table = GrantTable(GrantSet(dirty_ring=True))
    assert table.dirty_mode() == "dirty_ring"
    table.revoke("dirty_ring")
    assert table.dirty_mode() is None
    assert table.dirty_feature() == "dirty_ring"  # attribution unchanged


# ----------------------------------------------------------------------
# Registry gates: same duplicate discipline as DVH ownership claims
# ----------------------------------------------------------------------
def test_gate_registration_rejects_duplicates():
    reg = ExitHandlerRegistry()
    register_ownership(reg)
    with pytest.raises(ValueError, match="duplicate grant gate"):
        reg.claim_grant_gate(ExitReason.APIC_TIMER, "timer_deadline")


def test_gates_coexist_with_dvh_ownership_claims():
    reg = ExitHandlerRegistry()
    reg.claim_ownership(ExitReason.APIC_TIMER, lambda vcpu, exit_: 0)
    # The grant gate is a pre-routing layer, not a second ownership
    # claim — both may target the same reason.
    reg.claim_grant_gate(ExitReason.APIC_TIMER, "timer_deadline")
    with pytest.raises(ValueError, match="duplicate ownership claim"):
        reg.claim_ownership(ExitReason.APIC_TIMER, lambda vcpu, exit_: 0)


def test_every_gated_reason_names_a_real_feature():
    for feature in GATED_REASONS.values():
        assert feature in OOH_FEATURES
