"""Granted vs forwarded exit dispatch: the grant gates short-circuit
level-2 exits to L0 at flat cost, fall back to forwarding on
revocation, and attribute both outcomes in metrics."""

from repro.hv.dispatch import DEFAULT_REGISTRY
from repro.hv.stack import StackConfig, build_stack
from repro.hw.lapic import IPI_RESCHEDULE_VECTOR, TIMER_VECTOR
from repro.hw.ops import MSR_X2APIC_ICR, ExitReason, Op
from repro.ooh.grants import GrantSet
from repro.workloads.microbench import run_microbenchmark


def _icr_exit(leaf, dest=1, vector=32):
    return leaf._make_exit(
        Op.WRMSR, {"msr": MSR_X2APIC_ICR, "dest": dest, "vector": vector}
    )


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_active_gate_short_circuits_level2_routing():
    stack = build_stack(
        StackConfig(levels=2, ooh=GrantSet(posted_interrupts=True))
    )
    leaf = stack.ctx(0)
    exit_ = _icr_exit(leaf)
    assert exit_.reason is ExitReason.APIC_ICR
    assert DEFAULT_REGISTRY.route(leaf, exit_) == 0


def test_revoked_gate_falls_back_to_forwarding():
    stack = build_stack(
        StackConfig(levels=2, ooh=GrantSet(posted_interrupts=True))
    )
    leaf = stack.ctx(0)
    stack.machine.ooh.revoke("posted_interrupts")
    assert DEFAULT_REGISTRY.route(leaf, _icr_exit(leaf)) == 1
    # Restoring the grant re-arms the short-circuit.
    stack.machine.ooh.restore("posted_interrupts")
    assert DEFAULT_REGISTRY.route(leaf, _icr_exit(leaf)) == 0


def test_gates_cover_one_guest_hypervisor_level_only():
    """A level-3 vCPU's gated exit still forwards: OoH grants target the
    L1 guest hypervisor (the documented simplification)."""
    stack = build_stack(
        StackConfig(levels=3, ooh=GrantSet(posted_interrupts=True))
    )
    leaf = stack.ctx(0)
    assert leaf.level == 3
    assert DEFAULT_REGISTRY.route(leaf, _icr_exit(leaf)) == 2


def test_ungranted_machine_routes_unchanged():
    stack = build_stack(StackConfig(levels=2))
    assert stack.machine.ooh is None
    leaf = stack.ctx(0)
    assert DEFAULT_REGISTRY.route(leaf, _icr_exit(leaf)) == 1


# ----------------------------------------------------------------------
# End-to-end: granted exits are cheap and attributed
# ----------------------------------------------------------------------
def test_granted_timer_is_flat_cost_and_attributed():
    granted_stack = build_stack(
        StackConfig(levels=2, ooh=GrantSet(timer_deadline=True))
    )
    forwarded_stack = build_stack(StackConfig(levels=2, ooh=GrantSet.none()))
    granted = run_microbenchmark(granted_stack, "ProgramTimer", 10)
    forwarded = run_microbenchmark(forwarded_stack, "ProgramTimer", 10)
    assert granted < forwarded / 5
    g, f = granted_stack.metrics.ooh_split("timer_deadline")
    assert g >= 10 and f == 0
    # The empty grant layer attributes nothing (feature not configured).
    assert forwarded_stack.metrics.ooh_split() == (0, 0)


def test_granted_exits_charge_the_ooh_category():
    stack = build_stack(
        StackConfig(levels=2, ooh=GrantSet(timer_deadline=True))
    )
    run_microbenchmark(stack, "ProgramTimer", 10)
    assert stack.metrics.cycles.get("ooh_emul", 0) > 0


def test_mid_run_revocation_degrades_gracefully():
    """Revoking a grant between runs downgrades the same stack to
    forwarding — and the forwarded exits stay attributed to the
    (configured, inactive) feature."""
    stack = build_stack(
        StackConfig(levels=2, ooh=GrantSet(timer_deadline=True))
    )
    ctx = stack.ctx(0)
    sim = stack.sim
    far = sim.cycles(0.05)

    def one_program():
        yield from ctx.program_timer(ctx.read_tsc() + far, TIMER_VECTOR)

    sim.run_process(one_program(), "granted-program")
    g0, f0 = stack.metrics.ooh_split("timer_deadline")
    assert g0 >= 1 and f0 == 0
    stack.machine.ooh.revoke("timer_deadline")
    sim.run_process(one_program(), "forwarded-program")
    g1, f1 = stack.metrics.ooh_split("timer_deadline")
    assert g1 == g0  # no new granted exits
    assert f1 >= 1  # fallback still attributed


def test_granted_send_ipi_delivers():
    """The posted_interrupts grant must still deliver the IPI (flat
    cost is worthless if the destination never wakes)."""
    stack = build_stack(
        StackConfig(levels=2, ooh=GrantSet(posted_interrupts=True))
    )
    cycles = run_microbenchmark(stack, "SendIPI", 5)
    assert cycles > 0
    g, _f = stack.metrics.ooh_split("posted_interrupts")
    assert g >= 5
    assert IPI_RESCHEDULE_VECTOR  # vector constant stays importable
