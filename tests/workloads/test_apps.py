"""Tests for the application registry and native-baseline calibration."""

import pytest

from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import (
    APPLICATIONS,
    PAPER_NATIVE,
    app_names,
    run_app,
)


def test_registry_matches_table2():
    assert app_names() == [
        "netperf_rr",
        "netperf_stream",
        "netperf_maerts",
        "apache",
        "memcached",
        "mysql",
        "hackbench",
    ]
    assert set(APPLICATIONS) == set(app_names())
    assert set(PAPER_NATIVE) == set(app_names())


def test_unknown_app_raises():
    stack = build_stack(StackConfig(levels=0))
    with pytest.raises(ValueError, match="unknown application"):
        run_app(stack, "doom")


def test_scale_reduces_transactions():
    stack = build_stack(StackConfig(levels=0))
    full = run_app(stack, "netperf_rr", scale=1.0)
    stack2 = build_stack(StackConfig(levels=0))
    small = run_app(stack2, "netperf_rr", scale=0.1)
    assert small.txns < full.txns
    # Throughput is count-independent (steady state).
    assert small.value == pytest.approx(full.value, rel=0.05)


@pytest.mark.parametrize(
    "app,rel_tol",
    [
        ("netperf_rr", 0.25),
        ("netperf_stream", 0.10),
        ("netperf_maerts", 0.12),
        ("apache", 0.25),
        ("memcached", 0.20),
    ],
)
def test_native_baselines_near_paper(app, rel_tol):
    """The op mixes are calibrated so native absolute numbers land near
    the paper's §4 baselines (throughput metrics only; the elapsed-time
    workloads are simulated at reduced transaction counts and compared
    via overhead ratios instead)."""
    stack = build_stack(StackConfig(levels=0))
    result = run_app(stack, app, scale=0.5)
    assert result.value == pytest.approx(PAPER_NATIVE[app], rel=rel_tol)


def test_elapsed_workloads_report_seconds():
    stack = build_stack(StackConfig(levels=0))
    for app in ("mysql", "hackbench"):
        r = run_app(stack, app, scale=0.2)
        assert r.unit == "seconds"
        assert not r.higher_is_better
        stack = build_stack(StackConfig(levels=0))
