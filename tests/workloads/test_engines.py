"""Tests for the workload engines (RR / stream / hackbench)."""

import dataclasses

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.engines import (
    AppResult,
    HackbenchSpec,
    RRSpec,
    StreamSpec,
    run_hackbench,
    run_rr,
    run_stream,
)


def native():
    return build_stack(StackConfig(levels=0, io_model="native"))


SMALL_RR = RRSpec(
    name="t", txns=20, concurrency=4, compute=5_000, timer_rate=0.5, workers=2
)


# ----------------------------------------------------------------------
# AppResult
# ----------------------------------------------------------------------
def test_overhead_throughput_direction():
    a = AppResult("x", 100.0, "t/s", True, 1.0, 10)
    b = AppResult("x", 50.0, "t/s", True, 1.0, 10)
    assert b.overhead_vs(a) == 2.0
    assert a.overhead_vs(a) == 1.0


def test_overhead_elapsed_normalizes_per_txn():
    native_r = AppResult("x", 1.0, "s", False, 1.0, 10)
    slower_fewer = AppResult("x", 1.0, "s", False, 1.0, 5)
    assert slower_fewer.overhead_vs(native_r) == 2.0


# ----------------------------------------------------------------------
# RR engine
# ----------------------------------------------------------------------
def test_rr_completes_exact_txn_count():
    r = run_rr(native(), SMALL_RR)
    assert r.txns == 20
    assert r.value > 0
    assert r.unit == "trans/s"


def test_rr_throughput_equals_txns_over_elapsed():
    r = run_rr(native(), SMALL_RR)
    assert r.value == pytest.approx(r.txns / r.elapsed_s)


def test_rr_elapsed_metric():
    spec = dataclasses.replace(SMALL_RR, metric="elapsed", unit="s", higher_is_better=False)
    r = run_rr(native(), spec)
    assert r.value == pytest.approx(r.elapsed_s)


def test_rr_multi_query_transactions():
    spec = dataclasses.replace(SMALL_RR, queries_per_txn=3, txns=6)
    single = dataclasses.replace(SMALL_RR, queries_per_txn=1, txns=6)
    multi_r = run_rr(native(), spec)
    single_r = run_rr(native(), single)
    # Three sequential round trips per txn: roughly 3x the latency.
    assert multi_r.elapsed_s > 2 * single_r.elapsed_s


def test_rr_segmented_response_bytes_counted():
    spec = dataclasses.replace(
        SMALL_RR, response_size=10_000, response_seg=3_000, txns=5
    )
    r = run_rr(native(), spec)  # completes only if all segments arrive
    assert r.txns == 5


def test_rr_concurrency_increases_throughput_when_parallel():
    wide = dataclasses.replace(SMALL_RR, concurrency=8, txns=40, workers=4, compute=40_000)
    narrow = dataclasses.replace(SMALL_RR, concurrency=1, txns=40, workers=4, compute=40_000)
    r_wide = run_rr(build_stack(StackConfig(levels=0)), wide)
    r_narrow = run_rr(build_stack(StackConfig(levels=0)), narrow)
    assert r_wide.value > 1.5 * r_narrow.value


def test_rr_ipis_recorded():
    spec = dataclasses.replace(SMALL_RR, ipi_rate=1.0, workers=2)
    stack = native()
    run_rr(stack, spec)
    assert stack.metrics.interrupts[("native", "direct")] > 0


# ----------------------------------------------------------------------
# Stream engine
# ----------------------------------------------------------------------
def test_stream_rx_caps_at_line_rate():
    spec = StreamSpec(name="s", direction="rx", msgs=120)
    r = run_stream(native(), spec)
    assert r.unit == "Mb/s"
    assert 7_000 < r.value < 10_000  # near 10G line rate, under it


def test_stream_tx_direction():
    spec = StreamSpec(name="m", direction="tx", msgs=120, msg_size=8192)
    r = run_stream(native(), spec)
    assert 5_000 < r.value < 11_000


def test_stream_counts_goodput_not_wire_bytes():
    spec = StreamSpec(name="s", direction="rx", msgs=60)
    r = run_stream(native(), spec)
    # Wire overhead (6.2%) keeps goodput visibly below 10,000 Mb/s.
    assert r.value < 9_700


# ----------------------------------------------------------------------
# Hackbench engine
# ----------------------------------------------------------------------
def test_hackbench_completes_all_items():
    spec = HackbenchSpec(items=200, workers=4)
    r = run_hackbench(native(), spec)
    assert r.txns == 200
    assert not r.higher_is_better
    assert r.value == pytest.approx(r.elapsed_s)


def test_hackbench_single_worker():
    spec = HackbenchSpec(items=50, workers=1, block_every=10_000)
    r = run_hackbench(native(), spec)
    assert r.value > 0


def test_hackbench_work_conservation():
    """Total compute time across workers ~= items * item_cycles."""
    stack = native()
    spec = HackbenchSpec(items=100, item_cycles=10_000, workers=4)
    run_hackbench(stack, spec)
    assert stack.metrics.cycles["guest_work"] >= 100 * 10_000


def test_hackbench_virtualized_more_expensive():
    spec = HackbenchSpec(items=150, workers=4)
    r_native = run_hackbench(native(), spec)
    r_l2 = run_hackbench(build_stack(StackConfig(levels=2)), spec)
    assert r_l2.value > 1.5 * r_native.value
