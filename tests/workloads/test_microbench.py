"""Tests for the microbenchmark harness."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import (
    MICROBENCHMARKS,
    run_all_microbenchmarks,
    run_microbenchmark,
)


def test_registry_matches_table1():
    assert set(MICROBENCHMARKS) == {
        "Hypercall",
        "DevNotify",
        "ProgramTimer",
        "SendIPI",
    }


def test_unknown_bench_raises():
    stack = build_stack(StackConfig(levels=1))
    with pytest.raises(ValueError, match="unknown microbenchmark"):
        run_microbenchmark(stack, "Nope")


@pytest.mark.parametrize("name", sorted(MICROBENCHMARKS))
def test_each_bench_returns_positive_cycles(name):
    stack = build_stack(StackConfig(levels=1))
    cycles = run_microbenchmark(stack, name, iterations=10)
    assert cycles > 0


def test_results_deterministic():
    def once():
        stack = build_stack(StackConfig(levels=2, seed=1))
        return run_microbenchmark(stack, "Hypercall", 15)

    assert once() == once()


def test_iterations_do_not_change_mean_much():
    a = run_microbenchmark(build_stack(StackConfig(levels=2)), "Hypercall", 5)
    b = run_microbenchmark(build_stack(StackConfig(levels=2)), "Hypercall", 40)
    assert abs(a - b) / b < 0.02  # steady state from the first iteration


def test_run_all_uses_fresh_stacks():
    results = run_all_microbenchmarks(
        lambda: build_stack(StackConfig(levels=1)), iterations=5
    )
    assert set(results) == set(MICROBENCHMARKS)
    assert all(v > 0 for v in results.values())


def test_devnotify_needs_virtio():
    stack = build_stack(StackConfig(levels=2, io_model="passthrough"))
    with pytest.raises(ValueError, match="virtio"):
        run_microbenchmark(stack, "DevNotify", 5)
