"""Tests for transaction-latency tracking in the RR engine."""

import dataclasses

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import NETPERF_RR
from repro.workloads.engines import AppResult, run_rr


def run(levels=0, io="native", dvh=None, txns=30, capture=False, **spec_kw):
    stack = build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.none())
    )
    if capture:
        stack.machine.enable_request_capture(series="rr")
    spec = dataclasses.replace(NETPERF_RR, txns=txns, **spec_kw)
    return run_rr(stack, spec), stack


def test_one_latency_per_transaction():
    r, _ = run(txns=25)
    assert len(r.latencies) == 25
    assert all(lat > 0 for lat in r.latencies)


def test_percentiles_ordered():
    r, _ = run(txns=30)
    assert r.latency_percentile(0) <= r.latency_percentile(50)
    assert r.latency_percentile(50) <= r.latency_percentile(99)
    assert r.latency_percentile(99) <= r.latency_percentile(100)


def test_mean_latency_matches_throughput_for_closed_loop():
    """Single-stream closed loop: mean latency ~ 1/throughput."""
    r, _ = run(txns=40)
    assert r.mean_latency_s == pytest.approx(1 / r.value, rel=0.1)


def test_latency_grows_with_nesting():
    native, _ = run(levels=0, io="native")
    nested, _ = run(levels=2, io="virtio")
    dvh, _ = run(levels=2, io="vp", dvh=DvhFeatures.full())
    assert nested.mean_latency_s > 3 * native.mean_latency_s
    assert dvh.mean_latency_s < nested.mean_latency_s / 2


def test_percentile_validation():
    r, _ = run(txns=10)
    with pytest.raises(ValueError):
        r.latency_percentile(101)
    empty = AppResult("x", 1.0, "s", False, 1.0, 1)
    with pytest.raises(ValueError, match="no latencies"):
        empty.latency_percentile(50)
    with pytest.raises(ValueError, match="no latencies"):
        _ = empty.mean_latency_s


# ----------------------------------------------------------------------
# Request capture: histograms, zero-cost-off, determinism
# ----------------------------------------------------------------------
def test_capture_off_leaves_tables_empty():
    r, stack = run(txns=20)
    assert stack.machine.request_capture is None  # the default
    assert not stack.metrics.latency
    assert not stack.metrics.latency_sum
    assert len(r.latencies) == 20  # the result list is unaffected


def test_capture_histogram_matches_latency_list():
    r, stack = run(txns=30, capture=True)
    hist = stack.metrics.latency_histogram("rr")
    assert hist.total == len(r.latencies) == 30
    assert hist.sum == sum(r.latencies)  # exact integer sum
    assert hist.mean() == pytest.approx(r.mean_latency_s * 2.2e9, rel=1e-9)


def test_capture_does_not_perturb_simulation():
    plain, _ = run(levels=2, io="vp", dvh=DvhFeatures.full(), txns=30)
    captured, _ = run(
        levels=2, io="vp", dvh=DvhFeatures.full(), txns=30, capture=True
    )
    assert plain.latencies == captured.latencies
    assert plain.value == captured.value


def test_result_histogram_view():
    r, _ = run(txns=25)
    hist = r.latency_histogram()
    assert hist.total == 25
    assert hist.sum == sum(r.latencies)


# ----------------------------------------------------------------------
# Open-loop Poisson arrivals
# ----------------------------------------------------------------------
def test_poisson_requires_offered_rate():
    with pytest.raises(ValueError, match="offered_tps"):
        run(txns=10, arrival="poisson")


def test_unknown_arrival_rejected():
    with pytest.raises(ValueError, match="arrival"):
        run(txns=10, arrival="uniform")


def test_poisson_is_deterministic():
    a, _ = run(txns=30, arrival="poisson", offered_tps=30_000.0)
    b, _ = run(txns=30, arrival="poisson", offered_tps=30_000.0)
    assert a.latencies == b.latencies
    assert a.value == b.value


def test_poisson_overload_shows_queueing_in_the_tail():
    """An open loop offered far beyond capacity must queue: the tail
    (enqueue-to-complete) stretches far beyond the closed-loop tail,
    which is the whole point of measuring open loop."""
    closed, _ = run(txns=40)
    rate = 40 * closed.value  # 40x the sustainable closed-loop rate
    overloaded, _ = run(txns=40, arrival="poisson", offered_tps=rate)
    assert len(overloaded.latencies) == 40
    p99_open = overloaded.latency_percentile(99)
    p99_closed = closed.latency_percentile(99)
    assert p99_open > 3 * p99_closed
    # queueing delay dominates: the backlog drains linearly, so the
    # tail sits well above the median (a closed loop is nearly flat)
    assert p99_open > 1.5 * overloaded.latency_percentile(50)
