"""Tests for transaction-latency tracking in the RR engine."""

import dataclasses

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import NETPERF_RR
from repro.workloads.engines import AppResult, run_rr


def run(levels=0, io="native", dvh=None, txns=30):
    stack = build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.none())
    )
    spec = dataclasses.replace(NETPERF_RR, txns=txns)
    return run_rr(stack, spec)


def test_one_latency_per_transaction():
    r = run(txns=25)
    assert len(r.latencies) == 25
    assert all(lat > 0 for lat in r.latencies)


def test_percentiles_ordered():
    r = run(txns=30)
    assert r.latency_percentile(0) <= r.latency_percentile(50)
    assert r.latency_percentile(50) <= r.latency_percentile(99)
    assert r.latency_percentile(99) <= r.latency_percentile(100)


def test_mean_latency_matches_throughput_for_closed_loop():
    """Single-stream closed loop: mean latency ~ 1/throughput."""
    r = run(txns=40)
    assert r.mean_latency_s == pytest.approx(1 / r.value, rel=0.1)


def test_latency_grows_with_nesting():
    native = run(levels=0, io="native")
    nested = run(levels=2, io="virtio")
    dvh = run(levels=2, io="vp", dvh=DvhFeatures.full())
    assert nested.mean_latency_s > 3 * native.mean_latency_s
    assert dvh.mean_latency_s < nested.mean_latency_s / 2


def test_percentile_validation():
    r = run(txns=10)
    with pytest.raises(ValueError):
        r.latency_percentile(101)
    empty = AppResult("x", 1.0, "s", False, 1.0, 1)
    with pytest.raises(ValueError, match="no latencies"):
        empty.latency_percentile(50)
    with pytest.raises(ValueError, match="no latencies"):
        _ = empty.mean_latency_s
