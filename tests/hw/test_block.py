"""Unit tests for the SSD model."""

from repro.hw.devices.block import BlockRequest, SsdDevice
from repro.sim import Simulator, default_costs


def test_request_completes_after_latency():
    sim = Simulator()
    costs = default_costs()
    ssd = SsdDevice("ssd0", sim, costs)
    done = []
    req = BlockRequest("read", 4096)
    ssd.submit(req, lambda r: done.append(sim.now))
    sim.run()
    assert len(done) == 1
    assert done[0] >= costs.ssd_latency


def test_flush_has_no_transfer_component():
    sim = Simulator()
    costs = default_costs()
    ssd = SsdDevice("ssd0", sim, costs)
    times = {}
    ssd.submit(BlockRequest("flush", 0), lambda r: times.setdefault("flush", sim.now))
    sim.run()
    assert times["flush"] == costs.ssd_latency


def test_requests_serialize():
    sim = Simulator()
    costs = default_costs()
    ssd = SsdDevice("ssd0", sim, costs)
    done = []
    for _ in range(3):
        ssd.submit(BlockRequest("write", 4096), lambda r: done.append(sim.now))
    sim.run()
    assert done[0] < done[1] < done[2]
    # Second starts only after first completes.
    assert done[1] - done[0] >= costs.ssd_latency
