"""Unit tests for physical CPUs and native (bare-metal) execution."""

import pytest

from repro.hw.cpu import PhysicalCpu
from repro.hw.machine import Machine
from repro.hw.ops import Op
from repro.sim import Simulator


def test_pcpu_tsc_advances_with_offset():
    sim = Simulator()
    cpu = PhysicalCpu(3, sim, tsc_boot_offset=21)
    assert cpu.tsc == 21
    sim.now = 1000
    assert cpu.tsc == 1021


def test_pcpu_block_wake_cycle():
    sim = Simulator()
    cpu = PhysicalCpu(0, sim)
    assert not cpu.halted
    ev = cpu.block()
    assert cpu.halted
    assert cpu.wake()
    assert not cpu.halted
    assert ev.triggered
    assert not cpu.wake()  # second wake is a no-op


def test_double_block_rejected():
    sim = Simulator()
    cpu = PhysicalCpu(0, sim)
    cpu.block()
    with pytest.raises(RuntimeError):
        cpu.block()


def test_native_compute_charges_time():
    m = Machine(num_cpus=4)
    ctx = m.native_contexts(1)[0]

    def work():
        yield from ctx.compute(5000)

    m.sim.run_process(work())
    assert m.sim.now == 5000
    assert m.metrics.cycles["guest_work"] == 5000


def test_native_ops_never_trap():
    m = Machine(num_cpus=4)
    ctx = m.native_contexts(1)[0]

    def work():
        yield from ctx.execute(Op.WRMSR, msr=0x6E0)
        yield from ctx.execute(Op.HLT)

    m.sim.run_process(work())
    assert m.metrics.total_exits() == 0


def test_native_timer_fires_and_wakes():
    m = Machine(num_cpus=4)
    ctx = m.native_contexts(1)[0]
    log = {}

    def sleeper():
        deadline = ctx.read_tsc() + 10_000
        yield from ctx.program_timer(deadline)
        vector = yield from ctx.wait_for_interrupt()
        log["woke_at"] = m.sim.now
        log["vector"] = vector

    m.sim.run_process(sleeper())
    assert log["vector"] == 0xEC
    assert log["woke_at"] >= 10_000
    assert log["woke_at"] < 12_000  # small native wake cost only


def test_native_ipi_between_cpus():
    m = Machine(num_cpus=4)
    ctx0, ctx1 = m.native_contexts(2)
    log = {}

    def receiver():
        vector = yield from ctx1.wait_for_interrupt()
        log["vector"] = vector
        log["at"] = m.sim.now

    def sender():
        yield from ctx0.compute(1000)
        yield from ctx0.send_ipi(1, 0xFD)

    m.sim.spawn(receiver(), "rx")
    m.sim.spawn(sender(), "tx")
    m.sim.run()
    assert log["vector"] == 0xFD
    assert log["at"] >= 1000
    assert m.metrics.interrupts[("native", "direct")] == 1


def test_native_wait_with_already_pending_interrupt():
    m = Machine(num_cpus=4)
    ctx = m.native_contexts(1)[0]
    ctx.lapic.set_irr(0x55)

    def work():
        return (yield from ctx.wait_for_interrupt())

    assert m.sim.run_process(work()) == 0x55


def test_native_contexts_bounded_by_cpus():
    m = Machine(num_cpus=2)
    with pytest.raises(ValueError):
        m.native_contexts(3)


def test_mem_write_marks_host_pages():
    m = Machine(num_cpus=2)
    ctx = m.native_contexts(1)[0]
    ctx.mem_write(0x12345, 10)
    assert 0x12 in m.memory.touched_pages
