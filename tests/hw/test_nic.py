"""Unit tests for the NIC, SR-IOV, and the rate-limited wire."""

import pytest

from repro.hw.devices.nic import Packet, PhysicalNic, RemoteClient, Wire
from repro.hw.pci import CapabilityId
from repro.sim import Simulator, default_costs


def make_wire(sim, bps=10_000_000_000.0, latency=100):
    return Wire(sim, bps, latency)


def test_wire_delivery_latency_and_serialization():
    sim = Simulator(freq_hz=1_000_000_000)  # 1 GHz: 1 cycle = 1ns
    wire = make_wire(sim, bps=1_000_000_000.0, latency=500)  # 1 Gb/s
    got = []
    # 1000 bytes at 1Gb/s = 8000 ns serialization + 500 latency.
    wire.transmit(Packet("f", 1000), lambda p: got.append(sim.now))
    sim.run()
    assert got == [8500]


def test_wire_serialization_queues_back_to_back():
    sim = Simulator(freq_hz=1_000_000_000)
    wire = make_wire(sim, bps=1_000_000_000.0, latency=0)
    times = []
    for _ in range(3):
        wire.transmit(Packet("f", 1000), lambda p: times.append(sim.now))
    sim.run()
    assert times == [8000, 16000, 24000]  # line rate enforced


def test_wire_directions_independent():
    sim = Simulator(freq_hz=1_000_000_000)
    wire = make_wire(sim, bps=1_000_000_000.0, latency=0)
    times = {}
    wire.transmit(Packet("f", 1000, inbound=True), lambda p: times.setdefault("in", sim.now))
    wire.transmit(Packet("f", 1000, inbound=False), lambda p: times.setdefault("out", sim.now))
    sim.run()
    assert times["in"] == times["out"] == 8000


def test_nic_flow_steering():
    sim = Simulator()
    nic = PhysicalNic("eth0", make_wire(sim))
    got = []
    nic.register_flow("tcp:5001", got.append)
    pkt = Packet("tcp:5001", 64)
    nic.rx(pkt)
    assert got == [pkt]
    nic.rx(Packet("tcp:9999", 64))  # unknown flow dropped
    assert len(got) == 1
    nic.unregister_flow("tcp:5001")
    nic.rx(Packet("tcp:5001", 64))
    assert len(got) == 1


def test_sriov_vf_creation_limit():
    sim = Simulator()
    nic = PhysicalNic("eth0", make_wire(sim), num_vfs=2)
    vf0 = nic.create_vf()
    vf1 = nic.create_vf()
    assert vf0.pf is nic and vf1.name == "eth0.vf1"
    with pytest.raises(RuntimeError):
        nic.create_vf()
    cap = nic.find_capability(CapabilityId.SRIOV)
    assert cap.registers["num_vfs"] == 2


def test_vf_doorbell():
    sim = Simulator()
    nic = PhysicalNic("eth0", make_wire(sim))
    vf = nic.create_vf()
    rings = []
    vf.on_doorbell = lambda: rings.append(True)
    vf.mmio_write(0, 1)
    assert rings == [True]


def test_remote_client_send():
    sim = Simulator()
    costs = default_costs()
    wire = make_wire(sim, latency=100)
    nic = PhysicalNic("eth0", wire)
    got = []
    nic.register_flow("rr", lambda p: got.append((sim.now, p.size)))
    client = RemoteClient(sim, wire, nic, costs)
    client.send("rr", 1)
    client.send_after(5000, "rr", 2)
    sim.run()
    assert len(got) == 2
    assert got[0][0] >= 100  # wire latency applied
    assert got[1][0] >= 5100


# ----------------------------------------------------------------------
# RemoteClient: direct unit coverage (flow lifecycle, saturation, wire
# accounting)
# ----------------------------------------------------------------------
def make_client(sim, bps=1_000_000_000.0, latency=100):
    costs = default_costs()
    wire = make_wire(sim, bps=bps, latency=latency)
    nic = PhysicalNic("eth0", wire)
    return RemoteClient(sim, wire, nic, costs), wire, nic


def test_remote_client_receive_register_and_off():
    sim = Simulator()
    client, _wire, _nic = make_client(sim)
    got = []
    client.on_receive("rr", got.append)
    pkt = Packet("rr", 64, inbound=False)
    client.receive(pkt)
    assert got == [pkt]
    client.receive(Packet("other", 64, inbound=False))  # unknown flow dropped
    assert len(got) == 1
    client.off_receive("rr")
    client.receive(Packet("rr", 64, inbound=False))  # socket closed
    assert len(got) == 1
    client.off_receive("rr")  # idempotent


def test_remote_client_rx_under_saturated_wire():
    """A burst larger than the wire can carry instantaneously must be
    delivered completely, in order, at exactly line rate — no packet is
    lost or reordered by queueing, and latency is per-packet on top of
    the serialization backlog."""
    sim = Simulator(freq_hz=1_000_000_000)  # 1 cycle = 1 ns
    client, wire, nic = make_client(sim, bps=1_000_000_000.0, latency=500)
    got = []
    nic.register_flow("stream", lambda p: got.append((sim.now, p.payload)))
    for i in range(10):
        client.send("stream", 1000, payload=i)  # 8000 ns each at 1 Gb/s
    sim.run()
    assert [p for _, p in got] == list(range(10))  # in order, none lost
    assert [t for t, _ in got] == [8000 * (i + 1) + 500 for i in range(10)]
    # The backlog is visible while queued, drained afterwards.
    assert wire.busy_until(inbound=True) == 80000
    assert sim.now >= 80000


def test_remote_client_send_after_forwards_wire_size():
    """Deferred sends must serialize with their on-wire size, exactly
    like immediate sends — wire_size used to be dropped on the floor."""
    sim = Simulator(freq_hz=1_000_000_000)
    client, wire, nic = make_client(sim, bps=1_000_000_000.0, latency=0)
    got = []
    nic.register_flow("f", lambda p: got.append(sim.now))
    client.send_after(0, "f", 1000, wire_size=2000)
    sim.run()
    assert got == [16000]  # 2000 on-wire bytes, not 1000
    assert wire.bytes_carried["in"] == 2000


def test_wire_bytes_carried_meters_on_wire_size():
    """bytes_carried counts what occupied the wire (headers included),
    matching the time the direction was busy."""
    sim = Simulator(freq_hz=1_000_000_000)
    wire = make_wire(sim, bps=1_000_000_000.0, latency=0)
    wire.transmit(Packet("f", 1000), lambda p: None, wire_size=1500)
    wire.transmit(Packet("f", 1000, inbound=False), lambda p: None)
    sim.run()
    assert wire.bytes_carried["in"] == 1500  # on-wire, not goodput
    assert wire.bytes_carried["out"] == 1000  # default: goodput == wire
    assert wire.busy_until(inbound=True) == 12000
    assert wire.busy_until(inbound=False) == 8000
