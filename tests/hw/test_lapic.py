"""Unit tests for the local APIC model."""

import pytest

from repro.hw.lapic import TIMER_VECTOR, Lapic


def test_irr_latch_and_ack():
    apic = Lapic(0)
    assert not apic.has_pending()
    apic.set_irr(0x40)
    assert apic.has_pending()
    assert apic.ack() == 0x40
    assert not apic.has_pending()
    assert apic.isr == [0x40]


def test_ack_returns_highest_priority():
    apic = Lapic(0)
    apic.set_irr(0x40)
    apic.set_irr(0xEC)
    apic.set_irr(0x80)
    assert apic.ack() == 0xEC
    assert apic.ack() == 0x80
    assert apic.ack() == 0x40
    assert apic.ack() is None


def test_duplicate_vector_collapses():
    apic = Lapic(0)
    apic.set_irr(0x40)
    apic.set_irr(0x40)
    assert apic.ack() == 0x40
    assert apic.ack() is None


def test_bad_vector_rejected():
    apic = Lapic(0)
    with pytest.raises(ValueError):
        apic.set_irr(0x100)
    with pytest.raises(ValueError):
        apic.set_irr(-1)


def test_eoi_pops_in_service():
    apic = Lapic(0)
    apic.set_irr(0x40)
    apic.ack()
    assert apic.eoi() == 0x40
    assert apic.eoi() is None
    assert apic.isr == []


def test_timer_arm_fire_cycle():
    apic = Lapic(0)
    apic.arm_timer(123456, vector=0xEC)
    assert apic.timer_deadline == 123456
    apic.fire_timer()
    assert apic.timer_deadline is None
    assert apic.ack() == 0xEC


def test_timer_disarm():
    apic = Lapic(0)
    apic.arm_timer(100)
    apic.disarm_timer()
    assert apic.timer_deadline is None


def test_default_timer_vector():
    apic = Lapic(0)
    apic.arm_timer(10)
    apic.fire_timer()
    assert apic.ack() == TIMER_VECTOR


def test_wake_callback_on_irr():
    apic = Lapic(0)
    woken = []
    apic.on_wake(lambda: woken.append(True))
    apic.set_irr(0x20)
    assert woken == [True]
