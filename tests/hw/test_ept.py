"""Unit tests for EPT page tables, dirty logging, and composition."""

import pytest

from repro.hw.ept import EptViolation, PageTable, Perm, compose
from repro.hw.mem import PAGE_SHIFT


def test_map_translate_roundtrip():
    ept = PageTable()
    ept.map(0x10, 0x99, Perm.RWX)
    assert ept.translate(0x10, Perm.R) == 0x99
    assert ept.translate(0x10, Perm.W) == 0x99


def test_translate_unmapped_raises():
    ept = PageTable()
    with pytest.raises(EptViolation, match="not mapped"):
        ept.translate(0x10)


def test_permission_enforcement():
    ept = PageTable()
    ept.map(0x10, 0x99, Perm.R)
    assert ept.translate(0x10, Perm.R) == 0x99
    with pytest.raises(EptViolation, match="permission"):
        ept.translate(0x10, Perm.W)


def test_map_none_perm_rejected():
    ept = PageTable()
    with pytest.raises(ValueError):
        ept.map(0x10, 0x99, Perm.NONE)


def test_translate_addr_preserves_offset():
    ept = PageTable()
    ept.map(0x10, 0x99)
    addr = (0x10 << PAGE_SHIFT) | 0x123
    assert ept.translate_addr(addr) == (0x99 << PAGE_SHIFT) | 0x123


def test_unmap():
    ept = PageTable()
    ept.map(0x10, 0x99)
    assert 0x10 in ept
    assert ept.unmap(0x10)
    assert 0x10 not in ept
    assert not ept.unmap(0x10)
    assert len(ept) == 0


def test_remap_overwrites_without_count_growth():
    ept = PageTable()
    ept.map(0x10, 0x99)
    ept.map(0x10, 0xAA)
    assert len(ept) == 1
    assert ept.translate(0x10) == 0xAA


def test_sparse_pfns_multilevel_walk():
    ept = PageTable()
    # PFNs that differ in every radix level.
    pfns = [0, 1, 1 << 9, 1 << 18, 1 << 27, (1 << 27) | (5 << 9) | 3]
    for i, pfn in enumerate(pfns):
        ept.map(pfn, 1000 + i)
    for i, pfn in enumerate(pfns):
        assert ept.translate(pfn) == 1000 + i
    assert len(ept) == len(pfns)


def test_entries_iteration_sorted():
    ept = PageTable()
    for pfn in [5, 3, 1 << 20, 7]:
        ept.map(pfn, pfn + 1)
    listed = [pfn for pfn, _ in ept.entries()]
    assert listed == sorted(listed)
    assert set(listed) == {5, 3, 1 << 20, 7}


def test_dirty_bit_set_on_write_access():
    ept = PageTable()
    ept.map(0x10, 0x99, Perm.RW)
    ept.translate(0x10, Perm.R)
    assert list(ept.dirty_pages()) == []
    ept.translate(0x10, Perm.W)
    assert list(ept.dirty_pages()) == [0x10]
    ept.clear_dirty()
    assert list(ept.dirty_pages()) == []


def test_write_protect_and_unprotect_cycle():
    ept = PageTable()
    ept.map(0x10, 0x99, Perm.RW)
    ept.map(0x11, 0x9A, Perm.R)
    protected = ept.write_protect_all()
    assert protected == 1  # only the writable page
    with pytest.raises(EptViolation):
        ept.translate(0x10, Perm.W)
    ept.unprotect(0x10)
    assert ept.translate(0x10, Perm.W) == 0x99
    # unprotect marks the page dirty (it was about to be written)
    assert 0x10 in set(ept.dirty_pages())


def test_compose_basic():
    inner = PageTable()  # L2 -> L1
    outer = PageTable()  # L1 -> host
    inner.map(0x10, 0x20, Perm.RW)
    outer.map(0x20, 0x30, Perm.RWX)
    shadow = compose(outer, inner)
    assert shadow.translate(0x10, Perm.W) == 0x30


def test_compose_intersects_permissions():
    inner = PageTable()
    outer = PageTable()
    inner.map(0x10, 0x20, Perm.RW)
    outer.map(0x20, 0x30, Perm.R)
    shadow = compose(outer, inner)
    assert shadow.translate(0x10, Perm.R) == 0x30
    with pytest.raises(EptViolation):
        shadow.translate(0x10, Perm.W)


def test_compose_skips_missing_outer():
    inner = PageTable()
    outer = PageTable()
    inner.map(0x10, 0x20)
    inner.map(0x11, 0x21)
    outer.map(0x21, 0x31)
    shadow = compose(outer, inner)
    assert 0x10 not in shadow
    assert shadow.translate(0x11) == 0x31


def test_compose_three_levels_associative():
    """Shadow construction for L3: compose(compose(l1, l2), l3) must equal
    translating through each table in turn (recursive virtual-passthrough,
    Figure 6)."""
    t3 = PageTable()  # L3 -> L2
    t2 = PageTable()  # L2 -> L1
    t1 = PageTable()  # L1 -> host
    t3.map(7, 70, Perm.RW)
    t2.map(70, 700, Perm.RW)
    t1.map(700, 7000, Perm.RW)
    shadow = compose(compose(t1, t2), t3)
    assert shadow.translate(7, Perm.W) == 7000
    step = t1.translate(t2.translate(t3.translate(7, Perm.W), Perm.W), Perm.W)
    assert step == 7000
