"""Unit tests for memory spaces and dirty logging."""

import pytest

from repro.hw.mem import PAGE_SIZE, DirtyLog, MemorySpace, page_of, pages_in_range


def test_page_of():
    assert page_of(0) == 0
    assert page_of(PAGE_SIZE - 1) == 0
    assert page_of(PAGE_SIZE) == 1


def test_pages_in_range_spanning():
    pages = list(pages_in_range(PAGE_SIZE - 1, 2))
    assert pages == [0, 1]
    assert list(pages_in_range(0, 0)) == []
    assert list(pages_in_range(0, PAGE_SIZE)) == [0]
    assert list(pages_in_range(100, 3 * PAGE_SIZE)) == [0, 1, 2, 3]


def test_read_write_roundtrip():
    mem = MemorySpace(1 << 20)
    mem.write(0x1000, "hello")
    assert mem.read(0x1000) == "hello"
    assert mem.read(0x2000) is None


def test_bounds_checking():
    mem = MemorySpace(0x1000)
    with pytest.raises(IndexError):
        mem.read(0x1000)
    with pytest.raises(IndexError):
        mem.write(-1, 0)
    with pytest.raises(IndexError):
        mem.write_range(0xF00, 0x200)


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        MemorySpace(0)


def test_touched_pages_tracking():
    mem = MemorySpace(1 << 20)
    mem.write(0, 1)
    mem.write_range(2 * PAGE_SIZE, PAGE_SIZE * 2)
    assert mem.touched_pages == {0, 2, 3}


def test_dirty_log_attach_detach():
    mem = MemorySpace(1 << 20)
    log = DirtyLog()
    mem.write(0, 1)  # before attach: not logged
    mem.attach_dirty_log(log)
    mem.write(PAGE_SIZE, 2)
    mem.write_range(5 * PAGE_SIZE, 10)
    assert log.pages == {1, 5}
    mem.detach_dirty_log(log)
    mem.write(9 * PAGE_SIZE, 3)
    assert log.pages == {1, 5}


def test_dirty_log_drain():
    mem = MemorySpace(1 << 20)
    log = DirtyLog()
    mem.attach_dirty_log(log)
    mem.write(0, 1)
    assert log.drain() == {0}
    assert len(log) == 0
    mem.write(PAGE_SIZE, 1)
    assert log.drain() == {1}


def test_multiple_dirty_logs():
    mem = MemorySpace(1 << 20)
    a, b = DirtyLog("a"), DirtyLog("b")
    mem.attach_dirty_log(a)
    mem.attach_dirty_log(b)
    mem.write(0, 1)
    assert a.pages == b.pages == {0}


def test_total_pages_rounds_up():
    assert MemorySpace(PAGE_SIZE).total_pages == 1
    assert MemorySpace(PAGE_SIZE + 1).total_pages == 2
