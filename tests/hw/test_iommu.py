"""Unit tests for the IOMMU: DMA domains and interrupt remapping."""

import pytest

from repro.hw.ept import Perm
from repro.hw.iommu import Iommu, IommuFault, Irte, IrteMode
from repro.hw.mem import PAGE_SHIFT
from repro.hw.pci import PciDevice
from repro.hw.posted import PiDescriptor


def make_device(name="dev"):
    return PciDevice(name, 0x8086, 0x1234)


def test_attach_creates_domain_once():
    iommu = Iommu()
    dev = make_device()
    dom1 = iommu.attach(dev)
    dom2 = iommu.attach(dev)
    assert dom1 is dom2


def test_translate_requires_domain():
    iommu = Iommu()
    dev = make_device()
    with pytest.raises(IommuFault, match="no domain"):
        iommu.translate(dev, 0x1000)


def test_map_and_translate():
    iommu = Iommu()
    dev = make_device()
    iommu.map(dev, iova_pfn=0x10, target_pfn=0x99, perm=Perm.RW)
    addr = (0x10 << PAGE_SHIFT) + 4
    assert iommu.translate(dev, addr) == (0x99 << PAGE_SHIFT) + 4
    assert iommu.translate(dev, addr, write=True) == (0x99 << PAGE_SHIFT) + 4


def test_unmapped_iova_faults():
    iommu = Iommu()
    dev = make_device()
    iommu.attach(dev)
    with pytest.raises(IommuFault):
        iommu.translate(dev, 0x5000)


def test_readonly_mapping_blocks_dma_write():
    iommu = Iommu()
    dev = make_device()
    iommu.map(dev, 0x10, 0x99, perm=Perm.R)
    iommu.translate(dev, 0x10 << PAGE_SHIFT)  # read ok
    with pytest.raises(IommuFault):
        iommu.translate(dev, 0x10 << PAGE_SHIFT, write=True)


def test_domains_are_isolated_between_devices():
    iommu = Iommu()
    a, b = make_device("a"), make_device("b")
    iommu.map(a, 0x10, 0x99)
    iommu.attach(b)
    with pytest.raises(IommuFault):
        iommu.translate(b, 0x10 << PAGE_SHIFT)


def test_detach_removes_domain_and_irtes():
    iommu = Iommu()
    dev = make_device()
    iommu.map(dev, 0x10, 0x99)
    iommu.set_irte(dev, 0, Irte(mode=IrteMode.REMAPPED, vector=0x40))
    iommu.detach(dev)
    with pytest.raises(IommuFault):
        iommu.translate(dev, 0x10 << PAGE_SHIFT)
    with pytest.raises(IommuFault):
        iommu.remap_interrupt(dev, 0)


def test_interrupt_posting_entry():
    iommu = Iommu()
    dev = make_device()
    pid = PiDescriptor("vcpu3")
    iommu.set_irte(dev, 1, Irte(mode=IrteMode.POSTED, vector=0x41, pi_descriptor=pid))
    entry = iommu.remap_interrupt(dev, 1)
    assert entry.mode == IrteMode.POSTED
    assert entry.pi_descriptor is pid
    assert entry.vector == 0x41
