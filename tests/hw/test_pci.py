"""Unit tests for PCI config space, capabilities, and buses."""

import pytest

from repro.hw.pci import Bar, Capability, CapabilityId, PciBus, PciDevice


def test_capability_walk():
    dev = PciDevice("d", 0x8086, 0x1)
    dev.add_capability(Capability(CapabilityId.MSIX, {"table_size": 4}))
    dev.add_capability(Capability(CapabilityId.PCIE, {}))
    cap = dev.find_capability(CapabilityId.MSIX)
    assert cap is not None and cap.registers["table_size"] == 4
    assert dev.has_capability(CapabilityId.PCIE)
    assert not dev.has_capability(CapabilityId.MIGRATION)


def test_duplicate_capability_rejected():
    dev = PciDevice("d", 0x8086, 0x1)
    dev.add_capability(Capability(CapabilityId.MSIX, {}))
    with pytest.raises(ValueError):
        dev.add_capability(Capability(CapabilityId.MSIX, {}))


def test_bus_plug_assigns_bar_addresses():
    bus = PciBus("b")
    d1 = bus.plug(PciDevice("d1", 0x8086, 0x1, bar_sizes=[0x1000, 0x2000]))
    d2 = bus.plug(PciDevice("d2", 0x8086, 0x2))
    addrs = [bar.base for bar in d1.bars] + [bar.base for bar in d2.bars]
    assert all(a is not None for a in addrs)
    assert len(set(addrs)) == len(addrs)  # no overlap
    # Windows must not overlap byte-wise either.
    windows = sorted(
        (bar.base, bar.base + bar.size)
        for dev in (d1, d2)
        for bar in dev.bars
    )
    for (s1, e1), (s2, _e2) in zip(windows, windows[1:]):
        assert e1 <= s2


def test_bar_contains():
    bar = Bar(index=0, size=0x1000, base=0x8000)
    assert bar.contains(0x8000)
    assert bar.contains(0x8FFF)
    assert not bar.contains(0x9000)
    assert not Bar(index=0, size=0x1000).contains(0)  # unassigned


def test_device_at_address_routing():
    bus = PciBus("b")
    d1 = bus.plug(PciDevice("d1", 0x8086, 0x1))
    d2 = bus.plug(PciDevice("d2", 0x8086, 0x2))
    assert bus.device_at(d1.bars[0].base) is d1
    assert bus.device_at(d2.bars[0].base + 10) is d2
    assert bus.device_at(0x1) is None


def test_enumerate_and_find():
    bus = PciBus("b")
    bus.plug(PciDevice("eth0", 0x8086, 0x1))
    bus.plug(PciDevice("ssd0", 0x8086, 0x2))
    names = [d.name for d in bus.enumerate()]
    assert names == ["eth0", "ssd0"]
    assert bus.find("ssd0").device_id == 0x2
    assert bus.find("nope") is None


def test_unplug():
    bus = PciBus("b")
    dev = bus.plug(PciDevice("d", 0x8086, 0x1))
    bus.unplug(dev)
    assert list(bus.enumerate()) == []


def test_bdf_unique():
    a = PciDevice("a", 0, 0)
    b = PciDevice("b", 0, 0)
    assert a.bdf != b.bdf
