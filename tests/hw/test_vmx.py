"""Unit tests for VMCS structures, controls, and merging."""

from repro.hw.vmx import (
    SHADOWED_FIELDS,
    ExecControl,
    Vmcs,
    VmcsField,
    VmxCapability,
)


def test_field_read_write():
    vmcs = Vmcs(owner_level=0)
    vmcs.write(VmcsField.GUEST_RIP, 0xFFF0)
    assert vmcs.read(VmcsField.GUEST_RIP) == 0xFFF0
    assert vmcs.read(VmcsField.GUEST_RSP) == 0


def test_dvh_capability_bits_default_off():
    cap = VmxCapability()
    assert not cap.virtual_timer
    assert not cap.virtual_ipi
    assert cap.vmx and cap.ept and cap.vmcs_shadowing


def test_capability_copy_is_independent():
    cap = VmxCapability()
    clone = cap.copy()
    clone.virtual_timer = True
    assert not cap.virtual_timer


def test_exec_control_defaults():
    ctl = ExecControl()
    assert ctl.hlt_exiting  # hypervisors trap HLT by default (§3.4)
    assert not ctl.virtual_timer_enable
    assert not ctl.virtual_ipi_enable


def test_shadowing_covers_exit_info_fields():
    assert VmcsField.EXIT_REASON in SHADOWED_FIELDS
    assert VmcsField.GUEST_RIP in SHADOWED_FIELDS
    # Control fields are NOT shadowed: writing them must trap.
    assert VmcsField.PROC_CONTROLS not in SHADOWED_FIELDS
    assert VmcsField.TSC_OFFSET not in SHADOWED_FIELDS


def test_is_shadowed_requires_enablement():
    vmcs12 = Vmcs(owner_level=1)
    assert not vmcs12.is_shadowed(VmcsField.EXIT_REASON)
    vmcs12.controls.shadow_vmcs = True
    assert vmcs12.is_shadowed(VmcsField.EXIT_REASON)
    assert not vmcs12.is_shadowed(VmcsField.TSC_OFFSET)


def test_merge_combines_tsc_offsets():
    """§3.2: the host combines the guest hypervisor's TSC offset for its
    guest with its own offset for the guest hypervisor."""
    vmcs02 = Vmcs(owner_level=0)
    vmcs02.set_base_tsc_offset(-1000)  # L0's offset for L1
    vmcs12 = Vmcs(owner_level=1)
    vmcs12.write(VmcsField.TSC_OFFSET, -70)  # L1's offset for L2
    vmcs02.merge_from(vmcs12, host_controls=ExecControl())
    assert vmcs02.read(VmcsField.TSC_OFFSET) == -1070


def test_merge_hlt_exiting_or_semantics():
    """The merged VMCS traps HLT if either level wants it — the knob
    virtual idle manipulates (§3.4)."""
    host = ExecControl()
    host.hlt_exiting = True
    vmcs12 = Vmcs(owner_level=1)
    vmcs12.controls.hlt_exiting = False
    merged = Vmcs(owner_level=0)
    merged.merge_from(vmcs12, host)
    assert merged.controls.hlt_exiting  # host still wants the trap

    host.hlt_exiting = False
    merged.merge_from(vmcs12, host)
    assert not merged.controls.hlt_exiting


def test_merge_carries_dvh_enable_bits_and_guest_fields():
    vmcs12 = Vmcs(owner_level=1)
    vmcs12.controls.virtual_timer_enable = True
    vmcs12.controls.virtual_ipi_enable = True
    vmcs12.write(VmcsField.VCIMTAR, 0xABC000)
    vmcs12.write(VmcsField.VIRTUAL_TIMER_VECTOR, 0xEC)
    merged = Vmcs(owner_level=0)
    merged.merge_from(vmcs12, ExecControl())
    assert merged.controls.virtual_timer_enable
    assert merged.controls.virtual_ipi_enable
    assert merged.read(VmcsField.VCIMTAR) == 0xABC000
    assert merged.read(VmcsField.VIRTUAL_TIMER_VECTOR) == 0xEC


def test_merge_posted_interrupts_requires_both_levels():
    host = ExecControl()
    host.posted_interrupts = True
    host.apicv = True
    vmcs12 = Vmcs(owner_level=1)
    vmcs12.controls.posted_interrupts = False
    merged = Vmcs(owner_level=0)
    merged.merge_from(vmcs12, host)
    assert not merged.controls.posted_interrupts
    vmcs12.controls.posted_interrupts = True
    merged.merge_from(vmcs12, host)
    assert merged.controls.posted_interrupts
