"""Unit tests for posted-interrupt descriptors."""

import pytest

from repro.hw.lapic import Lapic
from repro.hw.posted import PiDescriptor


def test_post_sets_on_and_requests_notification():
    pid = PiDescriptor("vcpu0")
    assert pid.post(0x40) is True  # first post: notify
    assert pid.on
    assert pid.post(0x41) is False  # ON already set: no second IPI
    assert pid.pir == {0x40, 0x41}


def test_suppressed_notification():
    pid = PiDescriptor()
    pid.sn = True  # vCPU not running
    assert pid.post(0x40) is False
    assert not pid.on
    assert pid.has_pending


def test_sync_moves_pir_to_irr():
    pid = PiDescriptor()
    apic = Lapic(0)
    pid.post(0x40)
    pid.post(0xEC)
    moved = pid.sync_to(apic)
    assert moved == 2
    assert apic.irr == {0x40, 0xEC}
    assert not pid.has_pending
    assert not pid.on


def test_post_after_sync_notifies_again():
    pid = PiDescriptor()
    apic = Lapic(0)
    pid.post(0x40)
    pid.sync_to(apic)
    assert pid.post(0x41) is True


def test_bad_vector_rejected():
    pid = PiDescriptor()
    with pytest.raises(ValueError):
        pid.post(999)
