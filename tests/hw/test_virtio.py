"""Unit tests for virtqueues and virtio devices."""

import pytest

from repro.hw.devices.virtio import (
    NOTIFY_OFFSET,
    VirtioDevice,
    Virtqueue,
    VirtqueueFull,
)
from repro.hw.pci import CapabilityId, PciBus


def test_queue_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        Virtqueue(0, 100)
    Virtqueue(0, 128)


def test_add_pop_push_reap_roundtrip():
    q = Virtqueue(0, 8)
    desc_id = q.add_buffer(0x1000, 512, payload="pkt")
    assert q.avail_pending == 1
    popped = q.pop_avail()
    assert popped == (desc_id, 0x1000, 512, "pkt")
    assert q.avail_pending == 0
    q.push_used(desc_id, 512)
    assert q.used_pending == 1
    reaped = q.reap_used()
    assert reaped == [(desc_id, 512, "pkt")]
    assert q.used_pending == 0
    assert q.free_descriptors == 8


def test_pop_empty_returns_none():
    q = Virtqueue(0, 8)
    assert q.pop_avail() is None


def test_queue_full_raises():
    q = Virtqueue(0, 4)
    for i in range(4):
        q.add_buffer(i * 0x1000, 64)
    with pytest.raises(VirtqueueFull):
        q.add_buffer(0x9000, 64)


def test_index_wraparound():
    q = Virtqueue(0, 4)
    for round_ in range(10):  # 40 buffers through a 4-slot ring
        ids = [q.add_buffer(i * 0x1000, 64, payload=(round_, i)) for i in range(4)]
        for _ in ids:
            desc_id, _addr, _len, payload = q.pop_avail()
            q.push_used(desc_id, 64)
        reaped = q.reap_used()
        assert [p for (_d, _w, p) in reaped] == [(round_, i) for i in range(4)]
    assert q.avail_idx == 40
    assert q.used_idx == 40


def test_push_used_requires_in_use_descriptor():
    q = Virtqueue(0, 4)
    with pytest.raises(ValueError):
        q.push_used(0, 10)


def test_virtio_device_is_standard_pci():
    """Virtual-passthrough needs virtio devices that look like physical
    PCI devices (§3.1)."""
    dev = VirtioDevice("virtio-net0", kind="net")
    assert dev.has_capability(CapabilityId.MSIX)
    assert dev.has_capability(CapabilityId.PCIE)
    assert dev.vendor_id == 0x1AF4


def test_kick_dispatches_to_backend():
    bus = PciBus("b")
    dev = bus.plug(VirtioDevice("vnet", kind="net"))
    kicks = []
    dev.on_kick = kicks.append
    dev.mmio_write(dev.notify_addr, 1)
    dev.mmio_write(dev.notify_addr, 0)
    assert kicks == [1, 0]


def test_non_doorbell_write_ignored():
    bus = PciBus("b")
    dev = bus.plug(VirtioDevice("vnet"))
    dev.on_kick = lambda q: pytest.fail("should not kick")
    dev.mmio_write(dev.bars[0].base + 0x8, 1)  # config write


def test_notify_addr_requires_bus():
    dev = VirtioDevice("vnet")
    with pytest.raises(RuntimeError):
        _ = dev.notify_addr


def test_rx_tx_queue_roles():
    dev = VirtioDevice("vnet", num_queues=2)
    assert dev.rx.index == 0
    assert dev.tx.index == 1
