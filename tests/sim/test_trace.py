"""Tests for the tracing facility."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import Tracer


def test_emit_records_time_and_fields():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.now = 123
    tracer.emit("exit", reason="hlt", level=2)
    (event,) = tracer.events()
    assert event.time == 123
    assert event.category == "exit"
    assert event.fields == {"reason": "hlt", "level": 2}


def test_capacity_bounds_buffer():
    sim = Simulator()
    tracer = Tracer(sim, capacity=5)
    for i in range(20):
        tracer.emit("e", i=i)
    assert len(tracer) == 5
    assert [e.fields["i"] for e in tracer.events()] == [15, 16, 17, 18, 19]


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(Simulator(), capacity=0)


def test_category_and_time_filters():
    sim = Simulator()
    tracer = Tracer(sim)
    for t, cat in [(10, "a"), (20, "b"), (30, "a")]:
        sim.now = t
        tracer.emit(cat)
    assert len(tracer.events(category="a")) == 2
    assert len(tracer.events(since=15)) == 2
    assert len(tracer.events(category="a", since=15)) == 1


def test_predicate_filter_drops():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_filter(lambda e: e.category != "noise")
    tracer.emit("noise")
    tracer.emit("signal")
    assert len(tracer) == 1
    assert tracer.dropped == 1


def test_disable_enable():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.enabled = False
    tracer.emit("e")
    assert len(tracer) == 0
    tracer.enabled = True
    tracer.emit("e")
    assert len(tracer) == 1


def test_categories_summary():
    sim = Simulator()
    tracer = Tracer(sim)
    for cat in ["a", "b", "a"]:
        tracer.emit(cat)
    assert tracer.categories() == {"a": 2, "b": 1}


def test_render_formats():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.now = 2_200_000
    tracer.emit("exit", reason="vmcall")
    text = tracer.render(freq_hz=2_200_000_000)
    assert "1.0000ms" in text
    assert "vmcall" in text
    text_cycles = tracer.render()
    assert "2,200,000" in text_cycles


def test_clear():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("e")
    tracer.clear()
    assert len(tracer) == 0
