"""Tests for the tracing facility."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import Tracer


def test_emit_records_time_and_fields():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.now = 123
    tracer.emit("exit", reason="hlt", level=2)
    (event,) = tracer.events()
    assert event.time == 123
    assert event.category == "exit"
    assert event.fields == {"reason": "hlt", "level": 2}


def test_capacity_bounds_buffer():
    sim = Simulator()
    tracer = Tracer(sim, capacity=5)
    for i in range(20):
        tracer.emit("e", i=i)
    assert len(tracer) == 5
    assert [e.fields["i"] for e in tracer.events()] == [15, 16, 17, 18, 19]
    assert tracer.evicted == 15


def test_dropped_and_evicted_are_distinct():
    """Filter rejections and ring-buffer evictions are different losses:
    one is policy, the other means the buffer was too small."""
    sim = Simulator()
    tracer = Tracer(sim, capacity=3)
    tracer.add_filter(lambda e: e.category != "noise")
    for _ in range(4):
        tracer.emit("noise")
    for i in range(5):
        tracer.emit("signal", i=i)
    assert tracer.dropped == 4
    assert tracer.evicted == 2
    assert len(tracer) == 3
    # A filtered-out event never evicts anything.
    tracer.emit("noise")
    assert tracer.evicted == 2


def test_render_reports_both_loss_counters():
    sim = Simulator()
    tracer = Tracer(sim, capacity=2)
    tracer.add_filter(lambda e: e.category != "noise")
    tracer.emit("noise")
    for i in range(3):
        tracer.emit("e", i=i)
    text = tracer.render()
    assert "(1 events filtered out)" in text
    assert "(1 events evicted from the ring buffer)" in text


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(Simulator(), capacity=0)


def test_category_and_time_filters():
    sim = Simulator()
    tracer = Tracer(sim)
    for t, cat in [(10, "a"), (20, "b"), (30, "a")]:
        sim.now = t
        tracer.emit(cat)
    assert len(tracer.events(category="a")) == 2
    assert len(tracer.events(since=15)) == 2
    assert len(tracer.events(category="a", since=15)) == 1


def test_predicate_filter_drops():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.add_filter(lambda e: e.category != "noise")
    tracer.emit("noise")
    tracer.emit("signal")
    assert len(tracer) == 1
    assert tracer.dropped == 1


def test_disable_enable():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.enabled = False
    tracer.emit("e")
    assert len(tracer) == 0
    tracer.enabled = True
    tracer.emit("e")
    assert len(tracer) == 1


def test_categories_summary():
    sim = Simulator()
    tracer = Tracer(sim)
    for cat in ["a", "b", "a"]:
        tracer.emit(cat)
    assert tracer.categories() == {"a": 2, "b": 1}


def test_render_formats():
    sim = Simulator()
    tracer = Tracer(sim)
    sim.now = 2_200_000
    tracer.emit("exit", reason="vmcall")
    text = tracer.render(freq_hz=2_200_000_000)
    assert "1.0000ms" in text
    assert "vmcall" in text
    text_cycles = tracer.render()
    assert "2,200,000" in text_cycles


def test_clear():
    sim = Simulator()
    tracer = Tracer(sim, capacity=1)
    tracer.add_filter(lambda e: e.category != "noise")
    tracer.emit("noise")
    tracer.emit("e")
    tracer.emit("e")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0
    assert tracer.evicted == 0
