"""Tests for the cost model's structural calibration facts."""

from repro.sim import CostModel, default_costs


def test_defaults_construct():
    costs = default_costs()
    assert isinstance(costs, CostModel)


def test_l0_roundtrip_matches_table3_hypercall_scale():
    """A trivial exit to L0 must cost ~1.6K cycles (Table 3, Hypercall/VM)."""
    costs = default_costs()
    roundtrip = costs.l0_roundtrip(costs.emul_hypercall)
    assert 1_200 <= roundtrip <= 2_000


def test_forwarded_exit_structurally_expensive():
    """The guest-hypervisor handler's trapping op budget must make a
    forwarded exit >10x a direct one (Section 2, exit multiplication)."""
    costs = default_costs()
    direct = costs.l0_roundtrip(costs.emul_hypercall)
    trapped_ops = costs.ghv_vmcs_trapped_reads + costs.ghv_vmcs_trapped_writes
    forwarded_floor = (
        trapped_ops * costs.l0_roundtrip(costs.emul_vmcs_access)
        + costs.l0_roundtrip(costs.emul_vmresume_merge)
        + costs.forward_state_save
    )
    assert forwarded_floor > 10 * direct


def test_scaled_returns_modified_copy():
    costs = default_costs()
    doubled = costs.scaled(hw_exit=costs.hw_exit * 2)
    assert doubled.hw_exit == 2 * costs.hw_exit
    assert costs.hw_exit == default_costs().hw_exit  # original untouched
    assert doubled.hw_entry == costs.hw_entry


def test_as_dict_covers_all_fields():
    costs = default_costs()
    d = costs.as_dict()
    assert d["hw_exit"] == costs.hw_exit
    assert len(d) == len(costs.__dataclass_fields__)


def test_all_costs_non_negative():
    for name, value in default_costs().as_dict().items():
        assert value >= 0, name
