"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0
    assert sim.now_seconds == 0.0


def test_call_after_ordering():
    sim = Simulator()
    order = []
    sim.call_after(10, lambda: order.append("b"))
    sim.call_after(5, lambda: order.append("a"))
    sim.call_after(10, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 10


def test_ties_break_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.call_after(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == list("abcde")


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.now = 100
    with pytest.raises(SimulationError):
        sim.call_at(50, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda: None)


def test_process_delay_yield():
    sim = Simulator()

    def proc():
        yield 100
        yield 50
        return "done"

    result = sim.run_process(proc())
    assert result == "done"
    assert sim.now == 150


def test_process_yield_from_composition():
    sim = Simulator()

    def inner():
        yield 30
        return 7

    def outer():
        value = yield from inner()
        yield 20
        return value * 2

    assert sim.run_process(outer()) == 14
    assert sim.now == 50


def test_event_wait_and_trigger():
    sim = Simulator()
    ev = sim.event("go")
    log = []

    def waiter():
        value = yield ev
        log.append((sim.now, value))

    def firer():
        yield 40
        ev.trigger("payload")

    sim.spawn(waiter(), "w")
    sim.spawn(firer(), "f")
    sim.run()
    assert log == [(40, "payload")]


def test_wait_on_already_triggered_event_returns_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(42)

    def waiter():
        value = yield ev
        return value

    assert sim.run_process(waiter()) == 42
    assert sim.now == 0


def test_event_trigger_idempotent():
    sim = Simulator()
    ev = sim.event()
    ev.trigger(1)
    ev.trigger(2)
    assert ev.value == 1


def test_multiple_waiters_fifo():
    sim = Simulator()
    ev = sim.event()
    woken = []

    def waiter(tag):
        yield ev
        woken.append(tag)

    for tag in range(5):
        sim.spawn(waiter(tag), f"w{tag}")
    sim.call_after(10, lambda: ev.trigger())
    sim.run()
    assert woken == [0, 1, 2, 3, 4]


def test_process_join():
    sim = Simulator()

    def child():
        yield 100
        return "child-result"

    def parent():
        proc = sim.spawn(child(), "child")
        value = yield proc
        return (sim.now, value)

    assert sim.run_process(parent()) == (100, "child-result")


def test_join_already_finished_process():
    sim = Simulator()

    def child():
        yield 5
        return 99

    def parent():
        proc = sim.spawn(child(), "child")
        yield 50
        value = yield proc
        return value

    assert sim.run_process(parent()) == 99
    assert sim.now == 50


def test_bad_yield_raises():
    sim = Simulator()

    def bad():
        yield "nonsense"

    sim.spawn(bad(), "bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_delay_yield_raises():
    sim = Simulator()

    def bad():
        yield -5

    sim.spawn(bad(), "bad")
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_clock():
    sim = Simulator()
    hits = []
    sim.call_after(100, lambda: hits.append(1))
    sim.call_after(300, lambda: hits.append(2))
    sim.run(until=200)
    assert hits == [1]
    assert sim.now == 200
    sim.run()
    assert hits == [1, 2]
    assert sim.now == 300


def test_run_until_advances_clock_when_idle():
    sim = Simulator()
    sim.run(until=500)
    assert sim.now == 500


def test_run_process_deadlock_detection():
    sim = Simulator()
    ev = sim.event()

    def stuck():
        yield ev

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck())


def test_cycles_seconds_roundtrip():
    sim = Simulator(freq_hz=2_200_000_000)
    assert sim.cycles(1.0) == 2_200_000_000
    assert sim.seconds(2_200_000_000) == pytest.approx(1.0)
    assert sim.cycles(sim.seconds(12345)) == 12345


def test_determinism_across_runs():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        trace = []

        def proc(tag):
            for _ in range(10):
                yield sim.rng.randrange(1, 100)
                trace.append((sim.now, tag))

        for t in range(3):
            sim.spawn(proc(t), f"p{t}")
        sim.run()
        return trace

    assert build_and_run(7) == build_and_run(7)
    assert build_and_run(7) != build_and_run(8)


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None, "notgen")  # type: ignore[arg-type]


def test_float_delay_truncated_to_int_time():
    sim = Simulator()

    def proc():
        yield 10.7

    sim.run_process(proc())
    assert isinstance(sim.now, int)
    assert sim.now == 10


def test_max_events_budget_is_per_call():
    """A fresh ``run(max_events=n)`` gets a fresh budget of n — it must
    not be charged for events executed by earlier run() calls."""
    sim = Simulator()
    hits = []
    for i in range(10):
        sim.call_after(i + 1, lambda i=i: hits.append(i))
    sim.run(max_events=3)
    assert hits == [0, 1, 2]
    sim.run(max_events=3)
    assert hits == [0, 1, 2, 3, 4, 5]
    sim.run(max_events=3)
    assert hits == [0, 1, 2, 3, 4, 5, 6, 7, 8]


def test_max_events_counts_process_steps():
    sim = Simulator()
    steps = []

    def proc():
        for i in range(100):
            steps.append(i)
            yield 1

    sim.spawn(proc(), "p")
    sim.run(max_events=5)
    done_after_first = len(steps)
    assert 0 < done_after_first < 100
    sim.run(max_events=5)
    assert len(steps) > done_after_first  # fresh budget made progress
    sim.run()
    assert len(steps) == 100


def test_fast_path_preserves_event_callback_interleaving():
    """A callback scheduled for the current time before a resume was
    queued must still run first (global seq order among same-time work)."""
    sim = Simulator()
    order = []
    ev = sim.event()

    def waiter():
        yield ev
        order.append("resumed")

    def driver():
        yield 10
        # At t=10: schedule a callback, then trigger the event.  The
        # callback has the smaller sequence number and must win.
        sim.call_after(0, lambda: order.append("callback"))
        ev.trigger()
        order.append("driver-continues")
        yield 1

    sim.spawn(waiter(), "w")
    sim.spawn(driver(), "d")
    sim.run()
    assert order == ["driver-continues", "callback", "resumed"]


def test_inline_advance_does_not_skip_same_time_callbacks():
    """A delay yield may not advance past a callback scheduled at the
    exact expiry time."""
    sim = Simulator()
    order = []
    sim.call_after(50, lambda: order.append(("cb", sim.now)))

    def proc():
        yield 50
        order.append(("proc", sim.now))

    sim.spawn(proc(), "p")
    sim.run()
    assert order == [("cb", 50), ("proc", 50)]


def test_stats_counters():
    sim = Simulator()
    ev = sim.event()

    def waiter():
        yield ev

    def firer():
        yield 10
        ev.trigger()
        yield 5

    sim.spawn(waiter(), "w")
    sim.spawn(firer(), "f")
    sim.run()
    s = sim.stats()
    assert s["events_executed"] > 0
    assert s["ready_hits"] > 0  # spawns and the event resume
    assert s["pending_events"] == 0
    assert s["last_run_events"] == s["events_executed"]
    assert s["last_run_wall_s"] >= 0.0
    assert s["last_run_events_per_sec"] >= 0.0


def test_stats_last_run_resets_per_call():
    sim = Simulator()

    def proc(n):
        for _ in range(n):
            yield 1

    sim.spawn(proc(50), "a")
    sim.run()
    first_total = sim.stats()["events_executed"]
    sim.spawn(proc(2), "b")
    sim.run()
    s = sim.stats()
    assert s["events_executed"] > first_total  # lifetime accumulates
    assert s["last_run_events"] < first_total  # last-run is per call
