"""Tests for process cancellation and timeouts."""

import pytest

from repro.sim import Simulator


def test_cancel_stops_execution():
    sim = Simulator()
    steps = []

    def proc():
        for i in range(10):
            yield 100
            steps.append(i)

    p = sim.spawn(proc(), "p")
    sim.call_after(350, lambda: p.cancel())
    sim.run()
    assert steps == [0, 1, 2]
    assert p.done and p.cancelled
    assert p.result is None


def test_cancel_finished_process_is_noop():
    sim = Simulator()

    def proc():
        yield 10
        return "done"

    p = sim.spawn(proc(), "p")
    sim.run()
    assert not p.cancel()
    assert p.result == "done"
    assert not p.cancelled


def test_cancel_resumes_joiners_with_none():
    sim = Simulator()

    def child():
        yield 10_000

    def parent():
        c = sim.spawn(child(), "c")
        sim.call_after(100, lambda: c.cancel())
        value = yield c
        return ("joined", value, sim.now)

    assert sim.run_process(parent()) == ("joined", None, 100)


def test_cancel_while_waiting_on_event():
    sim = Simulator()
    ev = sim.event()

    def proc():
        yield ev
        raise AssertionError("must not resume")

    p = sim.spawn(proc(), "p")
    sim.call_after(10, lambda: p.cancel())
    sim.call_after(20, lambda: ev.trigger())  # fires after cancellation
    sim.run()
    assert p.cancelled


def test_cancel_runs_generator_cleanup():
    sim = Simulator()
    cleaned = []

    def proc():
        try:
            yield 10_000
        finally:
            cleaned.append(True)

    p = sim.spawn(proc(), "p")
    sim.call_after(1, lambda: p.cancel())
    sim.run()
    assert cleaned == [True]


def test_timeout_event():
    sim = Simulator()

    def proc():
        value = yield sim.timeout(500, value="ding")
        return (sim.now, value)

    assert sim.run_process(proc()) == (500, "ding")


def test_timeout_as_watchdog_with_cancel():
    """The watchdog pattern: a timeout process cancels a stuck worker."""
    sim = Simulator()
    stuck_event = sim.event("never")

    def worker():
        yield stuck_event  # never triggered: stuck forever

    w = sim.spawn(worker(), "worker")

    def watchdog():
        yield sim.timeout(5_000)
        w.cancel()
        return sim.now

    assert sim.run_process(watchdog()) == 5_000
    assert w.cancelled
