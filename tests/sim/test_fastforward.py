"""Steady-state fast-forward: equivalence and invalidation.

The hard acceptance test for epoch skipping is *byte identity*: every
simulated observable — final clock, every Metrics counter, workload
results, latency lists, fuzz digests — must be exactly the same with
fast-forward on and off.  Skipping may only change host wall time.

The second half covers the invalidation rules: any observer or aperiodic
event (fault injector, live migration, span tracing, audit attach) must
stop macro-events from engaging or drop the locked fingerprint.
"""

import pytest

from repro.core.features import DvhFeatures
from repro.core.vidle import run_poll_idle_loop
from repro.core.vtimer import run_tick_loop
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import run_app
from repro.workloads.microbench import run_microbenchmark


def _digest(stack):
    """Every simulated observable of a single-stack run."""
    return (
        stack.sim.now,
        repr(sorted(stack.metrics.snapshot().items())),
        stack.sim.rng.getstate(),
    )


def _stack(ff, **kw):
    kw.setdefault("levels", 2)
    kw.setdefault("io_model", "virtio")
    kw.setdefault("dvh", DvhFeatures.full())
    return build_stack(StackConfig(fast_forward=ff, **kw))


# ----------------------------------------------------------------------
# Equivalence: byte-identical digests with fast-forward on vs off
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench", ["Hypercall", "DevNotify", "ProgramTimer"])
def test_table3_micro_ops_byte_identical(bench):
    runs = {}
    for ff in (False, True):
        stack = _stack(ff)
        cycles = run_microbenchmark(stack, bench, iterations=40)
        runs[ff] = (cycles, _digest(stack), stack.sim.ff.epochs_skipped)
    assert runs[True][:2] == runs[False][:2]
    # Not vacuous: with fast-forward on, most iterations were skipped.
    assert runs[True][2] > 20
    assert runs[False][2] == 0


@pytest.mark.parametrize(
    "levels,io_model,dvh",
    [
        (2, "virtio", DvhFeatures.full()),
        (2, "vp", DvhFeatures.full()),
        (1, "virtio", DvhFeatures.none()),
    ],
)
def test_fig7_netperf_rr_byte_identical(levels, io_model, dvh):
    runs = {}
    for ff in (False, True):
        stack = _stack(ff, levels=levels, io_model=io_model, dvh=dvh)
        r = run_app(stack, "netperf_rr", scale=0.3)
        runs[ff] = (
            (r.value, r.elapsed_s, r.txns, tuple(r.latencies)),
            _digest(stack),
            stack.sim.ff.epochs_skipped,
        )
    assert runs[True][:2] == runs[False][:2]
    assert runs[False][2] == 0


def test_netperf_rr_steady_state_actually_skips():
    stack = _stack(True)
    run_app(stack, "netperf_rr", scale=0.5)
    ff = stack.sim.ff
    assert ff.detections >= 1
    assert ff.epochs_skipped > 50
    # Skipped work stays observable through stats().
    stats = stack.sim.stats()
    assert stats["ff_epochs_skipped"] == ff.epochs_skipped
    assert stats["ff_macro_events"] == ff.macro_events


def test_vtimer_tick_loop_byte_identical():
    runs = {}
    for ff in (False, True):
        stack = _stack(ff)
        per_tick = run_tick_loop(stack, ticks=300)
        runs[ff] = (per_tick, _digest(stack), stack.sim.ff.epochs_skipped)
    assert runs[True][:2] == runs[False][:2]
    assert runs[True][2] > 250


def test_poll_idle_loop_byte_identical():
    runs = {}
    for ff in (False, True):
        stack = _stack(ff)
        polled = run_poll_idle_loop(stack, polls=300)
        runs[ff] = (polled, _digest(stack), stack.sim.ff.epochs_skipped)
    assert runs[True][:2] == runs[False][:2]
    assert runs[True][2] > 250


def test_fuzz_campaign_digests_identical():
    """100 episodes, every digest identical with fast-forward on vs off.

    Fault injection vetoes skipping, so this doubles as the guard that
    the fast-forward machinery never perturbs a run it cannot skip.
    """
    from repro.bench.runner import fast_forward_override
    from repro.faults.fuzz import TrapChainFuzzer

    outcomes = {}
    for ff in (False, True):
        with fast_forward_override(ff):
            campaign = TrapChainFuzzer(
                seed=11, episodes=100, replay_every=0, ops_per_worker=6
            ).run()
        outcomes[ff] = [
            (e.digest, e.config_desc, tuple(e.violations))
            for e in campaign.episodes
        ]
    assert outcomes[True] == outcomes[False]


def test_cluster_migrate_byte_identical():
    from repro.cluster import Cluster, TenantSpec

    runs = {}
    for ff in (False, True):
        cluster = Cluster(num_hosts=2, seed=7, fast_forward=ff)
        cluster.place(TenantSpec(name="t0", io_model="vp", memory_gb=4))
        record = cluster.migrate("t0", "host1")
        runs[ff] = (
            (
                record.outcome,
                record.result.total_s,
                record.result.downtime_s,
                record.result.bytes_transferred,
            ),
            cluster.sim.now,
            repr(sorted(cluster.fabric.metrics.snapshot().items())),
            [
                repr(sorted(h.machine.metrics.snapshot().items()))
                for h in cluster.hosts
            ],
            {h.name: dict(h.port.frames) for h in cluster.hosts},
            {h.name: dict(h.port.wire.bytes_carried) for h in cluster.hosts},
            cluster.sim.ff.epochs_skipped,
        )
    assert runs[True][:6] == runs[False][:6]
    # The pre-copy chunk cadence skipped on the fast-forward run.
    assert runs[True][6] > 0
    assert runs[False][6] == 0


# ----------------------------------------------------------------------
# Invalidation: observers and aperiodic events stop macro-events
# ----------------------------------------------------------------------
def test_fault_injector_attached_vetoes_skipping():
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

    stack = _stack(True)
    FaultInjector(stack.machine, FaultPlan.empty(), seed=3).attach()
    run_microbenchmark(stack, "Hypercall", iterations=40)
    assert stack.sim.ff.epochs_skipped == 0
    assert stack.sim.ff.invalidations.get("faults", 0) > 0


def test_audit_attached_vetoes_skipping():
    from repro.audit import Auditor

    stack = _stack(True)
    auditor = Auditor()
    auditor.attach_stack(stack)
    run_microbenchmark(stack, "Hypercall", iterations=40)
    assert stack.sim.ff.epochs_skipped == 0
    assert stack.sim.ff.invalidations.get("audit", 0) > 0
    assert auditor.finish().ok


def test_span_tracing_attached_vetoes_skipping():
    stack = _stack(True)
    stack.machine.enable_span_tracing()
    run_microbenchmark(stack, "Hypercall", iterations=40)
    assert stack.sim.ff.epochs_skipped == 0
    assert stack.sim.ff.invalidations.get("spans", 0) > 0


def test_hist_capture_rides_fast_forward_byte_identical():
    """Histogram-only request capture joins the fingerprint and scales
    across skipped epochs: same tables, same latency list, byte for
    byte — and skipping really happened."""
    import dataclasses

    from repro.workloads.apps import NETPERF_RR
    from repro.workloads.engines import run_rr

    runs = {}
    for ff in (False, True):
        stack = _stack(ff, io_model="vp")
        stack.machine.enable_request_capture(series="rr")
        result = run_rr(stack, dataclasses.replace(NETPERF_RR, txns=200))
        runs[ff] = (
            result.latencies,
            _digest(stack),
            stack.metrics.latency_histogram("rr").snapshot(),
            stack.sim.ff.epochs_skipped,
        )
    assert runs[True][:3] == runs[False][:3]
    assert runs[True][3] > 100
    assert runs[False][3] == 0


def test_record_retention_vetoes_skipping():
    """keep_records observes individual requests, so it must veto
    macro-events — with the 'request_records' cause on the books."""
    import dataclasses

    from repro.workloads.apps import NETPERF_RR
    from repro.workloads.engines import run_rr

    stack = _stack(True, io_model="vp")
    cap = stack.machine.enable_request_capture(series="rr", keep_records=True)
    run_rr(stack, dataclasses.replace(NETPERF_RR, txns=60))
    assert stack.sim.ff.epochs_skipped == 0
    assert stack.sim.ff.invalidations.get("request_records", 0) > 0
    assert len(cap.records) == 60


def test_open_loop_arrivals_not_skipped():
    """Poisson arrival gaps are RNG-drawn, never periodic: the engine
    must not treat an open-loop run as a steady state."""
    import dataclasses

    from repro.workloads.apps import NETPERF_RR
    from repro.workloads.engines import run_rr

    stack = _stack(True, io_model="vp")
    run_rr(
        stack,
        dataclasses.replace(
            NETPERF_RR, txns=60, arrival="poisson", offered_tps=30_000.0
        ),
    )
    assert stack.sim.ff.epochs_skipped == 0


def test_trace_digest_identical_under_span_veto():
    """An attached tracer sees the identical timeline either way (the
    veto forces micro-stepping, so no trace event is ever macro-hidden)."""
    from repro.sim.trace import Tracer

    digests = {}
    for ff in (False, True):
        stack = _stack(ff)
        tracer = Tracer(stack.sim, capacity=100_000)
        stack.machine.enable_span_tracing(tracer=tracer)
        run_microbenchmark(stack, "ProgramTimer", iterations=30)
        digests[ff] = tracer.digest()
    assert digests[True] == digests[False]


def test_migration_start_perturbs_and_vetoes():
    """A live migration mid-run bumps the generation (dropping locked
    fingerprints) and vetoes workload skipping until it completes."""
    from repro.core.migration import LiveMigration

    stack = _stack(True, io_model="vp")
    generation_before = stack.sim.ff.generation
    migration = LiveMigration(stack.machine, stack.leaf_vm)
    result = stack.sim.run_process(migration.run(), "migration")
    assert result.total_s > 0
    assert stack.sim.ff.generation > generation_before
    assert stack.sim.ff.invalidations.get("migration", 0) >= 1
    # The veto lifted once the migration finished.
    assert stack.machine.ff_migrations == 0


def test_mid_epoch_perturbation_drops_fingerprint():
    """perturb() between observes restarts confirmation from scratch."""
    from repro.metrics import Metrics
    from repro.sim import Simulator

    sim = Simulator(fast_forward=True)
    metrics = Metrics()
    sim.ff.register_metrics(metrics)
    skipped = []

    def loop():
        src = sim.ff.source("unit:loop")
        left = 60
        while left > 0:
            metrics.charge("guest_work", 500)
            yield 500
            left -= 1
            # Perturb early, while the fingerprint is still confirming
            # (before the first macro-skip can jump the counter past us).
            if left == 57:
                sim.ff.perturb("test-cause")
            if left:
                n = src.observe(left)
                skipped.append(n)
                left -= n

    sim.spawn(loop(), "loop")
    sim.run()
    assert sim.ff.invalidations.get("test-cause", 0) == 1
    # It re-locked and skipped after the perturbation.
    assert sum(skipped) > 0


def test_disabled_simulator_never_skips():
    stack = _stack(False)
    run_microbenchmark(stack, "Hypercall", iterations=40)
    assert stack.sim.ff.enabled is False
    assert stack.sim.ff.epochs_skipped == 0


# ----------------------------------------------------------------------
# Engine primitives: ff_scan / ff_shift safety rails
# ----------------------------------------------------------------------
def test_ff_shift_refuses_pending_work_in_window():
    from repro.sim import Simulator, SimulationError

    sim = Simulator(fast_forward=True)
    sim.call_at(1_000, lambda: None)
    carriers, window = sim.ff_scan(10_000)
    # The callable is not a Process, so it is a window blocker, not a
    # carrier.
    assert carriers == []
    assert window == 1_000
    with pytest.raises(SimulationError):
        sim.ff_shift([], 5_000)


def test_ff_scan_reports_runnable_work_as_unsafe():
    from repro.sim import Simulator

    sim = Simulator(fast_forward=True)

    def proc():
        yield 1

    sim.spawn(proc(), "p")  # spawn enqueues on the ready deque
    carriers, window = sim.ff_scan(1_000)
    assert carriers is None and window is None
