"""Integration: recursive DVH (§3.5) — enable-bit AND-combining across
three virtualization levels, and recursive virtual-passthrough."""

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack


def build_l3_dvh():
    stack = build_stack(StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full()))
    stack.settle()
    return stack


def timer_owner(stack):
    """Where does L0 route the leaf's timer access?"""
    leaf = stack.ctx(0)
    from repro.hw.ops import Exit, ExitReason, Op

    exit_ = Exit(
        reason=ExitReason.APIC_TIMER,
        op=Op.WRMSR,
        from_level=leaf.level,
        info={"deadline": 10**9},
        vcpu=leaf,
    )
    return stack.machine.host_hv._route(leaf, exit_)


def test_all_enabled_routes_to_l0():
    stack = build_l3_dvh()
    assert timer_owner(stack) == 0


def test_and_rule_level2_disable():
    """Clear the bit the L2 hypervisor set for the L3 VM: the L2
    hypervisor must emulate."""
    stack = build_l3_dvh()
    for vcpu in stack.vms[2].vcpus:
        vcpu.vmcs.controls.virtual_timer_enable = False
    assert timer_owner(stack) == 2


def test_and_rule_level1_disable():
    """Clear the bit the L1 hypervisor set for the L2 VM: forwarding
    stops at the L1 hypervisor."""
    stack = build_l3_dvh()
    for vcpu in stack.vms[1].vcpus:
        vcpu.vmcs.controls.virtual_timer_enable = False
    assert timer_owner(stack) == 1


def test_recursive_vp_only_l1_viommu_used_at_dma_time():
    """Figure 6: multiple virtual IOMMUs configure the assignment, but
    only the L1 vIOMMU's shadow table is used when the device DMAs."""
    stack = build_l3_dvh()
    assignment = stack.vp_assignment
    assert len(assignment.viommus) == 2
    outer = assignment.viommus[0]  # the L0-provided (L1-level) vIOMMU
    assert outer.shadow_tables[assignment.device.bdf] is assignment.shadow


def test_recursive_virtual_idle_all_levels_cleared():
    stack = build_l3_dvh()
    for vm in stack.vms[1:]:
        assert not any(v.vmcs.controls.hlt_exiting for v in vm.vcpus)


def test_recursive_capability_re_exposure():
    """Each guest hypervisor re-exposes the virtual hardware it
    discovered to the next level (§3.5)."""
    stack = build_l3_dvh()
    assert stack.hvs[1].capability.virtual_timer
    assert stack.hvs[2].capability.virtual_timer


def test_l3_workload_end_to_end_with_full_dvh():
    """Sanity: an L3 workload completes with DVH and stays near VM-level
    overhead."""
    from repro.workloads.apps import run_app

    native = build_stack(StackConfig(levels=0, io_model="native"))
    base = run_app(native, "netperf_rr", scale=0.2)
    stack = build_l3_dvh()
    r = run_app(stack, "netperf_rr", scale=0.2)
    assert r.overhead_vs(base) < 2.5
