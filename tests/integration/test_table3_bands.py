"""Integration: the emergent microbenchmark costs land within loose
bands of the paper's Table 3 (the calibration contract of DESIGN.md).

These are *not* tight assertions on absolute numbers — the substrate is
a simulator — but each cell must land within 2x of the paper's value,
and all the paper's orderings must hold.
"""

import pytest

from repro.bench.tables import PAPER_TABLE3
from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark

CONFIGS = {
    "VM": (1, DvhFeatures.none()),
    "nested VM": (2, DvhFeatures.none()),
    "nested VM + DVH": (2, DvhFeatures.full()),
    "L3 VM": (3, DvhFeatures.none()),
    "L3 VM + DVH": (3, DvhFeatures.full()),
}


def measure(config_name: str, bench: str) -> float:
    levels, dvh = CONFIGS[config_name]
    io = "vp" if (dvh.virtual_passthrough and levels >= 2) else "virtio"
    stack = build_stack(StackConfig(levels=levels, io_model=io, dvh=dvh))
    return run_microbenchmark(stack, bench, 20)


@pytest.mark.parametrize("bench", sorted(PAPER_TABLE3))
@pytest.mark.parametrize("config", sorted(CONFIGS))
def test_cell_within_2x_of_paper(bench, config):
    measured = measure(config, bench)
    paper = PAPER_TABLE3[bench][config]
    assert paper / 2 <= measured <= paper * 2, (
        f"{bench}/{config}: measured {measured:,.0f}, paper {paper:,}"
    )


def test_per_level_multiplication_factor():
    """Each nesting level multiplies hypercall cost by roughly the same
    ~20x factor (§2's exit multiplication; Table 3 shows 24x and 23x)."""
    vm = measure("VM", "Hypercall")
    l2 = measure("nested VM", "Hypercall")
    l3 = measure("L3 VM", "Hypercall")
    assert 12 <= l2 / vm <= 35
    assert 12 <= l3 / l2 <= 35


def test_dvh_flat_across_levels():
    """§4: DVH gives similar cost for L2 and L3 — exit multiplication is
    gone for DVH-covered operations."""
    for bench in ("DevNotify", "ProgramTimer", "SendIPI"):
        l2 = measure("nested VM + DVH", bench)
        l3 = measure("L3 VM + DVH", bench)
        assert l3 / l2 < 1.6
