"""Integration: virtualization levels beyond the paper's L3.

The paper stops at three levels because "additional virtualization
levels are not supported by KVM" (§4).  The simulator has no such
limit, so we can test the paper's central claims *extrapolate*: exit
multiplication keeps compounding ~20x per level, while recursive DVH
(§3.5) stays flat at any depth.
"""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import MAX_LEVELS, StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark


def test_max_levels_is_beyond_paper():
    assert MAX_LEVELS >= 4


def test_level_cap_enforced():
    with pytest.raises(ValueError):
        build_stack(StackConfig(levels=MAX_LEVELS + 1))


def test_l4_stack_builds_and_chains():
    stack = build_stack(StackConfig(levels=4))
    assert [hv.level for hv in stack.hvs] == [0, 1, 2, 3]
    leaf = stack.ctx(0)
    assert [v.level for v in leaf.chain()] == [1, 2, 3, 4]


def test_exit_multiplication_keeps_compounding_at_l4():
    l3 = run_microbenchmark(build_stack(StackConfig(levels=3)), "Hypercall", 3)
    l4 = run_microbenchmark(build_stack(StackConfig(levels=4)), "Hypercall", 3)
    assert 10 <= l4 / l3 <= 35


def test_recursive_dvh_flat_at_l4():
    """§3.5's recursion scales: one exit, zero interventions, near-L2
    cost — four levels deep."""
    stack = build_stack(StackConfig(levels=4, io_model="vp", dvh=DvhFeatures.full()))
    stack.settle()
    ctx = stack.ctx(0)
    before = stack.metrics.copy()

    def op():
        yield from ctx.program_timer(ctx.read_tsc() + 10**9)

    stack.sim.run_process(op())
    delta = stack.metrics.diff(before)
    assert delta.total_exits() == 1
    assert delta.guest_hv_interventions() == 0

    l2 = run_microbenchmark(
        build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())),
        "ProgramTimer",
        10,
    )
    l4 = run_microbenchmark(
        build_stack(StackConfig(levels=4, io_model="vp", dvh=DvhFeatures.full())),
        "ProgramTimer",
        10,
    )
    assert l4 / l2 < 2.0


def test_l4_dvh_vcimt_registered_through_chain():
    stack = build_stack(StackConfig(levels=4, io_model="vp", dvh=DvhFeatures.full()))
    # The table for the L4 leaf lives in the L3 VM's memory.
    assert stack.leaf_vm.vcimtar is not None
    entry = stack.vms[2].memory.read(stack.leaf_vm.vcimtar)
    assert entry is stack.ctx(0)


def test_l4_dvh_workload_end_to_end():
    from repro.workloads.apps import run_app

    native = build_stack(StackConfig(levels=0, io_model="native"))
    base = run_app(native, "netperf_rr", scale=0.15)
    stack = build_stack(StackConfig(levels=4, io_model="vp", dvh=DvhFeatures.full()))
    r = run_app(stack, "netperf_rr", scale=0.15)
    assert r.overhead_vs(base) < 2.5
