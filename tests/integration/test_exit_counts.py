"""Integration: exact exit-count invariants for each DVH mechanism.

These pin down the *mechanism* (not just the cycle cost): how many
hardware exits and guest-hypervisor interventions each operation causes.
"""

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.ops import Op


def run_one(levels, dvh, op):
    io = "vp" if (dvh.virtual_passthrough and levels >= 2) else "virtio"
    stack = build_stack(StackConfig(levels=levels, io_model=io, dvh=dvh))
    stack.settle()
    ctx = stack.ctx(0)
    before = stack.metrics.copy()
    done = {}

    def gen():
        if op == "timer":
            yield from ctx.program_timer(ctx.read_tsc() + 10**9)
        elif op == "ipi":
            yield from ctx.send_ipi(1, 0xFD)
        elif op == "kick":
            device = stack.net.device
            yield from ctx.execute(
                Op.MMIO_WRITE, addr=device.notify_addr, value=1, device=device
            )
        done["delta"] = stack.metrics.diff(before)

    stack.sim.run_process(gen())
    return done["delta"]


def test_dvh_timer_is_one_exit_zero_interventions_any_level():
    for levels in (2, 3):
        delta = run_one(levels, DvhFeatures.full(), "timer")
        assert delta.total_exits() == 1
        assert delta.guest_hv_interventions() == 0


def test_dvh_ipi_send_is_one_exit():
    for levels in (2, 3):
        delta = run_one(levels, DvhFeatures.full(), "ipi")
        assert delta.exits_for_reason("apic_icr") == 1
        assert delta.guest_hv_interventions() == 0


def test_dvh_vp_kick_is_one_exit():
    for levels in (2, 3):
        delta = run_one(levels, DvhFeatures.full(), "kick")
        assert delta.total_exits() == 1
        assert delta.guest_hv_interventions() == 0


def test_without_dvh_nested_ops_multiply():
    for op in ("timer", "ipi", "kick"):
        delta = run_one(2, DvhFeatures.none(), op)
        assert delta.guest_hv_interventions() == 1
        # Exit multiplication: the one forwarded exit begat many more.
        assert delta.total_exits() > 10


def test_l3_multiplication_squares():
    timer_l2 = run_one(2, DvhFeatures.none(), "timer").total_exits()
    timer_l3 = run_one(3, DvhFeatures.none(), "timer").total_exits()
    assert timer_l3 > 8 * timer_l2


def test_dvh_trades_guest_exits_for_host_exits():
    """§3: "DVH therefore trades exits to guest hypervisors for exits to
    the host hypervisor" — the exit still happens, it just terminates at
    L0."""
    dvh = run_one(2, DvhFeatures.full(), "timer")
    assert dvh.total_exits() == 1  # still one exit...
    assert dvh.l0_handled["apic_timer"] == 1  # ...handled by the host
