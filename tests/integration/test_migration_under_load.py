"""Integration: live-migrate a nested VM while its workload runs.

The paper's migration experiment runs the application workloads during
migration (§4).  These tests check the interposition story end to end:
the workload keeps completing transactions, the device dirty log feeds
the pre-copy rounds, and the stop-and-copy pause shows up as a latency
tail but loses nothing.
"""

import dataclasses

from repro.core.features import DvhFeatures
from repro.core.migration import LiveMigration
from repro.hv.stack import StackConfig, build_stack
from repro.workloads import apps
from repro.workloads.engines import run_rr


def make():
    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    stack.settle()
    return stack


def quiet_migration_bytes(bandwidth_bps: float) -> int:
    stack = make()
    res = stack.sim.run_process(
        LiveMigration(
            stack.machine,
            stack.leaf_vm,
            devices=[stack.net.device],
            bandwidth_bps=bandwidth_bps,
        ).run()
    )
    return res.bytes_transferred


def test_memcached_survives_migration():
    bandwidth = 20e9
    stack = make()
    migration = LiveMigration(
        stack.machine,
        stack.leaf_vm,
        devices=[stack.net.device],
        bandwidth_bps=bandwidth,
    )
    holder = {}
    stack.sim.call_after(1_000, lambda: holder.setdefault(
        "proc", stack.sim.spawn(migration.run(), "migration")
    ))
    spec = dataclasses.replace(apps.MEMCACHED, txns=300)
    result = run_rr(stack, spec, settle=False)
    stack.sim.run()  # let the migration finish if it outlived the load
    assert result.txns == 300  # every transaction completed
    mig_proc = holder["proc"]
    assert mig_proc.done
    res = mig_proc.result
    assert res.downtime_s <= migration.downtime_target_s + 0.01
    # The workload's DMA traffic showed up in the logs: the live
    # migration moved more bytes than a quiet one at the same bandwidth.
    assert res.bytes_transferred > quiet_migration_bytes(bandwidth)


def test_workload_latency_tail_shows_stop_and_copy():
    stack = make()
    migration = LiveMigration(
        stack.machine,
        stack.leaf_vm,
        devices=[stack.net.device],
        bandwidth_bps=60e9,  # migration completes inside the workload
    )
    backend = stack.machine.host_hv.backends[stack.net.device]
    holder = {}
    stack.sim.call_after(1_000, lambda: holder.setdefault(
        "proc", stack.sim.spawn(migration.run(), "migration")
    ))
    spec = dataclasses.replace(apps.NETPERF_RR, txns=200)
    result = run_rr(stack, spec, settle=False)
    stack.sim.run()
    assert result.txns == 200  # nothing lost across the pause
    assert holder["proc"].done
    assert backend.paused is False  # resumed after switch-over
    # The pause is visible as a latency tail.
    ordered = sorted(result.latencies)
    assert ordered[-1] > 3 * ordered[len(ordered) // 2]
