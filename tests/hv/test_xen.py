"""Tests for the Xen guest-hypervisor flavour (Figure 10).

Xen is pure profile data now — :data:`repro.hv.profiles.XEN_PROFILE`
threaded through the shared :class:`~repro.hv.kvm.KvmHypervisor` — so
these tests pin the Xen figures byte-for-byte against the values the
subclass produced before it was collapsed.
"""

import pytest

from repro.hv.kvm import KvmHypervisor
from repro.hv.profiles import KVM_PROFILE, XEN_PROFILE
from repro.hv.stack import StackConfig, build_stack
from repro.hw.ops import ExitReason, Op
from repro.workloads.microbench import run_microbenchmark


def test_xen_op_counts_heavier_than_kvm():
    for reason in ExitReason:
        if reason not in KVM_PROFILE.op_counts:
            continue
        kr, kw = KVM_PROFILE.reason_op_counts(reason)
        xr, xw = XEN_PROFILE.reason_op_counts(reason)
        assert xr > kr and xw > kw


def test_xen_nested_exits_cost_more():
    kvm = build_stack(StackConfig(levels=2, guest_hv="kvm"))
    xen = build_stack(StackConfig(levels=2, guest_hv="xen"))
    kvm_cost = run_microbenchmark(kvm, "Hypercall", 20)
    xen_cost = run_microbenchmark(xen, "Hypercall", 20)
    assert xen_cost > kvm_cost * 1.2


@pytest.mark.parametrize(
    "name,levels,expected",
    [
        # Captured from the XenHypervisor subclass immediately before it
        # was deleted; the profile-driven build must not move a cycle.
        ("Hypercall", 2, 53_047.0),
        ("DevNotify", 2, 63_677.0),
        ("ProgramTimer", 3, 1_616_200.0),
    ],
)
def test_xen_figures_byte_identical_to_subclass(name, levels, expected):
    stack = build_stack(StackConfig(levels=levels, guest_hv="xen"))
    assert run_microbenchmark(stack, name, 30) == expected


def test_xen_io_notification_adds_event_channel_hypercall():
    """The split-driver model costs an extra evtchn hypercall per
    notification."""
    kvm = build_stack(StackConfig(levels=2, guest_hv="kvm"))
    xen = build_stack(StackConfig(levels=2, guest_hv="xen"))
    results = {}
    for name, stack in (("kvm", kvm), ("xen", xen)):
        stack.settle()
        ctx = stack.ctx(0)
        device = stack.net.device
        before = stack.metrics.copy()

        def kick(ctx=ctx, device=device):
            yield from ctx.execute(
                Op.MMIO_WRITE, addr=device.notify_addr, value=1, device=device
            )

        stack.sim.run_process(kick())
        results[name] = stack.metrics.diff(before)
    assert results["xen"].exits_for_reason("vmcall") > results[
        "kvm"
    ].exits_for_reason("vmcall")


def test_xen_works_with_virtual_passthrough_unmodified():
    """§3.1/§4: virtual-passthrough is hypervisor agnostic — assigning an
    L0 virtio device under a Xen guest hypervisor removes its
    interventions with zero Xen-side changes."""
    from repro.core.features import DvhFeatures

    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.vp_only(), guest_hv="xen")
    )
    stack.settle()
    ctx = stack.ctx(0)
    device = stack.net.device
    before = stack.metrics.copy()

    def kick():
        yield from ctx.execute(
            Op.MMIO_WRITE, addr=device.notify_addr, value=1, device=device
        )

    stack.sim.run_process(kick())
    delta = stack.metrics.diff(before)
    assert delta.guest_hv_interventions() == 0


def test_xen_profile_is_an_instance_attribute_only():
    """Profile injection must not leak through the ClassVar."""
    xen = build_stack(StackConfig(levels=2, guest_hv="xen"))
    assert "profile" in vars(xen.hvs[1])
    assert KvmHypervisor.profile is KVM_PROFILE
