"""Tests for the ARM platform profile (§3: DVH is architecture-portable;
§4: DVH-VP measured on ARM)."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.sim import arm_costs, default_costs
from repro.workloads.microbench import run_microbenchmark


def test_bad_arch_rejected():
    with pytest.raises(ValueError, match="arch"):
        build_stack(StackConfig(levels=1, arch="sparc"))


def test_arm_uses_arm_cost_profile():
    stack = build_stack(StackConfig(levels=1, arch="arm"))
    assert stack.machine.costs.hw_exit == arm_costs().hw_exit
    assert stack.machine.costs.hw_exit < default_costs().hw_exit


def test_arm_direct_traps_cheaper_than_x86():
    arm = build_stack(StackConfig(levels=1, arch="arm"))
    x86 = build_stack(StackConfig(levels=1))
    assert run_microbenchmark(arm, "Hypercall", 10) < run_microbenchmark(
        x86, "Hypercall", 10
    )


def test_arm_nested_blowup_worse_than_x86():
    """ARM has no VMCS-shadowing equivalent: every control-structure
    access in the guest hypervisor traps, so the per-level factor is
    *larger* than x86's (the NEVE observation)."""

    def factor(arch):
        l1 = run_microbenchmark(
            build_stack(StackConfig(levels=1, arch=arch)), "Hypercall", 10
        )
        l2 = run_microbenchmark(
            build_stack(StackConfig(levels=2, arch=arch)), "Hypercall", 10
        )
        return l2 / l1

    assert factor("arm") > factor("x86")


def test_arm_has_no_shadowing():
    stack = build_stack(StackConfig(levels=2, arch="arm", vmcs_shadowing=True))
    assert not stack.hvs[0].capability.vmcs_shadowing
    assert not stack.ctx(0).vmcs.controls.shadow_vmcs


def test_dvh_vp_improves_arm_nested_io():
    """§4: "DVH-VP also significantly improved performance on ARM since
    I/O models are platform-agnostic"."""
    virtio = build_stack(StackConfig(levels=2, io_model="virtio", arch="arm"))
    vp = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.vp_only(), arch="arm")
    )
    assert run_microbenchmark(vp, "DevNotify", 10) < run_microbenchmark(
        virtio, "DevNotify", 10
    ) / 2.5


def test_full_dvh_works_on_arm_end_to_end():
    from repro.workloads.apps import run_app

    native = build_stack(StackConfig(levels=0, arch="arm"))
    base = run_app(native, "memcached", scale=0.2)
    dvh = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full(), arch="arm")
    )
    nested = build_stack(StackConfig(levels=2, io_model="virtio", arch="arm"))
    overhead_dvh = run_app(dvh, "memcached", scale=0.2).overhead_vs(base)
    overhead_nested = run_app(nested, "memcached", scale=0.2).overhead_vs(base)
    assert overhead_dvh < overhead_nested / 1.5
