"""Tests for physical device assignment (Figure 2b) and its limits."""

import pytest

from repro.core.features import DvhFeatures
from repro.core.vpassthrough import populate_chain_epts
from repro.hv.passthrough import (
    MigrationNotSupported,
    assign_physical_device,
    dma_pool_pfns,
    resolve_through_chain,
)
from repro.hv.stack import StackConfig, build_stack
from repro.hw.iommu import IrteMode
from repro.hw.ops import Op


def make(levels=2, io="passthrough"):
    stack = build_stack(StackConfig(levels=levels, io_model=io))
    stack.settle()
    return stack


def test_dma_pool_covers_all_queue_strides():
    pfns = dma_pool_pfns(buffers=4, buf_size=65536, queues=2)
    from repro.hv.virtio_backend import QUEUE_POOL_STRIDE, RX_POOL_BASE

    assert (RX_POOL_BASE >> 12) in pfns
    assert ((RX_POOL_BASE + QUEUE_POOL_STRIDE) >> 12) in pfns


def test_assignment_maps_bar_without_trapping():
    stack = make()
    vf = stack.net.vf
    bar = vf.bars[0]
    assert not stack.leaf_vm.traps_mmio(bar.base)
    assert stack.leaf_vm.traps_mmio(0x1)  # everything else still traps


def test_doorbell_causes_no_exit():
    stack = make()
    ctx = stack.ctx(0)
    before = stack.metrics.copy()

    def kick():
        yield from ctx.execute(
            Op.MMIO_WRITE, addr=stack.net._doorbell_addr(), value=0, device=stack.net.vf
        )

    stack.sim.run_process(kick())
    assert stack.metrics.diff(before).total_exits() == 0


def test_iommu_domain_has_composed_mappings():
    stack = make(levels=2)
    vf = stack.net.vf
    domain = stack.machine.iommu.domain_of(vf)
    assert domain is not None and len(domain) > 0
    from repro.hv.virtio_backend import RX_POOL_BASE

    pfn = RX_POOL_BASE >> 12
    assert domain.translate(pfn) == resolve_through_chain(stack.leaf_vm, pfn)


def test_interrupts_posted_via_vtd():
    stack = make()
    entry = stack.machine.iommu.remap_interrupt(stack.net.vf, 0)
    assert entry.mode == IrteMode.POSTED
    assert entry.pi_descriptor is stack.ctx(0).pi_desc


def test_hardware_coupling_marks_whole_chain():
    stack = make(levels=3)
    assert all(vm.hardware_coupled for vm in stack.vms)


def test_virtio_stack_not_hardware_coupled():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    assert not any(vm.hardware_coupled for vm in stack.vms)


def test_resolve_through_chain_missing_mapping_raises():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    with pytest.raises(KeyError):
        resolve_through_chain(stack.leaf_vm, 0xDEADBEEF)


def test_vf_exhaustion():
    stack = make()
    nic = stack.machine.nic
    total = nic.find_capability(
        __import__("repro.hw.pci", fromlist=["CapabilityId"]).CapabilityId.SRIOV
    ).registers["total_vfs"]
    for _ in range(total - len(nic.vfs)):
        nic.create_vf()
    with pytest.raises(RuntimeError):
        nic.create_vf()
