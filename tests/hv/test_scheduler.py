"""Tests for guest-hypervisor scheduling of sibling nested VMs (§3.4)."""

import pytest

from repro.core.features import DvhFeatures
from repro.core.vidle import enable_virtual_idle
from repro.hv.scheduler import SiblingLoad, attach_sibling
from repro.hv.stack import StackConfig, build_stack


def make(dvh=None, io="virtio"):
    stack = build_stack(
        StackConfig(levels=2, io_model=io, dvh=dvh or DvhFeatures.none())
    )
    stack.settle()
    return stack


def idle_then_wake(stack, wake_after):
    """Worker 0 goes idle; an interrupt arrives after ``wake_after``."""
    ctx = stack.ctx(0)
    stack.sim.call_after(
        wake_after, lambda: (ctx.pi_desc.post(0x33), ctx.pcpu.wake())
    )
    got = {}

    def guest():
        got["vector"] = yield from ctx.wait_for_interrupt()
        got["at"] = stack.sim.now

    stack.sim.run_process(guest())
    return got


def test_sibling_runs_while_primary_idles():
    stack = make()
    load = attach_sibling(stack, total_work=500_000, quantum=50_000)
    assert load.progress == 0
    idle_then_wake(stack, wake_after=2_000_000)
    assert load.progress > 0


def test_sibling_quantum_bounded_preemption():
    """The idle VM resumes promptly once its interrupt arrives — at most
    one quantum late (the scheduler checks between quanta)."""
    stack = make()
    attach_sibling(stack, total_work=50_000_000, quantum=40_000)
    wake_after = 500_000
    got = idle_then_wake(stack, wake_after=wake_after)
    assert got["vector"] == 0x33
    # Resumed within ~one quantum + switch costs of the wake.
    assert got["at"] - wake_after < 150_000


def test_sibling_finishes_and_policy_reengages():
    stack = make(dvh=DvhFeatures.full(), io="vp")
    hv1 = stack.hvs[1]
    load = attach_sibling(stack, total_work=200_000, quantum=50_000)
    # With a runnable sibling the §3.4 policy disengaged virtual idle.
    assert all(v.vmcs.controls.hlt_exiting for v in stack.leaf_vm.vcpus)
    idle_then_wake(stack, wake_after=3_000_000)
    assert load.done
    assert hv1.other_runnable_guests == 0
    # Policy re-engaged: HLT no longer traps to the guest hypervisor.
    assert not any(v.vmcs.controls.hlt_exiting for v in stack.leaf_vm.vcpus)


def test_wrongly_engaged_virtual_idle_starves_sibling():
    """The paper's warning made concrete: if virtual idle stays engaged
    while a sibling is runnable, the HLT bypasses the guest hypervisor
    and the sibling never runs."""
    stack = make(dvh=DvhFeatures.full(), io="vp")
    load = attach_sibling(stack, total_work=500_000)
    # Force virtual idle back ON despite the runnable sibling.
    for vcpu in stack.leaf_vm.vcpus:
        vcpu.vmcs.controls.hlt_exiting = False
    idle_then_wake(stack, wake_after=2_000_000)
    assert load.progress == 0  # starved


def test_switch_uses_virtual_timer_save_restore():
    """Nested-VM switches save/restore the virtual timer (§3.2)."""
    from repro.hw.vmx import VmcsField

    stack = make(dvh=DvhFeatures.full(), io="vp")
    attach_sibling(stack, total_work=300_000)
    ctx = stack.ctx(0)
    ctx.lapic.arm_timer(99_999_999)
    idle_then_wake(stack, wake_after=1_000_000)
    assert ctx.vmcs.read(VmcsField.VIRTUAL_TIMER_DEADLINE) == 99_999_999


def test_scheduler_counts_switches():
    stack = make()
    attach_sibling(stack, total_work=400_000, quantum=100_000)
    idle_then_wake(stack, wake_after=3_000_000)
    assert stack.hvs[1].scheduler.switches == 4  # 400K / 100K quanta


def test_sibling_work_charged_to_metrics():
    stack = make()
    attach_sibling(stack, total_work=300_000)
    idle_then_wake(stack, wake_after=2_000_000)
    assert stack.metrics.cycles["sibling_work"] == 300_000
