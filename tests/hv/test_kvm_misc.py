"""Edge-case tests for hypervisor internals."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.kvm import KvmHypervisor
from repro.hv.stack import StackConfig, build_stack
from repro.hw.machine import Machine
from repro.hw.ops import ExitReason, Op
from repro.hw.vmx import ExecControl


def test_constructor_level_vm_consistency():
    machine = Machine(num_cpus=4)
    with pytest.raises(ValueError):
        KvmHypervisor(machine, level=1, vm=None)  # guest hv needs a VM
    l0 = KvmHypervisor(machine, level=0)
    vm = l0.create_vm("g", memory_bytes=1 << 30)
    with pytest.raises(ValueError):
        KvmHypervisor(machine, level=0, vm=vm)  # host hv has no VM


def test_create_vm_level_increments():
    machine = Machine(num_cpus=4)
    l0 = KvmHypervisor(machine, level=0)
    vm = l0.create_vm("g", memory_bytes=1 << 30)
    assert vm.level == 1
    assert vm.manager is l0
    assert vm in l0.guests


def test_op_counts_without_shadowing_conserve_total():
    stack = build_stack(StackConfig(levels=2, vmcs_shadowing=False))
    hv = stack.hvs[1]
    costs = stack.machine.costs
    for reason in (ExitReason.VMCALL, ExitReason.MMIO):
        reads, writes = hv.op_counts(reason)
        assert reads + writes == costs.ghv_vmcs_unshadowed_total


def test_host_controls_reflect_capability():
    stack = build_stack(StackConfig(levels=1))
    ctl = stack.hvs[0]._host_controls()
    assert isinstance(ctl, ExecControl)
    assert ctl.hlt_exiting
    assert ctl.posted_interrupts


def test_expose_capability_copies_not_aliases():
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    l0, hv1 = stack.hvs
    hv1.capability.virtual_timer = False
    assert l0.dvh.virtual_timer  # L0's provisioning unaffected


def test_dispatch_exit_only_at_l0():
    stack = build_stack(StackConfig(levels=2))
    hv1 = stack.hvs[1]
    leaf = stack.ctx(0)
    exit_ = leaf._make_exit(Op.VMCALL, {})
    with pytest.raises(AssertionError):
        # Guest hypervisors never take hardware exits directly (§2).
        next(hv1.dispatch_exit(leaf, exit_))


def test_dvh_route_check_charged_only_for_nested():
    """L1 exits skip the DVH control check (nothing to consult)."""
    stack = build_stack(StackConfig(levels=1, dvh=DvhFeatures.full()))
    ctx = stack.ctx(0)
    before = dict(stack.metrics.cycles)

    def op():
        yield from ctx.execute(Op.VMCALL)

    stack.sim.run_process(op())
    charged = stack.metrics.cycles["l0_emul"] - before.get("l0_emul", 0)
    costs = stack.machine.costs
    assert charged == costs.l0_dispatch + costs.emul_hypercall


def test_msr_write_generic_reason():
    stack = build_stack(StackConfig(levels=1))
    ctx = stack.ctx(0)

    def op():
        yield from ctx.execute(Op.WRMSR, msr=0x123)

    stack.sim.run_process(op())
    assert stack.metrics.exits[(1, "msr_write")] == 1


def test_cpuid_and_invept_emulated():
    stack = build_stack(StackConfig(levels=1))
    ctx = stack.ctx(0)

    def ops():
        yield from ctx.execute(Op.CPUID)
        yield from ctx.execute(Op.INVEPT)

    stack.sim.run_process(ops())
    assert stack.metrics.exits[(1, "cpuid")] == 1
    assert stack.metrics.exits[(1, "vmx")] == 1


def test_notify_only_icr_from_l2_forwarded_to_l1():
    """Figure 4 step 4 in the nested-backend case: an L2 hypervisor
    asking for a posted-interrupt notification goes through L1."""
    stack = build_stack(StackConfig(levels=3))
    stack.settle()
    l2_ctx = stack.ctx(0).chain_vcpu(2)
    target = stack.ctx(1)

    def op():
        yield from stack.hvs[2].inject_interrupt(l2_ctx, target, 0x50)

    before = stack.metrics.copy()
    stack.sim.run_process(op())
    delta = stack.metrics.diff(before)
    assert delta.forwards[(2, "apic_icr", 1)] == 1
    assert 0x50 in target.pi_desc.pir or 0x50 in target.lapic.irr


def test_wake_target_reports_halt_state():
    stack = build_stack(StackConfig(levels=1))
    ctx = stack.ctx(0)
    ctx.pcpu.block()
    assert stack.hvs[0].wake_target(ctx)  # was halted
    # Waking a running CPU reports False but latches the wakeup...
    assert not stack.hvs[0].wake_target(ctx)
    # ...so the next halt attempt returns immediately (no lost wakeup).
    ev = ctx.pcpu.block()
    assert ev.triggered


def test_hlt_with_pending_interrupt_does_not_block():
    stack = build_stack(StackConfig(levels=1))
    stack.settle()
    ctx = stack.ctx(0)
    ctx.lapic.set_irr(0x30)

    def op():
        return (yield from ctx.wait_for_interrupt())

    vector = stack.sim.run_process(op())
    assert vector == 0x30
    assert not ctx.pcpu.halted
