"""Tests for the virtio datapaths: host vhost, guest-hypervisor relay,
multiqueue steering, and end-to-end packet flow."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.lapic import VIRTIO_VECTOR_BASE


def make(levels=1, io="virtio", dvh=None, **kw):
    stack = build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.none(), **kw)
    )
    stack.settle()
    return stack


def echo_server(stack, received, queue=0, count=1):
    ctx = stack.net.queue_dest(queue)[0]

    def server():
        while len(received) < count:
            msgs = yield from stack.net.poll_rx(queue=queue, ctx=ctx)
            if not msgs:
                yield from ctx.wait_for_interrupt()
                continue
            for size, payload in msgs:
                received.append((size, payload))

    return server()


@pytest.mark.parametrize(
    "levels,io,dvh",
    [
        (0, "native", DvhFeatures.none()),
        (1, "virtio", DvhFeatures.none()),
        (1, "passthrough", DvhFeatures.none()),
        (2, "virtio", DvhFeatures.none()),
        (2, "passthrough", DvhFeatures.none()),
        (2, "vp", DvhFeatures.vp_only()),
        (2, "vp", DvhFeatures.full()),
        (3, "virtio", DvhFeatures.none()),
        (3, "vp", DvhFeatures.full()),
    ],
)
def test_rx_path_end_to_end(levels, io, dvh):
    """A client packet reaches the leaf driver in every configuration."""
    stack = make(levels=levels, io=io, dvh=dvh)
    received = []
    stack.sim.spawn(echo_server(stack, received), "server")
    stack.machine.client.send(stack.flow, 1500, payload="hello")
    stack.sim.run()
    assert received == [(1500, "hello")]


@pytest.mark.parametrize(
    "levels,io,dvh",
    [
        (0, "native", DvhFeatures.none()),
        (1, "virtio", DvhFeatures.none()),
        (2, "virtio", DvhFeatures.none()),
        (2, "vp", DvhFeatures.full()),
        (2, "passthrough", DvhFeatures.none()),
    ],
)
def test_tx_path_end_to_end(levels, io, dvh):
    """A leaf-driver send reaches the remote client in every config."""
    stack = make(levels=levels, io=io, dvh=dvh)
    got = []
    stack.machine.client.on_receive(stack.flow, lambda p: got.append(p.payload))
    ctx = stack.ctx(0)

    def sender():
        yield from stack.net.send(2000, payload="out", kick=True, queue=0, ctx=ctx)

    stack.sim.run_process(sender())
    stack.sim.run()
    assert got == ["out"]


def test_multiqueue_rss_steering():
    """Packets with queue hints reach the worker bound to that queue."""
    stack = make(levels=2, io="virtio")
    per_queue = {0: [], 1: [], 2: []}
    for q in per_queue:
        stack.net.bind_queue(q, stack.ctxs[q], VIRTIO_VECTOR_BASE + q)

    def server(q):
        msgs = []
        while not msgs:
            msgs = yield from stack.net.poll_rx(queue=q, ctx=stack.ctxs[q])
            if not msgs:
                yield from stack.ctxs[q].wait_for_interrupt()
        per_queue[q].extend(p for _s, p in msgs)

    for q in per_queue:
        stack.sim.spawn(server(q), f"s{q}")
    for q in per_queue:
        stack.machine.client.send(stack.flow, 100, payload=f"q{q}", queue_hint=q)
    stack.sim.run()
    assert per_queue == {0: ["q0"], 1: ["q1"], 2: ["q2"]}


def test_rx_overflow_drops():
    """More packets than posted RX buffers: the excess drops (and is
    counted), like a real NIC."""
    stack = make(levels=1, io="virtio")
    for _ in range(200):  # 128 buffers posted per queue
        stack.machine.client.send(stack.flow, 100, payload="x")
    stack.sim.run()
    assert stack.metrics.events["rx_drops"] > 0
    assert stack.net.device.rx_q(0).used_pending == 128


def test_vhost_kick_counted():
    stack = make(levels=1, io="virtio")
    ctx = stack.ctx(0)

    def sender():
        yield from stack.net.send(100, payload="a", kick=True, queue=0, ctx=ctx)

    stack.sim.run_process(sender())
    stack.sim.run()
    assert stack.metrics.events["vhost_kicks"] >= 1


def test_guest_vhost_relays_through_lower_device():
    """In the nested cascade, leaf TX appears on the wire via the L1
    backend's own device (Figure 2a)."""
    stack = make(levels=2, io="virtio")
    got = []
    stack.machine.client.on_receive(stack.flow, lambda p: got.append(p.size))
    ctx = stack.ctx(0)

    def sender():
        yield from stack.net.send(4321, payload="nested", kick=True, queue=0, ctx=ctx)

    before = stack.metrics.copy()
    stack.sim.run_process(sender())
    stack.sim.run()
    delta = stack.metrics.diff(before)
    assert got == [4321]
    # The relay costs guest-hypervisor vhost work...
    assert delta.cycles["ghv_vhost"] > 0
    # ...and the L1 backend kicked its own (L0-provided) device.
    assert delta.exits_for_reason("mmio") >= 2


def test_dvh_vp_tx_does_not_touch_guest_hypervisor():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    got = []
    stack.machine.client.on_receive(stack.flow, lambda p: got.append(p.size))
    ctx = stack.ctx(0)

    def sender():
        yield from stack.net.send(999, payload="direct", kick=True, queue=0, ctx=ctx)

    before = stack.metrics.copy()
    stack.sim.run_process(sender())
    stack.sim.run()
    delta = stack.metrics.diff(before)
    assert got == [999]
    assert delta.guest_hv_interventions() == 0
    assert delta.cycles.get("ghv_vhost", 0) == 0


def test_vp_dma_translates_through_shadow_table():
    """The host vhost resolves leaf buffer addresses through the composed
    shadow IOMMU table (Figure 6)."""
    stack = make(levels=2, io="vp", dvh=DvhFeatures.vp_only())
    assignment = stack.vp_assignment
    assert assignment is not None
    from repro.hv.virtio_backend import RX_POOL_BASE

    host_addr = assignment.translate(RX_POOL_BASE, write=True)
    assert host_addr != RX_POOL_BASE  # strides make identity impossible
    # And it matches walking the EPT chain by hand.
    from repro.hv.passthrough import resolve_through_chain

    pfn = RX_POOL_BASE >> 12
    assert host_addr >> 12 == resolve_through_chain(stack.leaf_vm, pfn)


def test_viommu_pi_changes_interrupt_mode():
    """Figure 8's increment: without vIOMMU posted interrupts, device
    interrupts to the nested VM are injected; with them, posted."""
    no_pi = make(levels=2, io="vp", dvh=DvhFeatures.vp_only())
    with_pi = make(
        levels=2,
        io="vp",
        dvh=DvhFeatures.vp_only().with_(viommu_posted_interrupts=True),
    )
    for stack, mode in ((no_pi, "injected"), (with_pi, "posted")):
        received = []
        stack.sim.spawn(echo_server(stack, received), "server")
        stack.machine.client.send(stack.flow, 100, payload="m")
        stack.sim.run()
        assert received
        assert stack.metrics.interrupts[("virtio", mode)] >= 1
