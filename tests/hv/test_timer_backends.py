"""Tests for the two timer-emulation backends (§3.2) and the
virtual-timer delivery optimization."""

import dataclasses

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.lapic import TIMER_VECTOR


def fire_timer_latency(stack, delay=200_000):
    """Arm a timer and measure arm-to-delivery latency on worker 0."""
    stack.settle()
    ctx = stack.ctx(0)
    got = {}

    def guest():
        start = stack.sim.now
        yield from ctx.program_timer(ctx.read_tsc() + delay, TIMER_VECTOR)
        got["vector"] = yield from ctx.wait_for_interrupt()
        got["latency"] = stack.sim.now - start - delay

    stack.sim.run_process(guest())
    assert got["vector"] == TIMER_VECTOR
    return got["latency"]


def test_bad_backend_rejected():
    with pytest.raises(ValueError, match="timer_backend"):
        build_stack(StackConfig(levels=1, timer_backend="tsc"))


def test_both_backends_fire_correctly():
    for backend in ("hrtimer", "preemption"):
        stack = build_stack(StackConfig(levels=1, timer_backend=backend))
        assert fire_timer_latency(stack) >= 0


def test_preemption_timer_records_exit():
    stack = build_stack(StackConfig(levels=1, timer_backend="preemption"))
    fire_timer_latency(stack)
    assert stack.metrics.exits_for_reason("preemption_timer") >= 1


def test_hrtimer_records_no_preemption_exit():
    stack = build_stack(StackConfig(levels=1, timer_backend="hrtimer"))
    fire_timer_latency(stack)
    assert stack.metrics.exits_for_reason("preemption_timer") == 0


def test_vtimer_direct_delivery_is_faster():
    """§3.2: posting the expiry straight to the nested VM beats routing
    it through the guest hypervisor."""
    direct = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    indirect = build_stack(
        StackConfig(
            levels=2,
            io_model="vp",
            dvh=DvhFeatures.full().with_(vtimer_direct_delivery=False),
        )
    )
    lat_direct = fire_timer_latency(direct)
    lat_indirect = fire_timer_latency(indirect)
    assert lat_indirect > lat_direct + 5_000
    assert direct.metrics.interrupts[("timer", "posted")] >= 1
    assert indirect.metrics.interrupts[("timer", "injected")] >= 1


def test_direct_delivery_flag_does_not_affect_programming_cost():
    from repro.workloads.microbench import run_microbenchmark

    a = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    b = build_stack(
        StackConfig(
            levels=2,
            io_model="vp",
            dvh=DvhFeatures.full().with_(vtimer_direct_delivery=False),
        )
    )
    assert run_microbenchmark(a, "ProgramTimer", 10) == run_microbenchmark(
        b, "ProgramTimer", 10
    )
