"""Tests for the RISC-V H-extension profile (ROADMAP item 4): HS-mode
cost model, hedeleg/hideleg trap delegation, and the cross-arch seams
(profile/arch combination validation, per-arch cost selection)."""

import dataclasses

import pytest

from repro.core.features import DvhFeatures
from repro.hv.profiles import HS_PROFILE, KVM_PROFILE, PROFILES
from repro.hv.stack import StackConfig, build_stack
from repro.sim import costs_for_arch, default_costs, riscv_costs
from repro.workloads.microbench import run_microbenchmark


def test_riscv_uses_riscv_cost_profile():
    stack = build_stack(StackConfig(levels=1, arch="riscv"))
    assert stack.machine.costs.hw_exit == riscv_costs().hw_exit
    assert stack.machine.costs.hw_exit < default_costs().hw_exit


def test_costs_for_arch_selects_and_rejects():
    assert costs_for_arch("x86").hw_exit == default_costs().hw_exit
    assert costs_for_arch("riscv").hw_exit == riscv_costs().hw_exit
    with pytest.raises(ValueError, match="unknown arch"):
        costs_for_arch("sparc")


def test_riscv_coerces_kvm_to_hs_profile():
    """The H-extension profile is RISC-V's only modeled guest
    hypervisor: the default ``guest_hv="kvm"`` resolves to ``hs``."""
    stack = build_stack(StackConfig(levels=2, arch="riscv"))
    assert stack.config.guest_hv == "hs"
    assert stack.hvs[1].profile is HS_PROFILE
    assert stack.hvs[0].profile is KVM_PROFILE  # host model stays KVM-like


def test_xen_on_riscv_rejected():
    with pytest.raises(ValueError, match="not modeled on riscv"):
        build_stack(StackConfig(levels=2, arch="riscv", guest_hv="xen"))


def test_hs_profile_requires_riscv():
    with pytest.raises(ValueError, match="requires arch='riscv'"):
        build_stack(StackConfig(levels=2, guest_hv="hs"))


def test_each_arch_changes_charged_cycles():
    """Regression for the unreachable-cost-model bug: the arch knob must
    actually select a different cost model end to end, so the same
    microbenchmark charges different cycles on each architecture."""
    results = {
        arch: run_microbenchmark(
            build_stack(StackConfig(levels=2, arch=arch)), "Hypercall", 10
        )
        for arch in ("x86", "arm", "riscv")
    }
    assert len(set(results.values())) == 3, results


def test_delegated_traps_counted_on_riscv():
    stack = build_stack(StackConfig(levels=2, arch="riscv"))
    run_microbenchmark(stack, "Hypercall", 10)
    metrics = stack.metrics
    # VMCALL is hedeleg-delegated in HS_PROFILE: hardware vectored it
    # straight to the guest hypervisor, and the exit still counts as a
    # forward (conservation invariant).
    assert metrics.events.get("delegated_traps", 0) > 0
    assert sum(metrics.forwards.values()) > 0


def test_delegation_cheaper_than_forwarding():
    """hedeleg/hideleg delegation must be measurably cheaper than
    software forwarding: same stack, same workload, delegations
    stripped from the profile => more cycles per op."""
    delegated = run_microbenchmark(
        build_stack(StackConfig(levels=2, arch="riscv")), "Hypercall", 10
    )
    stripped = dataclasses.replace(HS_PROFILE, delegated_reasons=frozenset())
    PROFILES["hs"] = stripped
    try:
        forwarded = run_microbenchmark(
            build_stack(StackConfig(levels=2, arch="riscv")), "Hypercall", 10
        )
    finally:
        PROFILES["hs"] = HS_PROFILE
    assert delegated < forwarded


def test_riscv_has_no_vmcs_shadowing():
    """The H-extension has no VMCS-shadowing equivalent; the knob is
    force-cleared like ARM's."""
    stack = build_stack(StackConfig(levels=2, arch="riscv", vmcs_shadowing=True))
    assert not stack.hvs[0].capability.vmcs_shadowing
    assert not stack.ctx(0).vmcs.controls.shadow_vmcs


def test_hs_op_counts_below_kvm():
    """HS-mode CSR swaps replace some explicit control-structure writes,
    so the per-exit op counts sit below the KVM profile's."""
    from repro.hw.ops import ExitReason

    for reason in (ExitReason.VMCALL, ExitReason.MMIO, ExitReason.HLT):
        assert sum(HS_PROFILE.reason_op_counts(reason)) < sum(
            KVM_PROFILE.reason_op_counts(reason)
        )


def test_dvh_vp_improves_riscv_nested_io():
    """DVH's I/O models are platform-agnostic (§3): virtual passthrough
    pays off on RISC-V exactly as on x86/ARM."""
    virtio = build_stack(StackConfig(levels=2, io_model="virtio", arch="riscv"))
    vp = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.vp_only(), arch="riscv")
    )
    assert run_microbenchmark(vp, "DevNotify", 10) < run_microbenchmark(
        virtio, "DevNotify", 10
    ) / 2.5


def test_riscv_run_is_deterministic():
    def digest():
        stack = build_stack(StackConfig(levels=2, arch="riscv", seed=5))
        run_microbenchmark(stack, "Hypercall", 10)
        snap = stack.metrics.snapshot()
        return (stack.sim.now, sorted((str(k), v) for t in snap.values() for k, v in t.items()))

    assert digest() == digest()
