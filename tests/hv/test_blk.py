"""Tests for the block datapath: drivers, backends, completion routing,
and the shared-used-ring race regression."""

import dataclasses

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack


def make(levels=1, io="virtio", dvh=None, **kw):
    stack = build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.none(), **kw)
    )
    stack.settle()
    return stack


@pytest.mark.parametrize(
    "levels,io,dvh",
    [
        (0, "native", DvhFeatures.none()),
        (1, "virtio", DvhFeatures.none()),
        (2, "virtio", DvhFeatures.none()),
        (2, "vp", DvhFeatures.full()),
        (3, "virtio", DvhFeatures.none()),
    ],
)
def test_write_flush_completes(levels, io, dvh):
    stack = make(levels=levels, io=io, dvh=dvh)
    ctx = stack.ctx(0)
    log = {}

    def txn():
        req = yield from stack.blk.submit("write", 16384, ctx=ctx)
        yield from stack.blk.wait_for(req, ctx=ctx)
        flush = yield from stack.blk.submit("flush", 0, ctx=ctx)
        yield from stack.blk.wait_for(flush, ctx=ctx)
        log["done"] = stack.sim.now

    stack.sim.run_process(txn())
    assert log["done"] > stack.machine.costs.ssd_latency


def test_completion_routed_to_submitting_worker():
    """Two workers submit concurrently; each wakes for its own request."""
    stack = make(levels=2, io="virtio")
    done = {}

    def txn(i):
        ctx = stack.ctxs[i]
        req = yield from stack.blk.submit("write", 8192, ctx=ctx)
        yield from stack.blk.wait_for(req, ctx=ctx)
        done[i] = stack.sim.now

    for i in range(3):
        stack.sim.spawn(txn(i), f"t{i}")
    stack.sim.run()
    assert sorted(done) == [0, 1, 2]


def test_shared_used_ring_race_regression():
    """Regression: a worker that reaps a sibling's completion must
    publish it in the same instant, or the sibling sleeps through its
    own completion (was rescued only by a stray timer).  Many concurrent
    submitters across many rounds shake the interleavings out."""
    stack = make(levels=3, io="vp", dvh=DvhFeatures.full())
    finished = []

    def txn(i):
        ctx = stack.ctxs[i]
        yield i * 777  # stagger the workers
        for _ in range(12):
            req = yield from stack.blk.submit("write", 4096, ctx=ctx)
            yield from stack.blk.wait_for(req, ctx=ctx)
            flush = yield from stack.blk.submit("flush", 0, ctx=ctx)
            yield from stack.blk.wait_for(flush, ctx=ctx)
        finished.append(i)

    procs = [stack.sim.spawn(txn(i), f"t{i}") for i in range(4)]
    stack.sim.run()
    assert all(p.done for p in procs)
    assert len(finished) == 4
    # Nothing should have taken anywhere near a timer horizon to finish.
    assert stack.sim.now_seconds < 0.05


def test_ssd_serializes_requests():
    stack = make(levels=1, io="virtio")
    ctx = stack.ctx(0)
    times = []

    def txn():
        ids = []
        for _ in range(3):
            req = yield from stack.blk.submit("write", 65536, ctx=ctx)
            ids.append(req)
        for req in ids:
            yield from stack.blk.wait_for(req, ctx=ctx)
            times.append(stack.sim.now)

    stack.sim.run_process(txn())
    assert times[0] < times[1] < times[2]


def test_nested_blk_uses_guest_backend():
    """The nested chain relays block requests through the guest
    hypervisor's backend (charged as ghv_vhost work)."""
    stack = make(levels=2, io="virtio")
    ctx = stack.ctx(0)
    before = stack.metrics.copy()

    def txn():
        req = yield from stack.blk.submit("write", 16384, ctx=ctx)
        yield from stack.blk.wait_for(req, ctx=ctx)

    stack.sim.run_process(txn())
    delta = stack.metrics.diff(before)
    assert delta.cycles["ghv_vhost"] > 0
    # Submission trapped to the guest hypervisor (device provider 1).
    assert delta.forwards[(2, "mmio", 1)] >= 1


def test_vp_blk_skips_guest_hypervisor():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    before = stack.metrics.copy()

    def txn():
        req = yield from stack.blk.submit("write", 16384, ctx=ctx)
        yield from stack.blk.wait_for(req, ctx=ctx)

    stack.sim.run_process(txn())
    delta = stack.metrics.diff(before)
    assert delta.forwards_to_level(1) == 0
