"""Tests for L0's emulation: timers (with TSC offsets), IPIs/VCIMT,
HLT/wake, and nested VMX (merge)."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.lapic import TIMER_VECTOR
from repro.hw.ops import Op
from repro.hw.vmx import VmcsField


def make(levels=2, io="virtio", dvh=None, **kw):
    stack = build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.none(), **kw)
    )
    stack.settle()
    return stack


# ----------------------------------------------------------------------
# Timers
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "levels,dvh",
    [
        (1, DvhFeatures.none()),
        (2, DvhFeatures.none()),
        (2, DvhFeatures.full()),
        (3, DvhFeatures.full()),
    ],
)
def test_timer_fires_at_guest_deadline(levels, dvh):
    """Regardless of level and DVH, a timer armed for guest-TSC T fires
    when the guest's TSC reaches T — the offset arithmetic of §3.2."""
    io = "vp" if (dvh.virtual_passthrough and levels >= 2) else "virtio"
    stack = make(levels=levels, io=io, dvh=dvh)
    ctx = stack.ctx(0)
    log = {}
    delay = 500_000

    def guest():
        deadline = ctx.read_tsc() + delay
        host_start = stack.sim.now
        yield from ctx.program_timer(deadline, TIMER_VECTOR)
        vector = yield from ctx.wait_for_interrupt()
        log["vector"] = vector
        log["elapsed"] = stack.sim.now - host_start

    stack.sim.run_process(guest())
    assert log["vector"] == TIMER_VECTOR
    assert log["elapsed"] >= delay
    # Fire + wake chain should not add more than ~100K cycles even fully
    # forwarded.
    assert log["elapsed"] < delay + 150_000


def test_timer_reprogram_cancels_previous():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    fired = []

    def guest():
        yield from ctx.program_timer(ctx.read_tsc() + 100_000)
        yield from ctx.program_timer(ctx.read_tsc() + 900_000)
        vector = yield from ctx.wait_for_interrupt()
        fired.append((stack.sim.now, vector))

    stack.sim.run_process(guest())
    # Only the second deadline fires (the first was cancelled).
    assert len(fired) == 1
    assert fired[0][0] >= 900_000
    assert not ctx.lapic.has_pending()


def test_guest_tsc_offsets_differ_per_level():
    stack = make(levels=3)
    tscs = [v.read_tsc() for v in stack.ctx(0).chain()]
    assert len(set(tscs)) == 3  # distinct offsets at each level


# ----------------------------------------------------------------------
# IPIs
# ----------------------------------------------------------------------
def test_ipi_delivered_between_l1_vcpus():
    stack = make(levels=1)
    a, b = stack.ctx(0), stack.ctx(1)
    got = {}

    def receiver():
        got["vector"] = yield from b.wait_for_interrupt()

    def sender():
        yield 1000
        yield from a.send_ipi(1, 0xFD)

    stack.sim.spawn(receiver(), "rx")
    stack.sim.spawn(sender(), "tx")
    stack.sim.run()
    assert got["vector"] == 0xFD


def test_virtual_ipi_uses_vcimt(monkeypatch):
    """§3.3: the destination is found through the VCIMT in the guest
    hypervisor's memory, keyed by destination vCPU number."""
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    leaf_vm = stack.leaf_vm
    assert leaf_vm.vcimtar is not None
    manager_vm = leaf_vm.manager.vm
    from repro.hw.vmx import VCIMT_ENTRY_SIZE

    entry = manager_vm.memory.read(leaf_vm.vcimtar + VCIMT_ENTRY_SIZE * 1)
    assert entry is stack.ctx(1)  # vCPU 1's entry resolves to vCPU 1


def test_virtual_ipi_without_table_raises():
    stack = make(levels=2, io="virtio", dvh=DvhFeatures.none())
    ctx = stack.ctx(0)
    # Force-enable the control bit without doing the VCIMT setup.
    ctx.vmcs.controls.virtual_ipi_enable = True
    with pytest.raises(RuntimeError, match="VCIMT"):
        stack.sim.run_process(ctx.send_ipi(1, 0xFD))


def test_nested_ipi_roundtrip_without_dvh():
    stack = make(levels=2)
    a, b = stack.ctx(0), stack.ctx(1)
    got = {}

    def receiver():
        got["vector"] = yield from b.wait_for_interrupt()
        got["at"] = stack.sim.now

    def sender():
        yield 1000
        yield from a.send_ipi(1, 0xFD)

    stack.sim.spawn(receiver(), "rx")
    stack.sim.spawn(sender(), "tx")
    stack.sim.run()
    assert got["vector"] == 0xFD
    # Emulated through the guest hypervisor: expensive.
    assert got["at"] > 20_000


# ----------------------------------------------------------------------
# Nested VMX emulation
# ----------------------------------------------------------------------
def test_vmresume_merges_vmcs12_into_merged():
    stack = make(levels=2)
    leaf = stack.ctx(0)
    l1 = leaf.chain_vcpu(1)
    leaf.vmcs.write(VmcsField.GUEST_RIP, 0xCAFE)
    leaf.vmcs.write(VmcsField.TSC_OFFSET, -42)

    def resume():
        yield from l1.execute(Op.VMRESUME, target_vcpu=leaf, vmcs=leaf.vmcs)

    stack.sim.run_process(resume())
    assert leaf.merged_vmcs.read(VmcsField.GUEST_RIP) == 0xCAFE
    # Merged offset is the chain total, not just the leaf's.
    assert leaf.merged_vmcs.read(VmcsField.TSC_OFFSET) == leaf.total_tsc_offset()


def test_vmresume_syncs_posted_interrupts():
    stack = make(levels=2)
    leaf = stack.ctx(0)
    l1 = leaf.chain_vcpu(1)
    leaf.pi_desc.post(0x55)

    def resume():
        yield from l1.execute(Op.VMRESUME, target_vcpu=leaf, vmcs=leaf.vmcs)

    stack.sim.run_process(resume())
    assert 0x55 in leaf.lapic.irr
    assert not leaf.pi_desc.has_pending


def test_vmread_vmwrite_emulation_touches_fields():
    stack = make(levels=2)
    leaf = stack.ctx(0)
    l1 = leaf.chain_vcpu(1)

    def ops():
        yield from l1.execute(
            Op.VMWRITE, vmcs=leaf.vmcs, field=VmcsField.EPT_POINTER, value=0xAB
        )
        value = yield from l1.execute(
            Op.VMREAD, vmcs=leaf.vmcs, field=VmcsField.EPT_POINTER
        )
        return value

    assert stack.sim.run_process(ops()) == 0xAB


# ----------------------------------------------------------------------
# Wake races
# ----------------------------------------------------------------------
def test_interrupt_racing_idle_descent_not_lost():
    """An interrupt arriving while the idle chain is still descending
    must not be lost (the wake-pending latch)."""
    stack = make(levels=2)  # non-DVH: long descent through L1
    ctx = stack.ctx(0)
    got = {}

    def guest():
        got["vector"] = yield from ctx.wait_for_interrupt()

    # Fire mid-descent: a couple of exits into the HLT forwarding chain.
    def interrupt():
        ctx.pi_desc.post(0x44)
        ctx.pcpu.wake()

    stack.sim.call_after(3_000, interrupt)
    stack.sim.spawn(guest(), "guest")
    stack.sim.run()
    assert got["vector"] == 0x44


def test_injection_exit_cost_grows_per_level():
    l2 = make(levels=2)
    l3 = make(levels=3)
    c2 = l2.machine.host_hv.injection_exit_cost(l2.ctx(0))
    c3 = l3.machine.host_hv.injection_exit_cost(l3.ctx(0))
    assert c3 > 5 * c2
    assert c2 > 10_000
