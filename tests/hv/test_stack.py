"""Tests for the stack builder: configurations, layout, capabilities."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.kvm import KvmHypervisor
from repro.hv.profiles import KVM_PROFILE, XEN_PROFILE
from repro.hv.stack import StackConfig, build_stack
from repro.hw.machine import GB


def test_invalid_levels_rejected():
    from repro.hv.stack import MAX_LEVELS

    with pytest.raises(ValueError):
        build_stack(StackConfig(levels=MAX_LEVELS + 1))
    with pytest.raises(ValueError):
        build_stack(StackConfig(levels=-1))


def test_vp_requires_nesting():
    with pytest.raises(ValueError, match="nested"):
        build_stack(StackConfig(levels=1, io_model="vp"))


def test_bad_guest_hv_rejected():
    with pytest.raises(ValueError, match="kvm, xen, or hs"):
        build_stack(StackConfig(levels=2, guest_hv="hyperv"))


def test_native_has_no_hypervisors():
    stack = build_stack(StackConfig(levels=0, io_model="native"))
    assert stack.hvs == []
    assert stack.vms == []
    assert len(stack.ctxs) == 4


def test_hv_stack_structure():
    stack = build_stack(StackConfig(levels=3))
    assert [hv.level for hv in stack.hvs] == [0, 1, 2]
    assert stack.machine.host_hv is stack.hvs[0]
    assert stack.machine.hv_stack == stack.hvs


def test_memory_sizing_follows_paper():
    """§4: 12 GB for the measured VM, +12 GB per hypervisor level."""
    stack = build_stack(StackConfig(levels=3))
    assert stack.vms[0].memory.size_bytes == 36 * GB
    assert stack.vms[1].memory.size_bytes == 24 * GB
    assert stack.vms[2].memory.size_bytes == 12 * GB


def test_one_to_one_pinning():
    stack = build_stack(StackConfig(levels=2, workers=4))
    pcpus = [ctx.pcpu.idx for ctx in stack.ctxs]
    assert pcpus == [0, 1, 2, 3]
    # Backends on their own physical CPUs.
    backend_vcpus = [v for v in stack.vms[0].vcpus if v.index >= 4]
    assert all(v.pcpu.idx >= 4 for v in backend_vcpus)


def test_xen_guest_hypervisor_selected():
    stack = build_stack(StackConfig(levels=2, guest_hv="xen"))
    assert type(stack.hvs[1]) is KvmHypervisor
    assert stack.hvs[1].profile is XEN_PROFILE
    assert stack.hvs[0].profile is KVM_PROFILE  # host stays KVM


def test_capability_chain_propagates_dvh_bits():
    stack = build_stack(StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full()))
    # Every guest hypervisor discovered the DVH capability bits (§3.5:
    # guest hypervisors re-expose virtual hardware recursively).
    for hv in stack.hvs[1:]:
        assert hv.capability.virtual_timer
        assert hv.capability.virtual_ipi


def test_no_dvh_capability_without_features():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    assert not stack.hvs[1].capability.virtual_timer
    assert not stack.hvs[1].capability.virtual_ipi


def test_dvh_enable_bits_set_on_every_level():
    stack = build_stack(StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full()))
    for vm in stack.vms[1:]:  # nested VMs
        for vcpu in vm.vcpus:
            assert vcpu.vmcs.controls.virtual_timer_enable
            assert not vcpu.vmcs.controls.hlt_exiting  # virtual idle


def test_vmcs_shadowing_ablation_flag():
    on = build_stack(StackConfig(levels=2, vmcs_shadowing=True))
    off = build_stack(StackConfig(levels=2, vmcs_shadowing=False))
    assert on.ctx(0).vmcs.controls.shadow_vmcs
    assert not off.ctx(0).vmcs.controls.shadow_vmcs
    r_on = on.hvs[1].op_counts(
        __import__("repro.hw.ops", fromlist=["ExitReason"]).ExitReason.VMCALL
    )
    r_off = off.hvs[1].op_counts(
        __import__("repro.hw.ops", fromlist=["ExitReason"]).ExitReason.VMCALL
    )
    assert sum(r_off) > sum(r_on)


def test_migration_capability_present_on_l0_devices():
    from repro.hw.pci import CapabilityId

    vp = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.vp_only()))
    assert vp.net.device.has_capability(CapabilityId.MIGRATION)
    virtio = build_stack(StackConfig(levels=2, io_model="virtio"))
    # The L0-provided device of the cascade carries it; the L1-provided
    # leaf device does not (its state is the guest hypervisor's problem).
    assert not virtio.net.device.has_capability(CapabilityId.MIGRATION)


def test_deterministic_builds():
    a = build_stack(StackConfig(levels=2, seed=3))
    b = build_stack(StackConfig(levels=2, seed=3))
    assert [v.name for v in a.leaf_vm.vcpus] == [v.name for v in b.leaf_vm.vcpus]
    assert a.ctx(0).total_tsc_offset() == b.ctx(0).total_tsc_offset()
