"""Dispatch parity: exit counts per configuration are frozen.

The registry-based dispatch core (``repro.hv.dispatch``) replaced the
hand-routed ``KvmHypervisor`` trap path.  Routing decisions and exit
multiplication are *observable simulation results*, so they must not
change for ANY configuration: this test drives a fixed deterministic
workload through every stack in :mod:`repro.bench.configs` (every
Table-3 / Figure-7/8/9/10 cell), plus L4/L5 super-nesting stacks and the
Xen guest-hypervisor profile, and compares the resulting
exits/forwards/L0-handled/DVH-handled counters against goldens captured
from the pre-refactor dispatcher.

Regenerate the goldens **only** when deliberately changing simulated
behavior:

    PYTHONPATH=src python tests/hv/test_dispatch_parity.py --regen
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple

import pytest

from repro.bench.configs import CONFIG_SETS
from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_dispatch_parity.json")


def _super_nesting_configs() -> List[Tuple[str, StackConfig]]:
    """L4/L5 stacks: beyond the paper's testbed, exercising recursive
    forwarding chains (plain) and recursive DVH (full)."""
    out = []
    for levels in (4, 5):
        out.append((f"super:L{levels}", StackConfig(levels=levels, io_model="virtio")))
        out.append(
            (
                f"super:L{levels}+dvh",
                StackConfig(levels=levels, io_model="vp", dvh=DvhFeatures.full()),
            )
        )
    return out


def parity_configs() -> List[Tuple[str, StackConfig]]:
    """Every benchmark configuration, labeled ``set:name``."""
    out: List[Tuple[str, StackConfig]] = []
    for set_name, configs in sorted(CONFIG_SETS.items()):
        for label, factory in configs:
            out.append((f"{set_name}:{label}", factory()))
    out.extend(_super_nesting_configs())
    return out


def exit_counters(config: StackConfig) -> Dict[str, Dict[str, int]]:
    """Build the stack, drive the standard op mix, return its counters."""
    stack = build_stack(config)
    stack.settle()
    if config.levels >= 5:
        # L5 exit multiplication makes every op astronomically expensive
        # (that is the point); one op per reason keeps the test fast while
        # still pinning the whole forwarding chain.
        run_microbenchmark(stack, "Hypercall", 1)
        run_microbenchmark(stack, "ProgramTimer", 1)
    else:
        run_microbenchmark(stack, "Hypercall", 5)
        run_microbenchmark(stack, "ProgramTimer", 5)
        if getattr(stack.net, "device", None) is not None:
            run_microbenchmark(stack, "DevNotify", 3)
        run_microbenchmark(stack, "SendIPI", 2)
    m = stack.metrics
    return {
        "exits": {f"{lvl}|{r}": n for (lvl, r), n in sorted(m.exits.items())},
        "forwards": {
            f"{lvl}|{r}|{o}": n for (lvl, r, o), n in sorted(m.forwards.items())
        },
        "l0_handled": {r: n for r, n in sorted(m.l0_handled.items())},
        "dvh_handled": {r: n for r, n in sorted(m.dvh_handled.items())},
    }


def _load_goldens() -> Dict[str, Dict]:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


_GOLDENS = _load_goldens() if GOLDEN_PATH.exists() else {}


@pytest.mark.parametrize(
    "label,config", parity_configs(), ids=[l for l, _ in parity_configs()]
)
def test_dispatch_parity(label: str, config: StackConfig) -> None:
    assert _GOLDENS, f"missing goldens: regenerate via {__file__} --regen"
    golden = _GOLDENS.get(label)
    assert golden is not None, f"no golden for {label!r}: regenerate goldens"
    assert exit_counters(config) == golden


def test_goldens_cover_every_config() -> None:
    """A config added to repro.bench.configs must get a golden too."""
    assert _GOLDENS, f"missing goldens: regenerate via {__file__} --regen"
    missing = [l for l, _ in parity_configs() if l not in _GOLDENS]
    assert not missing, f"configs without parity goldens: {missing}"


def _regen() -> None:
    goldens = {label: exit_counters(config) for label, config in parity_configs()}
    GOLDEN_PATH.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(goldens)} configs)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
