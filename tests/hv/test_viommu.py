"""Tests for the virtual IOMMU device."""

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hv.viommu import VirtualIommu
from repro.hw.ept import Perm
from repro.hw.pci import CapabilityId, PciDevice


def make_stack():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    stack.settle()
    return stack


def test_viommu_is_a_pci_device():
    viommu = VirtualIommu("viommu", provider_hv=0)
    assert viommu.has_capability(CapabilityId.PCIE)
    assert viommu.vendor_id == 0x8086  # looks like Intel VT-d


def test_program_traps_and_builds_both_tables():
    """A guest hypervisor programming a mapping traps to the provider,
    which updates the guest-visible table and the composed shadow."""
    stack = make_stack()
    ctx = stack.ctx(0).chain_vcpu(1)  # the L1 hypervisor's context
    viommu = VirtualIommu("viommu-L1", provider_hv=0)
    stack.vms[0].bus.plug(viommu)
    device = PciDevice("assigned", 0x1AF4, 0x1000)
    # Give the L1 VM an EPT entry so composition has something to chew.
    stack.vms[0].ept.map(0x20, 0x99, Perm.RW)
    before = stack.metrics.copy()

    def program():
        yield from viommu.program(ctx, device, iova_pfn=0x10, target_pfn=0x20)

    stack.sim.run_process(program())
    assert stack.metrics.diff(before).total_exits() >= 1  # the register write
    assert viommu.guest_tables[device.bdf].translate(0x10) == 0x20
    # Shadow composed through the L1 EPT: straight to host pfn.
    assert viommu.shadow_tables[device.bdf].translate(0x10) == 0x99


def test_program_without_ept_entry_falls_back_to_identity():
    stack = make_stack()
    ctx = stack.ctx(0).chain_vcpu(1)
    viommu = VirtualIommu("v", provider_hv=0)
    stack.vms[0].bus.plug(viommu)
    device = PciDevice("d", 0x1AF4, 0x1000)

    def program():
        yield from viommu.program(ctx, device, iova_pfn=0x10, target_pfn=0x7777)

    stack.sim.run_process(program())
    assert viommu.shadow_tables[device.bdf].translate(0x10) == 0x7777


def test_shadow_for_unknown_device():
    viommu = VirtualIommu("v", provider_hv=0)
    device = PciDevice("d", 0, 0)
    assert viommu.shadow_for(device) is None


def test_posted_interrupt_flag_reflects_fig8_step():
    no_pi = VirtualIommu("a", provider_hv=0, posted_interrupts=False)
    with_pi = VirtualIommu("b", provider_hv=0, posted_interrupts=True)
    assert not no_pi.posted_interrupts
    assert with_pi.posted_interrupts
