"""Tests for the registry dispatch core: ExitContext chains, ownership
claims, and the declarative hypervisor profiles."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.dispatch import DEFAULT_REGISTRY, ExitContext, ExitHandlerRegistry
from repro.hv.kvm import KvmHypervisor
from repro.hv.profiles import KVM_PROFILE, PROFILES, XEN_PROFILE
from repro.hv.stack import StackConfig, build_stack
from repro.hw.ops import MSR_X2APIC_ICR, ExitReason, Op
from repro.workloads.microbench import run_microbenchmark


# ----------------------------------------------------------------------
# ExitContext: chain identity and threading
# ----------------------------------------------------------------------
def test_root_frames_get_fresh_chain_ids():
    stack = build_stack(StackConfig(levels=1))
    leaf = stack.ctx(0)
    machine = stack.machine
    e1 = leaf._make_exit(Op.VMCALL, {})
    e2 = leaf._make_exit(Op.VMCALL, {})
    a = ExitContext(e1, leaf, None, machine)
    b = ExitContext(e2, leaf, None, machine)
    assert a.chain_id != b.chain_id
    assert a.depth == b.depth == 0
    assert a.origin_level == 1
    assert a.chain() == [a]


def test_child_frames_inherit_chain_and_deepen():
    stack = build_stack(StackConfig(levels=2))
    leaf = stack.ctx(0)
    machine = stack.machine
    root = ExitContext(leaf._make_exit(Op.VMCALL, {}), leaf, None, machine)
    mid = ExitContext(leaf._make_exit(Op.VMREAD, {}), leaf, root, machine)
    deep = ExitContext(leaf._make_exit(Op.VMWRITE, {}), leaf, mid, machine)
    assert mid.chain_id == root.chain_id == deep.chain_id
    assert (root.depth, mid.depth, deep.depth) == (0, 1, 2)
    assert deep.chain() == [root, mid, deep]


def test_forwarded_exit_multiplies_into_one_chain():
    """An L2 exit forwarded to the L1 hypervisor makes the L1 handler's
    own trapping ops children of the *same* chain — the paper's exit
    multiplication, observable frame by frame."""
    stack = build_stack(StackConfig(levels=2))
    collector = stack.machine.enable_span_tracing()
    run_microbenchmark(stack, "Hypercall", iterations=1)
    roots = [r for r in collector.roots if r.level == 2 and r.reason == "vmcall"]
    assert roots, "expected at least one forwarded L2 vmcall chain"
    root = roots[0]
    assert root.handler == "kvm-L1"
    assert root.hops == 1
    assert root.subtree_size() > 1  # the handler's ops trapped too
    assert all(child.depth == 1 for child in root.children)
    # Handler ops trap from the L1 vCPU the handler runs on.
    assert all(child.level == 1 for child in root.children)


def test_dvh_chain_is_a_single_frame():
    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    collector = stack.machine.enable_span_tracing()
    run_microbenchmark(stack, "ProgramTimer", iterations=1)
    timer_roots = [r for r in collector.roots if r.reason == "apic_timer"]
    assert timer_roots
    for root in timer_roots:
        assert root.handler == "l0:dvh"
        assert root.hops == 0
        assert root.subtree_size() == 1


# ----------------------------------------------------------------------
# Routing: registry ownership claims
# ----------------------------------------------------------------------
def test_l1_exits_always_route_to_l0():
    stack = build_stack(StackConfig(levels=1))
    leaf = stack.ctx(0)
    exit_ = leaf._make_exit(Op.VMCALL, {})
    assert DEFAULT_REGISTRY.route(leaf, exit_) == 0


def test_route_notify_only_icr_to_senders_manager():
    stack = build_stack(
        StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full())
    )
    leaf = stack.ctx(0)
    target = stack.ctx(1)
    exit_ = leaf._make_exit(
        Op.WRMSR,
        {
            "msr": MSR_X2APIC_ICR,
            "notify_only": True,
            "target": target,
            "vector": 32,
        },
    )
    assert exit_.reason is ExitReason.APIC_ICR
    assert DEFAULT_REGISTRY.route(leaf, exit_) == leaf.level - 1


def test_route_mmio_follows_device_provider_not_strings():
    """Virtual-passthrough ownership comes from the device's provider
    level, not from any control-bit name matching."""
    stack = build_stack(
        StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full())
    )
    leaf = stack.ctx(0)
    device = next(
        d
        for d in stack.vms[-1].bus.devices
        if getattr(d, "provider_level", None) == 0
    )
    exit_ = leaf._make_exit(Op.MMIO_WRITE, {"device": device, "addr": 0})
    assert DEFAULT_REGISTRY.route(leaf, exit_) == 0
    # No device at all: plain emulated MMIO belongs to the VM's manager.
    exit_ = leaf._make_exit(Op.MMIO_WRITE, {"device": None, "addr": 0})
    assert DEFAULT_REGISTRY.route(leaf, exit_) == leaf.level - 1


def test_no_string_matched_dvh_ownership_remains():
    assert not hasattr(KvmHypervisor, "_dvh_owner")


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------
def test_registry_rejects_duplicate_registrations():
    reg = ExitHandlerRegistry()

    @reg.register_l0(ExitReason.VMCALL)
    def h(hv, ectx):
        yield 0

    with pytest.raises(ValueError):

        @reg.register_l0(ExitReason.VMCALL)
        def h2(hv, ectx):
            yield 0

    reg.claim_ownership(ExitReason.HLT, lambda vcpu, exit_: 0)
    with pytest.raises(ValueError):
        reg.claim_ownership(ExitReason.HLT, lambda vcpu, exit_: 0)


def test_guest_handler_profile_fallback_order():
    reg = ExitHandlerRegistry()

    @reg.register_guest(ExitReason.MMIO)
    def base(hv, ctx, ectx, vmcs):
        yield 0

    @reg.register_guest(ExitReason.MMIO, profile="xen")
    def xen_specific(hv, ctx, ectx, vmcs):
        yield 0

    @reg.register_guest(default=True)
    def fallback(hv, ctx, ectx, vmcs):
        yield 0

    assert reg.guest_handler(ExitReason.MMIO, XEN_PROFILE) is xen_specific
    assert reg.guest_handler(ExitReason.MMIO, KVM_PROFILE) is base
    assert reg.guest_handler(ExitReason.CPUID, KVM_PROFILE) is fallback


def test_default_registry_covers_every_reason():
    for reason in ExitReason:
        if reason is ExitReason.PREEMPTION_TIMER:
            continue  # never dispatched: L0-internal bookkeeping
        handler, _dvh = DEFAULT_REGISTRY.l0_handler(reason)
        assert callable(handler)
        assert callable(DEFAULT_REGISTRY.guest_handler(reason, KVM_PROFILE))


def test_dvh_capable_marking_matches_the_four_mechanisms():
    dvh_reasons = {
        reason
        for reason in ExitReason
        if reason is not ExitReason.PREEMPTION_TIMER
        and DEFAULT_REGISTRY.l0_handler(reason)[1]
    }
    assert dvh_reasons == {
        ExitReason.APIC_TIMER,
        ExitReason.APIC_ICR,
        ExitReason.HLT,
        ExitReason.MMIO,
    }


# ----------------------------------------------------------------------
# Profiles: Xen is data, not overrides
# ----------------------------------------------------------------------
def test_xen_defines_no_behavior():
    """The endpoint of the profile refactor: there is no Xen subclass at
    all — a Xen guest hypervisor is KvmHypervisor parameterized by
    XEN_PROFILE, and the stack builder wires exactly that."""
    import repro.hv as hv_pkg

    assert not hasattr(hv_pkg, "XenHypervisor")
    with pytest.raises(ModuleNotFoundError):
        import repro.hv.xen  # noqa: F401
    stack = build_stack(StackConfig(levels=2, guest_hv="xen"))
    ghv = stack.hvs[1]
    assert type(ghv) is KvmHypervisor
    assert ghv.profile is XEN_PROFILE
    # The host L0 stays on the KVM profile (class default untouched).
    assert stack.hvs[0].profile is KVM_PROFILE
    assert KvmHypervisor.profile is KVM_PROFILE


def test_profiles_registry_and_reason_op_counts():
    assert PROFILES["kvm"] is KVM_PROFILE
    assert PROFILES["xen"] is XEN_PROFILE
    for reason in ExitReason:
        kr, kw = KVM_PROFILE.reason_op_counts(reason)
        xr, xw = XEN_PROFILE.reason_op_counts(reason)
        if reason in KVM_PROFILE.op_counts:
            assert (xr, xw) == (kr + 5, kw + 4)
    # The reads+5/writes+4 Xen delta applies per reason, never to the
    # shared fallback (both profiles keep the same default).
    assert KVM_PROFILE.default_op_counts == XEN_PROFILE.default_op_counts == (9, 8)


def test_xen_split_driver_costs_come_from_profile():
    assert XEN_PROFILE.io_notify_sw == 1400
    assert XEN_PROFILE.io_notify_hypercall == "evtchn_send"
    assert KVM_PROFILE.io_notify_sw == 0


# ----------------------------------------------------------------------
# Build-time table validation (typed errors, not None-dispatch)
# ----------------------------------------------------------------------
def test_missing_l0_handler_raises_typed_error():
    from repro.hv.dispatch import DispatchTableError

    reg = ExitHandlerRegistry()  # nothing registered at all
    with pytest.raises(DispatchTableError, match="VMCALL"):
        reg.l0_handler(ExitReason.VMCALL)
    with pytest.raises(DispatchTableError):
        reg.validate_tables()


def test_missing_guest_handler_raises_typed_error():
    from repro.hv.dispatch import DispatchTableError

    reg = ExitHandlerRegistry()

    @reg.register_l0(default=True)
    def l0(hv, ectx):
        yield 0

    # L0 table is complete (default fallback), guest table is empty.
    reg.validate_tables()
    with pytest.raises(DispatchTableError, match="incomplete"):
        reg.validate_tables("kvm")
    with pytest.raises(DispatchTableError):
        reg.guest_handler(ExitReason.MMIO, KVM_PROFILE)


def test_dispatch_table_error_is_a_lookup_error():
    """Typed, but still a LookupError so pre-existing broad handlers
    keep working."""
    from repro.hv.dispatch import DispatchTableError

    assert issubclass(DispatchTableError, LookupError)


def test_build_stack_validates_tables_for_active_profile():
    """build_stack must surface an incomplete table at *build* time for
    the profile the stack actually dispatches with."""
    from repro.hv.dispatch import DispatchTableError

    reg = ExitHandlerRegistry()
    with pytest.raises(DispatchTableError):
        reg.validate_tables("hs")
    # The shipped registry passes for every registered profile.
    for name in PROFILES:
        DEFAULT_REGISTRY.validate_tables(name)
