"""Unit tests for VMs, vCPUs, chains, and TSC offset arithmetic."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.ops import Op
from repro.hw.vmx import VmcsField


def make(levels=2, io="virtio", dvh=None, **kw):
    return build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.none(), **kw)
    )


def test_vcpu_chain_structure():
    stack = make(levels=3)
    leaf = stack.ctx(0)
    chain = leaf.chain()
    assert [v.level for v in chain] == [1, 2, 3]
    assert chain[-1] is leaf
    assert chain[0].parent is None
    assert all(v.pcpu is leaf.pcpu for v in chain)  # 1:1 pinning


def test_chain_vcpu_accessor():
    stack = make(levels=3)
    leaf = stack.ctx(0)
    assert leaf.chain_vcpu(3) is leaf
    assert leaf.chain_vcpu(1).level == 1
    with pytest.raises(ValueError):
        leaf.chain_vcpu(4)
    with pytest.raises(ValueError):
        leaf.chain_vcpu(0)


def test_vm_levels_and_managers():
    stack = make(levels=3)
    vms = stack.vms
    assert [vm.level for vm in vms] == [1, 2, 3]
    assert vms[0].manager.level == 0
    assert vms[2].manager.level == 2
    assert vms[2].manager.vm is vms[1]


def test_total_tsc_offset_sums_chain():
    stack = make(levels=2)
    leaf = stack.ctx(0)
    expected = sum(v.vmcs.read(VmcsField.TSC_OFFSET) for v in leaf.chain())
    assert leaf.total_tsc_offset() == expected
    assert expected != 0  # offsets are deliberately nonzero


def test_read_tsc_applies_offsets_without_exit():
    stack = make(levels=2)
    leaf = stack.ctx(0)
    before = stack.metrics.total_exits()
    tsc = leaf.read_tsc()
    assert tsc == leaf.pcpu.tsc + leaf.total_tsc_offset()
    assert stack.metrics.total_exits() == before


def test_compute_charges_time_without_exits():
    stack = make(levels=2)
    stack.settle()
    leaf = stack.ctx(0)
    before = stack.metrics.total_exits()
    start = stack.sim.now

    def work():
        yield from leaf.compute(12345)

    stack.sim.run_process(work())
    assert stack.sim.now - start == 12345
    assert stack.metrics.total_exits() == before


def test_hypercall_exits_to_l0_once_for_l1():
    stack = make(levels=1)
    ctx = stack.ctx(0)

    def work():
        yield from ctx.execute(Op.VMCALL)

    stack.sim.run_process(work())
    assert stack.metrics.exits[(1, "vmcall")] == 1
    assert stack.metrics.guest_hv_interventions() == 0


def test_nested_hypercall_is_forwarded():
    stack = make(levels=2)
    ctx = stack.ctx(0)

    def work():
        yield from ctx.execute(Op.VMCALL)

    stack.sim.run_process(work())
    assert stack.metrics.exits[(2, "vmcall")] == 1
    assert stack.metrics.forwards[(2, "vmcall", 1)] == 1
    # Exit multiplication: the L1 handler's own ops exited too.
    assert stack.metrics.exits_from_level(1) > 10


def test_shadowed_vmcs_access_does_not_exit():
    stack = make(levels=2)
    stack.settle()
    leaf = stack.ctx(0)
    before = stack.metrics.total_exits()

    def work():
        # EXIT_REASON is shadowed; leaf.vmcs has shadow_vmcs enabled.
        value = yield from leaf.chain_vcpu(1).execute(
            Op.VMREAD, vmcs=leaf.vmcs, field=VmcsField.EXIT_REASON
        )
        return value

    stack.sim.run_process(work())
    assert stack.metrics.total_exits() == before


def test_unshadowed_vmcs_access_exits():
    stack = make(levels=2)
    leaf = stack.ctx(0)

    def work():
        yield from leaf.chain_vcpu(1).execute(
            Op.VMWRITE, vmcs=leaf.vmcs, field=VmcsField.TSC_OFFSET, value=-5
        )

    stack.sim.run_process(work())
    assert stack.metrics.exits[(1, "vmx")] == 1
    assert leaf.vmcs.read(VmcsField.TSC_OFFSET) == -5


def test_mem_write_tracks_leaf_vm_memory():
    stack = make(levels=2)
    leaf = stack.ctx(0)
    leaf.mem_write(0x5000, 100)
    assert 5 in leaf.vm.memory.touched_pages
    assert 5 not in stack.vms[0].memory.touched_pages


def test_worker_vcpus_have_low_indices():
    stack = make(levels=2, workers=4)
    assert [c.index for c in stack.ctxs] == [0, 1, 2, 3]


def test_vm_vcpu_level_mismatch_rejected():
    stack = make(levels=2)
    vm2 = stack.vms[1]
    l1_vcpu = stack.vms[0].vcpus[0]
    with pytest.raises(ValueError):
        # parent two levels down is invalid
        vm2.add_vcpu(stack.machine.cpus[9], l1_vcpu.parent)
    with pytest.raises(ValueError):
        vm2.add_vcpu(stack.machine.cpus[9], None)  # nested needs parent
