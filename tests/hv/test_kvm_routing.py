"""Tests for exit routing: who owns which exit (the heart of DVH)."""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.ops import Op


def make(levels=2, io="virtio", dvh=None, **kw):
    stack = build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.none(), **kw)
    )
    stack.settle()
    return stack


def run_op(stack, gen):
    before = stack.metrics.copy()
    stack.sim.run_process(gen)
    return stack.metrics.diff(before)


# ----------------------------------------------------------------------
# Non-DVH routing
# ----------------------------------------------------------------------
def test_l1_ops_never_forwarded():
    stack = make(levels=1)
    ctx = stack.ctx(0)

    def ops():
        yield from ctx.execute(Op.VMCALL)
        yield from ctx.program_timer(ctx.read_tsc() + 10**9)
        yield from ctx.send_ipi(1, 0xFD)

    delta = run_op(stack, ops())
    assert delta.guest_hv_interventions() == 0
    assert delta.exits_from_level(1) == 3


def test_nested_timer_owned_by_manager():
    stack = make(levels=2)
    ctx = stack.ctx(0)
    delta = run_op(stack, ctx.program_timer(ctx.read_tsc() + 10**9))
    assert delta.forwards[(2, "apic_timer", 1)] == 1


def test_l3_timer_owned_by_l2_not_l1():
    """The regression that motivated the §3.5 walk direction: an L3
    guest's timer is emulated by ITS manager (the L2 hypervisor)."""
    stack = make(levels=3)
    ctx = stack.ctx(0)
    delta = run_op(stack, ctx.program_timer(ctx.read_tsc() + 10**9))
    assert delta.forwards[(3, "apic_timer", 2)] == 1
    # ...whose own emulation traps through L1: exit multiplication.
    assert delta.exits_from_level(2) > 5
    assert delta.exits_from_level(1) > 50


def test_nested_hypercall_forwarded_even_with_dvh():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    delta = run_op(stack, ctx.execute(Op.VMCALL))
    assert delta.forwards[(2, "vmcall", 1)] == 1
    assert delta.dvh_handled.get("vmcall") is None


# ----------------------------------------------------------------------
# DVH routing
# ----------------------------------------------------------------------
def test_dvh_timer_handled_by_l0_single_exit():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    delta = run_op(stack, ctx.program_timer(ctx.read_tsc() + 10**9))
    assert delta.guest_hv_interventions() == 0
    assert delta.exits[(2, "apic_timer")] == 1
    assert delta.dvh_handled["apic_timer"] == 1


def test_dvh_timer_at_l3_still_single_exit():
    stack = make(levels=3, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    delta = run_op(stack, ctx.program_timer(ctx.read_tsc() + 10**9))
    assert delta.guest_hv_interventions() == 0
    assert delta.total_exits() == 1


def test_dvh_ipi_handled_by_l0():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    delta = run_op(stack, ctx.send_ipi(1, 0xFD))
    assert delta.forwards_to_level(1) == 0
    assert delta.dvh_handled["apic_icr"] == 1


def test_dvh_vp_doorbell_handled_by_l0():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.vp_only())
    ctx = stack.ctx(0)
    device = stack.net.device

    def kick():
        yield from ctx.execute(
            Op.MMIO_WRITE, addr=device.notify_addr, value=1, device=device
        )

    delta = run_op(stack, kick())
    assert delta.guest_hv_interventions() == 0
    assert delta.dvh_handled["mmio"] == 1


def test_nested_virtio_doorbell_owned_by_provider():
    stack = make(levels=2, io="virtio")
    ctx = stack.ctx(0)
    device = stack.net.device
    assert device.provider_level == 1

    def kick():
        yield from ctx.execute(
            Op.MMIO_WRITE, addr=device.notify_addr, value=1, device=device
        )

    delta = run_op(stack, kick())
    assert delta.forwards[(2, "mmio", 1)] == 1


def test_virtual_idle_hlt_goes_to_l0():
    stack = make(levels=2, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    # Deliver an interrupt shortly so the halt wakes.
    stack.sim.call_after(50_000, lambda: (ctx.lapic.set_irr(0x33), ctx.pcpu.wake()))
    delta = run_op(stack, ctx.wait_for_interrupt())
    assert delta.forwards_to_level(1) == 0
    assert delta.dvh_handled["hlt"] == 1


def test_hlt_without_dvh_forwarded():
    stack = make(levels=2, io="virtio")
    ctx = stack.ctx(0)
    stack.sim.call_after(200_000, lambda: (ctx.lapic.set_irr(0x33), ctx.pcpu.wake()))
    delta = run_op(stack, ctx.wait_for_interrupt())
    assert delta.forwards[(2, "hlt", 1)] >= 1


# ----------------------------------------------------------------------
# §3.5: partial recursive enablement
# ----------------------------------------------------------------------
def test_partial_dvh_enable_walk():
    """If the innermost hypervisor didn't enable virtual timers for its
    guest, it must emulate them itself, even when deeper levels would."""
    stack = make(levels=3, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    # Clear the enable bit that the L2 hypervisor set for the L3 VM.
    for vcpu in stack.vms[2].vcpus:
        vcpu.vmcs.controls.virtual_timer_enable = False
    delta = run_op(stack, ctx.program_timer(ctx.read_tsc() + 10**9))
    assert delta.forwards[(3, "apic_timer", 2)] == 1


def test_partial_dvh_outer_disable():
    """If the L1 hypervisor didn't enable the virtual timer for its
    guest, it emulates nested timer accesses (the §3.5 AND collapses)."""
    stack = make(levels=3, io="vp", dvh=DvhFeatures.full())
    ctx = stack.ctx(0)
    for vcpu in stack.vms[1].vcpus:
        vcpu.vmcs.controls.virtual_timer_enable = False
    delta = run_op(stack, ctx.program_timer(ctx.read_tsc() + 10**9))
    assert delta.forwards[(3, "apic_timer", 1)] == 1


def test_exit_multiplication_counts_match_structure():
    """One forwarded exit produces exactly the handler's trapped ops as
    L1 exits (reads + writes + VMRESUME) plus the original L2 exit."""
    stack = make(levels=2)
    ctx = stack.ctx(0)
    delta = run_op(stack, ctx.execute(Op.VMCALL))
    hv1 = stack.hvs[1]
    reads, writes = hv1.op_counts(
        __import__("repro.hw.ops", fromlist=["ExitReason"]).ExitReason.VMCALL
    )
    assert delta.exits_from_level(1) == reads + writes + 1  # +1 VMRESUME
    assert delta.exits_from_level(2) == 1
