"""Tests for virtual idle (§3.4): HLT-exiting manipulation and policy."""

from repro.core.features import DvhFeatures
from repro.core.vidle import enable_virtual_idle, update_virtual_idle_policy
from repro.hv.stack import StackConfig, build_stack


def test_enable_clears_hlt_exiting_on_nested_vmcs():
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    for vcpu in stack.leaf_vm.vcpus:
        assert not vcpu.vmcs.controls.hlt_exiting


def test_host_still_traps_hlt():
    """§3.4: the host hypervisor keeps trapping HLT; the merged controls
    OR with the host's."""
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    leaf = stack.ctx(0)
    from repro.hw.vmx import ExecControl

    host = ExecControl()  # hlt_exiting True by default
    leaf.merged_vmcs.merge_from(leaf.vmcs, host)
    assert leaf.merged_vmcs.controls.hlt_exiting


def test_policy_blocks_engagement_with_runnable_siblings():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    stack.hvs[1].other_runnable_guests = 1
    assert not enable_virtual_idle(stack.hvs, stack.leaf_vm)
    assert all(v.vmcs.controls.hlt_exiting for v in stack.leaf_vm.vcpus)


def test_policy_reevaluation():
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    hv1 = stack.hvs[1]
    # A sibling becomes runnable: trapping comes back.
    hv1.other_runnable_guests = 1
    update_virtual_idle_policy(hv1, stack.leaf_vm)
    assert all(v.vmcs.controls.hlt_exiting for v in stack.leaf_vm.vcpus)
    # Sibling leaves: virtual idle re-engages.
    hv1.other_runnable_guests = 0
    update_virtual_idle_policy(hv1, stack.leaf_vm)
    assert not any(v.vmcs.controls.hlt_exiting for v in stack.leaf_vm.vcpus)


def test_virtual_idle_is_stateless_for_migration():
    """§3.6: virtual idle introduces no state to migrate — it is purely
    a control-bit configuration."""
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    bits = [v.vmcs.controls.hlt_exiting for v in stack.leaf_vm.vcpus]
    assert bits == [False] * len(bits)
