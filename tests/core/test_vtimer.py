"""Tests for virtual timers (§3.2): discovery, enablement, save/restore."""

from repro.core.features import DvhFeatures
from repro.core.vtimer import (
    enable_virtual_timers,
    restore_virtual_timer,
    save_virtual_timer,
)
from repro.hv.stack import StackConfig, build_stack
from repro.hw.vmx import VmcsField


def test_enable_requires_capability():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    # Host did not provide the capability: enabling fails.
    assert not enable_virtual_timers(stack.hvs, stack.leaf_vm)
    assert not stack.ctx(0).vmcs.controls.virtual_timer_enable


def test_enable_sets_bit_on_all_levels():
    stack = build_stack(StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full()))
    for vm in stack.vms[1:]:
        for vcpu in vm.vcpus:
            assert vcpu.vmcs.controls.virtual_timer_enable


def test_discovery_bit_visible_to_guest_hypervisor():
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    assert stack.hvs[1].capability.virtual_timer


def test_save_restore_roundtrip():
    """§3.2: the guest hypervisor saves/restores the virtual timer when
    switching nested VMs (and for migration, §3.6)."""
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    vcpu = stack.ctx(0)
    vcpu.lapic.arm_timer(123_456, vector=0xEC)
    saved = save_virtual_timer(vcpu)
    assert saved == 123_456
    assert vcpu.vmcs.read(VmcsField.VIRTUAL_TIMER_DEADLINE) == 123_456
    vcpu.lapic.disarm_timer()
    restore_virtual_timer(vcpu)
    assert vcpu.lapic.timer_deadline == 123_456


def test_restore_with_no_saved_state_is_noop():
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    vcpu = stack.ctx(0)
    restore_virtual_timer(vcpu)
    assert vcpu.lapic.timer_deadline is None
