"""Tests for DVH migration (§3.6)."""

import pytest

from repro.core.features import DvhFeatures
from repro.core.migration import (
    LiveMigration,
    MigrationError,
    MigrationNotSupported,
    add_migration_capability,
    capture_device_state,
    set_device_dirty_logging,
)
from repro.hv.stack import StackConfig, build_stack
from repro.hw.devices.virtio import VirtioDevice
from repro.hw.mem import PAGE_SIZE, DirtyLog
from repro.hw.pci import CapabilityId


def make_dvh(levels=2):
    stack = build_stack(
        StackConfig(levels=levels, io_model="vp", dvh=DvhFeatures.full())
    )
    stack.settle()
    return stack


# ----------------------------------------------------------------------
# The PCI migration capability
# ----------------------------------------------------------------------
def test_capability_registers():
    dev = VirtioDevice("d", provider_level=0)
    cap = add_migration_capability(dev)
    assert dev.has_capability(CapabilityId.MIGRATION)
    assert set(cap.registers) == {"ctrl", "state_addr", "dirty_log_addr"}


def test_capture_requires_capability():
    dev = VirtioDevice("d", provider_level=0)
    with pytest.raises(MigrationNotSupported):
        capture_device_state(dev, backend=None)


def test_capture_returns_state_size():
    stack = make_dvh()
    dev = stack.net.device
    backend = stack.machine.host_hv.backends[dev]
    nbytes = capture_device_state(dev, backend)
    assert nbytes > 0


def test_dirty_logging_through_capability():
    """DMA writes land in the device dirty log while enabled."""
    stack = make_dvh()
    dev = stack.net.device
    backend = stack.machine.host_hv.backends[dev]
    log = DirtyLog()
    set_device_dirty_logging(dev, backend, log)
    received = []
    ctx = stack.ctx(0)

    def server():
        while not received:
            msgs = yield from stack.net.poll_rx(queue=0, ctx=ctx)
            if not msgs:
                yield from ctx.wait_for_interrupt()
                continue
            received.extend(msgs)

    stack.sim.spawn(server(), "srv")
    stack.machine.client.send(stack.flow, PAGE_SIZE * 2, payload="dma")
    stack.sim.run()
    assert len(log) >= 2  # at least two pages dirtied by the DMA
    set_device_dirty_logging(dev, backend, None)
    assert backend.dirty_log is None


# ----------------------------------------------------------------------
# Live migration
# ----------------------------------------------------------------------
def test_passthrough_vm_refuses():
    stack = build_stack(StackConfig(levels=2, io_model="passthrough"))
    stack.settle()
    mig = LiveMigration(stack.machine, stack.leaf_vm)
    with pytest.raises(MigrationNotSupported):
        stack.sim.run_process(mig.run())


def test_migration_converges_and_reports():
    stack = make_dvh()
    mig = LiveMigration(stack.machine, stack.leaf_vm, devices=[stack.net.device])
    res = stack.sim.run_process(mig.run())
    assert res.total_s > 0
    assert res.downtime_s <= mig.downtime_target_s + 0.01
    assert res.rounds >= 1
    assert res.bytes_transferred >= stack.leaf_vm.memory.size_bytes // 512
    assert res.dvh_state_saved  # virtual timer/VCIMT state rode along


def test_dirty_workload_adds_rounds():
    """A workload dirtying memory during pre-copy forces extra rounds."""
    quiet = make_dvh()
    quiet_res = quiet.sim.run_process(
        LiveMigration(quiet.machine, quiet.leaf_vm).run()
    )

    busy = make_dvh()
    ctx = busy.ctx(1)

    def dirtier():
        for i in range(4000):
            yield from ctx.compute(100_000)
            ctx.mem_write(0x1000_0000 + (i % 512) * PAGE_SIZE, PAGE_SIZE)

    busy.sim.spawn(dirtier(), "dirtier")
    busy_res = busy.sim.run_process(LiveMigration(busy.machine, busy.leaf_vm).run())
    assert busy_res.bytes_transferred > quiet_res.bytes_transferred
    assert busy_res.rounds >= quiet_res.rounds


def test_max_rounds_bound():
    """A pathological dirty rate still terminates (stop-and-copy after
    max_rounds, accepting the downtime)."""
    stack = make_dvh()
    ctx = stack.ctx(1)
    mig = LiveMigration(stack.machine, stack.leaf_vm, max_rounds=3)
    proc = stack.sim.spawn(mig.run(), "migration")

    def firehose():
        # Re-dirties a 2000-page working set far faster than the link
        # can drain it: pre-copy can never converge.
        i = 0
        while not proc.done:
            yield from ctx.compute(20_000)
            ctx.mem_write(0x1000_0000 + (i % 2_000) * PAGE_SIZE, PAGE_SIZE)
            i += 1

    stack.sim.spawn(firehose(), "firehose")
    stack.sim.run()
    assert proc.done
    assert proc.result.rounds <= 3


def test_l1_migration_includes_nested_footprint():
    stack = make_dvh()
    nested = stack.sim.run_process(
        LiveMigration(stack.machine, stack.leaf_vm).run()
    )
    stack2 = make_dvh()
    whole = stack2.sim.run_process(
        LiveMigration(stack2.machine, stack2.vms[0]).run()
    )
    ratio = whole.bytes_transferred / nested.bytes_transferred
    assert 1.8 <= ratio <= 2.2  # 24 GB vs 12 GB: "roughly twice"


def test_backend_paused_during_stop_and_copy_then_resumed():
    stack = make_dvh()
    backend = stack.machine.host_hv.backends[stack.net.device]
    mig = LiveMigration(stack.machine, stack.leaf_vm, devices=[stack.net.device])
    stack.sim.run_process(mig.run())
    assert backend.paused is False  # resumed after switch-over
    assert backend.dirty_log is None  # logging disabled again


def _spawn_firehose(stack, proc):
    """Re-dirty a 2000-page working set faster than the link drains it."""
    ctx = stack.ctx(1)

    def firehose():
        i = 0
        while not proc.done:
            yield from ctx.compute(20_000)
            ctx.mem_write(0x1000_0000 + (i % 2_000) * PAGE_SIZE, PAGE_SIZE)
            i += 1

    stack.sim.spawn(firehose(), "firehose")


def test_downtime_limit_raises_on_non_convergence():
    """With a hard downtime limit set, a dirty rate that cannot converge
    raises MigrationError instead of eating an unbounded stop-and-copy."""
    stack = make_dvh()
    backend = stack.machine.host_hv.backends[stack.net.device]
    mig = LiveMigration(
        stack.machine,
        stack.leaf_vm,
        devices=[stack.net.device],
        max_rounds=3,
        downtime_limit_s=0.0005,
    )
    proc = stack.sim.spawn(mig.run(), "migration")
    _spawn_firehose(stack, proc)
    with pytest.raises(MigrationError, match="did not converge"):
        stack.sim.run()
    # The abort is clean: the source VM keeps running, the backend is
    # resumed, and dirty logging is off.
    assert backend.paused is False
    assert backend.dirty_log is None


def test_downtime_limit_ignored_when_converged():
    """A quiet VM converges within the round budget; the limit never
    triggers and the result honors the downtime target."""
    stack = make_dvh()
    mig = LiveMigration(
        stack.machine, stack.leaf_vm, downtime_limit_s=0.05
    )
    res = stack.sim.run_process(mig.run())
    assert res.downtime_s <= 0.05
    assert res.retries == 0


def test_no_limit_keeps_legacy_termination():
    """Without the opt-in limit, the pathological case still terminates
    by accepting the long stop-and-copy (the pre-existing contract)."""
    stack = make_dvh()
    mig = LiveMigration(stack.machine, stack.leaf_vm, max_rounds=3)
    proc = stack.sim.spawn(mig.run(), "migration")
    _spawn_firehose(stack, proc)
    stack.sim.run()
    assert proc.done
    assert proc.result.rounds <= 3


def test_custom_bandwidth_scales_time():
    slow = make_dvh()
    fast = make_dvh()
    r_slow = slow.sim.run_process(
        LiveMigration(slow.machine, slow.leaf_vm, bandwidth_bps=100e6).run()
    )
    r_fast = fast.sim.run_process(
        LiveMigration(fast.machine, fast.leaf_vm, bandwidth_bps=1e9).run()
    )
    assert r_slow.total_s > 5 * r_fast.total_s
