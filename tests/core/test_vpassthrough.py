"""Tests for virtual-passthrough (§3.1, recursive §3.5)."""

import pytest

from repro.core.features import DvhFeatures
from repro.core.vpassthrough import assign_virtual_device, populate_chain_epts
from repro.hv.stack import StackConfig, build_stack
from repro.hw.devices.virtio import VirtioDevice
from repro.hw.ept import Perm


def make(levels=2, io="vp", dvh=None):
    stack = build_stack(
        StackConfig(levels=levels, io_model=io, dvh=dvh or DvhFeatures.vp_only())
    )
    return stack


def test_only_l0_devices_assignable():
    """The defining property: the device is provided by the host."""
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    l1_device = VirtioDevice("l1-dev", provider_level=1)
    with pytest.raises(ValueError, match="host"):
        assign_virtual_device(stack.machine, l1_device, stack.leaf_vm)


def test_device_visible_on_leaf_bus():
    stack = make()
    assert stack.net.device in list(stack.leaf_vm.bus.enumerate())
    assert stack.net.device.assigned_to is stack.leaf_vm


def test_doorbell_still_traps():
    """Unlike physical passthrough, the BAR must keep trapping — the
    device is software in L0."""
    stack = make()
    assert stack.leaf_vm.traps_mmio(stack.net.device.notify_addr)


def test_viommu_per_intervening_hypervisor():
    l2 = make(levels=2)
    l3 = make(levels=3)
    assert len(l2.vp_assignment.viommus) == 1
    assert len(l3.vp_assignment.viommus) == 2


def test_shadow_table_composition_is_exact():
    """The shadow table equals the step-by-step EPT chain walk for every
    mapped pool page (Figure 6)."""
    stack = make(levels=3)
    assignment = stack.vp_assignment
    from repro.hv.passthrough import resolve_through_chain

    checked = 0
    for pfn, pte in assignment.shadow.entries():
        assert pte.target_pfn == resolve_through_chain(stack.leaf_vm, pfn)
        checked += 1
        if checked >= 64:
            break
    assert checked > 0


def test_shadow_translate_enforces_permissions():
    stack = make()
    from repro.hv.virtio_backend import RX_POOL_BASE

    assert stack.vp_assignment.translate(RX_POOL_BASE, write=True) > 0
    with pytest.raises(Exception):
        stack.vp_assignment.translate(0xDEAD_BEEF_000)


def test_no_physical_iommu_involved():
    """§3.1: virtual-passthrough requires no physical IOMMU — the
    device has no domain in the hardware IOMMU."""
    stack = make()
    assert stack.machine.iommu.domain_of(stack.net.device) is None


def test_nested_vm_unmodified():
    """Transparency: the leaf uses a standard virtio driver bound to a
    standard PCI device; nothing DVH-specific in the nested VM."""
    stack = make()
    from repro.hw.pci import CapabilityId

    dev = stack.net.device
    assert dev.has_capability(CapabilityId.MSIX)
    assert dev.vendor_id == 0x1AF4  # ordinary virtio vendor id
    assert type(stack.net).__name__ == "VirtioDriver"


def test_populate_chain_epts_idempotent():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    populate_chain_epts(stack.leaf_vm, [0x100, 0x101])
    size_before = len(stack.leaf_vm.ept)
    populate_chain_epts(stack.leaf_vm, [0x100, 0x101])
    assert len(stack.leaf_vm.ept) == size_before


def test_scalability_many_devices_one_host():
    """§3.1: 'easily scalable ... for as many virtual I/O devices as
    desired; no SR-IOV hardware support is required'."""
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    for i in range(16):
        dev = VirtioDevice(f"extra{i}", provider_level=0)
        stack.machine.bus.plug(dev)
        assignment = assign_virtual_device(
            stack.machine, dev, stack.leaf_vm, pfns=[0x2000 + i]
        )
        assert assignment.shadow is not None
