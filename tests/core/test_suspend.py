"""Tests for suspend/resume (the §1 interposition benefit)."""

import pytest

from repro.core.features import DvhFeatures
from repro.core.suspend import VmCheckpoint, resume_vm, suspend_vm
from repro.hv.passthrough import MigrationNotSupported
from repro.hv.stack import StackConfig, build_stack


def make_dvh():
    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    stack.settle()
    return stack


def test_suspend_refuses_passthrough():
    stack = build_stack(StackConfig(levels=2, io_model="passthrough"))
    with pytest.raises(MigrationNotSupported):
        suspend_vm(stack.machine, stack.leaf_vm)


def test_checkpoint_captures_pending_interrupts():
    stack = make_dvh()
    ctx = stack.ctx(0)
    ctx.lapic.set_irr(0x55)
    ctx.pi_desc.post(0x66)
    cp = suspend_vm(stack.machine, stack.leaf_vm, devices=[stack.net.device])
    assert 0x55 in cp.vcpus[0]["irr"]
    assert 0x66 in cp.vcpus[0]["pir"]
    assert stack.net.device.name in cp.devices


def test_resume_restores_interrupt_state():
    stack = make_dvh()
    ctx = stack.ctx(0)
    ctx.lapic.set_irr(0x55)
    cp = suspend_vm(stack.machine, stack.leaf_vm)
    ctx.lapic.irr.clear()
    resume_vm(stack.machine, stack.leaf_vm, cp)
    assert 0x55 in ctx.lapic.irr


def test_timer_rearmed_relative_to_resume_time():
    """A timer 1ms from firing at suspend fires ~1ms after resume, no
    matter how long the VM stayed suspended."""
    stack = make_dvh()
    ctx = stack.ctx(0)
    sim = stack.sim
    remaining = sim.cycles(0.001)

    def arm():
        yield from ctx.program_timer(ctx.read_tsc() + remaining)

    sim.spawn(arm(), "arm")
    sim.run(until=sim.now + 20_000)  # op completes; deadline still ahead
    cp = suspend_vm(stack.machine, stack.leaf_vm)
    remaining = cp.vcpus[0]["timer_remaining"]
    assert remaining is not None and remaining > 0
    # "Suspended" for a long time...
    sim.run(until=sim.now + sim.cycles(0.5))
    resume_vm(stack.machine, stack.leaf_vm, cp)
    resumed_at = sim.now
    got = {}

    def wait():
        got["vector"] = yield from ctx.wait_for_interrupt()
        got["at"] = sim.now

    sim.run_process(wait())
    assert got["vector"] == ctx.lapic.timer_vector
    fired_after = got["at"] - resumed_at
    assert remaining * 0.9 <= fired_after <= remaining + 50_000


def test_resume_validates_identity():
    stack = make_dvh()
    cp = suspend_vm(stack.machine, stack.leaf_vm)
    other = build_stack(StackConfig(levels=3, io_model="virtio"))
    with pytest.raises(ValueError):
        resume_vm(other.machine, other.leaf_vm, cp)  # an L3 VM, not "L2"


def test_checkpoint_includes_dvh_state():
    stack = make_dvh()
    cp = suspend_vm(stack.machine, stack.leaf_vm)
    assert cp.dvh_state["virtual_timer_enabled"]
    assert cp.dvh_state["vcimtar"] is not None


def test_resume_on_fresh_identical_host():
    """Suspend on one stack, resume on a freshly built identical one —
    the crux of encapsulation."""
    src = make_dvh()
    src.ctx(0).lapic.set_irr(0x41)
    cp = suspend_vm(src.machine, src.leaf_vm, devices=[src.net.device])
    dst = make_dvh()
    resume_vm(dst.machine, dst.leaf_vm, cp)
    assert 0x41 in dst.ctx(0).lapic.irr
    assert dst.leaf_vm.vcimtar == cp.dvh_state["vcimtar"]
