"""Tests for DVH feature flags."""

import pytest

from repro.core.features import DvhFeatures


def test_none_disables_everything():
    f = DvhFeatures.none()
    assert not f.any_enabled


def test_full_enables_everything():
    f = DvhFeatures.full()
    assert f.virtual_passthrough
    assert f.viommu_posted_interrupts
    assert f.virtual_ipi
    assert f.virtual_timer
    assert f.virtual_idle
    assert f.any_enabled


def test_vp_only_is_the_conservative_config():
    """DVH-VP: virtual-passthrough without even vIOMMU posted interrupts
    (the paper's conservative comparison against passthrough)."""
    f = DvhFeatures.vp_only()
    assert f.virtual_passthrough
    assert not f.viommu_posted_interrupts
    assert not f.virtual_timer
    assert f.any_enabled


def test_with_overrides():
    f = DvhFeatures.vp_only().with_(virtual_timer=True)
    assert f.virtual_timer and f.virtual_passthrough
    assert not f.virtual_ipi


def test_frozen():
    f = DvhFeatures.none()
    with pytest.raises(Exception):
        f.virtual_timer = True  # type: ignore[misc]
