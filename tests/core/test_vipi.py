"""Tests for virtual IPIs (§3.3): VCIMT construction and registration."""

from repro.core.features import DvhFeatures
from repro.core.vipi import DEFAULT_VCIMT_BASE, setup_virtual_ipis
from repro.hv.stack import StackConfig, build_stack
from repro.hw.vmx import VCIMT_ENTRY_SIZE, VmcsField


def test_setup_writes_table_into_manager_memory():
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    leaf_vm = stack.leaf_vm
    manager_vm = leaf_vm.manager.vm
    for vcpu in leaf_vm.vcpus:
        entry = manager_vm.memory.read(
            DEFAULT_VCIMT_BASE + VCIMT_ENTRY_SIZE * vcpu.index
        )
        assert entry is vcpu


def test_setup_programs_vcimtar_in_leaf_vmcs():
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    for vcpu in stack.leaf_vm.vcpus:
        assert vcpu.vmcs.read(VmcsField.VCIMTAR) == DEFAULT_VCIMT_BASE
        assert vcpu.vmcs.controls.virtual_ipi_enable


def test_setup_fails_without_capability():
    stack = build_stack(StackConfig(levels=2, io_model="virtio"))
    assert not setup_virtual_ipis(stack.hvs, stack.leaf_vm)
    assert not stack.ctx(0).vmcs.controls.virtual_ipi_enable


def test_setup_rejects_non_nested():
    stack = build_stack(StackConfig(levels=1, io_model="virtio"))
    assert not setup_virtual_ipis(stack.hvs, stack.vms[0])


def test_recursive_enable_on_every_level():
    stack = build_stack(StackConfig(levels=3, io_model="vp", dvh=DvhFeatures.full()))
    for vm in stack.vms[1:]:
        assert all(v.vmcs.controls.virtual_ipi_enable for v in vm.vcpus)
    # The table for the leaf lives in ITS manager's memory (the L2 VM).
    assert stack.leaf_vm.vcimtar == DEFAULT_VCIMT_BASE
    entry = stack.vms[1].memory.read(DEFAULT_VCIMT_BASE)
    assert entry is stack.ctx(0)


def test_vcimtar_survives_merge():
    """The merged VMCS carries the VCIMTAR so L0 can find the table."""
    stack = build_stack(StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()))
    leaf = stack.ctx(0)
    from repro.hw.vmx import ExecControl

    leaf.merged_vmcs.merge_from(leaf.vmcs, ExecControl())
    assert leaf.merged_vmcs.read(VmcsField.VCIMTAR) == DEFAULT_VCIMT_BASE
