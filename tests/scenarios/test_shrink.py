"""Shrink semantics: deterministic greedy minimization."""

import pytest

from repro.scenarios import (
    ScenarioSpec,
    TenantDraw,
    generate_specs,
    shrink_candidates,
    shrink_scenario,
)


def _machine_spec(**overrides):
    base = dict(
        seed=1,
        topology="machine",
        levels=2,
        io_model="virtio",
        dvh="full",
        grants=(),
        ops_per_worker=20,
        fault_classes=("nic_drop", "irq_drop"),
        fault_seed=5,
    )
    base.update(overrides)
    return ScenarioSpec(**base).validate()


def test_green_scenario_refuses_to_shrink():
    with pytest.raises(ValueError, match="does not fail"):
        shrink_scenario(_machine_spec())


def test_candidates_are_all_valid_and_strictly_smaller():
    spec = _machine_spec(grants=("timer_deadline",), dvh="none")
    for step, candidate in shrink_candidates(spec):
        candidate.validate()
        assert candidate != spec
        assert isinstance(step, str) and step


def test_candidates_never_produce_invalid_combos():
    """Reducing levels under a vp stack (vp needs nesting) must be
    filtered out, not emitted as an invalid candidate."""
    spec = _machine_spec(io_model="vp", dvh="full", levels=2)
    for _step, candidate in shrink_candidates(spec):
        candidate.validate()
        if candidate.io_model == "vp":
            assert candidate.levels >= 2


def test_shrink_is_deterministic_and_minimizes():
    """With a synthetic predicate ("fails while irq_drop is drawn"),
    shrinking must strip everything irrelevant and keep the trigger."""
    spec = _machine_spec(
        grants=("timer_deadline", "posted_interrupts"),
        dvh="none",
        fault_classes=("nic_drop", "irq_drop", "iommu_fault"),
    )

    def fails(candidate):
        return "irq_drop" in candidate.fault_classes

    minimal_a, steps_a = shrink_scenario(spec, fails=fails)
    minimal_b, steps_b = shrink_scenario(spec, fails=fails)
    assert (minimal_a, steps_a) == (minimal_b, steps_b)
    assert minimal_a.fault_classes == ("irq_drop",)
    assert minimal_a.grants == ()
    assert minimal_a.ops_per_worker == 1
    assert minimal_a.workers == 1
    assert minimal_a.levels == 0


def test_cluster_shrink_drops_tenants_and_hosts():
    spec = next(
        s for s in generate_specs(seed=0, count=6) if s.topology == "cluster"
    )

    def fails(candidate):
        return len(candidate.tenants) >= 2

    minimal, steps = shrink_scenario(spec, fails=fails)
    assert len(minimal.tenants) == 2
    assert minimal.hosts == 2
    assert any("drop tenant" in step for step in steps)
