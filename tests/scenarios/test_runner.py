"""Replay determinism for scenario runs: serial vs --jobs, FF on/off,
and the regression pins for bugs the generator sweep surfaced."""

import json

import pytest

from repro.scenarios import ScenarioSpec, generate_specs, run_scenario, run_scenarios

#: A small campaign that covers both topologies and all three arches
#: (see test_generator.test_pinned_campaign_shape).
SPECS = generate_specs(seed=0, count=6)


def _blob(results):
    return json.dumps(results, sort_keys=True)


def test_run_twice_byte_identical():
    assert _blob(run_scenarios(SPECS)) == _blob(run_scenarios(SPECS))


def test_serial_vs_jobs_byte_identical():
    serial = run_scenarios(SPECS)
    fanned = run_scenarios(SPECS, jobs=2)
    assert _blob(serial) == _blob(fanned)


def test_fast_forward_invariance(monkeypatch):
    baseline = _blob(run_scenarios(SPECS))
    monkeypatch.setenv("REPRO_FAST_FORWARD", "0")
    assert _blob(run_scenarios(SPECS)) == baseline


def test_audit_does_not_change_digests():
    plain = run_scenarios(SPECS)
    audited = run_scenarios(SPECS, audit=True)
    assert [r["digest"] for r in plain] == [r["digest"] for r in audited]


def test_results_carry_spec_identity():
    results = run_scenarios(SPECS)
    for index, (spec, result) in enumerate(zip(SPECS, results)):
        assert result["index"] == index
        assert result["seed"] == spec.seed
        assert result["spec_digest"] == spec.digest()
        assert result["outcome"] == "ok"
        assert result["violations"] == []


def test_riscv_machine_scenario_counts_delegated_traps():
    spec = ScenarioSpec(
        seed=1,
        topology="machine",
        arch="riscv",
        guest_hv="hs",
        levels=2,
        io_model="virtio",
        ops_per_worker=10,
    ).validate()
    result = run_scenario(spec)
    assert result["outcome"] == "ok" and not result["violations"]


def test_cluster_scenario_digest_matches_direct_cluster_run():
    """A cluster scenario is the sweep demo shape: same spec fields
    driven directly through Cluster must reproduce the same digest."""
    spec = next(s for s in SPECS if s.topology == "cluster")
    result = run_scenario(spec)

    from repro.cluster import Cluster
    from repro.core.migration import MigrationError, MigrationNotSupported

    cluster = Cluster(
        num_hosts=spec.hosts,
        seed=spec.seed,
        policy=spec.policy,
        guest_hv=spec.guest_hv,
        arch=spec.arch,
        stack_levels=spec.levels,
        workers=spec.workers,
        fault_plan=spec.fault_plan(),
    )
    for tenant in spec.tenant_specs():
        cluster.place(tenant)
    cluster.stream("host1", f"host{spec.hosts - 1}", 8 << 20)
    try:
        cluster.orchestrator.evacuate("host0")
    except (MigrationError, MigrationNotSupported):
        pass
    cluster.sim.run()
    assert cluster.digest() == result["digest"]


def test_setup_cycles_excluded_from_wall_budget():
    """Regression: a short run over a big passthrough domain charges
    boot-time IOMMU pinning to cycles["setup"] before the clock runs;
    the conservation invariant must not flag that as a violation.
    (Found by the generator sweep: seed 0, scenario 180.)"""
    spec = generate_specs(seed=0, count=200)[180]
    assert (spec.topology, spec.io_model) == ("machine", "passthrough")
    result = run_scenario(spec, audit=True)
    assert result["outcome"] == "ok"
    assert result["violations"] == []
