"""Generator determinism and constraint properties."""

import json
import random

import pytest

from repro.scenarios import (
    ScenarioSpec,
    draw_grants,
    draw_stack_shape,
    generate_specs,
    mixed_tenant_specs,
    scenario_seed,
)


def test_same_seed_byte_identical_specs():
    a = "\n".join(s.to_json() for s in generate_specs(seed=11, count=30))
    b = "\n".join(s.to_json() for s in generate_specs(seed=11, count=30))
    assert a == b


def test_different_seeds_differ():
    a = [s.to_json() for s in generate_specs(seed=1, count=10)]
    b = [s.to_json() for s in generate_specs(seed=2, count=10)]
    assert a != b


def test_spec_json_round_trip():
    for spec in generate_specs(seed=4, count=20):
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.digest() == spec.digest()


def test_every_generated_spec_is_valid():
    for spec in generate_specs(seed=9, count=40):
        spec.validate()  # must not raise


def test_generator_covers_both_topologies_and_all_arches():
    specs = generate_specs(seed=0, count=60)
    assert {s.topology for s in specs} == {"machine", "cluster"}
    assert {s.arch for s in specs} == {"x86", "arm", "riscv"}


def test_constraints_hold_by_construction():
    """The generator may only emit combinations the builders accept:
    Xen never lands on RISC-V, hs never off RISC-V, vp I/O only with
    nesting, and grants only where GrantSet.validate allows them."""
    for spec in generate_specs(seed=7, count=80):
        if spec.arch == "riscv":
            assert spec.guest_hv == "hs"
        else:
            assert spec.guest_hv in ("kvm", "xen")
        if spec.topology == "machine":
            if spec.io_model == "vp":
                assert spec.levels >= 2
            if spec.grants:
                assert spec.levels >= 2


def test_arch_pool_restriction():
    specs = generate_specs(seed=3, count=20, arches=("riscv",))
    assert {s.arch for s in specs} == {"riscv"}
    assert all(s.guest_hv == "hs" for s in specs)


def test_stack_shape_draws_match_fuzzer_stream():
    """The fuzzer delegates its episode draws here; the rng consumption
    must stay stable so campaign seeds keep reproducing old episodes."""
    from repro.faults.fuzz import TrapChainFuzzer

    fuzzer = TrapChainFuzzer(seed=5)
    for index in range(20):
        eseed = fuzzer.episode_seed(index)
        direct = draw_stack_shape(random.Random(eseed), (0, 1, 2, 3), 2)
        via_fuzzer = fuzzer._episode_config(random.Random(eseed))
        assert (
            direct.levels,
            direct.io_model,
            direct.dvh,
            direct.ooh.names() if direct.ooh else None,
        ) == (
            via_fuzzer.levels,
            via_fuzzer.io_model,
            via_fuzzer.dvh,
            via_fuzzer.ooh.names() if via_fuzzer.ooh else None,
        )


def test_grants_never_dirty_on_passthrough():
    from repro.core.features import DvhFeatures

    rng = random.Random(6)
    for _ in range(200):
        grants = draw_grants(rng, 2, "passthrough", DvhFeatures.none())
        if grants is not None:
            assert not (
                {"dirty_logging", "dirty_ring"} & set(grants.names())
            )


def test_mixed_tenant_specs_matches_sweep_fleet():
    """standard_tenants delegates here: the canonical fleet bytes must
    be exactly the historic formula's."""
    from repro.cluster.sweep import standard_tenants

    assert standard_tenants(7) == mixed_tenant_specs(7)
    spec = mixed_tenant_specs(6)[1]
    assert (spec.name, spec.io_model, spec.memory_gb, spec.load) == (
        "t1",
        "vp",
        12,
        1150,
    )


def test_scenario_seed_mixing_matches_fuzzer():
    from repro.faults.fuzz import TrapChainFuzzer

    fuzzer = TrapChainFuzzer(seed=42)
    assert scenario_seed(42, 17) == fuzzer.episode_seed(17)


def test_pinned_campaign_shape():
    """Byte-pin one small campaign so accidental draw-order changes
    surface as a diff, not as silently different coverage."""
    descs = [s.desc for s in generate_specs(seed=0, count=6)]
    assert descs == [
        "arm/xen cluster/spread hosts=4 tenants=5",
        "x86/kvm L3/passthrough+dvh+ooh1",
        "x86/kvm cluster/load-balance hosts=2 tenants=4",
        "x86/kvm L3/vp+dvh",
        "x86/xen cluster/spread hosts=3 tenants=3",
        "riscv/hs L2/vp+dvh",
    ]
