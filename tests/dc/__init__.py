"""Tests for the repro.dc datacenter subsystem."""
