"""The declarative spec format: YAML-subset parser, validation, errors."""

import json

import pytest

from repro.dc import BUILTIN_SPECS, DCSpec, SpecError, parse_simple_yaml
from repro.dc.spec import SPEC_VERSION


# ----------------------------------------------------------------------
# Parser: the YAML subset
# ----------------------------------------------------------------------
def test_scalars_and_nesting():
    doc = parse_simple_yaml(
        "a: 1\n"
        "b: 2.5\n"
        "c: true\n"
        "d: false\n"
        "e: null\n"
        "f: hello\n"
        "g: 'quoted: colon'\n"
        "nested:\n"
        "  x: 1\n"
        "  deeper:\n"
        "    y: -3\n"
    )
    assert doc == {
        "a": 1,
        "b": 2.5,
        "c": True,
        "d": False,
        "e": None,
        "f": "hello",
        "g": "quoted: colon",
        "nested": {"x": 1, "deeper": {"y": -3}},
    }


def test_inline_lists_and_maps():
    doc = parse_simple_yaml("mix: {virtio: 2, vp: 1}\nrange: [1, 2]\n")
    assert doc == {"mix": {"virtio": 2, "vp": 1}, "range": [1, 2]}


def test_block_lists_of_mappings():
    doc = parse_simple_yaml(
        "faults:\n"
        "  - kind: fabric_partition\n"
        "    start_ms: 1.0\n"
        "  - kind: fabric_degrade\n"
    )
    assert doc["faults"] == [
        {"kind": "fabric_partition", "start_ms": 1.0},
        {"kind": "fabric_degrade"},
    ]


def test_comments_stripped_outside_quotes():
    doc = parse_simple_yaml("a: 1  # trailing\n# full line\nb: 'keep # this'\n")
    assert doc == {"a": 1, "b": "keep # this"}


def test_json_documents_pass_through():
    doc = parse_simple_yaml(json.dumps({"a": [1, 2], "b": {"c": 3}}))
    assert doc == {"a": [1, 2], "b": {"c": 3}}


def test_tabs_rejected():
    with pytest.raises(SpecError, match="tabs"):
        parse_simple_yaml("a:\n\tb: 1\n")


def test_duplicate_keys_rejected():
    with pytest.raises(SpecError, match="duplicate key"):
        parse_simple_yaml("a: 1\na: 2\n")


# ----------------------------------------------------------------------
# DCSpec validation
# ----------------------------------------------------------------------
def test_builtin_specs_parse_and_describe():
    for name, text in BUILTIN_SPECS.items():
        spec = DCSpec.from_text(text)
        assert spec.name == name
        assert spec.version == SPEC_VERSION
        assert spec.topology.num_hosts >= 6
        assert name in spec.describe()


def test_minimal_spec_uses_defaults():
    spec = DCSpec.from_text("name: tiny\n")
    assert spec.topology.racks >= 1
    assert spec.control.policy == "bin-pack"
    assert not spec.control.upgrade.enabled


def test_unknown_top_level_key_rejected():
    with pytest.raises(SpecError, match="unknown key 'topologie'"):
        DCSpec.from_text("topologie:\n  racks: 2\n")


def test_unknown_section_key_rejected():
    with pytest.raises(SpecError, match="unknown key"):
        DCSpec.from_text("topology:\n  rackz: 2\n")


def test_wrong_version_rejected():
    with pytest.raises(SpecError, match="unsupported spec version"):
        DCSpec.from_text(f"version: {SPEC_VERSION + 1}\n")


def test_unknown_policy_rejected():
    with pytest.raises(SpecError):
        DCSpec.from_text("control:\n  policy: round-robin\n")


def test_unknown_io_model_in_mix_rejected():
    with pytest.raises(SpecError, match="unknown io model"):
        DCSpec.from_text("tenants:\n  mix: {scsi: 1}\n")


def test_non_fabric_fault_kind_rejected():
    with pytest.raises(SpecError, match="not a fabric fault class"):
        DCSpec.from_text("faults:\n  - kind: vcpu_stall\n")


def test_fabric_fault_window_accepted():
    spec = DCSpec.from_text(
        "faults:\n"
        "  - kind: fabric_degrade\n"
        "    start_ms: 1.0\n"
        "    end_ms: 5.0\n"
        "    rate: 0.5\n"
        "    param: 4\n"
    )
    assert spec.faults[0].kind == "fabric_degrade"
    plan = spec.fault_plan(freq_hz=1e9)
    assert plan is not None and not plan.is_empty


def test_spec_document_must_be_mapping():
    with pytest.raises(SpecError):
        DCSpec.from_text("[1, 2]")
    with pytest.raises(SpecError, match="expected a mapping"):
        DCSpec.from_dict([1, 2])


def test_fault_window_must_end_after_start():
    with pytest.raises(SpecError, match="must be after start_ms"):
        DCSpec.from_text(
            "faults:\n"
            "  - kind: fabric_degrade\n"
            "    start_ms: 5.0\n"
            "    end_ms: 5.0\n"
        )


# ----------------------------------------------------------------------
# The slo: block
# ----------------------------------------------------------------------
def test_slo_defaults_disabled():
    spec = DCSpec.from_text("name: tiny\n")
    assert not spec.slo.enabled
    assert spec.slo.objective_ms("virtio") == spec.slo.objective_p99_ms


def test_slo_block_parses_with_per_model_objectives():
    spec = DCSpec.from_text(
        "slo:\n"
        "  enabled: true\n"
        "  sample_ms: 0.1\n"
        "  objective_p99_ms: 0.2\n"
        "  objectives: {vp: 0.05}\n"
        "  gate_start_ms: 1.0\n"
        "  gate_interval_ms: 0.5\n"
        "  min_samples: 4\n"
    )
    assert spec.slo.enabled
    assert spec.slo.objective_ms("vp") == 0.05
    assert spec.slo.objective_ms("virtio") == 0.2  # falls back to default
    assert spec.slo.min_samples == 4


def test_slo_unknown_key_rejected():
    with pytest.raises(SpecError, match="unknown key"):
        DCSpec.from_text("slo:\n  p99: 0.1\n")


def test_slo_unknown_io_model_in_objectives_rejected():
    with pytest.raises(SpecError, match="unknown io model"):
        DCSpec.from_text("slo:\n  objectives: {scsi: 0.1}\n")


def test_slo_nonpositive_objective_rejected():
    with pytest.raises(SpecError, match="must be positive"):
        DCSpec.from_text("slo:\n  objectives: {vp: 0}\n")


def test_slo_enabled_requires_positive_cadences():
    with pytest.raises(SpecError, match="slo.sample_ms"):
        DCSpec.from_text("slo:\n  enabled: true\n  sample_ms: 0\n")
    with pytest.raises(SpecError, match="slo.gate_interval_ms"):
        DCSpec.from_text("slo:\n  enabled: true\n  gate_interval_ms: 0\n")
    with pytest.raises(SpecError, match="slo.objective_p99_ms"):
        DCSpec.from_text("slo:\n  enabled: true\n  objective_p99_ms: 0\n")


def test_slo_objectives_must_be_mapping():
    with pytest.raises(SpecError, match="slo.objectives must be a mapping"):
        DCSpec.from_text("slo:\n  objectives: [1, 2]\n")


def test_json_spec_round_trips():
    spec = DCSpec.from_text(
        json.dumps(
            {
                "name": "jsonspec",
                "topology": {"racks": 3, "hosts_per_rack": 4, "spines": 2},
                "tenants": {"count": 2, "mix": {"vp": 1}},
            }
        )
    )
    assert spec.name == "jsonspec"
    assert spec.topology.num_hosts == 12
    assert spec.tenants.mix == {"vp": 1}
