"""The SLO-gated control plane: telemetry, gate decisions, percentiles.

One run of the built-in "slo" study is shared across tests (it is pure
per (spec, seed)); determinism tests rebuild their own.
"""

import json

import pytest

from repro.cli import main
from repro.cluster.host import TENANT_PASSTHROUGH, TENANT_VIRTIO, TENANT_VP
from repro.dc import load_spec, run_dc

SLO = load_spec("slo")


@pytest.fixture(scope="module")
def study():
    return run_dc(SLO, seed=0)


def test_telemetry_samples_every_tenant(study):
    control = study.control
    assert control.slo_ticks > 0
    assert control.slo_samples > 0
    series = study.fabric.metrics.latency_series()
    assert set(series) == set(study.tenants())


def test_gate_migrates_worst_breacher(study):
    control = study.control
    assert control.slo_breaches > 0
    migrated = [r for r in control.slo_reports if r.action == "migrate"]
    assert migrated and control.slo_migrations == len(
        [r for r in migrated if r.outcome == "ok"]
    ) > 0
    for r in migrated:
        assert r.p99_cycles > r.objective_cycles
        assert r.dst and r.dst != r.host
    assert any("slo" in line and "migrate" in line for line in study.events)


def test_breaching_passthrough_is_pinned_not_migrated(study):
    reports = study.control.slo_reports
    pt = [r for r in reports if r.io_model == TENANT_PASSTHROUGH]
    assert pt, "study must produce passthrough breach reports"
    assert {r.action for r in pt} == {"pinned"}  # never migrated (§3.6)


def test_percentile_table_orders_io_models(study):
    """The headline: virtio tail > vp (DVH) tail > passthrough tail."""
    table = study.control.tenant_percentiles()
    assert set(table) == set(study.tenants())
    by_model = {}
    for row in table.values():
        by_model.setdefault(row["io_model"], []).append(row["p99_cycles"])
    assert min(by_model[TENANT_VIRTIO]) > max(by_model[TENANT_VP]) or sorted(
        by_model[TENANT_VIRTIO]
    )[len(by_model[TENANT_VIRTIO]) // 2] > max(by_model[TENANT_VP])
    assert min(by_model[TENANT_VP]) > max(by_model[TENANT_PASSTHROUGH])
    for row in table.values():
        assert row["p50_cycles"] <= row["p99_cycles"] <= row["p999_cycles"]
        assert row["objective_cycles"] > 0 and row["samples"] > 0


def test_summary_carries_slo_sections(study):
    summary = study.summary()
    slo = summary["control"]["slo"]
    assert slo["breaches"] == study.control.slo_breaches
    assert len(slo["reports"]) == len(study.control.slo_reports)
    assert summary["tenant_percentiles"]
    json.dumps(summary)  # JSON-friendly end to end


def test_slo_study_deterministic_across_fast_forward(study):
    again = run_dc(load_spec("slo"), seed=0, fast_forward=False)
    assert again.digest() == study.digest()
    assert [r.as_dict() for r in again.control.slo_reports] == [
        r.as_dict() for r in study.control.slo_reports
    ]
    assert again.control.tenant_percentiles() == study.control.tenant_percentiles()


def test_different_seed_different_decisions(study):
    other = run_dc(load_spec("slo"), seed=5)
    assert other.digest() != study.digest()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_slo_renders_study(capsys):
    assert main(["slo"]) == 0
    out = capsys.readouterr().out
    assert "slo gate:" in out
    assert "tenant percentiles" in out
    assert "pinned" in out
    assert "migrate" in out


def test_cli_slo_json_reproducible(capsys):
    assert main(["slo", "--seed", "2", "--json"]) == 0
    a = capsys.readouterr().out
    assert main(["--seed", "2", "slo", "--json"]) == 0
    b = capsys.readouterr().out
    assert a == b
    doc = json.loads(a)
    assert doc["control"]["slo"]["samples"] > 0


def test_cli_dc_run_slo_flag_force_enables(capsys):
    assert main(["dc", "run", "--spec", "small", "--slo", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "slo gate:" in out
    assert "tenant percentiles" in out


def test_cli_cluster_demo_slo(capsys):
    assert main(["cluster", "demo", "--slo", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "tenant percentiles" in out
    assert "passthrough" in out
