"""The ``python -m repro dc`` subcommands."""

import json
import os

import pytest

from repro.cli import build_parser, main

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def test_dc_requires_mode():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["dc"])


def test_dc_demo(capsys):
    assert main(["dc", "demo", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "dc up" in out
    assert "wave 0 start" in out
    assert "pinned per wave" in out
    assert "trunk bytes" in out


def test_dc_demo_json_is_reproducible(capsys):
    assert main(["dc", "demo", "--seed", "1", "--json"]) == 0
    first = capsys.readouterr().out
    assert main(["dc", "demo", "--seed", "1", "--json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    summary = json.loads(first)
    assert summary["control"]["admitted"] == 8
    assert summary["hosts_total"] == 6


def test_dc_no_quiescent_same_json_observables(capsys):
    assert main(["dc", "demo", "--seed", "1", "--json"]) == 0
    lazy = json.loads(capsys.readouterr().out)
    assert main(["dc", "demo", "--seed", "1", "--no-quiescent", "--json"]) == 0
    eager = json.loads(capsys.readouterr().out)
    assert lazy["digest"] == eager["digest"]
    assert lazy["hosts_booted"] < eager["hosts_total"]
    assert eager["hosts_booted"] == eager["hosts_total"]


def test_dc_validate_builtin_and_file(capsys):
    assert main(["dc", "validate", "--spec", "small"]) == 0
    assert "small v1" in capsys.readouterr().out
    path = os.path.join(EXAMPLES, "dc_small.yaml")
    assert main(["dc", "validate", "--spec", path]) == 0
    assert "small-file v1" in capsys.readouterr().out


def test_dc_run_spec_file(capsys):
    path = os.path.join(EXAMPLES, "dc_small.yaml")
    assert main(["dc", "run", "--spec", path, "--seed", "2", "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["spec"] == "small-file"
    assert summary["control"]["upgraded_total"] > 0


def test_dc_unknown_spec_is_an_error(capsys):
    assert main(["dc", "run", "--spec", "no-such-spec"]) == 1
    assert "spec error" in capsys.readouterr().out


def test_dc_bad_spec_file_is_an_error(tmp_path, capsys):
    bad = tmp_path / "bad.yaml"
    bad.write_text("topology:\n  rackz: 2\n")
    assert main(["dc", "validate", "--spec", str(bad)]) == 1
    assert "unknown key" in capsys.readouterr().out


def test_dc_sweep_table_and_json(capsys):
    assert main(["dc", "sweep", "--seeds", "2", "--jobs", "2", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["seed"] for r in rows] == [0, 1]
    assert all(len(r["digest"]) == 64 for r in rows)
    assert main(["dc", "sweep", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "digest" in out and "pinned/wave" in out


def test_dc_seed_before_subcommand_threads_through(capsys):
    assert main(["--seed", "1", "dc", "demo", "--json"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(["dc", "demo", "--seed", "1", "--json"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
