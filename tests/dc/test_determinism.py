"""Determinism properties: same spec + seed => byte-identical control
plane, regardless of quiescent hosts, fast-forward, or worker count."""

from repro.dc import load_spec, run_dc, run_sweep

SMALL = load_spec("small")


def observables(dc, cycles=True):
    out = {
        "digest": dc.digest(),
        "trace": list(dc.events),
        "waves": [w.as_dict() for w in dc.control.waves],
        "admitted": list(dc.control.admitted),
    }
    if cycles:
        # The final clock reading is an observable too — except across
        # the quiescent flag, where eager boot backends legitimately
        # park events past the last control-plane action.
        out["cycles"] = dc.sim.now
    return out


def test_same_seed_same_bytes():
    a = observables(run_dc(SMALL, seed=3))
    b = observables(run_dc(SMALL, seed=3))
    assert a == b


def test_different_seeds_differ():
    a = run_dc(SMALL, seed=0).digest()
    b = run_dc(SMALL, seed=1).digest()
    assert a != b


def test_quiescent_and_eager_fleets_are_byte_identical():
    """The quiescent-host optimization must never change observables:
    only wall time and engine event counts may differ."""
    lazy = run_dc(SMALL, seed=1, quiescent=True)
    eager = run_dc(SMALL, seed=1, quiescent=False)
    assert observables(lazy, cycles=False) == observables(eager, cycles=False)
    # And it really is an optimization: the lazy fleet builds fewer stacks.
    assert sum(h.boots for h in lazy.hosts) < sum(h.boots for h in eager.hosts)


def test_fast_forward_on_and_off_are_byte_identical():
    on = run_dc(SMALL, seed=1, fast_forward=True)
    off = run_dc(SMALL, seed=1, fast_forward=False)
    assert observables(on) == observables(off)


def test_sweep_serial_matches_parallel():
    serial = run_sweep("small", seeds=range(3), jobs=1)
    parallel = run_sweep("small", seeds=range(3), jobs=2)
    assert serial == parallel


def test_sweep_cells_quiescent_flag_is_observable_neutral():
    lazy = run_sweep("small", seeds=[1], jobs=1, quiescent=True)
    eager = run_sweep("small", seeds=[1], jobs=1, quiescent=False)
    assert lazy == eager
