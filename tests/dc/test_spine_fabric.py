"""Spine-leaf fabric: ECMP, cross-rack costs, trunk faults, metering."""

import pytest

from repro.cluster.fabric import FabricFrame, UndeliverableError
from repro.dc import SpineLeafFabric
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim import Simulator, default_costs


def make_fabric(racks=2, hosts_per_rack=2, spines=2, oversub=2.0, seed=0):
    sim = Simulator(seed=seed)
    fabric = SpineLeafFabric(
        sim,
        default_costs(),
        racks=racks,
        hosts_per_rack=hosts_per_rack,
        spines=spines,
        oversubscription=oversub,
    )
    for r in range(racks):
        for h in range(hosts_per_rack):
            fabric.attach(f"r{r}h{h}", rack=r)
    return sim, fabric


def test_topology_validation():
    sim = Simulator(seed=0)
    with pytest.raises(ValueError, match="must be >= 1"):
        SpineLeafFabric(sim, default_costs(), racks=0)
    with pytest.raises(ValueError, match="oversubscription"):
        SpineLeafFabric(sim, default_costs(), oversubscription=0)
    _, fabric = make_fabric()
    with pytest.raises(ValueError, match="out of range"):
        fabric.attach("stray", rack=9)


def test_trunk_bandwidth_encodes_oversubscription():
    costs = default_costs()
    _, one_to_one = make_fabric(hosts_per_rack=4, spines=2, oversub=1.0)
    _, four_to_one = make_fabric(hosts_per_rack=4, spines=2, oversub=4.0)
    assert one_to_one.trunk_bps == 4 * costs.fabric_bps / 2
    assert four_to_one.trunk_bps == one_to_one.trunk_bps / 4


def test_ecmp_is_deterministic_and_spreads_flows():
    _, fabric = make_fabric(racks=2, hosts_per_rack=8, spines=4)
    picks = {
        (s, d): fabric.spine_for(s, d)
        for s in fabric.rack_of
        for d in fabric.rack_of
        if s != d
    }
    # Stable across calls (and across runs: CRC-32, not hash()).
    for (s, d), spine in picks.items():
        assert fabric.spine_for(s, d) == spine
        assert 0 <= spine < 4
    # Different flows actually land on different spines.
    assert len(set(picks.values())) > 1


def test_intra_rack_delivery_matches_base_path():
    sim, fabric = make_fabric()
    size = 1 << 20
    arrivals = []
    fabric.port("r0h1").receiver = lambda f: arrivals.append(sim.now)
    fabric.send(FabricFrame(src="r0h0", dst="r0h1", kind="net", size=size))
    sim.run()
    # frame_cycles with intra-rack endpoints equals the no-endpoint base.
    assert arrivals == [fabric.frame_cycles(size)]
    assert fabric.frame_cycles(size, "r0h0", "r0h1") == fabric.frame_cycles(size)


def test_cross_rack_delivery_is_slower_and_metered_on_trunks():
    sim, fabric = make_fabric()
    size = 1 << 20
    arrivals = []
    fabric.port("r1h0").receiver = lambda f: arrivals.append(sim.now)
    fabric.send(FabricFrame(src="r0h0", dst="r1h0", kind="net", size=size))
    sim.run()
    est = fabric.frame_cycles(size, "r0h0", "r1h0")
    assert est > fabric.frame_cycles(size)
    assert arrivals == [est]
    spine = fabric.spine_for("r0h0", "r1h0")
    assert fabric.trunks[(0, spine)].bytes_carried["out"] == size
    assert fabric.trunks[(1, spine)].bytes_carried["in"] == size
    assert fabric.stats()["trunk_bytes"] == 2 * size
    # Host-level cross_host metering still works unchanged.
    assert fabric.metrics.cross_host[("r0h0", "r1h0", "net")] == size


def test_trunk_oversubscription_contends_cross_rack_only():
    """At 4:1 the trunk is the bottleneck: cross-rack transfers finish
    later than the same transfer intra-rack."""
    sim, fabric = make_fabric(oversub=4.0)
    size = 4 << 20
    t_intra = []
    fabric.port("r0h1").receiver = lambda f: t_intra.append(sim.now)
    fabric.send(FabricFrame(src="r0h0", dst="r0h1", kind="net", size=size))
    sim.run()
    intra_done = t_intra[0]
    t_cross = []
    fabric.port("r1h0").receiver = lambda f: t_cross.append(sim.now)
    start = sim.now
    fabric.send(FabricFrame(src="r0h0", dst="r1h0", kind="net", size=size))
    sim.run()
    assert t_cross[0] - start > intra_done


def test_trunk_partition_blocks_cross_rack_not_intra_rack():
    sim, fabric = make_fabric(spines=1)
    plan = FaultPlan(
        [
            FaultSpec(
                kind="fabric_partition",
                rate=0.0,
                count=1,
                start=0,
                end=10_000_000_000,
                param=10_000_000_000,
                mechanisms=(SpineLeafFabric.trunk_name(0, 0),),
            )
        ]
    )
    fabric.faults = FaultInjector(fabric, plan, seed=0).attach()
    sim.run()
    assert fabric.trunk_blocked(0, 0)
    assert fabric.path_blocked("r0h0", "r1h0")
    assert not fabric.path_blocked("r0h0", "r0h1")
    with pytest.raises(UndeliverableError):
        list(fabric.transfer("r0h0", "r1h0", size=4096, kind="net"))


def test_admin_down_blocks_host_links():
    _, fabric = make_fabric()
    assert not fabric.path_blocked("r0h0", "r1h0")
    fabric.admin_down.add("r1h0")
    assert fabric.link_blocked("r1h0")
    assert fabric.path_blocked("r0h0", "r1h0")
    fabric.admin_down.discard("r1h0")
    assert not fabric.path_blocked("r0h0", "r1h0")


def test_unattached_host_is_undeliverable():
    _, fabric = make_fabric()
    with pytest.raises(UndeliverableError):
        fabric.send(FabricFrame(src="r0h0", dst="ghost", kind="net", size=64))
