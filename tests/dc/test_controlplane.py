"""Control plane: admission, rebalancing, upgrade waves, pinned hosts."""

from repro.dc import DCSpec, load_spec, run_dc

SMALL = load_spec("small")


def run_small(seed=1, **kwargs):
    return run_dc(SMALL, seed=seed, **kwargs)


def test_admission_places_every_arrival():
    dc = run_small()
    control = dc.control
    assert len(control.admitted) == SMALL.tenants.count
    assert control.rejected == []
    assert len(dc.tenants()) == SMALL.tenants.count
    for line in dc.events:
        if " admit " in line:
            assert "rejected" not in line


def test_admission_rejects_when_fleet_is_full():
    spec = DCSpec.from_text(
        "name: full\n"
        "topology: {racks: 1, hosts_per_rack: 1, spines: 1}\n"
        "hosts: {workers: 2}\n"
        "tenants:\n"
        "  count: 4\n"
        "  start_ms: 0.5\n"
        "  interval_ms: 0.5\n"
        "  mix: {virtio: 1}\n"
        "  memory_gb: [1]\n"
        "  load: [20000, 20000]\n"
        "horizon_ms: 5.0\n"
    )
    dc = run_dc(spec, seed=0)
    control = dc.control
    # One 20k-load tenant fits under the 2-worker 24k ceiling; the rest
    # are refused by the load-headroom check, not by memory.
    assert len(control.admitted) == 1
    assert len(control.rejected) == 3
    assert any("rejected" in line for line in dc.events)


def test_upgrade_wave_reports_pinned_passthrough_hosts():
    dc = run_small(seed=1)
    control = dc.control
    waves = control.waves
    # Every host appears in exactly one wave.
    covered = [h for w in waves for h in w.hosts]
    assert sorted(covered) == sorted(h.name for h in dc.hosts)
    pinned = [(h, reason) for w in waves for (h, reason) in w.pinned]
    upgraded = [h for w in waves for h in w.upgraded]
    assert len(pinned) + len(upgraded) == len(dc.hosts)
    # The small mix always includes passthrough tenants: somebody pins.
    assert pinned, "expected at least one pinned host"
    for host_name, reason in pinned:
        assert reason == "passthrough"
        host = dc.host(host_name)
        specs = [t.spec.io_model for t in host.tenants.values()]
        assert "passthrough" in specs
    # Upgraded hosts were drained: any tenants they hold now arrived
    # after their wave (readmission is allowed).
    report = control.report()
    assert report["pinned_total"] == len(pinned)
    assert report["upgraded_total"] == len(upgraded)
    assert report["pinned_per_wave"] == [len(w.pinned) for w in waves]


def test_wave_trace_lines_report_fleet_metric():
    dc = run_small(seed=1)
    done_lines = [e for e in dc.events if " wave " in e and " done " in e]
    assert done_lines
    for line in done_lines:
        assert "pinned=" in line
        assert "migrations_ok=" in line
        assert "unsupported=" in line
    assert any("upgrade complete" in e for e in dc.events)


def test_rebalance_moves_hot_tenants():
    dc = run_small(seed=1)
    control = dc.control
    assert control.rebalance_ticks > 0
    assert control.rebalance_moves >= 1
    assert any("rebalance " in e for e in dc.events)


def test_quiescent_fleet_boots_only_touched_hosts():
    dc = run_small(seed=1)
    booted = sum(1 for h in dc.hosts if h.booted)
    assert booted < len(dc.hosts)
    # Untouched hosts never built a stack at all.
    assert any(h.boots == 0 for h in dc.hosts)


def test_no_control_sections_means_admission_only():
    spec = DCSpec.from_text(
        "name: calm\n"
        "topology: {racks: 1, hosts_per_rack: 2, spines: 1}\n"
        "tenants:\n"
        "  count: 2\n"
        "  start_ms: 0.5\n"
        "  interval_ms: 0.5\n"
        "  mix: {vp: 1}\n"
        "  memory_gb: [1]\n"
        "horizon_ms: 3.0\n"
    )
    dc = run_dc(spec, seed=0)
    control = dc.control
    assert len(control.admitted) == 2
    assert control.waves == []
    assert control.rebalance_ticks == 0


def test_summary_includes_control_report_and_digest():
    dc = run_small(seed=1)
    summary = dc.summary()
    assert summary["control"]["admitted"] == SMALL.tenants.count
    assert len(summary["digest"]) == 64
    assert summary["hosts_total"] == SMALL.topology.num_hosts
    assert summary["fabric"]["trunk_bytes"] > 0
