#!/usr/bin/env python3
"""A four-host datacenter: placement, live migration, and link faults.

This is the paper's §3.6 story at fleet scale.  Every host boots the
full nested stack (L0 KVM + guest hypervisor) on one shared simulated
clock, a ToR fabric connects them, and tenants land by placement
policy.  Then host0 is evacuated while a fault plan partitions one of
the destination links — the orchestrator retries through the window,
and the asymmetry the paper predicts falls out on its own: the DVH
virtual-passthrough and virtio tenants move; the tenant holding a
physical VF does not.

Run:  python examples/datacenter.py
"""

from repro.cluster import Cluster, TenantSpec
from repro.core.migration import MigrationError, MigrationNotSupported
from repro.faults.plan import FaultClass, FaultPlan, FaultSpec

#: Partition host1's fabric link for the first 40M cycles (~16 ms at
#: 2.5 GHz) so the first migration attempts toward it must retry.
FAULTS = FaultPlan(
    [
        FaultSpec(
            kind=FaultClass.FABRIC_PARTITION,
            start=0,
            end=40_000_000,
            mechanisms=("host1",),
        )
    ]
)

FLEET = [
    TenantSpec(name="web", io_model="virtio", memory_gb=8, load=900),
    TenantSpec(name="db", io_model="vp", memory_gb=16, dirty_pages=128),
    TenantSpec(name="cache", io_model="vp", memory_gb=8, load=1_400),
    TenantSpec(name="hpc", io_model="passthrough", memory_gb=24),
]


def main() -> None:
    cluster = Cluster(num_hosts=4, seed=0, policy="bin-pack", fault_plan=FAULTS)
    print(f"booted {len(cluster.hosts)} hosts, policy=bin-pack, "
          f"fabric={cluster.fabric.name}")

    print("\n1) Placement (bin-pack fills host0 first):")
    for spec in FLEET:
        tenant = cluster.place(spec)
        print(f"   {spec.name:6s} ({spec.io_model:11s}) -> {tenant.host}")

    print("\n2) Evacuating host0 with host1's link partitioned:")
    try:
        records = cluster.orchestrator.evacuate("host0")
    except (MigrationError, MigrationNotSupported):  # pragma: no cover
        raise SystemExit("evacuation should degrade per-tenant, not raise")
    for record in records:
        if record.outcome == "ok":
            result = record.result
            print(
                f"   {record.tenant:6s} -> {record.dst}: "
                f"downtime {result.downtime_s * 1e3:.2f}ms, "
                f"{result.bytes_transferred:,} bytes, "
                f"{result.rounds} round(s), "
                f"{record.attempts} attempt(s), {result.retries} retries"
            )
        else:
            print(f"   {record.tenant:6s} {record.outcome}: {record.error}")

    left = sorted(cluster.host("host0").tenants)
    print(f"\n3) Still on host0: {left} — physical passthrough pins the "
          "tenant to its hardware; DVH tenants all moved.")

    stats = cluster.fabric.stats()
    blocked = sum(1 for r in records if r.attempts > 1)
    print(
        f"\nfabric: {stats['frames']:,} frames, "
        f"{stats['migration_bytes']:,} migration bytes; "
        f"{blocked} migration(s) had to wait out the partition"
    )
    print(f"event-trace digest: {cluster.digest()[:16]} (stable for --seed 0)")


if __name__ == "__main__":
    main()
