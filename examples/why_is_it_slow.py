#!/usr/bin/env python3
"""Diagnosing nested-virtualization overhead: the exit-profile view.

The paper's whole argument is that nested VMs are slow because exits get
*forwarded* to guest hypervisors, whose handlers exit again (Figure 1).
This example profiles one workload across four configurations and shows
exactly which exits each configuration removes — the per-transaction
version of Figure 8's story — plus the latency percentiles a service
owner would actually see.

Run:  python examples/why_is_it_slow.py [workload]
"""

import sys

from repro import DvhFeatures, StackConfig
from repro.bench.analysis import exit_breakdown, format_breakdown
from repro.hv.stack import build_stack
from repro.workloads.apps import run_app


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "netperf_rr"
    configs = [
        ("Nested VM", lambda: StackConfig(levels=2, io_model="virtio")),
        (
            "+ passthrough",
            lambda: StackConfig(levels=2, io_model="passthrough"),
        ),
        (
            "+ DVH-VP",
            lambda: StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.vp_only()),
        ),
        (
            "+ full DVH",
            lambda: StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()),
        ),
    ]
    print(f"Profiling {app} across nested configurations...\n")
    rows = exit_breakdown(app, configs=configs, scale=0.25)
    print(format_breakdown(rows, app=app))

    if app in ("netperf_rr", "apache", "memcached", "mysql"):
        print("\nClient-observed transaction latency:")
        native = run_app(
            build_stack(StackConfig(levels=0, io_model="native")), app, scale=0.25
        )
        print(
            f"  {'native':<16} mean {native.mean_latency_s * 1e6:8.1f} us   "
            f"p99 {native.latency_percentile(99) * 1e6:8.1f} us"
        )
        for name, factory in configs:
            result = run_app(build_stack(factory()), app, scale=0.25)
            print(
                f"  {name:<16} mean {result.mean_latency_s * 1e6:8.1f} us   "
                f"p99 {result.latency_percentile(99) * 1e6:8.1f} us"
            )

    print(
        "\nReading the table: 'vmx' rows are the guest hypervisor's own"
        "\nhandler instructions trapping (exit multiplication).  Passthrough"
        "\nremoves the doorbell ('mmio') forwards but keeps timer/IPI/idle"
        "\nforwards; DVH-VP removes the doorbell forwards while keeping"
        "\ninterposition; full DVH removes them all."
    )


if __name__ == "__main__":
    main()
