#!/usr/bin/env python3
"""Quickstart: measure how DVH rescues nested virtualization performance.

Builds four configurations — native, a VM, a nested VM with paravirtual
I/O, and a nested VM with DVH — runs the paper's memcached workload on
each, and prints the overhead relative to native (the paper's Figure 7
y-axis).

Run:  python examples/quickstart.py
"""

from repro import DvhFeatures, StackConfig, build_stack, run_app
from repro.workloads.microbench import run_microbenchmark


def main() -> None:
    print("Building configurations...")
    configs = {
        "native": StackConfig(levels=0, io_model="native"),
        "VM": StackConfig(levels=1, io_model="virtio"),
        "nested VM (paravirtual I/O)": StackConfig(levels=2, io_model="virtio"),
        "nested VM + DVH": StackConfig(
            levels=2, io_model="vp", dvh=DvhFeatures.full()
        ),
    }

    print("\n-- memcached throughput (paper Table 2 workload) --")
    native = None
    for name, config in configs.items():
        stack = build_stack(config)
        result = run_app(stack, "memcached", scale=0.4)
        if native is None:
            native = result
        print(
            f"  {name:30s} {result.value:>12,.0f} {result.unit}"
            f"   overhead {result.overhead_vs(native):.2f}x"
        )

    print("\n-- ProgramTimer microbenchmark (paper Table 3) --")
    for name, config in configs.items():
        if config.levels == 0:
            continue  # Table 3 starts at the VM configuration
        stack = build_stack(config)
        cycles = run_microbenchmark(stack, "ProgramTimer", 30)
        print(f"  {name:30s} {cycles:>12,.0f} cycles")

    print(
        "\nDVH handles the nested VM's virtual hardware directly in the"
        "\nhost hypervisor, eliminating the guest-hypervisor interventions"
        "\nthat make nested virtualization an order of magnitude slower."
    )


if __name__ == "__main__":
    main()
