#!/usr/bin/env python3
"""An IaaS-on-IaaS scenario: the workload mix the paper's intro motivates.

A customer rents a VM from a cloud provider and runs their own hypervisor
inside it (security sandboxing, legacy-OS support, or their own
mini-cloud) — so their applications live in *nested* VMs.  This example
runs a latency-sensitive service (netperf RR), a web tier (apache), and a
batch job (hackbench) side-by-side on three software stacks and reports
what the customer would actually observe.

It also demonstrates the recursive story (§3.5): the same services in an
L3 VM, where only DVH remains usable.

Run:  python examples/cloud_stack.py
"""

from repro import DvhFeatures, PAPER_NATIVE, StackConfig, build_stack, run_app

SERVICES = ["netperf_rr", "apache", "hackbench"]


def measure(config: StackConfig, scale: float = 0.3):
    out = {}
    for app in SERVICES:
        stack = build_stack(config)
        out[app] = run_app(stack, app, scale=scale)
    return out


def main() -> None:
    print("Measuring the customer's three services on each stack...\n")
    native = measure(StackConfig(levels=0, io_model="native"))

    stacks = {
        "provider VM only (no nesting)": StackConfig(levels=1, io_model="virtio"),
        "customer hypervisor, paravirtual I/O": StackConfig(
            levels=2, io_model="virtio"
        ),
        "customer hypervisor, DVH": StackConfig(
            levels=2, io_model="vp", dvh=DvhFeatures.full()
        ),
        "three levels deep, paravirtual I/O": StackConfig(
            levels=3, io_model="virtio"
        ),
        "three levels deep, DVH": StackConfig(
            levels=3, io_model="vp", dvh=DvhFeatures.full()
        ),
    }

    header = f"{'stack':42s}" + "".join(f"{s:>14s}" for s in SERVICES)
    print(header)
    print("-" * len(header))
    for name, config in stacks.items():
        scale = 0.1 if config.levels >= 3 and config.io_model == "virtio" else 0.3
        results = measure(config, scale=scale)
        cells = "".join(
            f"{results[app].overhead_vs(native[app]):>13.2f}x" for app in SERVICES
        )
        print(f"{name:42s}{cells}")

    print(
        "\n(Values are slowdowns vs bare metal.  With paravirtual I/O the"
        "\ncustomer's services degrade several-fold per nesting level; with"
        "\nDVH they stay near single-VM speed at any depth — and unlike"
        "\ndevice passthrough, the provider can still live-migrate them.)"
    )


if __name__ == "__main__":
    main()
