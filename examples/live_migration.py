#!/usr/bin/env python3
"""Live migration of nested VMs — the feature passthrough loses and DVH
keeps (paper §3.6 and the §4 migration experiment).

Scenario: a cloud operator runs customer workloads in nested VMs and
must evacuate a host.  This example:

1. migrates a nested VM that uses DVH virtual-passthrough, while a
   workload keeps dirtying memory — the guest hypervisor pulls the
   virtual device's state and DMA dirty log from the host through the
   new PCI *migration capability*;
2. migrates the whole L1 VM (guest hypervisor + nested VM inside);
3. shows that a nested VM with physical device passthrough cannot be
   migrated at all.

Run:  python examples/live_migration.py
"""

from repro import DvhFeatures, StackConfig, build_stack
from repro.core.migration import LiveMigration, MigrationNotSupported
from repro.hw.pci import CapabilityId


def dirtier(stack, pages_per_burst=32, bursts=200):
    """A guest process that keeps dirtying memory during migration."""
    ctx = stack.ctx(1)
    for i in range(bursts):
        yield from ctx.compute(50_000)
        base = 0x1000_0000 + (i % 64) * 0x1000 * pages_per_burst
        ctx.mem_write(base, pages_per_burst * 4096)


def migrate(title, config, scope, with_devices=True, with_dirtier=False):
    stack = build_stack(config)
    stack.settle()
    vm = stack.leaf_vm if scope == "nested" else stack.vms[0]
    devices = []
    if with_devices and scope == "nested" and config.io_model == "vp":
        device = stack.net.device
        cap = device.find_capability(CapabilityId.MIGRATION)
        print(f"  {device.name} migration capability present: {cap is not None}")
        devices = [device]
    if with_dirtier:
        stack.sim.spawn(dirtier(stack), "dirtier")
    try:
        migration = LiveMigration(stack.machine, vm, devices=devices)
        result = stack.sim.run_process(migration.run(), "migration")
    except MigrationNotSupported as exc:
        print(f"  REFUSED: {exc}")
        return None
    print(
        f"  migrated {result.vm_name}: total {result.total_s:.2f}s,"
        f" downtime {result.downtime_s * 1000:.1f}ms,"
        f" {result.bytes_transferred:,} bytes in {result.rounds} round(s)"
    )
    if result.dvh_state_saved:
        print("  (DVH virtual-hardware state saved alongside the VM state)")
    return result


def main() -> None:
    dvh = StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())

    print("1) Nested VM with DVH virtual-passthrough, workload running:")
    nested = migrate("nested", dvh, "nested", with_dirtier=True)

    print("\n2) The whole L1 VM (guest hypervisor + nested VM inside):")
    whole = migrate("L1", dvh, "l1")

    print("\n3) Nested VM with physical device passthrough:")
    migrate("pt", StackConfig(levels=2, io_model="passthrough"), "nested")

    if nested and whole:
        print(
            f"\nMigrating the guest hypervisor too moved "
            f"{whole.bytes_transferred / nested.bytes_transferred:.1f}x the data "
            f"(the paper reports roughly twice)."
        )


if __name__ == "__main__":
    main()
