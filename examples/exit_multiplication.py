#!/usr/bin/env python3
"""Exit multiplication, made visible (the paper's Figure 1 and Section 2).

A single hypercall from a nested VM is forwarded to its guest hypervisor;
every privileged operation the guest hypervisor's handler executes traps
to the host hypervisor in turn.  This example runs ONE operation at each
virtualization level and prints the exit counters — showing the
multiplication directly — then repeats it with DVH to show the
interventions disappear for operations DVH covers.

Run:  python examples/exit_multiplication.py
"""

from repro import DvhFeatures, StackConfig, build_stack
from repro.hw.ops import Op


def run_one_op(levels: int, dvh: DvhFeatures, op_name: str):
    io = "vp" if (dvh.virtual_passthrough and levels >= 2) else "virtio"
    stack = build_stack(StackConfig(levels=levels, io_model=io, dvh=dvh))
    stack.settle()
    ctx = stack.ctx(0)
    before = stack.metrics.copy()
    t0 = stack.sim.now
    measured = {}

    def one():
        if op_name == "hypercall":
            yield from ctx.execute(Op.VMCALL)
        else:
            yield from ctx.program_timer(ctx.read_tsc() + 10_000_000)
        # Record now: the simulation keeps running until the armed timer
        # fires, which is not part of the operation's cost.
        measured["cycles"] = stack.sim.now - t0
        measured["delta"] = stack.metrics.diff(before)

    stack.sim.run_process(one(), "one-op")
    return measured["cycles"], measured["delta"]


def describe(title: str, cycles: int, delta) -> None:
    print(f"\n{title}: {cycles:,} cycles")
    print(f"  hardware exits to L0:            {delta.total_exits()}")
    print(f"  guest-hypervisor interventions:  {delta.guest_hv_interventions()}")
    by_level = {}
    for (lvl, _reason), n in delta.exits.items():
        by_level[lvl] = by_level.get(lvl, 0) + n
    for lvl in sorted(by_level):
        print(f"    exits from L{lvl} guests:          {by_level[lvl]}")


def main() -> None:
    print("=" * 64)
    print("One HYPERCALL (DVH cannot help: it must reach the hypervisor)")
    print("=" * 64)
    for levels, label in [(1, "from an L1 VM"), (2, "from a nested (L2) VM"),
                          (3, "from an L3 VM")]:
        cycles, delta = run_one_op(levels, DvhFeatures.none(), "hypercall")
        describe(f"Hypercall {label}", cycles, delta)

    print()
    print("=" * 64)
    print("One TIMER PROGRAMMING (DVH virtual timers remove the chain)")
    print("=" * 64)
    for dvh, label in [
        (DvhFeatures.none(), "L3 VM, no DVH"),
        (DvhFeatures.full(), "L3 VM, DVH"),
    ]:
        cycles, delta = run_one_op(3, dvh, "timer")
        describe(f"ProgramTimer ({label})", cycles, delta)

    print(
        "\nWith DVH the timer write exits once, straight to the host"
        "\nhypervisor, which emulates the virtual timer itself — zero"
        "\nguest-hypervisor interventions, at any nesting depth."
    )


if __name__ == "__main__":
    main()
