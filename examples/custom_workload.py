#!/usr/bin/env python3
"""Bring your own workload: evaluate DVH for *your* application.

The seven paper workloads are just `RRSpec`/`StreamSpec`/`HackbenchSpec`
values.  This example models a hypothetical gRPC-style microservice —
2 KB requests, 8 KB responses, a cache lookup (one IPI to a sibling
worker every few requests), a deadline timer per request — and asks the
question a platform team would: *is it safe to run this service under a
customer hypervisor, and does DVH change the answer?*

Run:  python examples/custom_workload.py
"""

from repro import DvhFeatures, StackConfig, build_stack
from repro.workloads.engines import RRSpec, run_rr

MICROSERVICE = RRSpec(
    name="grpc-microservice",
    txns=200,
    concurrency=16,
    request_size=2_048,
    response_size=8_192,
    response_seg=1_448,
    kick_every=2,
    compute=60_000,  # ~27 us of handler logic per request
    ipi_rate=0.3,  # shared-cache lookups wake a sibling worker
    timer_rate=1.0,  # per-request deadline timer
    workers=4,
)


def main() -> None:
    print(f"Evaluating '{MICROSERVICE.name}' "
          f"({MICROSERVICE.compute:,} cycles/request, "
          f"{MICROSERVICE.concurrency} in flight)\n")

    configs = {
        "bare metal": StackConfig(levels=0, io_model="native"),
        "provider VM": StackConfig(levels=1, io_model="virtio"),
        "nested, paravirtual": StackConfig(levels=2, io_model="virtio"),
        "nested, passthrough": StackConfig(levels=2, io_model="passthrough"),
        "nested, DVH": StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()),
    }
    baseline = None
    print(f"{'stack':24s}{'throughput':>14s}{'mean lat':>12s}{'p99 lat':>12s}{'slowdown':>10s}")
    for name, config in configs.items():
        result = run_rr(build_stack(config), MICROSERVICE)
        if baseline is None:
            baseline = result
        print(
            f"{name:24s}{result.value:>12,.0f}/s"
            f"{result.mean_latency_s * 1e6:>10.1f}us"
            f"{result.latency_percentile(99) * 1e6:>10.1f}us"
            f"{result.overhead_vs(baseline):>9.2f}x"
        )

    print(
        "\nThe knobs that matter are all in the spec: crank `timer_rate`"
        "\nor `ipi_rate` and the nested-paravirtual column degrades while"
        "\nDVH barely moves — the same diagnosis `python -m repro analyze`"
        "\ngives for the paper's workloads."
    )


if __name__ == "__main__":
    main()
