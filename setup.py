"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments that lack the `wheel` package required by the
PEP 517 editable path.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
