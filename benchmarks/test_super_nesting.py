"""Extension bench (beyond the paper): microbenchmarks at 4-5 levels.

The paper's testbed could not go past L3 (KVM limitation, §4).  This
bench extrapolates Table 3 one more level: exit multiplication keeps
compounding ~20x per level without DVH, while recursive DVH stays flat.
"""

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark


def test_table3_extended_to_l4(benchmark, save_result):
    def run():
        cells = {}
        for levels in (2, 3, 4):
            plain = build_stack(StackConfig(levels=levels, io_model="virtio"))
            cells[f"L{levels} Hypercall"] = run_microbenchmark(plain, "Hypercall", 3)
            dvh = build_stack(
                StackConfig(levels=levels, io_model="vp", dvh=DvhFeatures.full())
            )
            cells[f"L{levels} ProgramTimer + DVH"] = run_microbenchmark(
                dvh, "ProgramTimer", 10
            )
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Table 3 extended beyond the paper (cycles)\n" + "\n".join(
        f"  {k:28s} {v:>14,.0f}" for k, v in cells.items()
    )
    save_result("super_nesting", text)

    assert cells["L4 Hypercall"] > 10 * cells["L3 Hypercall"]
    assert cells["L4 ProgramTimer + DVH"] < 2 * cells["L2 ProgramTimer + DVH"]
