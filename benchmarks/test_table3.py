"""Regenerate Table 3: microbenchmark performance in CPU cycles.

Paper reference (cycles):

==============  =======  =========  ==========  =========  ==========
microbenchmark  VM       nested     nested+DVH  L3         L3+DVH
==============  =======  =========  ==========  =========  ==========
Hypercall       1,575    37,733     38,743      857,578    929,724
DevNotify       4,984    48,390     13,815      1,008,935  15,150
ProgramTimer    2,005    43,359     3,247       1,033,946  3,304
SendIPI         3,273    39,456     5,116       787,971    5,228
==============  =======  =========  ==========  =========  ==========
"""

import pytest

from repro.bench import format_table3, run_table3
from repro.workloads.microbench import MICROBENCHMARKS


@pytest.mark.parametrize("bench", sorted(MICROBENCHMARKS))
def test_table3_row(benchmark, save_result, bench):
    result = benchmark.pedantic(
        lambda: run_table3(iterations=20, benches=[bench]),
        rounds=1,
        iterations=1,
    )
    save_result(f"table3_{bench.lower()}", format_table3(result))
    row = result.cells[bench]

    # Shape assertions from the paper's Table 3:
    # nested virtualization costs an order of magnitude more than L1...
    assert row["nested VM"] > 8 * row["VM"]
    # ...and a further order of magnitude at L3 (exit multiplication).
    assert row["L3 VM"] > 8 * row["nested VM"]
    if bench == "Hypercall":
        # DVH cannot help hypercalls (always exit to the guest hypervisor).
        assert row["nested VM + DVH"] >= row["nested VM"] * 0.9
    else:
        # DVH removes the guest-hypervisor interventions...
        assert row["nested VM + DVH"] < row["nested VM"] / 2.5
        # ...and makes cost roughly level-independent (§4: "similar
        # performance for both L3 and L2 VMs").
        assert row["L3 VM + DVH"] < 1.6 * row["nested VM + DVH"]
