"""Ablation (beyond the paper's figures): each DVH mechanism in isolation.

Figure 8 applies the mechanisms cumulatively; this bench measures each
one *alone* against the corresponding microbenchmark, confirming the
mechanisms are independent (each removes exactly its own class of guest
hypervisor interventions).
"""

import pytest

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark

CASES = [
    ("virtual_timer", "ProgramTimer"),
    ("virtual_ipi", "SendIPI"),
]


@pytest.mark.parametrize("feature,bench", CASES)
def test_single_feature_isolation(benchmark, save_result, feature, bench):
    def run():
        baseline = build_stack(StackConfig(levels=2, io_model="virtio"))
        base = run_microbenchmark(baseline, bench, 20)
        kwargs = {feature: True}
        if feature == "virtual_ipi":
            kwargs["virtual_idle"] = True  # SendIPI measures wakeup too
        on = build_stack(
            StackConfig(
                levels=2,
                io_model="virtio",
                dvh=DvhFeatures.none().with_(**kwargs),
            )
        )
        return base, run_microbenchmark(on, bench, 20)

    base, with_feature = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        f"ablation_{feature}",
        f"Ablation {feature} on {bench}: {base:,.0f} -> {with_feature:,.0f} cycles",
    )
    assert with_feature < base / 4


def test_virtual_idle_policy(benchmark, save_result):
    """§3.4: a guest hypervisor with other runnable nested VMs must keep
    trapping HLT (so it can schedule a sibling); with none, virtual idle
    engages and SendIPI wake latency drops."""

    def run():
        engaged = build_stack(
            StackConfig(
                levels=2,
                io_model="virtio",
                dvh=DvhFeatures.none().with_(virtual_idle=True, virtual_ipi=True),
            )
        )
        lat_engaged = run_microbenchmark(engaged, "SendIPI", 20)

        busy = build_stack(
            StackConfig(
                levels=2,
                io_model="virtio",
                dvh=DvhFeatures.none().with_(virtual_idle=True, virtual_ipi=True),
            )
        )
        # Retroactively give the guest hypervisor another runnable nested
        # VM and re-evaluate the policy: HLT trapping comes back.
        from repro.core.vidle import update_virtual_idle_policy

        hv1 = busy.hvs[1]
        hv1.other_runnable_guests = 1
        update_virtual_idle_policy(hv1, busy.leaf_vm)
        lat_busy = run_microbenchmark(busy, "SendIPI", 20)
        return lat_engaged, lat_busy

    lat_engaged, lat_busy = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_virtual_idle_policy",
        f"SendIPI with virtual idle engaged: {lat_engaged:,.0f} cycles; "
        f"with a runnable sibling (policy disengages): {lat_busy:,.0f} cycles",
    )
    assert lat_busy > 1.5 * lat_engaged
