"""Ablation (beyond the paper's figures): VMCS shadowing on/off.

DESIGN.md calls out VMCS shadowing as the architectural support the
testbed relies on (§4: the servers include VMCS Shadowing).  This bench
quantifies how much of the nested-exit cost is guest-hypervisor VMCS
traffic — and shows DVH is *complementary* to the hardware support: DVH's
benefit survives with shadowing disabled (§3: "Architectural support for
nested virtualization and DVH are complementary").
"""

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark


def _hypercall_cycles(shadowing: bool, dvh: DvhFeatures, io: str = "virtio") -> float:
    stack = build_stack(
        StackConfig(levels=2, io_model=io, dvh=dvh, vmcs_shadowing=shadowing)
    )
    return run_microbenchmark(stack, "Hypercall", 20)


def _timer_cycles(shadowing: bool, dvh: DvhFeatures, io: str) -> float:
    stack = build_stack(
        StackConfig(levels=2, io_model=io, dvh=dvh, vmcs_shadowing=shadowing)
    )
    return run_microbenchmark(stack, "ProgramTimer", 20)


def test_ablation_vmcs_shadowing(benchmark, save_result):
    def run():
        return {
            "hypercall shadowing on": _hypercall_cycles(True, DvhFeatures.none()),
            "hypercall shadowing off": _hypercall_cycles(False, DvhFeatures.none()),
            "timer shadowing on (no DVH)": _timer_cycles(
                True, DvhFeatures.none(), "virtio"
            ),
            "timer shadowing off (no DVH)": _timer_cycles(
                False, DvhFeatures.none(), "virtio"
            ),
            "timer shadowing off (DVH)": _timer_cycles(
                False, DvhFeatures.full(), "vp"
            ),
        }

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Ablation: VMCS shadowing (nested VM microbenchmark cycles)\n" + "\n".join(
        f"  {k:32s} {v:>12,.0f}" for k, v in cells.items()
    )
    save_result("ablation_shadowing", text)

    # Disabling shadowing makes forwarded exits much more expensive...
    assert cells["hypercall shadowing off"] > 1.5 * cells["hypercall shadowing on"]
    # ...but DVH sidesteps the guest hypervisor entirely, so its virtual
    # timer cost is unaffected by the ablation (complementarity).
    assert cells["timer shadowing off (DVH)"] < 0.2 * cells[
        "timer shadowing off (no DVH)"
    ]
