"""Fault-injection matrix: every fault class against the key stacks.

Sweeps the op-soup fault classes across {L2, L2+DVH, L3} and the
migration-wire classes across the same stacks' live migrations.  Every
cell must complete with the per-episode invariants green (the hardening
under test: faults degrade performance, never correctness), and the
recovery paths — virtio requeue, DMA abort, DVH fallback, migration
retry — must actually fire somewhere in the matrix.
"""

from repro.core.features import DvhFeatures
from repro.core.migration import LiveMigration
from repro.faults import (
    FaultClass,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    build_faulted_stack,
    check_invariants,
    run_fault_workload,
)
from repro.hv.stack import StackConfig, build_stack

SEED = 7

STACKS = [
    ("L2", lambda: StackConfig(levels=2, io_model="virtio", workers=2)),
    (
        "L2+DVH",
        lambda: StackConfig(
            levels=2, io_model="vp", dvh=DvhFeatures.full(), workers=2
        ),
    ),
    ("L3", lambda: StackConfig(levels=3, io_model="virtio", workers=2)),
]

#: One aggressive deterministic spec per op-soup fault class.
WORKLOAD_SPECS = [
    FaultSpec(kind=FaultClass.NIC_DROP, rate=0.10),
    FaultSpec(kind=FaultClass.NIC_CORRUPT, rate=0.10),
    FaultSpec(kind=FaultClass.VIRTIO_MALFORMED, count=4, end=16_000_000),
    FaultSpec(kind=FaultClass.VIRTIO_KICK_DROP, rate=0.25),
    FaultSpec(kind=FaultClass.IRQ_DROP, rate=0.10),
    FaultSpec(kind=FaultClass.IRQ_SPURIOUS, count=4, end=16_000_000),
    FaultSpec(kind=FaultClass.IOMMU_FAULT, rate=0.05),
    FaultSpec(
        kind=FaultClass.DVH_CAP_FAULT, mechanisms=("virtual_passthrough",)
    ),
]

MIGRATION_SPECS = [
    ("mig_bandwidth", lambda now: FaultSpec(kind=FaultClass.MIG_BANDWIDTH, param=0.5)),
    (
        "mig_link_flap",
        lambda now: FaultSpec(
            kind=FaultClass.MIG_LINK_FLAP, start=now, end=now + 700_000
        ),
    ),
    ("mig_loss", lambda now: FaultSpec(kind=FaultClass.MIG_LOSS, param=0.10)),
]


def _render_matrix(title, columns, rows):
    width = max(len(name) for name, _cells in rows) + 2
    cwidth = max(max(len(c) for c in columns), 16) + 2
    lines = [title, f"{'fault class':<{width}}" + "".join(f"{c:>{cwidth}}" for c in columns)]
    for name, cells in rows:
        lines.append(f"{name:<{width}}" + "".join(f"{c:>{cwidth}}" for c in cells))
    return "\n".join(lines)


def _sweep_workload():
    rows = []
    for spec in WORKLOAD_SPECS:
        cells = []
        for stack_name, factory in STACKS:
            plan = FaultPlan([spec])
            stack, injector = build_faulted_stack(factory(), plan, seed=SEED)
            ops = run_fault_workload(stack, ops_per_worker=25, seed=SEED)
            violations = check_invariants(stack, injector)
            assert not violations, (
                f"{spec.kind} x {stack_name}: {violations}"
            )
            assert sum(ops.values()) > 0
            injected = sum(injector.summary().values()) + stack.metrics.faults.get(
                FaultClass.DVH_CAP_FAULT, 0
            )
            recovered = stack.metrics.total_recoveries()
            cells.append(f"{injected} inj / {recovered} rec")
        rows.append((spec.kind, cells))
    return rows


def _sweep_migration():
    rows = []
    for spec_name, make_spec in MIGRATION_SPECS:
        cells = []
        for stack_name, factory in STACKS:
            stack = build_stack(factory())
            stack.settle()
            plan = FaultPlan([make_spec(stack.sim.now)])
            injector = FaultInjector(stack.machine, plan, seed=SEED).attach(stack)
            devices = (
                [stack.net.device] if stack.config.io_model == "vp" else []
            )
            mig = LiveMigration(stack.machine, stack.leaf_vm, devices=devices)
            res = stack.sim.run_process(mig.run(), f"migrate-{spec_name}")
            assert res.total_s > 0
            injected = sum(injector.summary().values())
            cells.append(f"{injected} inj / {res.retries} retries")
            if spec_name == "mig_link_flap":
                assert res.retries > 0, f"{stack_name}: flap never retried"
                assert stack.metrics.recoveries.get("migration_retry", 0) > 0
        rows.append((spec_name, cells))
    return rows


def test_fault_matrix(benchmark, save_result):
    workload_rows, migration_rows = benchmark.pedantic(
        lambda: (_sweep_workload(), _sweep_migration()), rounds=1, iterations=1
    )
    columns = [name for name, _f in STACKS]
    text = "\n\n".join(
        [
            _render_matrix(
                "Fault matrix: op-soup classes (invariants green in every cell)",
                columns,
                workload_rows,
            ),
            _render_matrix(
                "Fault matrix: migration-wire classes", columns, migration_rows
            ),
        ]
    )
    save_result("fault_matrix", text)

    # The matrix must exercise the rate-based classes somewhere.
    def total_injected(rows, kind):
        return sum(
            int(cell.split()[0]) for name, cells in rows if name == kind for cell in cells
        )

    for kind in (FaultClass.NIC_DROP, FaultClass.IRQ_DROP, FaultClass.IRQ_SPURIOUS):
        assert total_injected(workload_rows, kind) > 0, f"{kind} never fired"
