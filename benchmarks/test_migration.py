"""Regenerate the §4 migration experiment.

The paper's results:

* migration does not work at all with passthrough;
* nested-VM migration times with DVH are roughly the same as with
  paravirtual I/O, and roughly the same as migrating a plain VM;
* migrating a nested VM **along with its guest hypervisor** is roughly
  twice as expensive (extra memory state).
"""

from repro.bench import format_migration, run_migration_experiment


def test_migration_experiment(benchmark, save_result):
    rows = benchmark.pedantic(run_migration_experiment, rounds=1, iterations=1)
    save_result("migration", format_migration(rows))
    by_name = {r.scenario: r for r in rows}

    vm = by_name["VM (paravirtual I/O)"]
    nested_pv = by_name["nested VM alone (paravirtual I/O)"]
    nested_dvh = by_name["nested VM alone (DVH)"]
    with_hv = by_name["nested VM + guest hypervisor (DVH)"]
    pt = by_name["nested VM (passthrough)"]

    # Passthrough cannot migrate (the key limitation DVH removes).
    assert not pt.supported
    for row in (vm, nested_pv, nested_dvh, with_hv):
        assert row.supported

    # DVH ~ paravirtual ~ plain VM migration times.
    assert 0.7 < nested_dvh.total_s / nested_pv.total_s < 1.4
    assert 0.7 < nested_dvh.total_s / vm.total_s < 1.4
    # Migrating the guest hypervisor too is roughly twice as expensive.
    assert 1.6 < with_hv.total_s / nested_dvh.total_s < 2.5
