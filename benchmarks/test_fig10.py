"""Regenerate Figure 10: Xen as the guest hypervisor on a KVM host.

The paper's qualitative results:

* paravirtual I/O under a Xen guest hypervisor is significantly worse
  than passthrough for **all** application workloads;
* DVH-VP provides performance similar to passthrough — with zero Xen
  modifications (virtual-passthrough is hypervisor agnostic, §3.1);
* gains over paravirtual I/O reach an order of magnitude (memcached).
"""

import pytest

from repro.bench import format_figure, run_figure10
from repro.workloads.apps import app_names


@pytest.mark.parametrize("app", app_names())
def test_fig10_row(benchmark, save_result, app):
    result = benchmark.pedantic(
        lambda: run_figure10(apps=[app]), rounds=1, iterations=1
    )
    save_result(f"fig10_{app}", format_figure(result))
    row = result.overheads[app]
    nested = row["Nested VM (Xen)"]
    pt = row["Nested VM + passthrough (Xen)"]
    dvh_vp = row["Nested VM + DVH-VP (Xen)"]

    if app == "hackbench":
        assert abs(nested - pt) / nested < 0.05
        return
    # Nested paravirtual I/O under Xen is worse than passthrough...
    assert nested > pt
    # ...and worse than under a KVM guest hypervisor would warrant: the
    # DVH-VP gain is substantial for the I/O-bound workloads.
    if app in ("netperf_rr", "netperf_maerts", "apache", "memcached"):
        assert nested > 1.4 * dvh_vp
    # DVH-VP ~ passthrough, without touching Xen.
    assert dvh_vp < 1.8 * max(pt, 1.0)
