"""Ablation: timer-emulation backends and delivery paths (§3.2).

The paper notes timer emulation "can be done by using software timer
functionality, such as Linux hrtimers, or by leveraging architectural
support for timers, such as the VMX-Preemption Timer", and that virtual
timers "can be further optimized to deliver timer interrupts to the
nested VM directly from the host hypervisor using posted interrupts".
This bench quantifies both design choices.
"""

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.hw.lapic import TIMER_VECTOR


def expiry_latency(stack, delay=200_000) -> float:
    stack.settle()
    ctx = stack.ctx(0)
    got = {}

    def guest():
        start = stack.sim.now
        yield from ctx.program_timer(ctx.read_tsc() + delay, TIMER_VECTOR)
        yield from ctx.wait_for_interrupt()
        got["latency"] = stack.sim.now - start - delay

    stack.sim.run_process(guest())
    return got["latency"]


def test_ablation_timer_backend_and_delivery(benchmark, save_result):
    def run():
        return {
            "hrtimer backend (L1)": expiry_latency(
                build_stack(StackConfig(levels=1, timer_backend="hrtimer"))
            ),
            "preemption-timer backend (L1)": expiry_latency(
                build_stack(StackConfig(levels=1, timer_backend="preemption"))
            ),
            "vtimer, posted delivery (L2)": expiry_latency(
                build_stack(
                    StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
                )
            ),
            "vtimer, via guest hv (L2)": expiry_latency(
                build_stack(
                    StackConfig(
                        levels=2,
                        io_model="vp",
                        dvh=DvhFeatures.full().with_(vtimer_direct_delivery=False),
                    )
                )
            ),
            "emulated timer, no DVH (L2)": expiry_latency(
                build_stack(StackConfig(levels=2, io_model="virtio"))
            ),
        }

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "Ablation: timer expiry-to-delivery latency (cycles)\n" + "\n".join(
        f"  {k:34s} {v:>12,.0f}" for k, v in cells.items()
    )
    save_result("ablation_timer_backend", text)

    # The §3.2 optimization: direct posted delivery beats routing the
    # expiry through the guest hypervisor...
    assert cells["vtimer, posted delivery (L2)"] < cells["vtimer, via guest hv (L2)"]
    # ...and even the unoptimized virtual timer beats full emulation.
    assert cells["vtimer, via guest hv (L2)"] <= cells["emulated timer, no DVH (L2)"] * 1.2


def test_arm_dvh_vp_gain(benchmark, save_result):
    """§4's one-line ARM result: DVH-VP significantly improves nested
    I/O on ARM too (I/O models are platform-agnostic)."""
    from repro.workloads.microbench import run_microbenchmark

    def run():
        out = {}
        for arch in ("x86", "arm"):
            virtio = build_stack(
                StackConfig(levels=2, io_model="virtio", arch=arch)
            )
            vp = build_stack(
                StackConfig(
                    levels=2, io_model="vp", dvh=DvhFeatures.vp_only(), arch=arch
                )
            )
            out[f"{arch} nested virtio"] = run_microbenchmark(virtio, "DevNotify", 15)
            out[f"{arch} nested DVH-VP"] = run_microbenchmark(vp, "DevNotify", 15)
        return out

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "DevNotify on x86 vs ARM (cycles)\n" + "\n".join(
        f"  {k:24s} {v:>12,.0f}" for k, v in cells.items()
    )
    save_result("arm_devnotify", text)
    for arch in ("x86", "arm"):
        assert cells[f"{arch} nested DVH-VP"] < cells[f"{arch} nested virtio"] / 2.5
