"""Ablation: the §3.4 virtual-idle scheduling trade-off, quantified.

The paper engages virtual idle "only when the guest hypervisor knows it
has no other nested VMs that it can run."  This bench measures both
sides of the trade-off with a compute-hungry sibling nested VM:

* with the policy (HLT traps to the guest hypervisor): the sibling makes
  progress, at the cost of slower idle wakeups for the primary;
* with virtual idle forced on: wakeups are fast but the sibling starves.
"""

from repro.core.features import DvhFeatures
from repro.hv.scheduler import attach_sibling
from repro.hv.stack import StackConfig, build_stack


def measure(force_virtual_idle: bool):
    stack = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    stack.settle()
    load = attach_sibling(stack, total_work=5_000_000, quantum=50_000)
    if force_virtual_idle:
        for vcpu in stack.leaf_vm.vcpus:
            vcpu.vmcs.controls.hlt_exiting = False
    ctx = stack.ctx(0)
    wake_latencies = []

    def guest():
        for i in range(10):
            wake_at = stack.sim.now + 400_000
            stack.sim.call_at(
                wake_at, lambda: (ctx.pi_desc.post(0x33), ctx.pcpu.wake())
            )
            before = stack.sim.now
            yield from ctx.wait_for_interrupt()
            wake_latencies.append(stack.sim.now - max(wake_at, before))

    stack.sim.run_process(guest())
    return {
        "sibling_progress": load.progress,
        "mean_wake_latency": sum(wake_latencies) / len(wake_latencies),
    }


def test_ablation_idle_scheduling_tradeoff(benchmark, save_result):
    results = benchmark.pedantic(
        lambda: {
            "policy (trap HLT while sibling runnable)": measure(False),
            "virtual idle forced on": measure(True),
        },
        rounds=1,
        iterations=1,
    )
    policy = results["policy (trap HLT while sibling runnable)"]
    forced = results["virtual idle forced on"]
    text = (
        "Ablation: §3.4 scheduling policy with a runnable sibling nested VM\n"
        f"  policy engaged: sibling ran {policy['sibling_progress']:,} cycles, "
        f"mean wake latency {policy['mean_wake_latency']:,.0f} cycles\n"
        f"  virtual idle forced: sibling ran {forced['sibling_progress']:,} cycles, "
        f"mean wake latency {forced['mean_wake_latency']:,.0f} cycles"
    )
    save_result("ablation_idle_scheduling", text)

    # The trade-off, both directions:
    assert policy["sibling_progress"] > 0
    assert forced["sibling_progress"] == 0  # starvation
    assert forced["mean_wake_latency"] < policy["mean_wake_latency"]
