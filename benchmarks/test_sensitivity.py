"""Sensitivity bench: the headline orderings survive cost-model error.

A calibrated simulator is only trustworthy if its *conclusions* don't
hinge on the exact calibration values.  This bench perturbs the two most
influential leaf constants by +/-50% and re-checks the paper's headline
ordering (DVH < passthrough-class < nested paravirtual) for a
doorbell-bound workload.
"""

from repro.bench.sweep import format_sweep, sweep_cost
from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.microbench import run_microbenchmark


def devnotify(stack) -> float:
    return run_microbenchmark(stack, "DevNotify", 10)


def test_ordering_robust_to_cost_error(benchmark, save_result):
    def run():
        out = {}
        for field in ("emul_vmresume_merge", "forward_state_save"):
            for factor in (0.5, 1.0, 1.5):
                row = {}
                for label, cfg in (
                    ("nested", StackConfig(levels=2, io_model="virtio")),
                    (
                        "dvh",
                        StackConfig(
                            levels=2, io_model="vp", dvh=DvhFeatures.full()
                        ),
                    ),
                ):
                    stack = build_stack(cfg)
                    base = stack.machine.costs
                    value = getattr(base, field)
                    stack.machine.costs = base.scaled(
                        **{field: type(value)(value * factor)}
                    )
                    row[label] = devnotify(stack)
                out[(field, factor)] = row
        return out

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Sensitivity: DevNotify under +/-50% cost-model error"]
    for (field, factor), row in cells.items():
        lines.append(
            f"  {field:22s} x{factor:<4} nested={row['nested']:>10,.0f}  "
            f"dvh={row['dvh']:>10,.0f}  ratio={row['nested'] / row['dvh']:.1f}"
        )
    save_result("sensitivity", "\n".join(lines))

    # The ordering and the rough factor survive every perturbation.
    for row in cells.values():
        assert row["nested"] > 2.0 * row["dvh"]
