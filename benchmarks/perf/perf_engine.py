"""Engine throughput benchmark: simulator events per host second.

Two synthetic workloads bracket the engine's behavior:

* **ping-pong** — pairs of processes waking each other through events,
  the zero-delay resume traffic that dominates the exit-handler chains
  (exercises the ready deque);
* **delay chain** — one process sleeping in a tight loop with nothing
  else scheduled (exercises the inline clock-advance fast path).

Run directly to print and optionally record results::

    PYTHONPATH=src python benchmarks/perf/perf_engine.py --out BENCH_engine.json
    PYTHONPATH=src python benchmarks/perf/perf_engine.py --check

``--check`` enforces a conservative events/sec floor (for CI smoke).
With ``--baseline BENCH_engine.json`` the floor is raised to the
recorded throughput divided by ``--max-slowdown``, so a real engine
regression trips even on hosts fast enough to clear the absolute floor.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict

from repro.sim.engine import Simulator

#: Conservative floor for CI hosts of unknown speed; the engine manages
#: well over 10x this on 2020s-era hardware.
MIN_EVENTS_PER_SEC = 100_000.0


def bench_ping_pong(pairs: int = 4, rounds: int = 20_000) -> Dict[str, float]:
    """Event-driven ping-pong: ``pairs`` process pairs, each exchanging
    ``rounds`` wakeups through one-shot events (the ready-deque path)."""
    sim = Simulator()
    for _p in range(pairs):
        ping_ev = [sim.event()]
        pong_ev = [sim.event()]

        def ping(ping_ev=ping_ev, pong_ev=pong_ev):
            for _ in range(rounds):
                pong_ev[0].trigger()
                yield ping_ev[0]
                ping_ev[0] = sim.event()

        def pong(ping_ev=ping_ev, pong_ev=pong_ev):
            for _ in range(rounds):
                yield pong_ev[0]
                pong_ev[0] = sim.event()
                ping_ev[0].trigger()

        sim.spawn(ping(), "ping")
        sim.spawn(pong(), "pong")
    sim.run()
    return sim.stats()


def bench_delay_chain(rounds: int = 200_000) -> Dict[str, float]:
    """A single process sleeping ``rounds`` times with an empty heap —
    the uncontended inline-advance path."""
    sim = Simulator()

    def sleeper():
        for _ in range(rounds):
            yield 7

    sim.spawn(sleeper(), "sleeper")
    sim.run()
    return sim.stats()


def bench_periodic_phase(epochs: int = 200_000, period: int = 1_000) -> Dict[str, float]:
    """A strictly periodic workload phase under steady-state fast-forward:
    one process charging a fixed cycle cost then sleeping one period,
    ``epochs`` times.  The engine should detect the steady state after
    its confirmation window and collapse the rest into macro-events, so
    the interesting number is simulated epochs retired per host second —
    not events executed (which should stay tiny)."""
    from repro.metrics import Metrics

    sim = Simulator(fast_forward=True)
    metrics = Metrics()
    sim.ff.register_metrics(metrics)

    def loop():
        src = sim.ff.source("bench:periodic")
        left = epochs
        while left > 0:
            metrics.charge("guest_work", period)
            yield period
            left -= 1
            if left:
                left -= src.observe(left)

    sim.spawn(loop(), "periodic")
    sim.run()
    s = sim.stats()
    s["epochs"] = epochs
    wall = s["last_run_wall_s"]
    s["epochs_per_host_s"] = epochs / wall if wall > 0 else 0.0
    return s


def bench_request_capture(txns: int = 600) -> Dict[str, float]:
    """Zero-cost-when-off guard for per-request latency capture.

    Runs the same request/response workload with capture off (the
    default: ``machine.request_capture is None``, so every observation
    site is one attribute load and an ``is None`` test) and with
    histogram capture on.  Fast-forward is disabled so every request is
    actually simulated.  The modes run interleaved three times and the
    fastest wall time per mode wins (min-of-N discards scheduler and
    allocator noise); the check asserts the off path is not slower than
    the on path beyond noise — if capture-off ever pays for the
    feature, this trips."""
    from dataclasses import replace
    from time import perf_counter

    from repro.core.features import DvhFeatures
    from repro.hv.stack import StackConfig, build_stack
    from repro.workloads.apps import NETPERF_RR
    from repro.workloads.engines import run_rr

    spec = replace(NETPERF_RR, txns=txns)

    def one(capture: bool) -> float:
        stack = build_stack(
            StackConfig(
                levels=2,
                io_model="vp",
                dvh=DvhFeatures.full(),
                fast_forward=False,
            )
        )
        if capture:
            stack.machine.enable_request_capture(series="bench")
        t0 = perf_counter()
        run_rr(stack, spec)
        return perf_counter() - t0

    off = on = float("inf")
    for _ in range(3):
        off = min(off, one(False))
        on = min(on, one(True))
    return {
        "txns": float(txns),
        "off_wall_s": off,
        "on_wall_s": on,
        "off_txns_per_host_s": txns / off if off > 0 else 0.0,
        "off_over_on": off / on if on > 0 else 0.0,
    }


def run_benchmarks() -> Dict[str, Dict[str, float]]:
    return {
        "ping_pong": bench_ping_pong(),
        "delay_chain": bench_delay_chain(),
        "periodic_phase": bench_periodic_phase(),
        "request_capture": bench_request_capture(),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless ping-pong sustains {MIN_EVENTS_PER_SEC:,.0f} events/s",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="with --check: also require ping-pong throughput within "
        "--max-slowdown of this recorded baseline",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=8.0,
        help="allowed throughput ratio vs --baseline; generous because "
        "CI hosts differ from the recording host (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks()
    for name in ("ping_pong", "delay_chain"):
        s = results[name]
        print(
            f"{name:14s} {s['last_run_events']:>10,.0f} events "
            f"in {s['last_run_wall_s']:.3f}s host wall = "
            f"{s['last_run_events_per_sec']:>12,.0f} events/s"
        )
    pp = results["periodic_phase"]
    print(
        f"{'periodic_phase':14s} {pp['epochs']:>10,.0f} epochs "
        f"({pp['ff_epochs_skipped']:,.0f} skipped, "
        f"{pp['last_run_events']:,.0f} events) "
        f"in {pp['last_run_wall_s']:.3f}s = "
        f"{pp['epochs_per_host_s']:>12,.0f} epochs/s"
    )
    rc = results["request_capture"]
    print(
        f"{'req_capture':14s} {rc['txns']:>10,.0f} txns "
        f"off {rc['off_wall_s']:.3f}s on {rc['on_wall_s']:.3f}s "
        f"(off/on {rc['off_over_on']:.2f}) = "
        f"{rc['off_txns_per_host_s']:>12,.0f} txns/s capture-off"
    )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        # Regression assertion for the ping-pong slow path: same-time
        # wakeups must ride the inline chain, not bounce through the
        # outer scheduler (the shape that once showed inline_hits: 0).
        pp = results["ping_pong"]
        if pp["inline_hits"] <= pp["ready_hits"]:
            print(
                f"FAIL: ping-pong fell off the inline chain "
                f"(inline_hits={pp['inline_hits']:,.0f} <= "
                f"ready_hits={pp['ready_hits']:,.0f})",
                file=sys.stderr,
            )
            return 1
        # Fast-forward must collapse a strictly periodic phase: anything
        # under 99% skipped means detection or the skip window broke.
        pe = results["periodic_phase"]
        if pe["ff_epochs_skipped"] < 0.99 * pe["epochs"]:
            print(
                f"FAIL: periodic phase skipped only "
                f"{pe['ff_epochs_skipped']:,.0f} of {pe['epochs']:,.0f} epochs",
                file=sys.stderr,
            )
            return 1
        # Latency capture must be zero-cost when off: the default path
        # (request_capture is None) may not run slower than the
        # capture-on path beyond host noise.
        rc = results["request_capture"]
        if rc["off_over_on"] > 1.4:
            print(
                f"FAIL: capture-off request path "
                f"{rc['off_over_on']:.2f}x slower than capture-on "
                f"({rc['off_wall_s']:.3f}s vs {rc['on_wall_s']:.3f}s)",
                file=sys.stderr,
            )
            return 1
        rate = results["ping_pong"]["last_run_events_per_sec"]
        floor = MIN_EVENTS_PER_SEC
        if args.baseline:
            with open(args.baseline) as fh:
                base_rate = json.load(fh)["ping_pong"]["last_run_events_per_sec"]
            floor = max(floor, base_rate / args.max_slowdown)
            print(
                f"baseline {base_rate:,.0f} events/s "
                f"/ {args.max_slowdown:g} = floor {floor:,.0f}"
            )
        if rate < floor:
            print(
                f"FAIL: {rate:,.0f} events/s below floor {floor:,.0f}",
                file=sys.stderr,
            )
            return 1
        print(f"OK: above {floor:,.0f} events/s floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
