"""Engine throughput benchmark: simulator events per host second.

Two synthetic workloads bracket the engine's behavior:

* **ping-pong** — pairs of processes waking each other through events,
  the zero-delay resume traffic that dominates the exit-handler chains
  (exercises the ready deque);
* **delay chain** — one process sleeping in a tight loop with nothing
  else scheduled (exercises the inline clock-advance fast path).

Run directly to print and optionally record results::

    PYTHONPATH=src python benchmarks/perf/perf_engine.py --out BENCH_engine.json
    PYTHONPATH=src python benchmarks/perf/perf_engine.py --check

``--check`` enforces a conservative events/sec floor (for CI smoke).
With ``--baseline BENCH_engine.json`` the floor is raised to the
recorded throughput divided by ``--max-slowdown``, so a real engine
regression trips even on hosts fast enough to clear the absolute floor.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from typing import Dict

from repro.sim.engine import Simulator

#: Conservative floor for CI hosts of unknown speed; the engine manages
#: well over 10x this on 2020s-era hardware.
MIN_EVENTS_PER_SEC = 100_000.0


def bench_ping_pong(pairs: int = 4, rounds: int = 20_000) -> Dict[str, float]:
    """Event-driven ping-pong: ``pairs`` process pairs, each exchanging
    ``rounds`` wakeups through one-shot events (the ready-deque path)."""
    sim = Simulator()
    for _p in range(pairs):
        ping_ev = [sim.event()]
        pong_ev = [sim.event()]

        def ping(ping_ev=ping_ev, pong_ev=pong_ev):
            for _ in range(rounds):
                pong_ev[0].trigger()
                yield ping_ev[0]
                ping_ev[0] = sim.event()

        def pong(ping_ev=ping_ev, pong_ev=pong_ev):
            for _ in range(rounds):
                yield pong_ev[0]
                pong_ev[0] = sim.event()
                ping_ev[0].trigger()

        sim.spawn(ping(), "ping")
        sim.spawn(pong(), "pong")
    sim.run()
    return sim.stats()


def bench_delay_chain(rounds: int = 200_000) -> Dict[str, float]:
    """A single process sleeping ``rounds`` times with an empty heap —
    the uncontended inline-advance path."""
    sim = Simulator()

    def sleeper():
        for _ in range(rounds):
            yield 7

    sim.spawn(sleeper(), "sleeper")
    sim.run()
    return sim.stats()


def run_benchmarks() -> Dict[str, Dict[str, float]]:
    return {
        "ping_pong": bench_ping_pong(),
        "delay_chain": bench_delay_chain(),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail unless ping-pong sustains {MIN_EVENTS_PER_SEC:,.0f} events/s",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="with --check: also require ping-pong throughput within "
        "--max-slowdown of this recorded baseline",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=8.0,
        help="allowed throughput ratio vs --baseline; generous because "
        "CI hosts differ from the recording host (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks()
    for name in ("ping_pong", "delay_chain"):
        s = results[name]
        print(
            f"{name:12s} {s['last_run_events']:>10,.0f} events "
            f"in {s['last_run_wall_s']:.3f}s host wall = "
            f"{s['last_run_events_per_sec']:>12,.0f} events/s"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        rate = results["ping_pong"]["last_run_events_per_sec"]
        floor = MIN_EVENTS_PER_SEC
        if args.baseline:
            with open(args.baseline) as fh:
                base_rate = json.load(fh)["ping_pong"]["last_run_events_per_sec"]
            floor = max(floor, base_rate / args.max_slowdown)
            print(
                f"baseline {base_rate:,.0f} events/s "
                f"/ {args.max_slowdown:g} = floor {floor:,.0f}"
            )
        if rate < floor:
            print(
                f"FAIL: {rate:,.0f} events/s below floor {floor:,.0f}",
                file=sys.stderr,
            )
            return 1
        print(f"OK: above {floor:,.0f} events/s floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
