"""Cluster wall-time benchmark: fixed multi-host scenarios.

Measures host wall time of three deterministic cluster slices — boot, a
single cross-host DVH migration, and a policy-sweep cell — and records
the simulated-side figures (fabric bytes, downtime) alongside, so a run
that got "faster" by simulating less is caught, not celebrated::

    PYTHONPATH=src python benchmarks/perf/perf_cluster.py --out BENCH_cluster.json

``--check BENCH_cluster.json`` re-measures and fails when a slice
exceeds ``--max-slowdown`` x its recorded wall time, or when any
recorded simulated figure changed at all (those are seed-deterministic;
a drift is a correctness bug, not noise).  The CI regression guard
(``make bench-perf-check``) runs exactly that.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from time import perf_counter
from typing import Dict

SEED = 0


def bench_boot() -> Dict[str, object]:
    """Boot a 4-host cluster (8 full hypervisor stacks' worth of build
    work) and place the standard fleet."""
    from repro.cluster import Cluster
    from repro.cluster.sweep import standard_tenants

    t0 = perf_counter()
    cluster = Cluster(num_hosts=4, seed=SEED, policy="spread")
    for spec in standard_tenants(6):
        cluster.place(spec)
    wall = perf_counter() - t0
    return {
        "wall_s": wall,
        "sim_cycles": cluster.sim.now,
        "tenants_per_host": sorted(len(h.tenants) for h in cluster.hosts),
    }


def bench_migration() -> Dict[str, object]:
    """One cross-host vp migration with a dirtying tenant."""
    from repro.cluster import Cluster, TenantSpec

    t0 = perf_counter()
    cluster = Cluster(num_hosts=2, seed=SEED, policy="spread")
    cluster.place(
        TenantSpec(name="t", io_model="vp", memory_gb=8, dirty_pages=128)
    )
    src = cluster.host_of("t")
    dst = [h for h in cluster.hosts if h.name != src.name][0]
    record = cluster.migrate("t", dst.name)
    wall = perf_counter() - t0
    return {
        "wall_s": wall,
        "downtime_ms": round(record.result.downtime_s * 1e3, 3),
        "rounds": record.result.rounds,
        "fabric_migration_bytes": cluster.fabric.metrics.cross_host_bytes(
            "migration"
        ),
    }


def bench_sweep_cell() -> Dict[str, object]:
    """One serial sweep cell (what ``cluster sweep`` fans out)."""
    from repro.cluster.sweep import cluster_cell

    t0 = perf_counter()
    row = cluster_cell(("bin-pack", 2, 4, SEED))
    wall = perf_counter() - t0
    return {"wall_s": wall, "digest": row["digest"]}


def bench_dc_fleet() -> Dict[str, object]:
    """The 200-host spine-leaf fleet under a full control-plane
    lifecycle: 40 tenant admissions, threshold rebalancing, and a
    rolling kernel upgrade of every rack under tenant traffic.  The
    quiescent-host optimization is what keeps this slice in single-digit
    seconds — only touched hosts ever build a stack."""
    from repro.dc import load_spec, run_dc

    t0 = perf_counter()
    dc = run_dc(load_spec("fleet"), seed=SEED)
    wall = perf_counter() - t0
    control = dc.control.report()
    return {
        "wall_s": wall,
        "sim_cycles": dc.sim.now,
        "digest": dc.digest(),
        "hosts_booted": sum(1 for h in dc.hosts if h.booted),
        "admitted": control["admitted"],
        "pinned_per_wave": control["pinned_per_wave"],
        "upgraded_total": control["upgraded_total"],
        "rebalance_moves": control["rebalance_moves"],
        "trunk_bytes": dc.fabric.stats()["trunk_bytes"],
    }


#: Simulated-side keys that must be bit-identical run to run; wall_s is
#: the only field allowed to vary.
_DETERMINISTIC_KEYS = {
    "boot": ("sim_cycles", "tenants_per_host"),
    "migration": ("downtime_ms", "rounds", "fabric_migration_bytes"),
    "sweep_cell": ("digest",),
    "dc_fleet": (
        "sim_cycles",
        "digest",
        "hosts_booted",
        "admitted",
        "pinned_per_wave",
        "upgraded_total",
        "rebalance_moves",
        "trunk_bytes",
    ),
}


def run_benchmarks() -> Dict[str, object]:
    return {
        "boot": bench_boot(),
        "migration": bench_migration(),
        "sweep_cell": bench_sweep_cell(),
        "dc_fleet": bench_dc_fleet(),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }


def check_against(results, baseline_path: str, max_slowdown: float) -> int:
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for name, keys in _DETERMINISTIC_KEYS.items():
        mine, theirs = results[name], baseline[name]
        budget = theirs["wall_s"] * max_slowdown
        if mine["wall_s"] > budget:
            failures.append(
                f"{name}: {mine['wall_s']:.3f}s exceeds "
                f"{theirs['wall_s']:.3f}s x {max_slowdown:g}"
            )
        for key in keys:
            if mine[key] != theirs[key]:
                failures.append(
                    f"{name}.{key}: {mine[key]!r} != recorded {theirs[key]!r} "
                    "(seed-deterministic value drifted)"
                )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: all slices within {max_slowdown:g}x of {baseline_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--check",
        default=None,
        metavar="JSON",
        help="compare against this recorded baseline and fail on regression",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=8.0,
        help="allowed wall-time ratio vs the baseline; generous because "
        "CI hosts differ from the recording host (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks()
    for name in ("boot", "migration", "sweep_cell", "dc_fleet"):
        print(f"{name:12s} {results[name]['wall_s']:.3f}s host wall")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        return check_against(results, args.check, args.max_slowdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
