"""Experiment wall-time benchmark: fixed slices of the paper's runs.

Measures host wall time of a fixed Table-3 slice and a one-app Figure-7
slice (both fully deterministic in *simulated* results), plus — with
``--tier1`` — the whole tier-1 test suite.  The seed baseline (the repo
before the fast-path engine) is kept in the output for before/after
comparison::

    PYTHONPATH=src python benchmarks/perf/perf_experiments.py --tier1 \
        --out BENCH_experiments.json

``--check BENCH_experiments.json`` re-measures the two slices and fails
when either exceeds ``--max-slowdown`` x its recorded wall time — the CI
regression guard (``make bench-perf-check``); it never rewrites the
baseline and skips the tier-1 timing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from time import perf_counter
from typing import Dict, Optional

from repro.bench.runner import run_figure7, run_table3

#: Wall time of ``PYTHONPATH=src python -m pytest -x -q`` on the seed
#: tree (before the engine fast path and hot-path optimization), on the
#: same host the optimized numbers were recorded on.
SEED_TIER1_WALL_S = 50.05

TABLE3_ITERATIONS = 3
FIGURE_APPS = ["netperf_rr"]

#: The head-to-head study slice: the full 4-variant matrix over one
#: micro-op plus the single-machine migration scenario (the study's
#: heaviest cell family), serial.
STUDY_SLICE_SPEC = {
    "name": "perf-slice",
    "micro_benches": ["DevNotify"],
    "micro_guest_hvs": ["kvm"],
    "micro_iterations": 5,
    "app_names": [],
    "migration": True,
    "cluster_hosts": 0,
}


def bench_table3_slice() -> Dict[str, float]:
    t0 = perf_counter()
    run_table3(iterations=TABLE3_ITERATIONS)
    return {"iterations": TABLE3_ITERATIONS, "wall_s": perf_counter() - t0}


def bench_app_figure_slice() -> Dict[str, object]:
    t0 = perf_counter()
    run_figure7(apps=FIGURE_APPS)
    return {"figure": "7", "apps": FIGURE_APPS, "wall_s": perf_counter() - t0}


def bench_study_slice() -> Dict[str, object]:
    from repro.study import StudySpec, run_study

    spec = StudySpec.from_dict(STUDY_SLICE_SPEC)
    t0 = perf_counter()
    run_study(spec, seed=0, jobs=1)
    return {"spec": spec.name, "wall_s": perf_counter() - t0}


#: The scenario-generator slice: generate a small campaign and run it
#: serially (both topologies, all three arches — dominated by stack
#: builds, so it guards the cross-arch build/dispatch hot path).
SCENARIO_SLICE = {"seed": 0, "count": 6}


def bench_scenario_gen_slice() -> Dict[str, object]:
    from repro.scenarios import generate_specs, run_scenarios

    t0 = perf_counter()
    specs = generate_specs(**SCENARIO_SLICE)
    run_scenarios(specs)
    return {"count": SCENARIO_SLICE["count"], "wall_s": perf_counter() - t0}


def bench_tier1() -> Dict[str, float]:
    """Time the full tier-1 suite in a subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    t0 = perf_counter()
    subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q"],
        check=True,
        env=env,
        stdout=subprocess.DEVNULL,
    )
    wall = perf_counter() - t0
    return {
        "seed_wall_s": SEED_TIER1_WALL_S,
        "wall_s": wall,
        "speedup_vs_seed": SEED_TIER1_WALL_S / wall,
    }


def run_benchmarks(tier1: bool, carry_from: Optional[str] = None) -> Dict[str, object]:
    results: Dict[str, object] = {
        "table3_slice": bench_table3_slice(),
        "app_figure_slice": bench_app_figure_slice(),
        "study_slice": bench_study_slice(),
        "scenario_gen": bench_scenario_gen_slice(),
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }
    if tier1:
        results["tier1"] = bench_tier1()
    elif carry_from and os.path.exists(carry_from):
        # Keep the last recorded tier-1 timing when not re-measuring.
        try:
            with open(carry_from) as fh:
                prev = json.load(fh)
            if "tier1" in prev:
                results["tier1"] = prev["tier1"]
        except (OSError, ValueError):
            pass
    return results


def check_against(
    results: Dict[str, object], baseline_path: str, max_slowdown: float
) -> list:
    """Compare measured slice wall times against a recorded baseline.

    Returns the list of slices exceeding ``max_slowdown`` x baseline.
    """
    with open(baseline_path) as fh:
        base = json.load(fh)
    failures = []
    for key in ("table3_slice", "app_figure_slice", "study_slice", "scenario_gen"):
        if key not in base:
            # Baseline predates this slice: measure but don't gate.
            print(f"{key:18s} {results[key]['wall_s']:.2f}s (no baseline)")
            continue
        got = results[key]["wall_s"]
        ref = base[key]["wall_s"]
        ratio = got / ref
        status = "ok" if ratio <= max_slowdown else "FAIL"
        print(
            f"{key:18s} {got:.2f}s vs baseline {ref:.2f}s "
            f"= {ratio:.2f}x ({status}, limit {max_slowdown:g}x)"
        )
        if ratio > max_slowdown:
            failures.append(key)
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write results to this JSON file")
    parser.add_argument(
        "--tier1",
        action="store_true",
        help="also time the full tier-1 test suite (adds its full runtime)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="JSON",
        help="compare slice wall times against this recorded baseline "
        "instead of writing one; fail past --max-slowdown",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=5.0,
        help="allowed wall-time ratio vs the --check baseline; generous "
        "because CI hosts differ from the recording host "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(tier1=args.tier1, carry_from=args.out)
    print(f"table3 slice      {results['table3_slice']['wall_s']:.2f}s")
    print(f"app figure slice  {results['app_figure_slice']['wall_s']:.2f}s")
    print(f"study slice       {results['study_slice']['wall_s']:.2f}s")
    print(f"scenario gen      {results['scenario_gen']['wall_s']:.2f}s")
    if "tier1" in results:
        t1 = results["tier1"]
        print(
            f"tier-1 suite      {t1['wall_s']:.2f}s "
            f"(seed {t1['seed_wall_s']:.2f}s, {t1['speedup_vs_seed']:.2f}x)"
        )
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        failures = check_against(results, args.check, args.max_slowdown)
        if failures:
            print(f"FAIL: regression in {', '.join(failures)}", file=sys.stderr)
            return 1
        print("OK: within baseline tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
