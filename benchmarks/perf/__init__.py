"""Host-performance regression benchmarks.

Unlike :mod:`benchmarks` proper (which measures *simulated* cycles),
this package measures how fast the simulator itself runs on the host:
engine events per second and the wall time of fixed experiment slices.
Results land in ``BENCH_engine.json`` / ``BENCH_experiments.json`` at
the repository root (``make bench-perf`` regenerates both), giving a
baseline to diff against when the engine or hot paths change.
"""
