"""Regenerate Figure 7: application performance, six VM configurations.

The paper's qualitative results this harness must reproduce:

* paravirtual I/O in a nested VM is **more than 3x worse than the VM
  case** for Apache, memcached, netperf RR, and netperf MAERTS;
* DVH-VP alone delivers performance **comparable to passthrough**;
* full DVH brings nested performance **close to the (non-nested) VM
  case** for all workloads;
* Hackbench shows no difference between I/O models.
"""

import pytest

from repro.bench import format_figure, run_figure7
from repro.workloads.apps import app_names


@pytest.mark.parametrize("app", app_names())
def test_fig7_row(benchmark, save_result, app):
    result = benchmark.pedantic(
        lambda: run_figure7(apps=[app]), rounds=1, iterations=1
    )
    save_result(f"fig7_{app}", format_figure(result))
    row = result.overheads[app]
    vm = row["VM"]
    nested = row["Nested VM"]
    pt = row["Nested VM + passthrough"]
    dvh_vp = row["Nested VM + DVH-VP"]
    dvh = row["Nested VM + DVH"]

    if app in ("netperf_rr", "netperf_maerts", "apache", "memcached"):
        # Exit multiplication makes nested paravirtual I/O much worse.
        assert nested > 2.5 * vm
    if app == "hackbench":
        # No I/O: all I/O models perform the same (paper Figure 7).
        assert abs(nested - pt) / nested < 0.05
        assert abs(nested - dvh_vp) / nested < 0.05
    else:
        # DVH-VP is comparable to passthrough (within ~60% here; the
        # paper's bars are similarly close).
        assert dvh_vp < 1.8 * max(pt, 1.0)
    # Full DVH approaches non-nested VM overhead.
    assert dvh < nested
    assert dvh <= dvh_vp + 0.05
    assert dvh < vm + 1.0
