"""Regenerate Figure 9: application performance in an L3 VM.

The paper's qualitative results:

* three levels of paravirtual I/O are **practically unusable** — up to
  two orders of magnitude overhead;
* DVH is up to two orders of magnitude better than paravirtual I/O and
  can be >30x better than passthrough;
* only DVH keeps L3 performance near the (non-nested) VM case.
"""

import pytest

from repro.bench import format_figure, run_figure9
from repro.workloads.apps import app_names


@pytest.mark.parametrize("app", app_names())
def test_fig9_row(benchmark, save_result, app):
    result = benchmark.pedantic(
        lambda: run_figure9(apps=[app]), rounds=1, iterations=1
    )
    save_result(f"fig9_{app}", format_figure(result))
    row = result.overheads[app]
    vm = row["VM"]
    l3 = row["L3"]
    dvh = row["L3 + DVH"]

    if app in ("netperf_rr", "netperf_maerts", "apache", "memcached"):
        # Way beyond an order of magnitude for the I/O-heavy workloads.
        assert l3 > 20
        # DVH is one-to-two orders of magnitude better.
        assert l3 / dvh > 10
    # DVH keeps L3 close to the non-nested VM case (within ~2.5x of it;
    # the paper's bars land within ~1.5x for most workloads).
    assert dvh < vm + 1.5
    # DVH beats or matches passthrough except where passthrough is
    # already at native speed (bulk streaming).
    assert dvh < max(row["L3 + passthrough"], 1.0) * 1.5 + 0.1
