"""Shared fixtures for the benchmark harness.

Every benchmark regenerates a row/series of one of the paper's tables or
figures and writes the rendered result under ``benchmarks/results/`` (and
prints it with ``pytest -s``).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """save(name, text): persist one rendered result and echo it."""

    def save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save
