"""Regenerate Figure 8: incremental DVH breakdown on the nested VM.

The paper's attribution this harness must reproduce:

* virtual IPIs help Apache, MySQL, and Hackbench the most;
* virtual timers help netperf RR the most (and Apache/MySQL some);
* virtual idle helps netperf RR, in combination with the others;
* for memcached, once one technique is applied the rest add little.
"""

import pytest

from repro.bench import format_figure, run_figure8
from repro.workloads.apps import app_names

STEPS = [
    "Nested VM",
    "Nested VM + DVH-VP",
    "+ posted interrupts",
    "+ virtual IPIs",
    "+ virtual timers",
    "+ virtual idle (= DVH)",
]


@pytest.mark.parametrize("app", app_names())
def test_fig8_row(benchmark, save_result, app):
    result = benchmark.pedantic(
        lambda: run_figure8(apps=[app]), rounds=1, iterations=1
    )
    save_result(f"fig8_{app}", format_figure(result))
    row = result.overheads[app]
    series = [row[s] for s in STEPS]

    # Each increment can only help (monotone non-increasing within 5%).
    for before, after in zip(series, series[1:]):
        assert after <= before * 1.05

    if app in ("apache", "hackbench"):
        # Virtual IPIs give these workloads their biggest DVH step.
        assert row["+ virtual IPIs"] < row["+ posted interrupts"] * 0.93
    if app == "netperf_rr":
        # Virtual timers are the big step for netperf RR...
        assert row["+ virtual timers"] < row["+ virtual IPIs"] * 0.85
        # ...and virtual idle helps further in combination (§4).
        assert row["+ virtual idle (= DVH)"] < row["+ virtual timers"] * 0.95
