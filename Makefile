# Convenience targets for the DVH reproduction.

.PHONY: install test lint bench bench-perf bench-perf-check fuzz fuzz-smoke \
	audit audit-smoke scenarios scenarios-smoke figures examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

# Lint (config in ruff.toml).  CI installs ruff; on hosts without it the
# target skips with a notice rather than failing -- the simulator itself
# has no dependencies beyond the standard library.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint (CI runs it; pip install ruff)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

# Trap-chain fuzzing (see docs/faults.md).  The smoke run is wired into
# CI; the full campaign is the documented 500-episode sweep.
fuzz:
	PYTHONPATH=src python -m repro faults fuzz --episodes 500 --seed 1

fuzz-smoke:
	PYTHONPATH=src python -m repro faults fuzz --episodes 25 --seed 1

# Runtime invariant audit (see docs/faults.md): the migration/cluster
# fault matrix plus a fuzz campaign with every lifecycle/conservation
# check armed.  Wired into CI; reverting the migration-teardown fixes
# turns it red.
audit:
	PYTHONPATH=src python -m repro audit --episodes 500 --seed 1

audit-smoke:
	PYTHONPATH=src python -m repro audit --episodes 25 --seed 1

# Constrained-random scenarios (see docs/scenarios.md).  The full run is
# the documented 200-scenario audited campaign; the smoke run is wired
# into CI and checks seed-stable replay both ways: gen twice must be
# byte-identical, and the same campaign must pass serial, under --jobs,
# and with fast-forward disabled.
scenarios:
	PYTHONPATH=src python -m repro scenarios run --count 200 --seed 0 --jobs 0 --audit

scenarios-smoke:
	PYTHONPATH=src python -m repro scenarios gen --count 20 --seed 1 > /tmp/scen_a.jsonl
	PYTHONPATH=src python -m repro scenarios gen --count 20 --seed 1 > /tmp/scen_b.jsonl
	diff /tmp/scen_a.jsonl /tmp/scen_b.jsonl
	PYTHONPATH=src python -m repro scenarios run --count 10 --seed 1 --json > /tmp/scen_run_serial.json
	PYTHONPATH=src python -m repro scenarios run --count 10 --seed 1 --json --jobs 2 > /tmp/scen_run_jobs.json
	diff /tmp/scen_run_serial.json /tmp/scen_run_jobs.json
	REPRO_FAST_FORWARD=0 PYTHONPATH=src python -m repro scenarios run --count 10 --seed 1 --json > /tmp/scen_run_noff.json
	diff /tmp/scen_run_serial.json /tmp/scen_run_noff.json

# Host-performance regression baselines (see docs/performance.md).
bench-perf:
	PYTHONPATH=src python benchmarks/perf/perf_engine.py --out BENCH_engine.json
	PYTHONPATH=src python benchmarks/perf/perf_experiments.py --tier1 --out BENCH_experiments.json
	PYTHONPATH=src python benchmarks/perf/perf_cluster.py --out BENCH_cluster.json

# CI guard: re-measure and compare against the *committed* baselines
# without rewriting them.  Tolerances are generous (CI hosts differ from
# the recording host); a genuine dispatch-path regression still trips.
bench-perf-check:
	PYTHONPATH=src python benchmarks/perf/perf_engine.py --check --baseline BENCH_engine.json
	PYTHONPATH=src python benchmarks/perf/perf_experiments.py --check BENCH_experiments.json
	PYTHONPATH=src python benchmarks/perf/perf_cluster.py --check BENCH_cluster.json

figures:
	python -m repro table3
	python -m repro figure 7
	python -m repro figure 8
	python -m repro figure 9
	python -m repro figure 10
	python -m repro migration

examples:
	python examples/quickstart.py
	python examples/exit_multiplication.py
	python examples/live_migration.py
	python examples/cloud_stack.py
	python examples/why_is_it_slow.py
	python examples/custom_workload.py
	python examples/datacenter.py

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
