"""DVH — Direct Virtual Hardware for nested virtualization.

A full-system reproduction of *"Optimizing Nested Virtualization
Performance Using Direct Virtual Hardware"* (Lim & Nieh, ASPLOS 2020) on
a deterministic, cycle-accounting simulator of an x86 machine with
single-level hardware virtualization support.

Quickstart::

    from repro import DvhFeatures, StackConfig, build_stack, run_app

    nested = build_stack(StackConfig(levels=2, io_model="virtio"))
    dvh = build_stack(
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full())
    )
    baseline = build_stack(StackConfig(levels=0, io_model="native"))

    native = run_app(baseline, "memcached")
    print(run_app(nested, "memcached").overhead_vs(native))  # ~4x
    print(run_app(dvh, "memcached").overhead_vs(native))     # ~1.5x

Layers:

* :mod:`repro.sim` — discrete-event engine and the cycle-cost model;
* :mod:`repro.hw` — simulated hardware: CPUs/VMX/EPT/APIC/IOMMU/PCI/devices;
* :mod:`repro.hv` — the KVM-like hypervisor stack (plus a Xen flavour);
* :mod:`repro.core` — the paper's contribution: the four DVH mechanisms
  and DVH migration;
* :mod:`repro.workloads` — Table 1 microbenchmarks, Table 2 applications;
* :mod:`repro.bench` — harness regenerating every table and figure.
"""

from repro.core.features import DvhFeatures
from repro.hv.stack import Stack, StackConfig, build_stack
from repro.hw.machine import Machine
from repro.sim import CostModel, Simulator, default_costs
from repro.workloads.apps import PAPER_NATIVE, app_names, run_app
from repro.workloads.microbench import run_microbenchmark

__version__ = "1.0.0"

__all__ = [
    "DvhFeatures",
    "Stack",
    "StackConfig",
    "build_stack",
    "Machine",
    "CostModel",
    "Simulator",
    "default_costs",
    "PAPER_NATIVE",
    "app_names",
    "run_app",
    "run_microbenchmark",
    "__version__",
]
