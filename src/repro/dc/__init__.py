"""repro.dc — a spine-leaf datacenter with a live control plane.

Scales :mod:`repro.cluster` from a handful of hosts behind one ToR to
hundreds of hosts in racks behind a leaf tier cross-connected through
spines, described declaratively (JSON / YAML-subset spec files, no new
dependencies) and managed by an event-driven control plane running *on
the simulated clock*: admission through the placement policies,
threshold rebalancing via live migration, and rolling kernel-upgrade
waves (evacuate -> reboot -> readmit) under continuous tenant traffic.

The paper's §3.6 migration asymmetry becomes a fleet-capacity metric
here: each upgrade wave reports how many hosts stayed **pinned**
because physical-passthrough tenants cannot live-migrate
(:class:`~repro.hv.passthrough.MigrationNotSupported`), while DVH
virtual-passthrough tenants evacuate cleanly.

Fleets this size stay tractable through quiescent hosts: an idle
:class:`~repro.cluster.host.ClusterHost` contributes zero engine
events, no fast-forward fingerprint weight, and no built stack until a
tenant or migration touches it — with byte-identical control-plane
accounting either way.
"""

from repro.dc.controlplane import ControlPlane, WaveReport
from repro.dc.fabric import SpineLeafFabric
from repro.dc.fleet import Datacenter
from repro.dc.runner import (
    BUILTIN_SPECS,
    dc_cell,
    load_spec,
    run_dc,
    run_sweep,
)
from repro.dc.spec import (
    ControlSpec,
    DCSpec,
    FaultWindowSpec,
    HostSpec,
    RebalanceSpec,
    SpecError,
    TenantMixSpec,
    TopologySpec,
    TrafficSpec,
    UpgradeSpec,
    parse_simple_yaml,
)

__all__ = [
    "ControlPlane",
    "WaveReport",
    "SpineLeafFabric",
    "Datacenter",
    "BUILTIN_SPECS",
    "dc_cell",
    "load_spec",
    "run_dc",
    "run_sweep",
    "ControlSpec",
    "DCSpec",
    "FaultWindowSpec",
    "HostSpec",
    "RebalanceSpec",
    "SpecError",
    "TenantMixSpec",
    "TopologySpec",
    "TrafficSpec",
    "UpgradeSpec",
    "parse_simple_yaml",
]
