"""Entry points: run a datacenter spec, sweep seeds in parallel.

The built-in specs double as living documentation of the spec format
(and as parser exercise — they go through the same YAML-subset path a
file on disk would).  ``examples/dc_small.yaml`` and
``examples/dc_fleet.yaml`` mirror them.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.parallel import map_cells
from repro.dc.controlplane import ControlPlane
from repro.dc.fleet import Datacenter
from repro.dc.spec import DCSpec

__all__ = ["BUILTIN_SPECS", "load_spec", "run_dc", "dc_cell", "run_sweep"]


#: A 6-host, 2-rack fleet that exercises every control-plane feature in
#: a few hundred simulated microseconds — the CI smoke scenario.
SMALL_SPEC = """\
version: 1
name: small
topology:
  racks: 2
  hosts_per_rack: 3
  spines: 2
  oversubscription: 2.0
hosts:
  guest_hv: kvm
  stack_levels: 2
  workers: 2
tenants:
  count: 8
  start_ms: 0.5
  interval_ms: 0.8
  mix: {virtio: 2, vp: 1, passthrough: 1}
  memory_gb: [1, 2]
  load: [800, 2000]
  dirty_pages: [32, 64]
traffic:
  flows: 2
  chunk_kb: 64
  gap_ms: 0.3
control:
  policy: bin-pack
  rebalance:
    enabled: true
    start_ms: 3.0
    interval_ms: 2.0
    threshold: 1.6
  upgrade:
    enabled: true
    start_ms: 8.0
    wave_size: 3
    reboot_ms: 2.0
    downtime_limit_ms: 500.0
horizon_ms: 30.0
"""

#: A 200-host spine-leaf fleet (8 racks x 25 hosts, 4 spines, 4:1
#: oversubscription) running a full rolling upgrade under tenant
#: traffic — the benchmark scenario.  With quiescent hosts only the
#: handful of occupied hosts ever boot a stack.
FLEET_SPEC = """\
version: 1
name: fleet
topology:
  racks: 8
  hosts_per_rack: 25
  spines: 4
  oversubscription: 4.0
hosts:
  guest_hv: kvm
  stack_levels: 2
  workers: 2
tenants:
  count: 40
  start_ms: 0.2
  interval_ms: 0.1
  mix: {virtio: 3, vp: 2, passthrough: 1}
  memory_gb: [1, 2]
  load: [800, 2400]
  dirty_pages: [32]
traffic:
  flows: 8
  chunk_kb: 64
  gap_ms: 0.5
control:
  policy: bin-pack
  rebalance:
    enabled: true
    start_ms: 2.0
    interval_ms: 2.0
    threshold: 1.5
  upgrade:
    enabled: true
    start_ms: 6.0
    wave_size: 25
    reboot_ms: 1.0
    downtime_limit_ms: 500.0
horizon_ms: 40.0
"""

#: The tail-latency headline study: a bin-packed fleet develops a hot
#: host (noisy neighbours), the SLO gate live-migrates p99 breachers
#: off it (watch the brownout spike first), and a mid-run fabric
#: degradation window inflates everyone — exposing the §3.6 asymmetry
#: as *pinned* SLO reports: breaching passthrough tenants that the
#: gate has no placement lever for.  DVH (vp) tenants sit between
#: virtio and passthrough in the per-tenant percentile table, the
#: result the source paper's throughput aggregates could not show.
SLO_SPEC = """\
version: 1
name: slo
topology:
  racks: 2
  hosts_per_rack: 3
  spines: 2
  oversubscription: 2.0
hosts:
  guest_hv: kvm
  stack_levels: 2
  workers: 2
tenants:
  count: 12
  start_ms: 0.2
  interval_ms: 0.1
  mix: {virtio: 5, vp: 3, passthrough: 2}
  memory_gb: [1, 2]
  load: [1500, 2400]
  dirty_pages: [32]
traffic:
  flows: 2
  chunk_kb: 64
  gap_ms: 0.4
control:
  policy: bin-pack      # deliberately creates the hot host
  rebalance:
    enabled: false      # the SLO gate is the only mover
  upgrade:
    enabled: false
slo:
  enabled: true
  sample_ms: 0.1
  objective_p99_ms: 0.07
  objectives: {vp: 0.04, passthrough: 0.015}
  gate_start_ms: 2.0
  gate_interval_ms: 1.0
  min_samples: 8
faults:
  - kind: fabric_degrade
    start_ms: 12.0
    end_ms: 16.0
    param: 0.5
horizon_ms: 20.0
"""

BUILTIN_SPECS: Dict[str, str] = {
    "small": SMALL_SPEC,
    "fleet": FLEET_SPEC,
    "slo": SLO_SPEC,
}


def load_spec(source: str) -> DCSpec:
    """Resolve a spec source: a built-in name ("small", "fleet") or a
    path to a JSON / YAML-subset file."""
    if source in BUILTIN_SPECS:
        return DCSpec.from_text(BUILTIN_SPECS[source])
    if not os.path.exists(source):
        raise FileNotFoundError(
            f"no spec file {source!r} (built-ins: {sorted(BUILTIN_SPECS)})"
        )
    return DCSpec.load(source)


def run_dc(
    spec: DCSpec,
    seed: int = 0,
    quiescent: bool = True,
    fast_forward: Optional[bool] = None,
) -> Datacenter:
    """Build the fleet, start the control plane, run to completion."""
    dc = Datacenter(spec, seed=seed, quiescent=quiescent, fast_forward=fast_forward)
    ControlPlane(dc).start()
    dc.sim.run()
    return dc


# ----------------------------------------------------------------------
# Seed sweeps (module-level worker so it pickles under spawn)
# ----------------------------------------------------------------------
def dc_cell(task: Tuple[str, int, bool]) -> Dict:
    """One sweep cell: (spec source, seed, quiescent) -> observables.
    Pure — workers rebuild the spec from its source, so cells pickle."""
    source, seed, quiescent = task
    dc = run_dc(load_spec(source), seed=seed, quiescent=quiescent)
    control = dc.control
    return {
        "seed": seed,
        "digest": dc.digest(),
        "events": len(dc.events),
        "admitted": len(control.admitted),
        "rejected": len(control.rejected),
        "pinned_per_wave": [len(w.pinned) for w in control.waves],
        "upgraded_total": sum(len(w.upgraded) for w in control.waves),
        "rebalance_moves": control.rebalance_moves,
    }


def run_sweep(
    source: str,
    seeds: Sequence[int],
    jobs: Optional[int] = 1,
    quiescent: bool = True,
) -> List[Dict]:
    """Run one spec across seeds, optionally in parallel processes —
    byte-identical to the serial path (see repro.bench.parallel)."""
    tasks = [(source, seed, quiescent) for seed in seeds]
    return map_cells(dc_cell, tasks, jobs=jobs)
