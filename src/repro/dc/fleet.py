"""The datacenter fleet: hosts in racks on a spine-leaf fabric.

A :class:`Datacenter` is the ``repro.dc`` analogue of
:class:`~repro.cluster.Cluster` — it quacks the same for the
:class:`~repro.cluster.orchestrator.Orchestrator` (``sim`` / ``fabric``
/ ``hosts`` / ``policy`` / ``host`` / ``host_of`` / ``log``) — but is
built from a declarative :class:`~repro.dc.spec.DCSpec` and sized for
hundreds of hosts:

* hosts are named ``r{rack}h{idx}`` and attached to a
  :class:`~repro.dc.fabric.SpineLeafFabric` per the spec's topology;
* with ``quiescent=True`` (the default) hosts are **lazy**: a host
  contributes zero engine events, no Metrics in fast-forward
  fingerprints, and no built stack until a tenant, migration, or
  explicit touch needs it.  Accounting is byte-identical either way —
  booting parks backend processes on events, never draws the shared
  RNG, and never writes the event trace — so a 500-host fleet costs
  what its *active* hosts cost.

The :meth:`digest` deliberately covers the control-plane observables
(event trace, cross-host byte matrix, wave reports) and **not** the
final ``sim.now``: the only timing difference lazy boot may introduce
is the sub-microsecond backend-startup drain of a host that eager mode
booted earlier, after the last logged action.  Everything an operator
can observe — every log line's timestamp, every byte on the fabric —
is identical, and the determinism tests pin exactly that.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.cluster.host import ClusterHost, Tenant
from repro.cluster.orchestrator import Orchestrator
from repro.cluster.placement import make_policy
from repro.dc.fabric import SpineLeafFabric
from repro.dc.spec import DCSpec
from repro.faults.injector import FaultInjector
from repro.sim import Simulator, default_costs

__all__ = ["Datacenter"]


class Datacenter:
    """N racks of hosts, one spine-leaf fabric, one clock, one trace."""

    def __init__(
        self,
        spec: DCSpec,
        seed: int = 0,
        quiescent: bool = True,
        costs=None,
        fast_forward: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.seed = seed
        self.quiescent = quiescent
        self.sim = Simulator(seed=seed, fast_forward=fast_forward)
        self.costs = costs if costs is not None else default_costs()
        topo = spec.topology
        self.fabric = SpineLeafFabric(
            self.sim,
            self.costs,
            racks=topo.racks,
            hosts_per_rack=topo.hosts_per_rack,
            spines=topo.spines,
            oversubscription=topo.oversubscription,
        )
        self.policy = make_policy(spec.control.policy)
        #: The deterministic event trace (admissions, migrations, waves,
        #: reboots), stamped with the shared simulated clock.
        self.events: List[str] = []
        self.hosts: List[ClusterHost] = []
        idx = 0
        for rack in range(topo.racks):
            for slot in range(topo.hosts_per_rack):
                host = ClusterHost(
                    f"r{rack}h{slot}",
                    self.sim,
                    self.costs,
                    guest_hv=spec.hosts.guest_hv,
                    stack_levels=spec.hosts.stack_levels,
                    workers=spec.hosts.workers,
                    seed=seed + idx,
                    lazy=quiescent,
                    load_capacity=spec.hosts.load_capacity,
                )
                host.port = self.fabric.attach(host.name, rack=rack)
                self.hosts.append(host)
                idx += 1
        self.orchestrator = Orchestrator(self)
        #: The attached ControlPlane (set by ControlPlane.__init__).
        self.control = None
        self.audit = None
        self.faults = None
        plan = spec.fault_plan(self.sim.freq_hz)
        if plan is not None and not plan.is_empty:
            self.faults = FaultInjector(self.fabric, plan, seed=seed).attach()
        # Logged at now=0, before anything (including eager boots) runs,
        # so the trace head is identical with and without quiescence.
        self.log(
            f"dc up spec={spec.name} v{spec.version} racks={topo.racks} "
            f"hosts={len(self.hosts)} spines={topo.spines} "
            f"oversub={topo.oversubscription:g} policy={spec.control.policy} "
            f"seed={seed}"
        )

    # ------------------------------------------------------------------
    # Clock helpers
    # ------------------------------------------------------------------
    def ms(self, milliseconds: float) -> int:
        """Wall milliseconds -> simulated cycles."""
        return int(milliseconds * 1e-3 * self.sim.freq_hz)

    @property
    def horizon(self) -> int:
        return self.ms(self.spec.horizon_ms)

    # ------------------------------------------------------------------
    # Lookup (Cluster duck-type)
    # ------------------------------------------------------------------
    def host(self, name: str) -> ClusterHost:
        for h in self.hosts:
            if h.name == name:
                return h
        raise KeyError(f"no host named {name!r}")

    def host_of(self, tenant_name: str) -> ClusterHost:
        for h in self.hosts:
            if tenant_name in h.tenants:
                return h
        raise KeyError(f"no tenant named {tenant_name!r}")

    def tenants(self) -> Dict[str, Tenant]:
        out: Dict[str, Tenant] = {}
        for h in self.hosts:
            out.update(h.tenants)
        return out

    # ------------------------------------------------------------------
    # Trace / reporting
    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        self.events.append(f"{self.sim.now:>14} {message}")

    def trace(self) -> str:
        """The full event trace — byte-identical for identical
        (spec, seed), with or without quiescent hosts."""
        return "\n".join(self.events)

    def digest(self) -> str:
        """sha256 over the control-plane observables: the event trace,
        the cross-host byte matrix, the wave reports, the per-tenant
        latency histograms, and the SLO-gate decisions.  Covering the
        histogram tables here is what the byte-identity tests pin:
        fast-forward on/off, serial vs ``--jobs``, quiescent or eager —
        same digest."""
        waves = []
        slo = []
        if self.control is not None:
            waves = [w.as_dict() for w in self.control.waves]
            slo = [r.as_dict() for r in getattr(self.control, "slo_reports", [])]
        metrics = self.fabric.metrics

        def table(name: str) -> Dict[str, object]:
            return {
                str(k): v
                for k, v in sorted(
                    metrics.snapshot()[name].items(), key=lambda kv: str(kv[0])
                )
            }

        blob = json.dumps(
            {
                "trace": self.events,
                "fabric": table("cross_host"),
                "latency": table("latency"),
                "latency_sum": table("latency_sum"),
                "waves": waves,
                "slo": slo,
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def summary(self) -> Dict:
        """A JSON-friendly fleet snapshot for the CLI and benchmarks.
        Per-host detail is listed only for occupied hosts — a 500-host
        fleet summary stays readable."""
        occupied = {
            h.name: {
                "rack": self.fabric.rack_of[h.name],
                "tenants": sorted(h.tenants),
                "mem_committed_gb": h.mem_committed >> 30,
                "cycle_load": h.cycle_load,
            }
            for h in self.hosts
            if h.tenants
        }
        by_outcome: Dict[str, int] = {}
        for r in self.orchestrator.records:
            by_outcome[r.outcome] = by_outcome.get(r.outcome, 0) + 1
        out = {
            "spec": self.spec.name,
            "version": self.spec.version,
            "seed": self.seed,
            "quiescent": self.quiescent,
            "policy": self.policy.name,
            "sim_cycles": self.sim.now,
            "hosts_total": len(self.hosts),
            "hosts_booted": sum(1 for h in self.hosts if h.booted),
            "boots": sum(h.boots for h in self.hosts),
            "hosts_occupied": occupied,
            "fabric": self.fabric.stats(),
            "migrations": by_outcome,
            "events": len(self.events),
            "digest": self.digest(),
        }
        if self.control is not None:
            out["control"] = self.control.report()
            if self.spec.slo.enabled:
                out["tenant_percentiles"] = self.control.tenant_percentiles()
        return out
