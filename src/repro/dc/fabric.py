"""A spine-leaf datacenter fabric: racks of hosts behind leaf switches,
leaves cross-connected through a spine tier.

Generalizes the single-ToR :class:`~repro.cluster.fabric.Fabric`:

* every host keeps its full-duplex uplink to its rack's **leaf** (the
  ToR role; ``CostModel.fabric_bps`` / ``fabric_latency``);
* every (rack, spine) pair gets a **trunk**
  :class:`~repro.hw.devices.nic.Wire` whose bandwidth encodes the
  configured oversubscription ratio:
  ``trunk_bps = hosts_per_rack * fabric_bps / (spines * oversub)`` — at
  1:1 the spine tier can absorb every host uplink at line rate, at 4:1
  cross-rack traffic contends for a quarter of that;
* **intra-rack** frames take host -> leaf -> host, exactly the base
  fabric's store-and-forward path — intra-rack stays cheap;
* **cross-rack** frames take host -> leaf -> trunk -> spine -> trunk ->
  leaf -> host, serializing on both trunks, so concurrent evacuation
  waves squeeze through the spine tier realistically;
* path selection is **deterministic ECMP-by-hash**: the (src, dst) pair
  picks a spine via CRC-32 (a stable hash — Python's randomized
  ``hash()`` would break run-to-run determinism), so one flow always
  takes one path and different flows spread across spines.

The ``cross_host`` metrics table, fault classes, and fast-forward
compensation all keep working: per-link faults target hosts as before,
and trunks are addressable as ``rack{r}:spine{s}`` in
``fabric_partition`` mechanisms.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from repro.cluster.fabric import Fabric, FabricFrame, FabricPort, UndeliverableError
from repro.hw.devices.nic import Packet, Wire

__all__ = ["SpineLeafFabric"]


class SpineLeafFabric(Fabric):
    """Hierarchical host -> leaf -> spine fabric on the shared clock."""

    def __init__(
        self,
        sim,
        costs,
        racks: int = 2,
        hosts_per_rack: int = 2,
        spines: int = 2,
        oversubscription: float = 4.0,
        name: str = "dcfab0",
    ) -> None:
        if racks < 1 or hosts_per_rack < 1 or spines < 1:
            raise ValueError("racks, hosts_per_rack and spines must be >= 1")
        if oversubscription <= 0:
            raise ValueError("oversubscription must be positive")
        super().__init__(sim, costs, name=name)
        self.racks = racks
        self.hosts_per_rack = hosts_per_rack
        self.spines = spines
        self.oversubscription = float(oversubscription)
        #: host name -> rack index.
        self.rack_of: Dict[str, int] = {}
        #: Aggregate uplink each rack offers the spine tier, split across
        #: the per-spine trunks and shrunk by the oversubscription ratio.
        self.trunk_bps = max(
            1.0,
            hosts_per_rack * costs.fabric_bps / (spines * self.oversubscription),
        )
        #: (rack, spine) -> trunk wire.  "out" carries rack -> spine.
        self.trunks: Dict[Tuple[int, int], Wire] = {}
        for r in range(racks):
            for s in range(spines):
                self.trunks[(r, s)] = Wire(sim, self.trunk_bps, costs.spine_latency)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, host: str, rack: int = 0) -> FabricPort:
        """Attach ``host`` in ``rack``; returns its leaf-uplink port."""
        if not 0 <= rack < self.racks:
            raise ValueError(f"rack {rack} out of range (0..{self.racks - 1})")
        port = super().attach(host)
        self.rack_of[host] = rack
        return port

    @staticmethod
    def trunk_name(rack: int, spine: int) -> str:
        """The name fault mechanisms use to target one trunk."""
        return f"rack{rack}:spine{spine}"

    def spine_for(self, src: str, dst: str) -> int:
        """Deterministic ECMP: hash the flow's endpoints to a spine."""
        return zlib.crc32(f"{src}|{dst}".encode()) % self.spines

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------
    def trunk_blocked(self, rack: int, spine: int) -> bool:
        """Is a leaf<->spine trunk inside a partition window?"""
        if self.faults is None:
            return False
        return self.faults.fabric_link_down(self.trunk_name(rack, spine))

    def path_blocked(self, src: str, dst: str) -> bool:
        if super().path_blocked(src, dst):
            return True
        src_rack = self.rack_of.get(src)
        dst_rack = self.rack_of.get(dst)
        if src_rack is None or dst_rack is None or src_rack == dst_rack:
            return False
        spine = self.spine_for(src, dst)
        return self.trunk_blocked(src_rack, spine) or self.trunk_blocked(
            dst_rack, spine
        )

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, frame: FabricFrame) -> None:
        src_port = self.port(frame.src)
        dst_port = self.port(frame.dst)  # fail fast on unknown dst
        try:
            src_rack = self.rack_of[frame.src]
            dst_rack = self.rack_of[frame.dst]
        except KeyError as exc:
            raise UndeliverableError(f"{exc.args[0]} has no rack on {self.name}")
        factor = self.bandwidth_factor()
        on_wire = frame.size if factor >= 1.0 else int(frame.size / factor)
        src_port.frames["tx"] += 1
        pkt = Packet(
            flow=f"{frame.src}->{frame.dst}",
            size=frame.size,
            payload=frame,
            inbound=False,
        )
        if src_rack == dst_rack:
            # Intra-rack: host -> leaf -> host, the base fabric's path.
            src_port.wire.transmit(
                pkt,
                lambda p: self._at_switch(p, dst_port, on_wire),
                wire_size=on_wire,
            )
            return

        spine = self.spine_for(frame.src, frame.dst)
        up_trunk = self.trunks[(src_rack, spine)]
        down_trunk = self.trunks[(dst_rack, spine)]

        def at_src_leaf(p: Packet) -> None:
            # Store-and-forward through the source leaf, then uphill.
            def fwd() -> None:
                tp = Packet(flow=p.flow, size=frame.size, payload=frame, inbound=False)
                up_trunk.transmit(tp, at_spine, wire_size=on_wire)

            self.sim.call_after(self.costs.fabric_switch_latency, fwd)

        def at_spine(p: Packet) -> None:
            def fwd() -> None:
                tp = Packet(flow=p.flow, size=frame.size, payload=frame, inbound=True)
                down_trunk.transmit(tp, at_dst_leaf, wire_size=on_wire)

            self.sim.call_after(self.costs.spine_switch_latency, fwd)

        def at_dst_leaf(p: Packet) -> None:
            # The base handler is exactly the leaf -> host hop:
            # leaf store-and-forward latency, downlink, delivery.
            self._at_switch(p, dst_port, on_wire)

        src_port.wire.transmit(pkt, at_src_leaf, wire_size=on_wire)

    def frame_cycles(
        self, size: int, src: Optional[str] = None, dst: Optional[str] = None
    ) -> int:
        """Uncontended end-to-end estimate.  Without endpoints (or for
        intra-rack pairs) this is the base leaf path; cross-rack pairs
        add two trunk serializations, two trunk propagations, the second
        leaf, and the spine core."""
        base = super().frame_cycles(size)
        if src is None or dst is None:
            return base
        src_rack = self.rack_of.get(src)
        dst_rack = self.rack_of.get(dst)
        if src_rack is None or dst_rack is None or src_rack == dst_rack:
            return base
        trunk_serialization = int(size * 8 / self.trunk_bps * self.sim.freq_hz)
        return (
            base
            + self.costs.fabric_switch_latency  # second leaf core
            + 2 * trunk_serialization
            + 2 * self.costs.spine_latency
            + self.costs.spine_switch_latency
        )

    # ------------------------------------------------------------------
    # Fast-forward compensation
    # ------------------------------------------------------------------
    def ff_precopy_compensate(
        self, src: str, dst: str, n: int, chunk_bytes: int
    ) -> None:
        super().ff_precopy_compensate(src, dst, n, chunk_bytes)
        src_rack = self.rack_of.get(src)
        dst_rack = self.rack_of.get(dst)
        if src_rack is None or dst_rack is None or src_rack == dst_rack:
            return
        spine = self.spine_for(src, dst)
        self.trunks[(src_rack, spine)].bytes_carried["out"] += n * chunk_bytes
        self.trunks[(dst_rack, spine)].bytes_carried["in"] += n * chunk_bytes

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        out = super().stats()
        out["racks"] = self.racks
        out["spines"] = self.spines
        out["trunk_bytes"] = sum(
            w.bytes_carried["out"] + w.bytes_carried["in"]
            for w in self.trunks.values()
        )
        return out
