"""The live control plane: admission, rebalancing, rolling upgrades.

A :class:`ControlPlane` is a set of generator processes on the
datacenter's *simulated* clock — it is part of the experiment, not of
the harness.  Its program comes from the :class:`~repro.dc.spec.DCSpec`:

* **Admission** — tenants arrive on the spec's schedule and are placed
  through the cluster placement policies
  (:meth:`~repro.cluster.orchestrator.Orchestrator.pick_destination`),
  with cordoned/rebooting hosts excluded.  Arrival parameters (io
  model, size, load) are drawn from a seeded RNG *up front*, so the
  whole arrival sequence is fixed by (spec, seed) regardless of how
  events interleave at runtime.
* **Rebalancing** — a periodic tick compares the hottest host's cycle
  load against ``threshold * mean`` and live-migrates its heaviest
  movable tenant through
  :meth:`~repro.cluster.orchestrator.Orchestrator.migrate_async`.
  Paused while an upgrade is in flight (a maintenance window).
* **Rolling upgrades** — hosts are upgraded in waves of ``wave_size``:
  cordon, evacuate through the placement policy, reboot (the host's
  stack is torn down and its fabric link goes dark), readmit.  Hosts
  still holding tenants after evacuation are **pinned** — with
  physical-passthrough tenants aboard that is the paper's §3.6
  asymmetry surfacing as a fleet-capacity metric, reported per wave.

Everything a wave observes lands in :class:`WaveReport`; the per-wave
pinned-host count is the §3.6 headline number.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from repro.cluster.fabric import UndeliverableError
from repro.cluster.host import TENANT_PASSTHROUGH, TenantSpec
from repro.cluster.placement import PlacementError

__all__ = ["ControlPlane", "WaveReport"]


@dataclass
class WaveReport:
    """One rolling-upgrade wave, as the fleet log remembers it."""

    index: int
    hosts: List[str]
    upgraded: List[str] = field(default_factory=list)
    #: (host, reason) for hosts the wave could not clear; reason
    #: "passthrough" marks the §3.6 pin, "stuck" a failed migration.
    pinned: List[Tuple[str, str]] = field(default_factory=list)
    migrations_ok: int = 0
    migrations_unsupported: int = 0
    migrations_failed: int = 0

    def as_dict(self) -> Dict:
        return {
            "index": self.index,
            "hosts": list(self.hosts),
            "upgraded": list(self.upgraded),
            "pinned": [[h, reason] for h, reason in self.pinned],
            "migrations_ok": self.migrations_ok,
            "migrations_unsupported": self.migrations_unsupported,
            "migrations_failed": self.migrations_failed,
        }


class ControlPlane:
    """Event-driven fleet management on the simulated clock."""

    def __init__(self, dc) -> None:
        self.dc = dc
        spec = dc.spec
        #: All randomness is drawn HERE, in construction order, from a
        #: dedicated stream — never from the shared sim RNG (which
        #: fast-forward fingerprints) and never at runtime (where the
        #: draw order would depend on event interleaving).
        rng = random.Random((dc.seed << 16) ^ 0x0D0C5EED)
        self.horizon = dc.horizon
        self.arrivals = self._build_arrivals(rng)
        self.flows = self._build_flows(rng)
        self.admitted: List[str] = []
        self.rejected: List[str] = []
        self.waves: List[WaveReport] = []
        self.rebalance_ticks = 0
        self.rebalance_moves = 0
        #: Hosts held out of placement while their wave runs.
        self.cordoned: set = set()
        #: Hosts currently rebooting (links dark).
        self.down: set = set()
        self.upgrading = False
        #: Rebalance migrations currently in flight; upgrade waves wait
        #: for this to drain so two processes never migrate the same
        #: tenant (a maintenance window waits out running work).
        self.rebalance_in_flight = 0
        self._procs = []
        dc.control = self

    # ------------------------------------------------------------------
    # Deterministic schedule construction (all RNG draws happen here)
    # ------------------------------------------------------------------
    def _build_arrivals(self, rng: random.Random) -> List[Tuple[int, TenantSpec]]:
        spec = self.dc.spec.tenants
        models = sorted(spec.mix)
        weights = [spec.mix[m] for m in models]
        out: List[Tuple[int, TenantSpec]] = []
        for i in range(spec.count):
            when = self.dc.ms(spec.start_ms + i * spec.interval_ms)
            io_model = rng.choices(models, weights=weights)[0]
            out.append(
                (
                    when,
                    TenantSpec(
                        name=f"t{i}",
                        io_model=io_model,
                        memory_gb=rng.choice(spec.memory_gb),
                        load=rng.randint(spec.load[0], spec.load[1]),
                        dirty_pages=rng.choice(spec.dirty_pages),
                    ),
                )
            )
        return out

    def _build_flows(self, rng: random.Random) -> List[Tuple[str, str]]:
        traffic = self.dc.spec.traffic
        names = [h.name for h in self.dc.hosts]
        out: List[Tuple[str, str]] = []
        if len(names) < 2:
            return out
        for _ in range(traffic.flows):
            src, dst = rng.sample(names, 2)
            out.append((src, dst))
        return out

    # ------------------------------------------------------------------
    def start(self) -> "ControlPlane":
        """Spawn the control-plane processes; the caller then drives
        the simulation (``dc.sim.run()``)."""
        sim = self.dc.sim
        spec = self.dc.spec
        self._procs.append(sim.spawn(self._admission(), name="cp:admission"))
        for i, (src, dst) in enumerate(self.flows):
            self._procs.append(
                sim.spawn(self._traffic(src, dst), name=f"cp:flow{i}:{src}->{dst}")
            )
        if spec.control.rebalance.enabled:
            self._procs.append(sim.spawn(self._rebalance(), name="cp:rebalance"))
        if spec.control.upgrade.enabled:
            self._procs.append(sim.spawn(self._upgrade(), name="cp:upgrade"))
        return self

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admission(self) -> Generator:
        dc = self.dc
        for when, tspec in self.arrivals:
            delay = when - dc.sim.now
            if delay > 0:
                yield delay
            try:
                host = dc.orchestrator.pick_destination(
                    tspec, exclude=self.cordoned | self.down
                )
            except PlacementError as exc:
                self.rejected.append(tspec.name)
                dc.log(f"admit {tspec.name} rejected ({exc})")
                continue
            host.admit(tspec)
            self.admitted.append(tspec.name)
            dc.log(
                f"admit {tspec.name} io={tspec.io_model} "
                f"mem={tspec.memory_gb}GB load={tspec.load} -> {host.name}"
            )

    # ------------------------------------------------------------------
    # Background tenant traffic
    # ------------------------------------------------------------------
    def _traffic(self, src: str, dst: str) -> Generator:
        dc = self.dc
        traffic = dc.spec.traffic
        chunk = traffic.chunk_kb * 1024
        gap = max(1, dc.ms(traffic.gap_ms))
        while dc.sim.now < self.horizon:
            try:
                yield from dc.fabric.transfer(src, dst, chunk, kind="net")
            except UndeliverableError:
                # Partition window or a rebooting endpoint: back off.
                yield 4 * gap
                continue
            yield gap

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def _rebalance(self) -> Generator:
        dc = self.dc
        cfg = dc.spec.control.rebalance
        start = dc.ms(cfg.start_ms)
        interval = max(1, dc.ms(cfg.interval_ms))
        if start > 0:
            yield start
        while dc.sim.now < self.horizon:
            if not self.upgrading:
                yield from self._rebalance_once(cfg)
            yield interval

    def _rebalance_once(self, cfg) -> Generator:
        dc = self.dc
        self.rebalance_ticks += 1
        eligible = [
            h
            for h in dc.hosts
            if h.name not in self.down and h.name not in self.cordoned
        ]
        loaded = [h for h in eligible if h.tenants]
        if len(eligible) < 2 or not loaded:
            return
        mean = sum(h.cycle_load for h in eligible) / len(eligible)
        hot = max(loaded, key=lambda h: (h.cycle_load, h.name))
        if mean <= 0 or hot.cycle_load <= cfg.threshold * mean:
            return
        movable = [
            t
            for t in hot.tenants.values()
            if t.spec.io_model != TENANT_PASSTHROUGH
        ]
        if not movable:
            return
        victim = max(movable, key=lambda t: (t.spec.load, t.name))
        try:
            dst = dc.orchestrator.pick_destination(
                victim.spec, exclude={hot.name} | self.cordoned | self.down
            )
        except PlacementError:
            return
        dc.log(
            f"rebalance {victim.name} {hot.name}->{dst.name} "
            f"hot={hot.cycle_load} mean={mean:.0f}"
        )
        self.rebalance_in_flight += 1
        try:
            record = yield from dc.orchestrator.migrate_async(victim.name, dst.name)
        finally:
            self.rebalance_in_flight -= 1
        if record.outcome == "ok":
            self.rebalance_moves += 1

    # ------------------------------------------------------------------
    # Rolling upgrades
    # ------------------------------------------------------------------
    def _upgrade(self) -> Generator:
        dc = self.dc
        cfg = dc.spec.control.upgrade
        start = dc.ms(cfg.start_ms)
        if start > 0:
            yield start
        self.upgrading = True
        # The rebalancer starts no new moves now; wait out any that are
        # already mid-pre-copy before touching their tenants.
        while self.rebalance_in_flight:
            yield max(1, dc.ms(0.05))
        names = [h.name for h in dc.hosts]
        wave_size = max(1, cfg.wave_size)
        for index, base in enumerate(range(0, len(names), wave_size)):
            wave_hosts = names[base : base + wave_size]
            report = WaveReport(index=index, hosts=list(wave_hosts))
            self.cordoned.update(wave_hosts)
            dc.log(f"wave {index} start hosts={len(wave_hosts)}")
            procs = [
                dc.sim.spawn(
                    self._upgrade_host(name, report), name=f"cp:upgrade:{name}"
                )
                for name in wave_hosts
            ]
            for proc in procs:
                yield proc
            self.cordoned.difference_update(wave_hosts)
            self.waves.append(report)
            pinned_names = ",".join(h for h, _ in report.pinned) or "-"
            dc.log(
                f"wave {index} done upgraded={len(report.upgraded)} "
                f"pinned={len(report.pinned)} pinned_hosts=[{pinned_names}] "
                f"migrations_ok={report.migrations_ok} "
                f"unsupported={report.migrations_unsupported} "
                f"failed={report.migrations_failed}"
            )
        self.upgrading = False
        dc.log(
            f"upgrade complete waves={len(self.waves)} "
            f"pinned_total={sum(len(w.pinned) for w in self.waves)}"
        )

    def _upgrade_host(self, name: str, report: WaveReport) -> Generator:
        dc = self.dc
        cfg = dc.spec.control.upgrade
        host = dc.host(name)
        if host.tenants:
            records = yield from dc.orchestrator.evacuate_async(
                name,
                downtime_limit_s=cfg.downtime_limit_ms * 1e-3,
                exclude=self.cordoned | self.down,
            )
            for rec in records:
                if rec.outcome == "ok":
                    report.migrations_ok += 1
                elif rec.outcome == "unsupported":
                    report.migrations_unsupported += 1
                else:
                    report.migrations_failed += 1
        if host.tenants:
            reason = (
                "passthrough"
                if any(
                    t.spec.io_model == TENANT_PASSTHROUGH
                    for t in host.tenants.values()
                )
                else "stuck"
            )
            report.pinned.append((name, reason))
            dc.log(f"host {name} pinned ({reason}) tenants={len(host.tenants)}")
            return
        # Clean: take the host dark, swap its kernel, bring it back.
        was_booted = host.booted
        self.down.add(name)
        dc.fabric.admin_down.add(name)
        if was_booted:
            host.shutdown()
        dc.log(f"host {name} rebooting")
        yield max(1, dc.ms(cfg.reboot_ms))
        self.down.discard(name)
        dc.fabric.admin_down.discard(name)
        if was_booted and not dc.quiescent:
            # Eager fleets rebuild the stack at readmission; quiescent
            # fleets defer it to the next touch.  Either way the trace
            # and fabric bytes are identical — boot emits neither.
            host.boot()
        report.upgraded.append(name)
        dc.log(f"host {name} upgraded")

    # ------------------------------------------------------------------
    def report(self) -> Dict:
        """Control-plane observables for the fleet summary."""
        return {
            "admitted": len(self.admitted),
            "rejected": list(self.rejected),
            "rebalance_ticks": self.rebalance_ticks,
            "rebalance_moves": self.rebalance_moves,
            "waves": [w.as_dict() for w in self.waves],
            "pinned_per_wave": [len(w.pinned) for w in self.waves],
            "pinned_total": sum(len(w.pinned) for w in self.waves),
            "upgraded_total": sum(len(w.upgraded) for w in self.waves),
        }
