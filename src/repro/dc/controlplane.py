"""The live control plane: admission, rebalancing, rolling upgrades.

A :class:`ControlPlane` is a set of generator processes on the
datacenter's *simulated* clock — it is part of the experiment, not of
the harness.  Its program comes from the :class:`~repro.dc.spec.DCSpec`:

* **Admission** — tenants arrive on the spec's schedule and are placed
  through the cluster placement policies
  (:meth:`~repro.cluster.orchestrator.Orchestrator.pick_destination`),
  with cordoned/rebooting hosts excluded.  Arrival parameters (io
  model, size, load) are drawn from a seeded RNG *up front*, so the
  whole arrival sequence is fixed by (spec, seed) regardless of how
  events interleave at runtime.
* **Rebalancing** — a periodic tick compares the hottest host's cycle
  load against ``threshold * mean`` and live-migrates its heaviest
  movable tenant through
  :meth:`~repro.cluster.orchestrator.Orchestrator.migrate_async`.
  Paused while an upgrade is in flight (a maintenance window).
* **Rolling upgrades** — hosts are upgraded in waves of ``wave_size``:
  cordon, evacuate through the placement policy, reboot (the host's
  stack is torn down and its fabric link goes dark), readmit.  Hosts
  still holding tenants after evacuation are **pinned** — with
  physical-passthrough tenants aboard that is the paper's §3.6
  asymmetry surfacing as a fleet-capacity metric, reported per wave.

Everything a wave observes lands in :class:`WaveReport`; the per-wave
pinned-host count is the §3.6 headline number.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from repro.cluster.fabric import UndeliverableError
from repro.cluster.host import TENANT_PASSTHROUGH, TenantSpec
from repro.cluster.placement import PlacementError
from repro.cluster.telemetry import sample_host
from repro.metrics.hist import Histogram

__all__ = ["ControlPlane", "WaveReport", "SloReport"]


@dataclass
class WaveReport:
    """One rolling-upgrade wave, as the fleet log remembers it."""

    index: int
    hosts: List[str]
    upgraded: List[str] = field(default_factory=list)
    #: (host, reason) for hosts the wave could not clear; reason
    #: "passthrough" marks the §3.6 pin, "stuck" a failed migration.
    pinned: List[Tuple[str, str]] = field(default_factory=list)
    migrations_ok: int = 0
    migrations_unsupported: int = 0
    migrations_failed: int = 0

    def as_dict(self) -> Dict:
        return {
            "index": self.index,
            "hosts": list(self.hosts),
            "upgraded": list(self.upgraded),
            "pinned": [[h, reason] for h, reason in self.pinned],
            "migrations_ok": self.migrations_ok,
            "migrations_unsupported": self.migrations_unsupported,
            "migrations_failed": self.migrations_failed,
        }


@dataclass
class SloReport:
    """One SLO-gate decision, as the fleet log remembers it.

    ``action`` is "migrate" (the gate moved the tenant), "pinned"
    (a breaching passthrough tenant — the §3.6 asymmetry biting the
    SLO loop), "in-flight" (already being migrated, its brownout is
    the breach), "no-target" (nowhere to go), or "observed" (breached
    but a worse breach won this tick).  All latencies are integer
    cycles so reports digest identically across runs.
    """

    tick: int
    tenant: str
    io_model: str
    host: str
    p99_cycles: int
    objective_cycles: int
    samples: int
    action: str
    dst: str = ""
    outcome: str = ""

    def as_dict(self) -> Dict:
        return {
            "tick": self.tick,
            "tenant": self.tenant,
            "io_model": self.io_model,
            "host": self.host,
            "p99_cycles": self.p99_cycles,
            "objective_cycles": self.objective_cycles,
            "samples": self.samples,
            "action": self.action,
            "dst": self.dst,
            "outcome": self.outcome,
        }


class ControlPlane:
    """Event-driven fleet management on the simulated clock."""

    def __init__(self, dc) -> None:
        self.dc = dc
        spec = dc.spec
        #: All randomness is drawn HERE, in construction order, from a
        #: dedicated stream — never from the shared sim RNG (which
        #: fast-forward fingerprints) and never at runtime (where the
        #: draw order would depend on event interleaving).
        rng = random.Random((dc.seed << 16) ^ 0x0D0C5EED)
        self.horizon = dc.horizon
        self.arrivals = self._build_arrivals(rng)
        self.flows = self._build_flows(rng)
        self.admitted: List[str] = []
        self.rejected: List[str] = []
        self.waves: List[WaveReport] = []
        self.rebalance_ticks = 0
        self.rebalance_moves = 0
        #: Hosts held out of placement while their wave runs.
        self.cordoned: set = set()
        #: Hosts currently rebooting (links dark).
        self.down: set = set()
        self.upgrading = False
        #: Rebalance/SLO migrations currently in flight; upgrade waves
        #: wait for this to drain so two processes never migrate the
        #: same tenant (a maintenance window waits out running work).
        self.rebalance_in_flight = 0
        #: Tenants currently being live-migrated by *any* process —
        #: the telemetry sampler charges them the brownout multiplier.
        self.migrating: set = set()
        #: SLO machinery (active when spec.slo.enabled).
        self.slo_reports: List[SloReport] = []
        self.slo_ticks = 0
        self.slo_samples = 0
        self.slo_breaches = 0
        self.slo_migrations = 0
        #: Fabric fault windows in cycles, for the degradation flag the
        #: telemetry model consumes (active: start <= now < end).
        self._fault_windows = [
            (
                dc.ms(f.start_ms),
                None if f.end_ms is None else dc.ms(f.end_ms),
            )
            for f in spec.faults
        ]
        self._procs = []
        dc.control = self

    # ------------------------------------------------------------------
    # Deterministic schedule construction (all RNG draws happen here)
    # ------------------------------------------------------------------
    def _build_arrivals(self, rng: random.Random) -> List[Tuple[int, TenantSpec]]:
        spec = self.dc.spec.tenants
        models = sorted(spec.mix)
        weights = [spec.mix[m] for m in models]
        out: List[Tuple[int, TenantSpec]] = []
        for i in range(spec.count):
            when = self.dc.ms(spec.start_ms + i * spec.interval_ms)
            io_model = rng.choices(models, weights=weights)[0]
            out.append(
                (
                    when,
                    TenantSpec(
                        name=f"t{i}",
                        io_model=io_model,
                        memory_gb=rng.choice(spec.memory_gb),
                        load=rng.randint(spec.load[0], spec.load[1]),
                        dirty_pages=rng.choice(spec.dirty_pages),
                    ),
                )
            )
        return out

    def _build_flows(self, rng: random.Random) -> List[Tuple[str, str]]:
        traffic = self.dc.spec.traffic
        names = [h.name for h in self.dc.hosts]
        out: List[Tuple[str, str]] = []
        if len(names) < 2:
            return out
        for _ in range(traffic.flows):
            src, dst = rng.sample(names, 2)
            out.append((src, dst))
        return out

    # ------------------------------------------------------------------
    def start(self) -> "ControlPlane":
        """Spawn the control-plane processes; the caller then drives
        the simulation (``dc.sim.run()``)."""
        sim = self.dc.sim
        spec = self.dc.spec
        self._procs.append(sim.spawn(self._admission(), name="cp:admission"))
        for i, (src, dst) in enumerate(self.flows):
            self._procs.append(
                sim.spawn(self._traffic(src, dst), name=f"cp:flow{i}:{src}->{dst}")
            )
        if spec.control.rebalance.enabled:
            self._procs.append(sim.spawn(self._rebalance(), name="cp:rebalance"))
        if spec.control.upgrade.enabled:
            self._procs.append(sim.spawn(self._upgrade(), name="cp:upgrade"))
        if spec.slo.enabled:
            self._procs.append(sim.spawn(self._telemetry(), name="cp:telemetry"))
            self._procs.append(sim.spawn(self._slo_gate(), name="cp:slo"))
        return self

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admission(self) -> Generator:
        dc = self.dc
        for when, tspec in self.arrivals:
            delay = when - dc.sim.now
            if delay > 0:
                yield delay
            try:
                host = dc.orchestrator.pick_destination(
                    tspec, exclude=self.cordoned | self.down
                )
            except PlacementError as exc:
                self.rejected.append(tspec.name)
                dc.log(f"admit {tspec.name} rejected ({exc})")
                continue
            host.admit(tspec)
            self.admitted.append(tspec.name)
            dc.log(
                f"admit {tspec.name} io={tspec.io_model} "
                f"mem={tspec.memory_gb}GB load={tspec.load} -> {host.name}"
            )

    # ------------------------------------------------------------------
    # Background tenant traffic
    # ------------------------------------------------------------------
    def _traffic(self, src: str, dst: str) -> Generator:
        dc = self.dc
        traffic = dc.spec.traffic
        chunk = traffic.chunk_kb * 1024
        gap = max(1, dc.ms(traffic.gap_ms))
        while dc.sim.now < self.horizon:
            try:
                yield from dc.fabric.transfer(src, dst, chunk, kind="net")
            except UndeliverableError:
                # Partition window or a rebooting endpoint: back off.
                yield 4 * gap
                continue
            yield gap

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def _rebalance(self) -> Generator:
        dc = self.dc
        cfg = dc.spec.control.rebalance
        start = dc.ms(cfg.start_ms)
        interval = max(1, dc.ms(cfg.interval_ms))
        if start > 0:
            yield start
        while dc.sim.now < self.horizon:
            if not self.upgrading:
                yield from self._rebalance_once(cfg)
            yield interval

    def _rebalance_once(self, cfg) -> Generator:
        dc = self.dc
        self.rebalance_ticks += 1
        eligible = [
            h
            for h in dc.hosts
            if h.name not in self.down and h.name not in self.cordoned
        ]
        loaded = [h for h in eligible if h.tenants]
        if len(eligible) < 2 or not loaded:
            return
        mean = sum(h.cycle_load for h in eligible) / len(eligible)
        hot = max(loaded, key=lambda h: (h.cycle_load, h.name))
        if mean <= 0 or hot.cycle_load <= cfg.threshold * mean:
            return
        movable = [
            t
            for t in hot.tenants.values()
            if t.spec.io_model != TENANT_PASSTHROUGH
        ]
        if not movable:
            return
        victim = max(movable, key=lambda t: (t.spec.load, t.name))
        try:
            dst = dc.orchestrator.pick_destination(
                victim.spec, exclude={hot.name} | self.cordoned | self.down
            )
        except PlacementError:
            return
        dc.log(
            f"rebalance {victim.name} {hot.name}->{dst.name} "
            f"hot={hot.cycle_load} mean={mean:.0f}"
        )
        self.rebalance_in_flight += 1
        self.migrating.add(victim.name)
        try:
            record = yield from dc.orchestrator.migrate_async(victim.name, dst.name)
        finally:
            self.rebalance_in_flight -= 1
            self.migrating.discard(victim.name)
        if record.outcome == "ok":
            self.rebalance_moves += 1

    # ------------------------------------------------------------------
    # SLO telemetry and gate
    # ------------------------------------------------------------------
    def _fabric_degraded(self) -> bool:
        """True while any spec'd fabric fault window covers ``now``."""
        now = self.dc.sim.now
        return any(
            start <= now and (end is None or now < end)
            for start, end in self._fault_windows
        )

    def _telemetry(self) -> Generator:
        """Sample every placed tenant's request latency each period
        into the fabric's per-tenant histogram tables (see
        :mod:`repro.cluster.telemetry`)."""
        dc = self.dc
        cfg = dc.spec.slo
        interval = max(1, dc.ms(cfg.sample_ms))
        metrics = dc.fabric.metrics
        while dc.sim.now < self.horizon:
            yield interval
            self.slo_ticks += 1
            degraded = self._fabric_degraded()
            for host in dc.hosts:
                if host.name in self.down or not host.tenants:
                    continue
                self.slo_samples += sample_host(
                    metrics,
                    host,
                    self.slo_ticks,
                    migrating=self.migrating,
                    degraded=degraded,
                )

    def _slo_gate(self) -> Generator:
        """Judge each tenant's *windowed* p99 against its objective and
        live-migrate the worst breacher.  Windows (the latency-table
        growth since the previous gate tick) keep old breaches from
        triggering forever after conditions recover."""
        dc = self.dc
        cfg = dc.spec.slo
        metrics = dc.fabric.metrics
        start = dc.ms(cfg.gate_start_ms)
        interval = max(1, dc.ms(cfg.gate_interval_ms))
        if start > 0:
            yield start
        prev: Counter = Counter(metrics.latency)
        gate_tick = 0
        while dc.sim.now < self.horizon:
            yield interval
            gate_tick += 1
            current: Counter = Counter(metrics.latency)
            grown = current - prev  # only strictly positive growth
            prev = current
            if self.upgrading:
                continue  # maintenance window: the wave owns migrations
            buckets: Dict[str, List[Tuple[int, int]]] = {}
            for (series, idx), n in grown.items():
                buckets.setdefault(series, []).append((idx, n))
            breaches = []
            for name in sorted(buckets):
                hist = Histogram.from_buckets(buckets[name])
                if hist.total < cfg.min_samples:
                    continue
                try:
                    host = dc.host_of(name)
                except KeyError:
                    continue  # evicted since its samples landed
                io_model = host.tenants[name].spec.io_model
                objective = max(1, dc.ms(cfg.objective_ms(io_model)))
                p99 = hist.percentile(99.0)
                if p99 <= objective:
                    continue
                # Sort key: worst relative breach first (integer ratio
                # in per-mille so ordering is exact), ties by name.
                breaches.append(
                    (p99 * 1000 // objective, name, host, io_model,
                     p99, objective, hist.total)
                )
            if not breaches:
                continue
            self.slo_breaches += len(breaches)
            breaches.sort(key=lambda b: (-b[0], b[1]))
            for _, name, host, io_model, p99, objective, samples in breaches[1:]:
                # Non-worst breaches are recorded, not acted on — except
                # that a passthrough breach is *always* "pinned" (there
                # is no action to take, §3.6) and a migrating tenant's
                # breach is its own brownout.
                if io_model == TENANT_PASSTHROUGH:
                    action = "pinned"
                elif name in self.migrating:
                    action = "in-flight"
                else:
                    action = "observed"
                self.slo_reports.append(
                    SloReport(
                        tick=gate_tick,
                        tenant=name,
                        io_model=io_model,
                        host=host.name,
                        p99_cycles=p99,
                        objective_cycles=objective,
                        samples=samples,
                        action=action,
                    )
                )
            yield from self._slo_act(gate_tick, breaches[0])

    def _slo_act(self, gate_tick: int, breach) -> Generator:
        dc = self.dc
        _, name, host, io_model, p99, objective, samples = breach
        report = SloReport(
            tick=gate_tick,
            tenant=name,
            io_model=io_model,
            host=host.name,
            p99_cycles=p99,
            objective_cycles=objective,
            samples=samples,
            action="observed",
        )
        self.slo_reports.append(report)
        if name in self.migrating:
            # The breach *is* the brownout of a migration in flight;
            # moving it again would thrash.
            report.action = "in-flight"
            return
        if io_model == TENANT_PASSTHROUGH:
            # §3.6: hardware-coupled tenants cannot be live-migrated —
            # the SLO loop sees the breach but has no placement lever.
            report.action = "pinned"
            dc.log(
                f"slo {name} p99={p99} objective={objective} pinned "
                f"(passthrough on {host.name})"
            )
            return
        try:
            dst = dc.orchestrator.pick_destination(
                host.tenants[name].spec,
                exclude={host.name} | self.cordoned | self.down,
            )
        except PlacementError:
            report.action = "no-target"
            dc.log(f"slo {name} p99={p99} objective={objective} no-target")
            return
        report.action = "migrate"
        report.dst = dst.name
        dc.log(
            f"slo {name} p99={p99} objective={objective} "
            f"migrate {host.name}->{dst.name}"
        )
        self.rebalance_in_flight += 1
        self.migrating.add(name)
        try:
            record = yield from dc.orchestrator.migrate_async(name, dst.name)
        finally:
            self.rebalance_in_flight -= 1
            self.migrating.discard(name)
        report.outcome = record.outcome
        if record.outcome == "ok":
            self.slo_migrations += 1

    # ------------------------------------------------------------------
    # Rolling upgrades
    # ------------------------------------------------------------------
    def _upgrade(self) -> Generator:
        dc = self.dc
        cfg = dc.spec.control.upgrade
        start = dc.ms(cfg.start_ms)
        if start > 0:
            yield start
        self.upgrading = True
        # The rebalancer starts no new moves now; wait out any that are
        # already mid-pre-copy before touching their tenants.
        while self.rebalance_in_flight:
            yield max(1, dc.ms(0.05))
        names = [h.name for h in dc.hosts]
        wave_size = max(1, cfg.wave_size)
        for index, base in enumerate(range(0, len(names), wave_size)):
            wave_hosts = names[base : base + wave_size]
            report = WaveReport(index=index, hosts=list(wave_hosts))
            self.cordoned.update(wave_hosts)
            dc.log(f"wave {index} start hosts={len(wave_hosts)}")
            procs = [
                dc.sim.spawn(
                    self._upgrade_host(name, report), name=f"cp:upgrade:{name}"
                )
                for name in wave_hosts
            ]
            for proc in procs:
                yield proc
            self.cordoned.difference_update(wave_hosts)
            self.waves.append(report)
            pinned_names = ",".join(h for h, _ in report.pinned) or "-"
            dc.log(
                f"wave {index} done upgraded={len(report.upgraded)} "
                f"pinned={len(report.pinned)} pinned_hosts=[{pinned_names}] "
                f"migrations_ok={report.migrations_ok} "
                f"unsupported={report.migrations_unsupported} "
                f"failed={report.migrations_failed}"
            )
        self.upgrading = False
        dc.log(
            f"upgrade complete waves={len(self.waves)} "
            f"pinned_total={sum(len(w.pinned) for w in self.waves)}"
        )

    def _upgrade_host(self, name: str, report: WaveReport) -> Generator:
        dc = self.dc
        cfg = dc.spec.control.upgrade
        host = dc.host(name)
        if host.tenants:
            moving = set(host.tenants)
            self.migrating |= moving
            try:
                records = yield from dc.orchestrator.evacuate_async(
                    name,
                    downtime_limit_s=cfg.downtime_limit_ms * 1e-3,
                    exclude=self.cordoned | self.down,
                )
            finally:
                self.migrating -= moving
            for rec in records:
                if rec.outcome == "ok":
                    report.migrations_ok += 1
                elif rec.outcome == "unsupported":
                    report.migrations_unsupported += 1
                else:
                    report.migrations_failed += 1
        if host.tenants:
            reason = (
                "passthrough"
                if any(
                    t.spec.io_model == TENANT_PASSTHROUGH
                    for t in host.tenants.values()
                )
                else "stuck"
            )
            report.pinned.append((name, reason))
            dc.log(f"host {name} pinned ({reason}) tenants={len(host.tenants)}")
            return
        # Clean: take the host dark, swap its kernel, bring it back.
        was_booted = host.booted
        self.down.add(name)
        dc.fabric.admin_down.add(name)
        if was_booted:
            host.shutdown()
        dc.log(f"host {name} rebooting")
        yield max(1, dc.ms(cfg.reboot_ms))
        self.down.discard(name)
        dc.fabric.admin_down.discard(name)
        if was_booted and not dc.quiescent:
            # Eager fleets rebuild the stack at readmission; quiescent
            # fleets defer it to the next touch.  Either way the trace
            # and fabric bytes are identical — boot emits neither.
            host.boot()
        report.upgraded.append(name)
        dc.log(f"host {name} upgraded")

    # ------------------------------------------------------------------
    def report(self) -> Dict:
        """Control-plane observables for the fleet summary."""
        out = {
            "admitted": len(self.admitted),
            "rejected": list(self.rejected),
            "rebalance_ticks": self.rebalance_ticks,
            "rebalance_moves": self.rebalance_moves,
            "waves": [w.as_dict() for w in self.waves],
            "pinned_per_wave": [len(w.pinned) for w in self.waves],
            "pinned_total": sum(len(w.pinned) for w in self.waves),
            "upgraded_total": sum(len(w.upgraded) for w in self.waves),
        }
        if self.dc.spec.slo.enabled:
            out["slo"] = {
                "ticks": self.slo_ticks,
                "samples": self.slo_samples,
                "breaches": self.slo_breaches,
                "migrations": self.slo_migrations,
                "reports": [r.as_dict() for r in self.slo_reports],
            }
        return out

    def tenant_percentiles(self) -> Dict[str, Dict]:
        """Per-tenant p50/p99/p999 and SLO-violation rates from the
        cumulative fabric latency tables — the cross_host-style table
        the CLI renders.  Empty unless telemetry ran."""
        from repro.cluster.telemetry import percentile_table

        cfg = self.dc.spec.slo

        def io_model_of(series: str) -> str:
            try:
                host = self.dc.host_of(series)
                return host.tenants[series].spec.io_model
            except KeyError:
                return ""

        return percentile_table(
            self.dc.fabric.metrics,
            io_model_of,
            objective_of=lambda m: max(1, self.dc.ms(cfg.objective_ms(m))),
        )
