"""Declarative datacenter specifications — the environment in a file.

A :class:`DCSpec` describes an entire ``repro.dc`` scenario: the
spine-leaf topology (racks, hosts per rack, spines, oversubscription),
the host platform, the tenant mix and arrival schedule, background
traffic, the control-plane program (admission policy, rebalancing
thresholds, rolling-upgrade waves), and a fault schedule.  Together
with a seed it determines a run byte for byte — the lago-style
"environment in a file" idea from the ROADMAP.

Specs are plain JSON or a small YAML subset parsed by
:func:`parse_simple_yaml` — no third-party dependency.  The subset
covers what topology files need: nested mappings by 2+-space
indentation, ``- `` block lists, inline ``[...]`` / ``{...}``
collections, numbers, booleans, ``null``, quoted and bare strings, and
``#`` comments.  Anchors, multi-line scalars, and flow-style nesting
are deliberately out of scope.

The format is versioned (``version: 1``); unknown versions and unknown
keys are hard errors so a typo fails loudly instead of silently
running a different experiment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.host import TENANT_PASSTHROUGH, TENANT_VIRTIO, TENANT_VP
from repro.cluster.placement import POLICIES
from repro.faults.plan import FaultClass, FaultPlan, FaultSpec

__all__ = [
    "SpecError",
    "parse_simple_yaml",
    "TopologySpec",
    "HostSpec",
    "TenantMixSpec",
    "TrafficSpec",
    "RebalanceSpec",
    "UpgradeSpec",
    "ControlSpec",
    "SloSpec",
    "FaultWindowSpec",
    "DCSpec",
]

#: The spec format version this parser understands.
SPEC_VERSION = 1


class SpecError(ValueError):
    """A topology/tenant spec is malformed."""


# ======================================================================
# Minimal YAML-subset parser
# ======================================================================
def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a quoted string."""
    quote = None
    for i, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
        elif ch == "#":
            return line[:i]
    return line


def _scalar(text: str) -> Any:
    """Parse one scalar (or inline collection) value."""
    s = text.strip()
    if s == "" or s == "~" or s == "null":
        return None
    if s.startswith("[") and s.endswith("]"):
        inner = s[1:-1].strip()
        if not inner:
            return []
        return [_scalar(part) for part in _split_inline(inner)]
    if s.startswith("{") and s.endswith("}"):
        inner = s[1:-1].strip()
        out: Dict[str, Any] = {}
        if not inner:
            return out
        for part in _split_inline(inner):
            if ":" not in part:
                raise SpecError(f"bad inline mapping entry {part!r}")
            k, v = part.split(":", 1)
            out[_scalar(k)] = _scalar(v)
        return out
    if (s.startswith('"') and s.endswith('"') and len(s) >= 2) or (
        s.startswith("'") and s.endswith("'") and len(s) >= 2
    ):
        return s[1:-1]
    if s == "true":
        return True
    if s == "false":
        return False
    try:
        return int(s, 10)
    except ValueError:
        pass
    try:
        return float(s)
    except ValueError:
        pass
    return s


def _split_inline(inner: str) -> List[str]:
    """Split an inline collection body on top-level commas."""
    parts: List[str] = []
    depth = 0
    quote = None
    cur: List[str] = []
    for ch in inner:
        if quote:
            if ch == quote:
                quote = None
            cur.append(ch)
        elif ch in "'\"":
            quote = ch
            cur.append(ch)
        elif ch in "[{":
            depth += 1
            cur.append(ch)
        elif ch in "]}":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return [p for p in (part.strip() for part in parts) if p]


def parse_simple_yaml(text: str) -> Any:
    """Parse the YAML subset (see module docstring).  A document whose
    first non-blank character is ``{`` is treated as JSON."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return json.loads(text)
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        body = _strip_comment(raw).rstrip()
        if not body.strip():
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise SpecError("tabs are not allowed in indentation")
        indent = len(body) - len(body.lstrip())
        lines.append((indent, body.strip()))
    if not lines:
        return {}
    value, nxt = _parse_block(lines, 0, lines[0][0])
    if nxt != len(lines):
        raise SpecError(f"trailing content at line entry {nxt}: {lines[nxt][1]!r}")
    return value


def _parse_block(lines: List[Tuple[int, str]], i: int, indent: int) -> Tuple[Any, int]:
    if lines[i][1].startswith("- ") or lines[i][1] == "-":
        return _parse_list(lines, i, indent)
    return _parse_map(lines, i, indent)


def _parse_map(lines, i, indent):
    out: Dict[str, Any] = {}
    while i < len(lines):
        ind, content = lines[i]
        if ind < indent:
            break
        if ind > indent:
            raise SpecError(f"unexpected indentation at {content!r}")
        if content.startswith("- "):
            raise SpecError(f"list item where mapping key expected: {content!r}")
        if ":" not in content:
            raise SpecError(f"expected 'key: value', got {content!r}")
        key, rest = content.split(":", 1)
        key = key.strip()
        if key in out:
            raise SpecError(f"duplicate key {key!r}")
        rest = rest.strip()
        if rest:
            out[key] = _scalar(rest)
            i += 1
            continue
        # Block value: child lines indented deeper (or an empty value).
        i += 1
        if i < len(lines) and lines[i][0] > indent:
            out[key], i = _parse_block(lines, i, lines[i][0])
        else:
            out[key] = None
    return out, i


def _parse_list(lines, i, indent):
    out: List[Any] = []
    while i < len(lines):
        ind, content = lines[i]
        if ind < indent or not (content.startswith("- ") or content == "-"):
            break
        if ind > indent:
            raise SpecError(f"unexpected indentation at {content!r}")
        body = content[2:].strip() if content.startswith("- ") else ""
        if body and ":" in body and not body.startswith(("[", "{", '"', "'")):
            # "- key: value": a mapping item; its further keys sit at
            # the column where `key` starts (indent + 2).
            item_indent = indent + 2
            lines[i] = (item_indent, body)
            item, i = _parse_map(lines, i, item_indent)
            out.append(item)
        else:
            out.append(_scalar(body))
            i += 1
    return out, i


# ======================================================================
# Spec dataclasses
# ======================================================================
def _take(raw: Optional[Dict], allowed: Dict[str, Any], ctx: str) -> Dict[str, Any]:
    """Merge ``raw`` over the defaults in ``allowed``, rejecting keys
    the section does not define (typos must fail loudly)."""
    out = dict(allowed)
    if raw is None:
        return out
    if not isinstance(raw, dict):
        raise SpecError(f"{ctx}: expected a mapping, got {type(raw).__name__}")
    for key, value in raw.items():
        if key not in allowed:
            raise SpecError(
                f"{ctx}: unknown key {key!r} (allowed: {sorted(allowed)})"
            )
        out[key] = value
    return out


def _require_pos_int(value, ctx: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise SpecError(f"{ctx}: expected a positive integer, got {value!r}")
    return value


def _require_ms(value, ctx: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
        raise SpecError(f"{ctx}: expected a non-negative time in ms, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class TopologySpec:
    """The physical fabric: racks of hosts behind leaves, spines above."""

    racks: int = 2
    hosts_per_rack: int = 2
    spines: int = 2
    oversubscription: float = 4.0

    @property
    def num_hosts(self) -> int:
        return self.racks * self.hosts_per_rack


@dataclass(frozen=True)
class HostSpec:
    """The platform every host boots (when first touched)."""

    guest_hv: str = "kvm"
    stack_levels: int = 2
    workers: int = 2
    #: Cycle-load admission ceiling; None = workers * LOAD_PER_WORKER.
    load_capacity: Optional[int] = None


@dataclass(frozen=True)
class TenantMixSpec:
    """Tenant arrivals: how many, when, and what they look like.  The
    per-tenant io model / size / load are drawn from the control plane's
    seeded RNG, so a (spec, seed) pair fixes every arrival."""

    count: int = 8
    start_ms: float = 0.5
    interval_ms: float = 0.8
    #: io model -> weight (virtio / vp / passthrough).
    mix: Dict[str, float] = field(
        default_factory=lambda: {TENANT_VIRTIO: 2, TENANT_VP: 1, TENANT_PASSTHROUGH: 1}
    )
    memory_gb: Tuple[int, ...] = (1, 2)
    #: Inclusive [lo, hi] steady-state cycle-load range.
    load: Tuple[int, int] = (800, 2000)
    dirty_pages: Tuple[int, ...] = (32, 64)


@dataclass(frozen=True)
class TrafficSpec:
    """Background east-west flows that contend with migration traffic."""

    flows: int = 0
    chunk_kb: int = 64
    gap_ms: float = 0.3


@dataclass(frozen=True)
class RebalanceSpec:
    """Threshold-triggered live-migration rebalancing."""

    enabled: bool = False
    start_ms: float = 2.0
    interval_ms: float = 2.0
    #: Move a tenant when the hottest host exceeds threshold * mean load.
    threshold: float = 1.6


@dataclass(frozen=True)
class UpgradeSpec:
    """Rolling kernel-upgrade waves: evacuate, reboot, readmit."""

    enabled: bool = False
    start_ms: float = 8.0
    wave_size: int = 4
    reboot_ms: float = 2.0
    downtime_limit_ms: float = 500.0


@dataclass(frozen=True)
class ControlSpec:
    policy: str = "bin-pack"
    rebalance: RebalanceSpec = field(default_factory=RebalanceSpec)
    upgrade: UpgradeSpec = field(default_factory=UpgradeSpec)


@dataclass(frozen=True)
class SloSpec:
    """Per-tenant tail-latency objectives and the gate that enforces
    them.  When enabled, the control plane samples every placed
    tenant's request latency each ``sample_ms`` (into the fabric's
    integer histogram tables, see :mod:`repro.cluster.telemetry`) and
    a periodic gate compares each tenant's windowed p99 against its
    objective, live-migrating the worst breacher off its host."""

    enabled: bool = False
    #: Telemetry sampling period.
    sample_ms: float = 0.2
    #: Default p99 objective (ms) for tenants without an override.
    objective_p99_ms: float = 0.1
    #: Per-io-model objective overrides: {"virtio": 0.2, ...}.
    objectives: Dict[str, float] = field(default_factory=dict)
    #: First gate evaluation; windows before it only warm the tables.
    gate_start_ms: float = 2.0
    #: Gate cadence; each evaluation sees the samples of its window.
    gate_interval_ms: float = 1.0
    #: Windows with fewer samples than this are never judged.
    min_samples: int = 8

    def objective_ms(self, io_model: str) -> float:
        return self.objectives.get(io_model, self.objective_p99_ms)


@dataclass(frozen=True)
class FaultWindowSpec:
    """One fabric fault window on the wall-clock (ms) schedule."""

    kind: str
    start_ms: float = 0.0
    end_ms: Optional[float] = None
    rate: float = 0.0
    count: int = 0
    param: Optional[float] = None
    targets: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DCSpec:
    """A complete datacenter scenario."""

    name: str = "dc"
    version: int = SPEC_VERSION
    topology: TopologySpec = field(default_factory=TopologySpec)
    hosts: HostSpec = field(default_factory=HostSpec)
    tenants: TenantMixSpec = field(default_factory=TenantMixSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    control: ControlSpec = field(default_factory=ControlSpec)
    slo: SloSpec = field(default_factory=SloSpec)
    faults: Tuple[FaultWindowSpec, ...] = ()
    #: Open-loop processes (traffic, rebalance ticks) stop past this.
    horizon_ms: float = 30.0

    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "DCSpec":
        data = parse_simple_yaml(text)
        if not isinstance(data, dict):
            raise SpecError("a spec document must be a mapping")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "DCSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_text(fh.read())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DCSpec":
        top = _take(
            data,
            {
                "version": SPEC_VERSION,
                "name": "dc",
                "topology": None,
                "hosts": None,
                "tenants": None,
                "traffic": None,
                "control": None,
                "slo": None,
                "faults": None,
                "horizon_ms": 30.0,
            },
            "spec",
        )
        if top["version"] != SPEC_VERSION:
            raise SpecError(
                f"unsupported spec version {top['version']!r} "
                f"(this build understands {SPEC_VERSION})"
            )

        t = _take(
            top["topology"],
            {"racks": 2, "hosts_per_rack": 2, "spines": 2, "oversubscription": 4.0},
            "topology",
        )
        topology = TopologySpec(
            racks=_require_pos_int(t["racks"], "topology.racks"),
            hosts_per_rack=_require_pos_int(
                t["hosts_per_rack"], "topology.hosts_per_rack"
            ),
            spines=_require_pos_int(t["spines"], "topology.spines"),
            oversubscription=float(t["oversubscription"]),
        )
        if topology.oversubscription <= 0:
            raise SpecError("topology.oversubscription must be positive")

        h = _take(
            top["hosts"],
            {"guest_hv": "kvm", "stack_levels": 2, "workers": 2, "load_capacity": None},
            "hosts",
        )
        hosts = HostSpec(
            guest_hv=str(h["guest_hv"]),
            stack_levels=_require_pos_int(h["stack_levels"], "hosts.stack_levels"),
            workers=_require_pos_int(h["workers"], "hosts.workers"),
            load_capacity=(
                None
                if h["load_capacity"] is None
                else _require_pos_int(h["load_capacity"], "hosts.load_capacity")
            ),
        )

        defaults = TenantMixSpec()
        tn = _take(
            top["tenants"],
            {
                "count": defaults.count,
                "start_ms": defaults.start_ms,
                "interval_ms": defaults.interval_ms,
                "mix": dict(defaults.mix),
                "memory_gb": list(defaults.memory_gb),
                "load": list(defaults.load),
                "dirty_pages": list(defaults.dirty_pages),
            },
            "tenants",
        )
        mix = tn["mix"]
        if not isinstance(mix, dict) or not mix:
            raise SpecError("tenants.mix must be a non-empty mapping")
        for model, weight in mix.items():
            if model not in (TENANT_VIRTIO, TENANT_VP, TENANT_PASSTHROUGH):
                raise SpecError(f"tenants.mix: unknown io model {model!r}")
            if isinstance(weight, bool) or not isinstance(weight, (int, float)):
                raise SpecError(f"tenants.mix[{model!r}]: bad weight {weight!r}")
            if weight < 0:
                raise SpecError(f"tenants.mix[{model!r}]: negative weight")
        if sum(mix.values()) <= 0:
            raise SpecError("tenants.mix weights sum to zero")
        memory_gb = tuple(
            _require_pos_int(g, "tenants.memory_gb") for g in tn["memory_gb"]
        )
        if not memory_gb:
            raise SpecError("tenants.memory_gb must not be empty")
        load = tn["load"]
        if (
            not isinstance(load, (list, tuple))
            or len(load) != 2
            or load[0] > load[1]
            or load[0] < 0
        ):
            raise SpecError("tenants.load must be [lo, hi] with 0 <= lo <= hi")
        dirty = tuple(int(d) for d in tn["dirty_pages"])
        if not dirty or any(d < 0 for d in dirty):
            raise SpecError("tenants.dirty_pages must be non-negative")
        count = tn["count"]
        if isinstance(count, bool) or not isinstance(count, int) or count < 0:
            raise SpecError("tenants.count must be >= 0")
        tenants = TenantMixSpec(
            count=count,
            start_ms=_require_ms(tn["start_ms"], "tenants.start_ms"),
            interval_ms=_require_ms(tn["interval_ms"], "tenants.interval_ms"),
            mix={k: float(v) for k, v in mix.items()},
            memory_gb=memory_gb,
            load=(int(load[0]), int(load[1])),
            dirty_pages=dirty,
        )

        tr = _take(
            top["traffic"], {"flows": 0, "chunk_kb": 64, "gap_ms": 0.3}, "traffic"
        )
        traffic = TrafficSpec(
            flows=int(tr["flows"]),
            chunk_kb=_require_pos_int(tr["chunk_kb"], "traffic.chunk_kb"),
            gap_ms=_require_ms(tr["gap_ms"], "traffic.gap_ms"),
        )
        if traffic.flows < 0:
            raise SpecError("traffic.flows must be >= 0")

        c = _take(
            top["control"],
            {"policy": "bin-pack", "rebalance": None, "upgrade": None},
            "control",
        )
        if c["policy"] not in POLICIES:
            raise SpecError(
                f"control.policy {c['policy']!r} unknown "
                f"(choose from {sorted(POLICIES)})"
            )
        rb = _take(
            c["rebalance"],
            {"enabled": False, "start_ms": 2.0, "interval_ms": 2.0, "threshold": 1.6},
            "control.rebalance",
        )
        rebalance = RebalanceSpec(
            enabled=bool(rb["enabled"]),
            start_ms=_require_ms(rb["start_ms"], "control.rebalance.start_ms"),
            interval_ms=_require_ms(
                rb["interval_ms"], "control.rebalance.interval_ms"
            ),
            threshold=float(rb["threshold"]),
        )
        if rebalance.threshold < 1.0:
            raise SpecError("control.rebalance.threshold must be >= 1.0")
        if rebalance.enabled and rebalance.interval_ms <= 0:
            raise SpecError("control.rebalance.interval_ms must be positive")
        up = _take(
            c["upgrade"],
            {
                "enabled": False,
                "start_ms": 8.0,
                "wave_size": 4,
                "reboot_ms": 2.0,
                "downtime_limit_ms": 500.0,
            },
            "control.upgrade",
        )
        upgrade = UpgradeSpec(
            enabled=bool(up["enabled"]),
            start_ms=_require_ms(up["start_ms"], "control.upgrade.start_ms"),
            wave_size=_require_pos_int(up["wave_size"], "control.upgrade.wave_size"),
            reboot_ms=_require_ms(up["reboot_ms"], "control.upgrade.reboot_ms"),
            downtime_limit_ms=_require_ms(
                up["downtime_limit_ms"], "control.upgrade.downtime_limit_ms"
            ),
        )
        control = ControlSpec(
            policy=str(c["policy"]), rebalance=rebalance, upgrade=upgrade
        )

        sl = _take(
            top["slo"],
            {
                "enabled": False,
                "sample_ms": 0.2,
                "objective_p99_ms": 0.1,
                "objectives": None,
                "gate_start_ms": 2.0,
                "gate_interval_ms": 1.0,
                "min_samples": 8,
            },
            "slo",
        )
        objectives: Dict[str, float] = {}
        raw_objectives = sl["objectives"]
        if raw_objectives is not None:
            if not isinstance(raw_objectives, dict):
                raise SpecError("slo.objectives must be a mapping")
            for model, obj in raw_objectives.items():
                if model not in (TENANT_VIRTIO, TENANT_VP, TENANT_PASSTHROUGH):
                    raise SpecError(f"slo.objectives: unknown io model {model!r}")
                obj_ms = _require_ms(obj, f"slo.objectives[{model!r}]")
                if obj_ms <= 0:
                    raise SpecError(f"slo.objectives[{model!r}] must be positive")
                objectives[model] = obj_ms
        slo = SloSpec(
            enabled=bool(sl["enabled"]),
            sample_ms=_require_ms(sl["sample_ms"], "slo.sample_ms"),
            objective_p99_ms=_require_ms(
                sl["objective_p99_ms"], "slo.objective_p99_ms"
            ),
            objectives=objectives,
            gate_start_ms=_require_ms(sl["gate_start_ms"], "slo.gate_start_ms"),
            gate_interval_ms=_require_ms(
                sl["gate_interval_ms"], "slo.gate_interval_ms"
            ),
            min_samples=_require_pos_int(sl["min_samples"], "slo.min_samples"),
        )
        if slo.enabled:
            if slo.sample_ms <= 0:
                raise SpecError("slo.sample_ms must be positive")
            if slo.gate_interval_ms <= 0:
                raise SpecError("slo.gate_interval_ms must be positive")
            if slo.objective_p99_ms <= 0:
                raise SpecError("slo.objective_p99_ms must be positive")

        fault_windows: List[FaultWindowSpec] = []
        raw_faults = top["faults"] or []
        if not isinstance(raw_faults, list):
            raise SpecError("faults must be a list")
        for entry in raw_faults:
            f = _take(
                entry,
                {
                    "kind": None,
                    "start_ms": 0.0,
                    "end_ms": None,
                    "rate": 0.0,
                    "count": 0,
                    "param": None,
                    "targets": [],
                },
                "faults[]",
            )
            kind = f["kind"]
            if kind not in FaultClass.FABRIC:
                raise SpecError(
                    f"faults[].kind {kind!r} is not a fabric fault class "
                    f"(choose from {sorted(FaultClass.FABRIC)})"
                )
            start_ms = _require_ms(f["start_ms"], "faults[].start_ms")
            end_ms = (
                None
                if f["end_ms"] is None
                else _require_ms(f["end_ms"], "faults[].end_ms")
            )
            if end_ms is not None and end_ms <= start_ms:
                raise SpecError(
                    f"faults[].end_ms {end_ms:g} must be after start_ms "
                    f"{start_ms:g}"
                )
            fault_windows.append(
                FaultWindowSpec(
                    kind=kind,
                    start_ms=start_ms,
                    end_ms=end_ms,
                    rate=float(f["rate"]),
                    count=int(f["count"]),
                    param=None if f["param"] is None else float(f["param"]),
                    targets=tuple(str(t) for t in (f["targets"] or [])),
                )
            )

        horizon_ms = _require_ms(top["horizon_ms"], "horizon_ms")
        if horizon_ms <= 0:
            raise SpecError("horizon_ms must be positive")

        return cls(
            name=str(top["name"]),
            version=int(top["version"]),
            topology=topology,
            hosts=hosts,
            tenants=tenants,
            traffic=traffic,
            control=control,
            slo=slo,
            faults=tuple(fault_windows),
            horizon_ms=horizon_ms,
        )

    # ------------------------------------------------------------------
    def fault_plan(self, freq_hz: float) -> Optional[FaultPlan]:
        """Convert the ms-denominated fault windows into a cycle-
        denominated :class:`~repro.faults.plan.FaultPlan`."""
        if not self.faults:
            return None

        def cycles(ms: float) -> int:
            return int(ms * 1e-3 * freq_hz)

        specs = [
            FaultSpec(
                kind=f.kind,
                rate=f.rate,
                count=f.count,
                start=cycles(f.start_ms),
                end=None if f.end_ms is None else cycles(f.end_ms),
                param=f.param,
                mechanisms=f.targets,
            )
            for f in self.faults
        ]
        return FaultPlan(specs)

    def describe(self) -> str:
        t = self.topology
        return (
            f"{self.name} v{self.version}: {t.racks}x{t.hosts_per_rack} hosts, "
            f"{t.spines} spines, oversub {t.oversubscription:g}, "
            f"{self.tenants.count} tenants, policy {self.control.policy}"
        )
