"""Run generated scenarios and digest the outcome.

One scenario -> one JSON-friendly result dict with the invariant
violations found and a sha256 state digest.  Results are pure functions
of the spec bytes: running the same spec twice — serial or under
``--jobs``, fast-forward on or off — produces byte-identical dicts,
which is what the replay tests pin.

Import discipline: :mod:`repro.faults.fuzz` imports
:mod:`repro.scenarios.generator` at module level, so the faults layer is
imported lazily here (inside functions) to keep the package cycle-free.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.bench.parallel import map_cells
from repro.scenarios.spec import ScenarioSpec

__all__ = ["run_scenario", "run_scenarios", "scenario_cell"]


def _run_machine(spec: ScenarioSpec, audit: bool) -> Dict:
    from repro.faults.fuzz import (
        build_faulted_stack,
        check_invariants,
        state_digest,
    )
    from repro.faults.plan import FaultPlan
    from repro.faults.workload import run_fault_workload

    plan = spec.fault_plan() or FaultPlan.empty()
    stack, injector = build_faulted_stack(
        spec.stack_config(), plan, seed=spec.seed
    )
    auditor = None
    if audit:
        from repro.audit import Auditor

        auditor = Auditor().attach_stack(stack)
    outcome = "ok"
    violations: List[str] = []
    try:
        run_fault_workload(
            stack,
            ops_per_worker=spec.ops_per_worker,
            seed=spec.seed,
            workers=spec.workers,
        )
    except RuntimeError as exc:
        outcome = f"stranded: {exc}"
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        outcome = f"crash: {type(exc).__name__}: {exc}"
    violations.extend(check_invariants(stack, injector))
    if auditor is not None:
        violations.extend(str(v) for v in auditor.finish().violations)
    return {
        "outcome": outcome,
        "violations": violations,
        "digest": state_digest(stack, injector),
    }


def _run_cluster(spec: ScenarioSpec, audit: bool) -> Dict:
    from repro.cluster import Cluster, PlacementError
    from repro.core.migration import MigrationError, MigrationNotSupported

    cluster = Cluster(
        num_hosts=spec.hosts,
        seed=spec.seed,
        policy=spec.policy,
        guest_hv=spec.guest_hv,
        arch=spec.arch,
        stack_levels=spec.levels,
        workers=spec.workers,
        fault_plan=spec.fault_plan(),
    )
    auditor = cluster.enable_audit() if audit else None
    outcome = "ok"
    violations: List[str] = []
    try:
        for tenant in spec.tenant_specs():
            cluster.place(tenant)
        cluster.stream("host1", f"host{spec.hosts - 1}", 8 << 20)
        try:
            cluster.orchestrator.evacuate("host0")
        except (MigrationError, MigrationNotSupported):
            pass  # recorded in the trace; the digest reports what happened
        cluster.sim.run()
    except PlacementError as exc:
        outcome = f"unplaceable: {exc}"
    except Exception as exc:  # noqa: BLE001 — a crash IS the finding
        outcome = f"crash: {type(exc).__name__}: {exc}"
    if auditor is not None:
        violations.extend(str(v) for v in auditor.finish().violations)
    return {
        "outcome": outcome,
        "violations": violations,
        "digest": cluster.digest(),
    }


def run_scenario(spec: ScenarioSpec, audit: bool = False) -> Dict:
    """Build, drive and check ONE scenario; returns a JSON-friendly
    result keyed by the spec's canonical digest."""
    if spec.topology == "cluster":
        result = _run_cluster(spec, audit)
    else:
        result = _run_machine(spec, audit)
    return {
        "seed": spec.seed,
        "desc": spec.desc,
        "topology": spec.topology,
        "spec_digest": spec.digest(),
        **result,
    }


def scenario_cell(task) -> Dict:
    """One sweep cell: ``(spec_json, audit)`` -> result dict.  Pure
    function of its arguments; lives at module level so it pickles under
    the spawn start method (see :mod:`repro.bench.parallel`)."""
    spec_json, audit = task
    return run_scenario(ScenarioSpec.from_json(spec_json), audit=audit)


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    jobs: Optional[int] = None,
    audit: bool = False,
) -> List[Dict]:
    """Run a batch of scenarios, optionally fanned out over worker
    processes.  Output order (and bytes) never depends on ``jobs``."""
    tasks = [(spec.to_json(), audit) for spec in specs]
    results = map_cells(scenario_cell, tasks, jobs)
    for index, result in enumerate(results):
        result["index"] = index
    return results
