"""The constrained-random scenario generator.

ONE seeded :class:`random.Random` per scenario drives every draw —
topology, architecture, stack shape, tenant mix, feature grants, fault
schedule, workload size — at *build* time; the resulting
:class:`~repro.scenarios.spec.ScenarioSpec` is fully resolved, so
running it consumes no generator randomness and the same seed always
yields byte-identical specs (and, through the runner, byte-identical
run digests).

This module is the single source of stimulus shapes.  The trap-chain
fuzzer (:mod:`repro.faults.fuzz`) draws its episode stacks from
:func:`draw_stack_shape`/:func:`draw_grants`, the cluster sweep's
``standard_tenants`` is :func:`mixed_tenant_specs`, and the ``repro
audit`` matrix runs :func:`generate_specs` output — three formerly
hand-written stimulus paths, one generator.

Constraint validation is *reused*, never duplicated: every generated
spec passes through ``StackConfig.validate`` / ``GrantSet.validate`` /
``TenantSpec.__post_init__`` (via :meth:`ScenarioSpec.validate`) before
it is returned, so the generator can only emit combinations the
builders themselves accept — e.g. Xen never lands on a RISC-V host, and
``vp`` I/O never appears without nesting plus the virtual-passthrough
feature.

Import discipline: :mod:`repro.faults.fuzz` imports this module at
module level, so nothing here may import ``repro.faults`` at module
level (function-level imports only).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.core.features import DvhFeatures
from repro.scenarios.spec import ScenarioSpec, TenantDraw, dvh_name

__all__ = [
    "ARCH_POOL",
    "CLUSTER_FAULT_CLASSES",
    "MACHINE_FAULT_CLASSES",
    "TENANT_MIX",
    "draw_grants",
    "draw_scenario",
    "draw_stack_shape",
    "generate_specs",
    "mixed_tenant_draws",
    "mixed_tenant_specs",
    "scenario_seed",
]

#: Architectures a scenario may land on (§3: DVH is platform-agnostic;
#: this repo models x86 VMX, ARM VHE and the RISC-V H-extension).
ARCH_POOL: Tuple[str, ...] = ("x86", "arm", "riscv")

#: Fault classes a machine-topology scenario draws from — the fuzzer's
#: pool: hook/point faults plus capability and grant revocations
#: (migration-wire classes belong to the migration experiments).
MACHINE_FAULT_CLASSES: Tuple[str, ...] = (
    "nic_drop",
    "nic_corrupt",
    "virtio_malformed",
    "virtio_kick_drop",
    "irq_drop",
    "irq_spurious",
    "iommu_fault",
    "dvh_cap_fault",
    "ooh_grant_revoke",
)

#: Fault classes a cluster-topology scenario may aim at its fabric.
#: (Partitions and host loss need host-name mechanisms to be meaningful;
#: the audit matrix exercises those explicitly.)
CLUSTER_FAULT_CLASSES: Tuple[str, ...] = ("fabric_degrade",)

#: Tenant I/O-model mix for generated fleets: mostly paravirtual, a DVH
#: virtual-passthrough nested VM and a hardware-coupled straggler.
TENANT_MIX: Tuple[str, ...] = ("virtio", "vp", "virtio", "passthrough")


def scenario_seed(campaign_seed: int, index: int) -> int:
    """Per-scenario seed, mixed exactly like the fuzzer's episode seed
    so campaigns never collide across adjacent campaign seeds."""
    return campaign_seed * 1_000_003 + index


# ----------------------------------------------------------------------
# Stack-shape draws (shared verbatim with the trap-chain fuzzer — the
# rng consumption order here is frozen: changing it would re-shape every
# pinned fuzz campaign).
# ----------------------------------------------------------------------
def draw_stack_shape(
    rng: random.Random,
    levels_pool: Sequence[int] = (0, 1, 2, 3),
    workers: int = 2,
):
    """Draw one stack configuration: depth, DVH feature set, I/O model
    and OoH grants.  Returns a ready-to-build ``StackConfig``."""
    from repro.hv.stack import StackConfig

    levels = rng.choice(tuple(levels_pool))
    if levels == 0:
        return StackConfig(levels=0, workers=workers)
    dvh = rng.choice(
        (DvhFeatures.none(), DvhFeatures.vp_only(), DvhFeatures.full())
    )
    io_choices = ["virtio"]
    if levels >= 1:
        io_choices.append("passthrough")
    if levels >= 2 and dvh.virtual_passthrough:
        io_choices.append("vp")
    io_model = rng.choice(io_choices)
    ooh = draw_grants(rng, levels, io_model, dvh)
    return StackConfig(
        levels=levels, io_model=io_model, dvh=dvh, workers=workers, ooh=ooh
    )


def draw_grants(
    rng: random.Random, levels: int, io_model: str, dvh
) -> Optional[object]:
    """Draw an OoH grant set consistent with the stack shape — only
    features the DVH config doesn't already provide, and never the
    dirty-tracking grants on a hardware-coupled (passthrough) stack."""
    from repro.ooh.grants import GrantSet

    if levels < 2 or rng.random() < 0.5:
        return None
    pool: List[str] = []
    if io_model != "passthrough":
        pool.append(rng.choice(("dirty_logging", "dirty_ring")))
    if not dvh.virtual_timer:
        pool.append("timer_deadline")
    if not dvh.virtual_ipi:
        pool.append("posted_interrupts")
    chosen = [feature for feature in pool if rng.random() < 0.6]
    return GrantSet.from_names(chosen) if chosen else None


# ----------------------------------------------------------------------
# Tenant-mix draws (shared with repro.cluster.sweep.standard_tenants)
# ----------------------------------------------------------------------
def mixed_tenant_draws(
    count: int, prefix: str = "t", rotate: int = 0
) -> Tuple[TenantDraw, ...]:
    """A deterministic mixed-I/O tenant fleet.  ``rotate`` shifts which
    I/O model tenant 0 gets (the generator draws it; the sweep's
    canonical fleet keeps ``rotate=0``)."""
    return tuple(
        TenantDraw(
            name=f"{prefix}{i}",
            io_model=TENANT_MIX[(i + rotate) % len(TENANT_MIX)],
            memory_gb=8 + 4 * (i % 3),
            load=800 + 350 * (i % 5),
            dirty_pages=32 + 16 * (i % 3),
        )
        for i in range(count)
    )


def mixed_tenant_specs(count: int) -> List:
    """``standard_tenants``'s fleet as real ``TenantSpec`` values."""
    return [draw.to_tenant_spec() for draw in mixed_tenant_draws(count)]


# ----------------------------------------------------------------------
# Whole-scenario draws
# ----------------------------------------------------------------------
def _draw_machine(
    rng: random.Random,
    seed: int,
    arch: str,
    guest_hv: str,
    levels_pool: Sequence[int],
    workers: int,
) -> ScenarioSpec:
    config = draw_stack_shape(rng, levels_pool, workers)
    config.validate()  # apply builder coercions (e.g. levels=0 -> native I/O)
    grants = config.ooh.names() if config.ooh is not None else ()
    if rng.random() < 0.2:
        fault_classes: Tuple[str, ...] = ()  # a clean-run scenario
    else:
        fault_classes = tuple(
            rng.sample(
                sorted(MACHINE_FAULT_CLASSES),
                rng.randint(1, 4),
            )
        )
    return ScenarioSpec(
        seed=seed,
        topology="machine",
        arch=arch,
        guest_hv=guest_hv if config.levels >= 2 else "kvm" if arch != "riscv" else "hs",
        levels=config.levels,
        io_model=config.io_model,
        dvh=dvh_name(config.dvh),
        workers=workers,
        grants=tuple(grants),
        ops_per_worker=rng.choice((10, 20, 40)),
        fault_classes=fault_classes,
        fault_seed=rng.randrange(1 << 30),
        intensity=0.08,
    )


def _draw_cluster(
    rng: random.Random, seed: int, arch: str, guest_hv: str
) -> ScenarioSpec:
    hosts = rng.choice((2, 3, 4))
    policy = rng.choice(("bin-pack", "spread", "load-balance"))
    count = rng.randint(2, 6)
    rotate = rng.randrange(len(TENANT_MIX))
    if rng.random() < 0.5:
        fault_classes: Tuple[str, ...] = CLUSTER_FAULT_CLASSES
    else:
        fault_classes = ()
    return ScenarioSpec(
        seed=seed,
        topology="cluster",
        arch=arch,
        guest_hv=guest_hv,
        levels=2,
        workers=2,
        fault_classes=fault_classes,
        fault_seed=rng.randrange(1 << 30),
        hosts=hosts,
        policy=policy,
        tenants=mixed_tenant_draws(count, rotate=rotate),
    )


def draw_scenario(
    seed: int,
    arches: Sequence[str] = ARCH_POOL,
    levels_pool: Sequence[int] = (0, 1, 2, 3),
    workers: int = 2,
    cluster_fraction: float = 0.25,
) -> ScenarioSpec:
    """Draw ONE fully-resolved scenario from one seeded Random.

    Draw order (frozen for seed stability): arch -> guest hypervisor ->
    topology -> topology-specific shape -> fault schedule -> workload.
    """
    rng = random.Random(seed)
    arch = rng.choice(tuple(arches))
    # Constraint: the H-extension profile is RISC-V's only modeled guest
    # hypervisor; Xen/KVM profiles are x86/ARM (StackConfig.validate
    # would reject anything else — we draw only what it accepts).
    guest_hv = "hs" if arch == "riscv" else rng.choice(("kvm", "xen"))
    if rng.random() < cluster_fraction:
        spec = _draw_cluster(rng, seed, arch, guest_hv)
    else:
        spec = _draw_machine(rng, seed, arch, guest_hv, levels_pool, workers)
    return spec.validate()


def generate_specs(
    seed: int = 0,
    count: int = 10,
    arches: Sequence[str] = ARCH_POOL,
    levels_pool: Sequence[int] = (0, 1, 2, 3),
    workers: int = 2,
    cluster_fraction: float = 0.25,
) -> List[ScenarioSpec]:
    """``count`` scenarios for one campaign seed — the generator behind
    ``python -m repro scenarios gen``."""
    return [
        draw_scenario(
            scenario_seed(seed, index),
            arches=arches,
            levels_pool=levels_pool,
            workers=workers,
            cluster_fraction=cluster_fraction,
        )
        for index in range(count)
    ]
