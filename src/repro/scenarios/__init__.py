"""repro.scenarios — the constrained-random scenario generator.

One seeded draw engine produces fully-resolved, JSON-canonical
:class:`ScenarioSpec` values covering both stimulus topologies the repo
exercises (single faulted machine, multi-host cluster) across every
modeled architecture (x86/VMX, ARM/VHE, RISC-V H-extension).  The
trap-chain fuzzer, the ``repro audit`` matrix and the cluster sweep all
feed from this one generator; ``python -m repro scenarios gen|run|shrink``
is the direct CLI.

Replay contract: ``generate_specs(seed=N)`` is byte-identical across
runs and machines, and ``run_scenarios`` results depend only on the
spec bytes — not on ``--jobs``, not on fast-forward mode.
"""

from repro.scenarios.generator import (
    ARCH_POOL,
    CLUSTER_FAULT_CLASSES,
    MACHINE_FAULT_CLASSES,
    TENANT_MIX,
    draw_grants,
    draw_scenario,
    draw_stack_shape,
    generate_specs,
    mixed_tenant_draws,
    mixed_tenant_specs,
    scenario_seed,
)
from repro.scenarios.runner import run_scenario, run_scenarios, scenario_cell
from repro.scenarios.shrink import (
    default_fails,
    shrink_candidates,
    shrink_scenario,
)
from repro.scenarios.spec import DVH_NAMES, ScenarioSpec, TenantDraw, dvh_name

__all__ = [
    "ARCH_POOL",
    "CLUSTER_FAULT_CLASSES",
    "DVH_NAMES",
    "MACHINE_FAULT_CLASSES",
    "TENANT_MIX",
    "ScenarioSpec",
    "TenantDraw",
    "default_fails",
    "draw_grants",
    "draw_scenario",
    "draw_stack_shape",
    "dvh_name",
    "generate_specs",
    "mixed_tenant_draws",
    "mixed_tenant_specs",
    "run_scenario",
    "run_scenarios",
    "scenario_cell",
    "scenario_seed",
    "shrink_candidates",
    "shrink_scenario",
]
