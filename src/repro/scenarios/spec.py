"""Scenario specifications: frozen, canonical, replayable.

A :class:`ScenarioSpec` is the *complete* description of one generated
stimulus — topology, architecture, stack shape, tenant mix, feature
grants, fault schedule and workload size.  Everything downstream
(:mod:`repro.scenarios.runner`, the auditor, the shrinker) consumes only
the spec, never the generator's RNG, so a spec round-trips through JSON
and replays byte-identically on any machine.

Canonical form: :meth:`ScenarioSpec.to_json` emits sorted keys with
compact separators, so two runs of ``scenarios gen --seed N`` produce
byte-identical bytes and :meth:`digest` is stable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["DVH_NAMES", "ScenarioSpec", "TenantDraw", "dvh_name"]

#: Spec-level names for the three DVH presets the paper evaluates.
DVH_NAMES = ("none", "vp", "full")


def dvh_name(dvh) -> str:
    """Map a :class:`~repro.core.features.DvhFeatures` value back to its
    preset name.  The generator only ever draws the three presets."""
    from repro.core.features import DvhFeatures

    for name in DVH_NAMES:
        if dvh == _dvh_preset(name):
            return name
    raise ValueError(f"not a preset DvhFeatures value: {dvh!r}")


def _dvh_preset(name: str):
    from repro.core.features import DvhFeatures

    return {
        "none": DvhFeatures.none,
        "vp": DvhFeatures.vp_only,
        "full": DvhFeatures.full,
    }[name]()


@dataclass(frozen=True)
class TenantDraw:
    """One cluster tenant in a generated fleet (mirrors
    :class:`~repro.cluster.TenantSpec`, but JSON-friendly)."""

    name: str
    io_model: str
    memory_gb: int
    load: int
    dirty_pages: int

    def to_tenant_spec(self):
        from repro.cluster import TenantSpec

        return TenantSpec(
            name=self.name,
            io_model=self.io_model,
            memory_gb=self.memory_gb,
            load=self.load,
            dirty_pages=self.dirty_pages,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One constrained-random scenario, fully resolved.

    ``topology`` selects the runner: ``"machine"`` builds one faulted
    stack and drives the op soup through it; ``"cluster"`` boots a fleet,
    places the tenant mix, streams cross-host traffic and evacuates
    host0 — the two stimulus shapes the repo previously hand-wrote in
    three places (the fuzzer, the audit matrix, the cluster sweep).
    """

    seed: int
    topology: str  # "machine" | "cluster"
    arch: str = "x86"
    guest_hv: str = "kvm"
    # -- machine topology --------------------------------------------
    levels: int = 2
    io_model: str = "virtio"
    dvh: str = "none"  # preset name, see DVH_NAMES
    workers: int = 2
    grants: Tuple[str, ...] = ()
    ops_per_worker: int = 20
    # -- fault schedule ----------------------------------------------
    fault_classes: Tuple[str, ...] = ()
    fault_seed: int = 0
    intensity: float = 0.08
    # -- cluster topology --------------------------------------------
    hosts: int = 0
    policy: str = ""
    tenants: Tuple[TenantDraw, ...] = ()

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def dvh_features(self):
        return _dvh_preset(self.dvh)

    def grant_set(self):
        if not self.grants:
            return None
        from repro.ooh.grants import GrantSet

        return GrantSet.from_names(list(self.grants))

    def stack_config(self):
        """The machine-topology stack, rebuilt from spec fields alone."""
        from repro.hv.stack import StackConfig

        return StackConfig(
            levels=self.levels,
            io_model=self.io_model,
            dvh=self.dvh_features(),
            guest_hv=self.guest_hv,
            workers=self.workers,
            seed=self.seed,
            arch=self.arch,
            ooh=self.grant_set(),
        )

    def fault_plan(self):
        """The seed-derived fault schedule (None when no classes drew)."""
        if not self.fault_classes:
            return None
        from repro.faults.plan import FaultPlan

        return FaultPlan.random(
            self.fault_seed,
            classes=list(self.fault_classes),
            intensity=self.intensity,
        )

    def tenant_specs(self):
        return [t.to_tenant_spec() for t in self.tenants]

    # ------------------------------------------------------------------
    # Constraint validation — reuses the stack/grant/tenant rejection
    # rules rather than duplicating them.
    # ------------------------------------------------------------------
    def validate(self) -> "ScenarioSpec":
        if self.topology not in ("machine", "cluster"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "machine":
            self.stack_config().validate()
            self.fault_plan()  # FaultPlan validates class names
        else:
            if self.hosts < 2:
                raise ValueError("a cluster scenario needs >= 2 hosts")
            from repro.cluster.placement import POLICIES

            if self.policy not in POLICIES:
                raise ValueError(f"unknown policy {self.policy!r}")
            if not self.tenants:
                raise ValueError("a cluster scenario needs tenants")
            # Host boot config must itself be valid for this arch/hv.
            from repro.hv.stack import StackConfig

            StackConfig(
                levels=self.levels,
                guest_hv=self.guest_hv,
                workers=self.workers,
                arch=self.arch,
            ).validate()
            for tenant in self.tenants:
                tenant.to_tenant_spec()  # TenantSpec.__post_init__ validates
        return self

    # ------------------------------------------------------------------
    # Canonical serialization
    # ------------------------------------------------------------------
    @property
    def desc(self) -> str:
        if self.topology == "machine":
            extras = "+dvh" if self.dvh != "none" else ""
            grants = f"+ooh{len(self.grants)}" if self.grants else ""
            return (
                f"{self.arch}/{self.guest_hv} L{self.levels}/"
                f"{self.io_model}{extras}{grants}"
            )
        return (
            f"{self.arch}/{self.guest_hv} cluster/{self.policy} "
            f"hosts={self.hosts} tenants={len(self.tenants)}"
        )

    def to_dict(self) -> Dict:
        return asdict(self)

    def to_json(self) -> str:
        """Canonical bytes: sorted keys, compact separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioSpec":
        data = dict(data)
        data["grants"] = tuple(data.get("grants", ()))
        data["fault_classes"] = tuple(data.get("fault_classes", ()))
        data["tenants"] = tuple(
            TenantDraw(**t) for t in data.get("tenants", ())
        )
        return cls(**data)

    @classmethod
    def from_json(cls, blob: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(blob))
