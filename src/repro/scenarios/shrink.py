"""Deterministic greedy scenario minimization.

Given a failing scenario, repeatedly try the smallest structural
reductions — fewer ops, fewer grants, fewer fault classes, a shallower
stack, fewer tenants, fewer hosts — keeping a reduction only if the
scenario STILL fails the predicate.  Candidates are tried in a fixed
order and the predicate is a pure function of the spec, so shrinking is
as replayable as the scenarios themselves: the same failing spec always
shrinks to the same minimal spec via the same steps.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from repro.scenarios.spec import ScenarioSpec

__all__ = ["default_fails", "shrink_candidates", "shrink_scenario"]


def default_fails(spec: ScenarioSpec) -> bool:
    """The standard predicate: the scenario crashes, strands a worker,
    or trips an invariant."""
    from repro.scenarios.runner import run_scenario

    result = run_scenario(spec)
    return result["outcome"] != "ok" or bool(result["violations"])


def _valid(spec: ScenarioSpec) -> bool:
    try:
        spec.validate()
    except (ValueError, KeyError):
        return False
    return True


def shrink_candidates(spec: ScenarioSpec) -> List[Tuple[str, ScenarioSpec]]:
    """Every one-step reduction of ``spec`` that is still a valid
    scenario, in the fixed order shrinking tries them."""
    candidates: List[Tuple[str, ScenarioSpec]] = []

    def add(step: str, **changes) -> None:
        candidate = replace(spec, **changes)
        if _valid(candidate):
            candidates.append((step, candidate))

    for i, kind in enumerate(spec.fault_classes):
        remaining = spec.fault_classes[:i] + spec.fault_classes[i + 1 :]
        add(f"drop fault class {kind}", fault_classes=remaining)
    if spec.topology == "machine":
        if spec.ops_per_worker > 1:
            add(
                f"halve ops to {spec.ops_per_worker // 2}",
                ops_per_worker=max(1, spec.ops_per_worker // 2),
            )
        for i, grant in enumerate(spec.grants):
            remaining = spec.grants[:i] + spec.grants[i + 1 :]
            add(f"drop grant {grant}", grants=remaining)
        if spec.dvh == "full":
            add("reduce dvh full -> vp", dvh="vp")
        if spec.dvh != "none":
            add("reduce dvh -> none", dvh="none")
        if spec.levels > 0:
            add(f"reduce levels to {spec.levels - 1}", levels=spec.levels - 1)
        if spec.workers > 1:
            add("reduce workers to 1", workers=1)
    else:
        for i in range(len(spec.tenants) - 1, -1, -1):
            remaining = spec.tenants[:i] + spec.tenants[i + 1 :]
            add(f"drop tenant {spec.tenants[i].name}", tenants=remaining)
        if spec.hosts > 2:
            add(f"reduce hosts to {spec.hosts - 1}", hosts=spec.hosts - 1)
    return candidates


def shrink_scenario(
    spec: ScenarioSpec,
    fails: Optional[Callable[[ScenarioSpec], bool]] = None,
    max_rounds: int = 64,
) -> Tuple[ScenarioSpec, List[str]]:
    """Greedy minimization: returns ``(minimal_spec, steps_taken)``.

    ``fails`` must return True for the original spec (ValueError
    otherwise) — shrinking a green scenario is meaningless.
    """
    predicate = fails if fails is not None else default_fails
    if not predicate(spec):
        raise ValueError("scenario does not fail; nothing to shrink")
    steps: List[str] = []
    for _ in range(max_rounds):
        for step, candidate in shrink_candidates(spec):
            if predicate(candidate):
                spec = candidate
                steps.append(step)
                break
        else:
            break  # no single reduction still fails: minimal
    return spec, steps
