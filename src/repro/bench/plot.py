"""ASCII renderings of the paper's figures.

The paper plots performance overhead as grouped bar charts with a
clipped y-axis (out-of-range bars get printed labels, like Figure 9's
"126 32 99 108...").  This renders the same thing for terminals:

    Figure 7: Application performance
    netperf_rr
      VM                        |#####                | 1.28
      Nested VM                 |#####################| 5.17
      ...
"""

from __future__ import annotations

from typing import Optional

from repro.bench.runner import FigureResult

__all__ = ["ascii_figure", "ascii_bar"]


def ascii_bar(value: float, vmax: float, width: int) -> str:
    """One clipped bar: ``|####     |`` with a ``>`` when clipped."""
    if vmax <= 0:
        raise ValueError("vmax must be positive")
    clipped = min(value, vmax)
    filled = int(round(clipped / vmax * width))
    filled = min(filled, width)
    bar = "#" * filled + " " * (width - filled)
    if value > vmax:
        bar = bar[:-1] + ">"
    return f"|{bar}|"


def ascii_figure(
    result: FigureResult,
    width: int = 40,
    clip: Optional[float] = None,
) -> str:
    """Render a FigureResult as grouped horizontal bars.

    ``clip`` bounds the axis (like the paper's clipped figures); bars
    beyond it are truncated and annotated with their value — which the
    numeric column shows anyway.  Default: the 95th-percentile-ish max,
    so one extreme bar doesn't flatten everything else.
    """
    values = [v for row in result.overheads.values() for v in row.values()]
    if not values:
        return result.title + "\n(no data)"
    if clip is None:
        ordered = sorted(values)
        clip = max(ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))], 1.0)
    label_width = max(len(c) for c in result.configs) + 2
    lines = [
        result.title,
        f"Performance overhead vs native (axis clipped at {clip:.1f}x; "
        "'>' = off scale)",
        "",
    ]
    for app, row in result.overheads.items():
        lines.append(app)
        for config in result.configs:
            value = row[config]
            lines.append(
                f"  {config:<{label_width}}"
                f"{ascii_bar(value, clip, width)} {value:.2f}"
            )
        lines.append("")
    return "\n".join(lines)
