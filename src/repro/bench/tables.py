"""Render experiment results in the paper's table/figure format,
side by side with the paper's reported values."""

from __future__ import annotations

from typing import Dict, List

from repro.bench.runner import FigureResult, MigrationRow, Table3Result

__all__ = [
    "PAPER_TABLE3",
    "format_table3",
    "format_figure",
    "format_migration",
]

#: The paper's Table 3 (cycles).
PAPER_TABLE3: Dict[str, Dict[str, int]] = {
    "Hypercall": {
        "VM": 1_575,
        "nested VM": 37_733,
        "nested VM + DVH": 38_743,
        "L3 VM": 857_578,
        "L3 VM + DVH": 929_724,
    },
    "DevNotify": {
        "VM": 4_984,
        "nested VM": 48_390,
        "nested VM + DVH": 13_815,
        "L3 VM": 1_008_935,
        "L3 VM + DVH": 15_150,
    },
    "ProgramTimer": {
        "VM": 2_005,
        "nested VM": 43_359,
        "nested VM + DVH": 3_247,
        "L3 VM": 1_033_946,
        "L3 VM + DVH": 3_304,
    },
    "SendIPI": {
        "VM": 3_273,
        "nested VM": 39_456,
        "nested VM + DVH": 5_116,
        "L3 VM": 787_971,
        "L3 VM + DVH": 5_228,
    },
}


def format_table3(result: Table3Result, include_paper: bool = True) -> str:
    """Table 3: microbenchmark performance in CPU cycles."""
    lines = ["Table 3. Microbenchmark performance in CPU cycles"]
    header = f"{'':14s}" + "".join(f"{c:>20s}" for c in result.configs)
    lines.append(header)
    for bench, row in result.cells.items():
        cells = "".join(f"{row[c]:>20,.0f}" for c in result.configs)
        lines.append(f"{bench:14s}{cells}")
        if include_paper and bench in PAPER_TABLE3:
            ref = PAPER_TABLE3[bench]
            cells = "".join(f"{ref.get(c, 0):>20,}" for c in result.configs)
            lines.append(f"{'  (paper)':14s}{cells}")
    return "\n".join(lines)


def format_figure(result: FigureResult, native_units: bool = True) -> str:
    """An application figure: performance overhead vs native (the
    figures' y-axis; 1.0 = native speed, lower is better)."""
    lines = [result.title, "Performance overhead relative to native (lower is better)"]
    width = max(len(c) for c in result.configs) + 2
    header = f"{'workload':16s}" + "".join(f"{c:>{width}s}" for c in result.configs)
    lines.append(header)
    for app, row in result.overheads.items():
        cells = "".join(f"{row[c]:>{width}.2f}" for c in result.configs)
        lines.append(f"{app:16s}{cells}")
    if native_units and result.native:
        lines.append("")
        lines.append("Native baselines (this reproduction):")
        for app, res in result.native.items():
            if res.unit == "seconds":
                # Elapsed-time workloads run at scaled transaction counts;
                # show per-transaction time, which is scale-independent.
                lines.append(
                    f"  {app:16s} {res.value / res.txns * 1e6:>12,.1f} us/transaction"
                )
            else:
                lines.append(f"  {app:16s} {res.value:>12,.1f} {res.unit}")
    return "\n".join(lines)


def format_migration(rows: List[MigrationRow]) -> str:
    """The §4 migration experiment."""
    lines = [
        "Migration experiment (268 Mbps transfer bandwidth; memory",
        "footprint scaled by 1/512 — ratios are the reported result)",
        f"{'scenario':40s}{'total':>10s}{'downtime':>12s}{'transferred':>14s}",
    ]
    for row in rows:
        if not row.supported:
            lines.append(f"{row.scenario:40s}{'MIGRATION NOT SUPPORTED':>36s}")
            continue
        lines.append(
            f"{row.scenario:40s}{row.total_s:>9.2f}s{row.downtime_s * 1000:>10.1f}ms"
            f"{row.bytes_transferred:>13,}B"
        )
    return "\n".join(lines)
