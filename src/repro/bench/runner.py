"""Experiment runners: regenerate every table and figure of the paper.

Each function runs the full set of configurations for one experiment and
returns structured results; :mod:`repro.bench.tables` renders them in the
paper's row/series format.  Everything is deterministic.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.features import DvhFeatures
from repro.core.migration import LiveMigration, MigrationNotSupported
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import app_names, run_app
from repro.workloads.engines import AppResult
from repro.workloads.microbench import MICROBENCHMARKS, run_microbenchmark
from repro.bench.configs import (
    FIG7_CONFIGS,
    FIG8_CONFIGS,
    FIG9_CONFIGS,
    FIG10_CONFIGS,
    TABLE3_CONFIGS,
)
from repro.bench.parallel import app_cell, map_cells, table3_cell

__all__ = [
    "Table3Result",
    "FigureResult",
    "MigrationRow",
    "run_table3",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure",
    "run_migration_experiment",
    "fast_forward_override",
    "DEFAULT_SCALES",
]

#: Per-configuration transaction-count scaling.  Deterministic simulation
#: converges in a handful of transactions; deep-nesting paravirtual
#: configurations simulate fewer to bound wall-clock time.
DEFAULT_SCALES: Dict[int, float] = {0: 0.4, 1: 0.4, 2: 0.4, 3: 0.15}


@contextmanager
def fast_forward_override(value: Optional[bool]):
    """Force steady-state fast-forward on/off for every stack built in
    the block (None = leave the ambient default alone).  Implemented via
    the ``REPRO_FAST_FORWARD`` env var so ``map_cells`` worker processes
    inherit it — results are byte-identical either way, this only picks
    micro-stepping vs macro-events."""
    if value is None:
        yield
        return
    prev = os.environ.get("REPRO_FAST_FORWARD")
    os.environ["REPRO_FAST_FORWARD"] = "1" if value else "0"
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_FAST_FORWARD", None)
        else:
            os.environ["REPRO_FAST_FORWARD"] = prev


@dataclass
class Table3Result:
    """Microbenchmark cycles per configuration (the paper's Table 3)."""

    #: bench name -> config name -> cycles.
    cells: Dict[str, Dict[str, float]] = field(default_factory=dict)
    configs: List[str] = field(default_factory=list)


@dataclass
class FigureResult:
    """One application figure: overheads relative to native."""

    title: str
    #: app -> config -> overhead (1.0 = native speed).
    overheads: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: app -> native absolute value.
    native: Dict[str, AppResult] = field(default_factory=dict)
    configs: List[str] = field(default_factory=list)


@dataclass
class MigrationRow:
    scenario: str
    supported: bool
    total_s: float = 0.0
    downtime_s: float = 0.0
    bytes_transferred: int = 0


# ----------------------------------------------------------------------
def run_table3(
    iterations: int = 30,
    benches: Optional[List[str]] = None,
    jobs: int = 1,
    seed: int = 0,
    fast_forward: Optional[bool] = None,
) -> Table3Result:
    """Regenerate Table 3: microbenchmark cycle costs.

    ``jobs`` fans the (bench, config) cells over worker processes
    (0 = one per CPU); results are identical to a serial run.  ``seed``
    reseeds every cell's stack (same seed, same table).
    ``fast_forward`` forces epoch skipping on/off for every cell (None =
    ambient default); the cycle numbers are identical either way.
    """
    with fast_forward_override(fast_forward):
        benches = list(benches) if benches is not None else list(MICROBENCHMARKS)
        result = Table3Result(configs=[name for name, _ in TABLE3_CONFIGS])
        if jobs != 1:
            tasks = [
                (bench, i, iterations, seed)
                for bench in benches
                for i in range(len(TABLE3_CONFIGS))
            ]
            values = iter(map_cells(table3_cell, tasks, jobs))
            for bench in benches:
                result.cells[bench] = {
                    name: next(values) for name, _ in TABLE3_CONFIGS
                }
            return result
        for bench in benches:
            row: Dict[str, float] = {}
            for config_name, factory in TABLE3_CONFIGS:
                stack = build_stack(replace(factory(), seed=seed))
                row[config_name] = run_microbenchmark(stack, bench, iterations)
            result.cells[bench] = row
        return result


# ----------------------------------------------------------------------
def _run_app_figure(
    title: str,
    configs: List[Tuple[str, Callable[[], StackConfig]]],
    apps: Optional[List[str]] = None,
    scales: Optional[Dict[int, float]] = None,
    jobs: int = 1,
    configs_key: Optional[str] = None,
    seed: int = 0,
    fast_forward: Optional[bool] = None,
) -> FigureResult:
    scales = scales or DEFAULT_SCALES
    apps = list(apps) if apps is not None else app_names()
    result = FigureResult(title=title, configs=[n for n, _ in configs if n != "native"])
    # Build each configuration once; the levels (for the uniform scale)
    # and every per-app stack reuse the same validated StackConfig.
    built = [(name, replace(factory(), seed=seed)) for name, factory in configs]
    # One uniform scale per figure (the smallest across its levels), so
    # elapsed-time workloads compare equal transaction counts and warmup
    # edge effects cancel in the overhead ratio.
    uniform_scale = min(scales.get(config.levels, 0.3) for _name, config in built)
    with fast_forward_override(fast_forward):
        if jobs != 1 and configs_key is not None:
            tasks = [
                (configs_key, i, app, uniform_scale, seed)
                for app in apps
                for i in range(len(configs))
            ]
            cells = map_cells(app_cell, tasks, jobs)
        else:
            cells = [
                run_app(build_stack(config), app, scale=uniform_scale)
                for app in apps
                for _name, config in built
            ]
    it = iter(cells)
    for app in apps:
        native_result: Optional[AppResult] = None
        row: Dict[str, float] = {}
        for config_name, _config in built:
            r = next(it)
            if config_name == "native":
                native_result = r
                continue
            assert native_result is not None, "native must come first"
            row[config_name] = r.overhead_vs(native_result)
        result.overheads[app] = row
        if native_result is not None:
            result.native[app] = native_result
    return result


def run_figure7(apps=None, scales=None, jobs: int = 1, seed: int = 0,
                fast_forward: Optional[bool] = None) -> FigureResult:
    """Application performance, six configurations (Figure 7)."""
    return _run_app_figure(
        "Figure 7: Application performance",
        FIG7_CONFIGS,
        apps,
        scales,
        jobs=jobs,
        configs_key="7",
        seed=seed,
        fast_forward=fast_forward,
    )


def run_figure8(apps=None, scales=None, jobs: int = 1, seed: int = 0,
                fast_forward: Optional[bool] = None) -> FigureResult:
    """Incremental DVH breakdown (Figure 8)."""
    return _run_app_figure(
        "Figure 8: Application performance breakdown",
        FIG8_CONFIGS,
        apps,
        scales,
        jobs=jobs,
        configs_key="8",
        seed=seed,
        fast_forward=fast_forward,
    )


def run_figure9(apps=None, scales=None, jobs: int = 1, seed: int = 0,
                fast_forward: Optional[bool] = None) -> FigureResult:
    """Application performance in an L3 VM (Figure 9)."""
    return _run_app_figure(
        "Figure 9: Application performance in L3 VM",
        FIG9_CONFIGS,
        apps,
        scales,
        jobs=jobs,
        configs_key="9",
        seed=seed,
        fast_forward=fast_forward,
    )


def run_figure10(apps=None, scales=None, jobs: int = 1, seed: int = 0,
                fast_forward: Optional[bool] = None) -> FigureResult:
    """Xen as guest hypervisor on KVM (Figure 10)."""
    return _run_app_figure(
        "Figure 10: Application performance, Xen on KVM",
        FIG10_CONFIGS,
        apps,
        scales,
        jobs=jobs,
        configs_key="10",
        seed=seed,
        fast_forward=fast_forward,
    )


def run_figure(
    which: str, apps=None, scales=None, jobs: int = 1, seed: int = 0,
    fast_forward: Optional[bool] = None,
) -> FigureResult:
    """Dispatch by figure number ("7", "8", "9", "10")."""
    runners = {
        "7": run_figure7,
        "8": run_figure8,
        "9": run_figure9,
        "10": run_figure10,
    }
    try:
        return runners[str(which)](
            apps=apps, scales=scales, jobs=jobs, seed=seed,
            fast_forward=fast_forward,
        )
    except KeyError:
        raise ValueError(f"no such figure: {which}") from None


# ----------------------------------------------------------------------
def run_migration_experiment(seed: int = 0, audit=None) -> List[MigrationRow]:
    """The §4 migration experiment: migrate VMs and nested VMs using
    paravirtual I/O vs DVH; passthrough cannot migrate at all.

    ``audit`` optionally takes a :class:`repro.audit.Auditor`, attached
    to every scenario's stack (lifecycle/conservation checks run at the
    caller's ``finish()``); the measured rows are identical either way.
    """
    rows: List[MigrationRow] = []

    def migrate(scenario: str, config: StackConfig, scope: str) -> None:
        stack = build_stack(replace(config, seed=seed))
        stack.settle()
        if audit is not None:
            audit.attach_stack(stack)
        vm = stack.leaf_vm if scope == "nested" else stack.vms[0]
        devices = []
        if scope == "nested" and stack.config.io_model == "vp":
            devices = [stack.net.device]
        try:
            mig = LiveMigration(stack.machine, vm, devices=devices)
            res = stack.sim.run_process(mig.run(), f"migrate-{scenario}")
        except MigrationNotSupported:
            rows.append(MigrationRow(scenario=scenario, supported=False))
            return
        rows.append(
            MigrationRow(
                scenario=scenario,
                supported=True,
                total_s=res.total_s,
                downtime_s=res.downtime_s,
                bytes_transferred=res.bytes_transferred,
            )
        )

    migrate("VM (paravirtual I/O)", StackConfig(levels=1, io_model="virtio"), "nested")
    migrate(
        "nested VM alone (paravirtual I/O)",
        StackConfig(levels=2, io_model="virtio"),
        "nested",
    )
    migrate(
        "nested VM alone (DVH)",
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()),
        "nested",
    )
    migrate(
        "nested VM + guest hypervisor (DVH)",
        StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()),
        "l1",
    )
    migrate(
        "nested VM (passthrough)",
        StackConfig(levels=2, io_model="passthrough"),
        "nested",
    )
    return rows
