"""Process-parallel execution of independent experiment cells.

Every (configuration, workload) cell of an experiment builds its own
stack and its own simulator, so cells share no state and can run in
separate worker processes.  Determinism is preserved because each cell
is a pure function of its parameters (the simulators are seeded) and
results are assembled in task order: a parallel run produces exactly
the bytes a serial run does, just faster.

Configuration factories close over their keyword arguments and are not
picklable, so workers receive *names* — the key of a registered config
set (:data:`repro.bench.configs.CONFIG_SETS`) plus an index into it —
and rebuild the configuration in the child process.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = ["map_cells", "resolve_jobs", "table3_cell", "app_cell"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 mean one worker per CPU."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


def map_cells(
    worker: Callable[[Any], Any], tasks: Sequence[Any], jobs: Optional[int]
) -> List[Any]:
    """Apply ``worker`` to every task, in order.

    Runs up to ``jobs`` worker processes; with one job (or one task, or
    in environments where subprocesses or pickling fail) it degrades to
    a plain serial loop, which produces identical results.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    n = min(resolve_jobs(jobs), len(tasks))
    if n <= 1:
        return [worker(t) for t in tasks]
    try:
        with ProcessPoolExecutor(max_workers=n) as ex:
            return list(ex.map(worker, tasks))
    except (OSError, NotImplementedError, pickle.PicklingError, AttributeError):
        # No subprocess support (sandboxes) or an unpicklable task or
        # worker: the serial path computes the same results.
        return [worker(t) for t in tasks]


# ----------------------------------------------------------------------
# Cell workers (module-level so they pickle under the spawn start method)
# ----------------------------------------------------------------------
def table3_cell(task: Tuple[str, int, int, int]) -> float:
    """One Table-3 cell: (bench, config index, iterations, seed) -> cycles."""
    bench, config_index, iterations, seed = task
    from dataclasses import replace

    from repro.bench.configs import TABLE3_CONFIGS
    from repro.hv.stack import build_stack
    from repro.workloads.microbench import run_microbenchmark

    _name, factory = TABLE3_CONFIGS[config_index]
    stack = build_stack(replace(factory(), seed=seed))
    return run_microbenchmark(stack, bench, iterations)


def app_cell(task: Tuple[str, int, str, float, int]):
    """One application-figure cell:
    (config-set key, config index, app, scale, seed) -> AppResult."""
    configs_key, config_index, app, scale, seed = task
    from dataclasses import replace

    from repro.bench.configs import CONFIG_SETS
    from repro.hv.stack import build_stack
    from repro.workloads.apps import run_app

    _name, factory = CONFIG_SETS[configs_key][config_index]
    return run_app(build_stack(replace(factory(), seed=seed)), app, scale=scale)
