"""Benchmark harness: regenerate every table and figure of the paper."""

from repro.bench.configs import (
    FIG7_CONFIGS,
    FIG8_CONFIGS,
    FIG9_CONFIGS,
    FIG10_CONFIGS,
    TABLE3_CONFIGS,
)
from repro.bench.runner import (
    DEFAULT_SCALES,
    FigureResult,
    MigrationRow,
    Table3Result,
    run_figure,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_migration_experiment,
    run_table3,
)
from repro.bench.tables import (
    PAPER_TABLE3,
    format_figure,
    format_migration,
    format_table3,
)

__all__ = [
    "FIG7_CONFIGS",
    "FIG8_CONFIGS",
    "FIG9_CONFIGS",
    "FIG10_CONFIGS",
    "TABLE3_CONFIGS",
    "DEFAULT_SCALES",
    "FigureResult",
    "MigrationRow",
    "Table3Result",
    "run_figure",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_migration_experiment",
    "run_table3",
    "PAPER_TABLE3",
    "format_figure",
    "format_migration",
    "format_table3",
]
