"""Parameter sweeps: sensitivity analysis over the calibration surface.

Two sweep axes matter for trusting a calibrated simulator:

* **cost-model sensitivity** — if an ordering (DVH < passthrough <
  paravirtual) only holds for one magic value of a leaf constant, the
  reproduction is fragile.  :func:`sweep_cost` re-measures a metric
  while scaling one `CostModel` field.
* **workload-parameter sweeps** — vary a spec field (concurrency,
  message size, op rates) and watch the metric; used to find crossover
  points, e.g. the message size at which nested paravirtual I/O stops
  being CPU-bound.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.bench.parallel import map_cells
from repro.hv.stack import StackConfig, build_stack
from repro.sim import default_costs

__all__ = ["SweepResult", "sweep_cost", "sweep_levels", "sweep_spec", "format_sweep"]


@dataclasses.dataclass
class SweepResult:
    """One sweep: the swept values and the measured metric per value."""

    parameter: str
    metric: str
    points: List[Tuple[Any, float]] = dataclasses.field(default_factory=list)

    def values(self) -> List[float]:
        return [v for _x, v in self.points]

    def monotonic_increasing(self) -> bool:
        vs = self.values()
        return all(b >= a for a, b in zip(vs, vs[1:]))

    def spread(self) -> float:
        """max/min ratio of the measured metric across the sweep."""
        vs = self.values()
        lo = min(vs)
        return max(vs) / lo if lo else float("inf")


def _cost_point(task) -> float:
    field, factor, measure, config = task
    base = default_costs()
    cfg = dataclasses.replace(config) if config else StackConfig(levels=2)
    stack = build_stack(cfg)
    value = getattr(base, field)
    scaled = base.scaled(**{field: type(value)(value * factor)})
    stack.machine.costs = scaled
    return measure(stack)


def sweep_cost(
    field: str,
    factors: Sequence[float],
    measure: Callable[[StackConfig], float],
    config: Optional[StackConfig] = None,
    metric: str = "cycles",
    jobs: int = 1,
) -> SweepResult:
    """Scale one cost-model field by each factor and re-measure.

    Builds a fresh stack per point, installs the scaled cost model on
    its machine, and calls ``measure(stack)``.  Points are independent,
    so ``jobs`` fans them over worker processes (serial when ``measure``
    does not pickle); result order matches the factors either way.
    """
    result = SweepResult(parameter=field, metric=metric)
    tasks = [(field, factor, measure, config) for factor in factors]
    values = map_cells(_cost_point, tasks, jobs)
    result.points = [(factor, v) for factor, v in zip(factors, values)]
    return result


def _level_point(task) -> float:
    measure, level, config_kwargs = task
    return measure(build_stack(StackConfig(levels=level, **config_kwargs)))


def sweep_levels(
    measure: Callable[[Any], float],
    levels: Sequence[int] = (1, 2, 3),
    metric: str = "cycles",
    jobs: int = 1,
    **config_kwargs: Any,
) -> SweepResult:
    """Measure across virtualization depths."""
    result = SweepResult(parameter="levels", metric=metric)
    tasks = [(measure, level, config_kwargs) for level in levels]
    values = map_cells(_level_point, tasks, jobs)
    result.points = [(level, v) for level, v in zip(levels, values)]
    return result


def _spec_point(task) -> float:
    spec, field, value, runner, stack_factory = task
    varied = dataclasses.replace(spec, **{field: value})
    return runner(stack_factory(), varied).value


def sweep_spec(
    spec,
    field: str,
    values: Sequence[Any],
    runner: Callable[[Any, Any], Any],
    stack_factory: Callable[[], Any],
    metric: str = "value",
    jobs: int = 1,
) -> SweepResult:
    """Vary one workload-spec field; ``runner(stack, spec)`` must return
    an AppResult-like object with ``.value``."""
    result = SweepResult(parameter=field, metric=metric)
    tasks = [(spec, field, v, runner, stack_factory) for v in values]
    outcomes = map_cells(_spec_point, tasks, jobs)
    result.points = [(v, o) for v, o in zip(values, outcomes)]
    return result


def format_sweep(result: SweepResult) -> str:
    lines = [f"Sweep of {result.parameter} ({result.metric})"]
    for x, v in result.points:
        lines.append(f"  {x!s:>10}  {v:>14,.2f}")
    lines.append(f"  spread: {result.spread():.2f}x")
    return "\n".join(lines)
