"""Parameter sweeps: sensitivity analysis over the calibration surface.

Two sweep axes matter for trusting a calibrated simulator:

* **cost-model sensitivity** — if an ordering (DVH < passthrough <
  paravirtual) only holds for one magic value of a leaf constant, the
  reproduction is fragile.  :func:`sweep_cost` re-measures a metric
  while scaling one `CostModel` field.
* **workload-parameter sweeps** — vary a spec field (concurrency,
  message size, op rates) and watch the metric; used to find crossover
  points, e.g. the message size at which nested paravirtual I/O stops
  being CPU-bound.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.hv.stack import StackConfig, build_stack
from repro.sim import default_costs

__all__ = ["SweepResult", "sweep_cost", "sweep_levels", "sweep_spec", "format_sweep"]


@dataclasses.dataclass
class SweepResult:
    """One sweep: the swept values and the measured metric per value."""

    parameter: str
    metric: str
    points: List[Tuple[Any, float]] = dataclasses.field(default_factory=list)

    def values(self) -> List[float]:
        return [v for _x, v in self.points]

    def monotonic_increasing(self) -> bool:
        vs = self.values()
        return all(b >= a for a, b in zip(vs, vs[1:]))

    def spread(self) -> float:
        """max/min ratio of the measured metric across the sweep."""
        vs = self.values()
        lo = min(vs)
        return max(vs) / lo if lo else float("inf")


def sweep_cost(
    field: str,
    factors: Sequence[float],
    measure: Callable[[StackConfig], float],
    config: Optional[StackConfig] = None,
    metric: str = "cycles",
) -> SweepResult:
    """Scale one cost-model field by each factor and re-measure.

    Builds a fresh stack per point, installs the scaled cost model on
    its machine, and calls ``measure(stack)``.
    """
    base = default_costs()
    result = SweepResult(parameter=field, metric=metric)
    for factor in factors:
        cfg = dataclasses.replace(config) if config else StackConfig(levels=2)
        stack = build_stack(cfg)
        value = getattr(base, field)
        scaled = base.scaled(**{field: type(value)(value * factor)})
        stack.machine.costs = scaled
        result.points.append((factor, measure(stack)))
    return result


def sweep_levels(
    measure: Callable[[Any], float],
    levels: Sequence[int] = (1, 2, 3),
    metric: str = "cycles",
    **config_kwargs: Any,
) -> SweepResult:
    """Measure across virtualization depths."""
    result = SweepResult(parameter="levels", metric=metric)
    for level in levels:
        stack = build_stack(StackConfig(levels=level, **config_kwargs))
        result.points.append((level, measure(stack)))
    return result


def sweep_spec(
    spec,
    field: str,
    values: Sequence[Any],
    runner: Callable[[Any, Any], Any],
    stack_factory: Callable[[], Any],
    metric: str = "value",
) -> SweepResult:
    """Vary one workload-spec field; ``runner(stack, spec)`` must return
    an AppResult-like object with ``.value``."""
    result = SweepResult(parameter=field, metric=metric)
    for v in values:
        varied = dataclasses.replace(spec, **{field: v})
        stack = stack_factory()
        outcome = runner(stack, varied)
        result.points.append((v, outcome.value))
    return result


def format_sweep(result: SweepResult) -> str:
    lines = [f"Sweep of {result.parameter} ({result.metric})"]
    for x, v in result.points:
        lines.append(f"  {x!s:>10}  {v:>14,.2f}")
    lines.append(f"  spread: {result.spread():.2f}x")
    return "\n".join(lines)
