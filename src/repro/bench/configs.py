"""The measurement configurations of the paper's evaluation (§4).

Names follow the figures' legends.  Each entry is a factory (stacks hold
mutable simulation state, so every run gets a fresh one).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig

__all__ = [
    "TABLE3_CONFIGS",
    "FIG7_CONFIGS",
    "FIG8_CONFIGS",
    "FIG9_CONFIGS",
    "FIG10_CONFIGS",
    "CONFIG_SETS",
    "config_factory",
]


def config_factory(**kwargs) -> Callable[[], StackConfig]:
    """A factory producing fresh StackConfig values."""

    def make() -> StackConfig:
        return StackConfig(**kwargs)

    return make


#: Table 3: microbenchmarks in VM / nested / nested+DVH / L3 / L3+DVH.
TABLE3_CONFIGS: List[Tuple[str, Callable[[], StackConfig]]] = [
    ("VM", config_factory(levels=1, io_model="virtio")),
    ("nested VM", config_factory(levels=2, io_model="virtio")),
    (
        "nested VM + DVH",
        config_factory(levels=2, io_model="vp", dvh=DvhFeatures.full()),
    ),
    ("L3 VM", config_factory(levels=3, io_model="virtio")),
    ("L3 VM + DVH", config_factory(levels=3, io_model="vp", dvh=DvhFeatures.full())),
]

#: Figure 7: application performance, six VM configurations (plus native
#: as the normalization baseline).
FIG7_CONFIGS: List[Tuple[str, Callable[[], StackConfig]]] = [
    ("native", config_factory(levels=0, io_model="native")),
    ("VM", config_factory(levels=1, io_model="virtio")),
    ("VM + passthrough", config_factory(levels=1, io_model="passthrough")),
    ("Nested VM", config_factory(levels=2, io_model="virtio")),
    ("Nested VM + passthrough", config_factory(levels=2, io_model="passthrough")),
    (
        "Nested VM + DVH-VP",
        config_factory(levels=2, io_model="vp", dvh=DvhFeatures.vp_only()),
    ),
    (
        "Nested VM + DVH",
        config_factory(levels=2, io_model="vp", dvh=DvhFeatures.full()),
    ),
]

#: Figure 8: incremental DVH breakdown on the nested VM.
FIG8_CONFIGS: List[Tuple[str, Callable[[], StackConfig]]] = [
    ("native", config_factory(levels=0, io_model="native")),
    ("Nested VM", config_factory(levels=2, io_model="virtio")),
    (
        "Nested VM + DVH-VP",
        config_factory(levels=2, io_model="vp", dvh=DvhFeatures.vp_only()),
    ),
    (
        "+ posted interrupts",
        config_factory(
            levels=2,
            io_model="vp",
            dvh=DvhFeatures.vp_only().with_(viommu_posted_interrupts=True),
        ),
    ),
    (
        "+ virtual IPIs",
        config_factory(
            levels=2,
            io_model="vp",
            dvh=DvhFeatures.vp_only().with_(
                viommu_posted_interrupts=True, virtual_ipi=True
            ),
        ),
    ),
    (
        "+ virtual timers",
        config_factory(
            levels=2,
            io_model="vp",
            dvh=DvhFeatures.vp_only().with_(
                viommu_posted_interrupts=True,
                virtual_ipi=True,
                virtual_timer=True,
            ),
        ),
    ),
    (
        "+ virtual idle (= DVH)",
        config_factory(levels=2, io_model="vp", dvh=DvhFeatures.full()),
    ),
]

#: Figure 9: three levels of virtualization.
FIG9_CONFIGS: List[Tuple[str, Callable[[], StackConfig]]] = [
    ("native", config_factory(levels=0, io_model="native")),
    ("VM", config_factory(levels=1, io_model="virtio")),
    ("VM + passthrough", config_factory(levels=1, io_model="passthrough")),
    ("L3", config_factory(levels=3, io_model="virtio")),
    ("L3 + passthrough", config_factory(levels=3, io_model="passthrough")),
    ("L3 + DVH-VP", config_factory(levels=3, io_model="vp", dvh=DvhFeatures.vp_only())),
    ("L3 + DVH", config_factory(levels=3, io_model="vp", dvh=DvhFeatures.full())),
]

#: Figure 10: Xen as the guest hypervisor on a KVM host.  Only DVH-VP is
#: measured with Xen, since it needs no guest-hypervisor modifications
#: ("virtual-passthrough can be used without any guest hypervisor
#: modifications", §4).
FIG10_CONFIGS: List[Tuple[str, Callable[[], StackConfig]]] = [
    ("native", config_factory(levels=0, io_model="native")),
    ("VM", config_factory(levels=1, io_model="virtio")),
    ("VM + passthrough", config_factory(levels=1, io_model="passthrough")),
    ("Nested VM (Xen)", config_factory(levels=2, io_model="virtio", guest_hv="xen")),
    (
        "Nested VM + passthrough (Xen)",
        config_factory(levels=2, io_model="passthrough", guest_hv="xen"),
    ),
    (
        "Nested VM + DVH-VP (Xen)",
        config_factory(
            levels=2, io_model="vp", dvh=DvhFeatures.vp_only(), guest_hv="xen"
        ),
    ),
]

#: Named config sets, so parallel workers can rebuild a configuration
#: from a (set key, index) pair — the factories themselves close over
#: keyword arguments and do not pickle.
CONFIG_SETS = {
    "table3": TABLE3_CONFIGS,
    "7": FIG7_CONFIGS,
    "8": FIG8_CONFIGS,
    "9": FIG9_CONFIGS,
    "10": FIG10_CONFIGS,
}
