"""Per-workload exit analysis: *why* each configuration is slow.

The paper explains its figures in terms of which guest-hypervisor
interventions each workload triggers (Figure 8's narrative).  This
module measures it directly: run a workload under several
configurations and break the hardware exits and guest-hypervisor
interventions down per transaction and per reason.

    >>> from repro.bench.analysis import exit_breakdown, format_breakdown
    >>> print(format_breakdown(exit_breakdown("memcached")))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig, build_stack
from repro.workloads.apps import run_app

__all__ = ["BreakdownRow", "exit_breakdown", "format_breakdown", "DEFAULT_BREAKDOWN_CONFIGS"]

DEFAULT_BREAKDOWN_CONFIGS: List[Tuple[str, Callable[[], StackConfig]]] = [
    ("Nested VM", lambda: StackConfig(levels=2, io_model="virtio")),
    (
        "Nested VM + DVH",
        lambda: StackConfig(levels=2, io_model="vp", dvh=DvhFeatures.full()),
    ),
]


@dataclass
class BreakdownRow:
    """One configuration's exit profile for one workload."""

    config: str
    txns: int
    throughput: float
    unit: str
    #: reason -> hardware exits per transaction.
    exits_per_txn: Dict[str, float] = field(default_factory=dict)
    #: reason -> guest-hypervisor interventions per transaction.
    interventions_per_txn: Dict[str, float] = field(default_factory=dict)
    #: interrupt (kind, mode) -> per transaction.
    interrupts_per_txn: Dict[Tuple[str, str], float] = field(default_factory=dict)
    dvh_handled_per_txn: float = 0.0


def exit_breakdown(
    app: str,
    configs: Optional[List[Tuple[str, Callable[[], StackConfig]]]] = None,
    scale: float = 0.3,
    seed: int = 0,
) -> List[BreakdownRow]:
    """Measure the exit profile of ``app`` under each configuration."""
    rows: List[BreakdownRow] = []
    for name, factory in configs or DEFAULT_BREAKDOWN_CONFIGS:
        stack = build_stack(replace(factory(), seed=seed))
        stack.settle()
        before = stack.metrics.copy()
        result = run_app(stack, app, scale=scale)
        delta = stack.metrics.diff(before)
        n = max(result.txns, 1)
        row = BreakdownRow(
            config=name,
            txns=result.txns,
            throughput=result.value,
            unit=result.unit,
        )
        for (_lvl, reason), count in delta.exits.items():
            row.exits_per_txn[reason] = row.exits_per_txn.get(reason, 0.0) + count / n
        for (_lvl, reason, _owner), count in delta.forwards.items():
            row.interventions_per_txn[reason] = (
                row.interventions_per_txn.get(reason, 0.0) + count / n
            )
        for key, count in delta.interrupts.items():
            row.interrupts_per_txn[key] = count / n
        row.dvh_handled_per_txn = sum(delta.dvh_handled.values()) / n
        rows.append(row)
    return rows


def format_breakdown(rows: List[BreakdownRow], app: str = "") -> str:
    """Render the breakdown side by side."""
    reasons = sorted({r for row in rows for r in row.exits_per_txn})
    width = max((len(r.config) for r in rows), default=10) + 2
    lines = []
    if app:
        lines.append(f"Exit breakdown: {app} (per transaction)")
    header = f"{'exit reason':<18}" + "".join(f"{r.config:>{width}}" for r in rows)
    lines.append(header)
    for reason in reasons:
        cells = "".join(
            f"{row.exits_per_txn.get(reason, 0.0):>{width}.2f}" for row in rows
        )
        lines.append(f"{reason:<18}{cells}")
    lines.append(
        f"{'— forwarded':<18}"
        + "".join(
            f"{sum(row.interventions_per_txn.values()):>{width}.2f}" for row in rows
        )
    )
    lines.append(
        f"{'— DVH handled':<18}"
        + "".join(f"{row.dvh_handled_per_txn:>{width}.2f}" for row in rows)
    )
    lines.append(
        f"{'throughput':<18}"
        + "".join(f"{row.throughput:>{width},.0f}" for row in rows)
    )
    return "\n".join(lines)
