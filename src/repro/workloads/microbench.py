"""The paper's virtualization microbenchmarks (Table 1 / Table 3).

=============  =====================================================
Hypercall      VM -> hypervisor -> VM round trip, no work.
DevNotify      Virtio doorbell: MMIO write from the driver.
ProgramTimer   Program the LAPIC timer in TSC-deadline mode.
SendIPI        Send an IPI to an idle CPU, which must wake up and
               switch to the destination vCPU to receive it.
=============  =====================================================

Each returns average cycles per operation, directly comparable to the
paper's Table 3.
"""

from __future__ import annotations

from typing import Dict

from repro.hw.lapic import IPI_RESCHEDULE_VECTOR, TIMER_VECTOR
from repro.hw.ops import Op
from repro.hv.stack import Stack
from repro.metrics.hist import Histogram

__all__ = ["MICROBENCHMARKS", "run_microbenchmark", "run_all_microbenchmarks"]


def _bench_hypercall(stack: Stack, iterations: int) -> float:
    ctx = stack.ctx(0)
    sim = stack.sim

    def main():
        src = sim.ff.source("micro:hypercall")
        cap = stack.machine.request_capture
        start = sim.now
        left = iterations
        while left > 0:
            op_t0 = sim.now
            yield from ctx.execute(Op.VMCALL)
            if cap is not None:
                cap.observe(op_t0, op_t0, sim.now)
            left -= 1
            if left:
                left -= src.observe(left)
        return (sim.now - start) / iterations

    return sim.run_process(main(), "hypercall")


def _bench_devnotify(stack: Stack, iterations: int) -> float:
    ctx = stack.ctx(0)
    sim = stack.sim
    device = stack.net.device if hasattr(stack.net, "device") else None
    if device is None:
        raise ValueError("DevNotify needs a virtio network device")

    def main():
        src = sim.ff.source("micro:devnotify")
        cap = stack.machine.request_capture
        start = sim.now
        left = iterations
        while left > 0:
            op_t0 = sim.now
            yield from ctx.execute(
                Op.MMIO_WRITE,
                addr=device.notify_addr,
                value=device.tx.index,
                device=device,
            )
            if cap is not None:
                cap.observe(op_t0, op_t0, sim.now)
            left -= 1
            if left:
                left -= src.observe(left)
        return (sim.now - start) / iterations

    return sim.run_process(main(), "devnotify")


def _bench_program_timer(stack: Stack, iterations: int) -> float:
    ctx = stack.ctx(0)
    sim = stack.sim
    far = sim.cycles(0.05)  # deadline far enough not to fire mid-benchmark

    def main():
        src = sim.ff.source("micro:program-timer")
        cap = stack.machine.request_capture
        start = sim.now
        left = iterations
        while left > 0:
            op_t0 = sim.now
            yield from ctx.program_timer(ctx.read_tsc() + far, TIMER_VECTOR)
            if cap is not None:
                cap.observe(op_t0, op_t0, sim.now)
            left -= 1
            if left:
                left -= src.observe(left)
        return (sim.now - start) / iterations

    return sim.run_process(main(), "program-timer")


def _bench_send_ipi(stack: Stack, iterations: int) -> float:
    """Send + receive latency with the destination idle (Table 1)."""
    sender = stack.ctx(0)
    receiver = stack.ctx(1)
    sim = stack.sim
    cap = stack.machine.request_capture
    # Per-IPI latencies go straight into a histogram: the exact integer
    # sum/count make the mean byte-identical to the raw-list math this
    # replaced, without an unbounded list.
    hist = Histogram()
    received = {"event": sim.event()}

    def receiver_loop():
        for _ in range(iterations):
            yield from receiver.wait_for_interrupt()
            received["event"].trigger(sim.now)

    def sender_loop():
        yield 2000  # let the receiver reach its idle wait
        for _ in range(iterations):
            received["event"] = sim.event()
            start = sim.now
            yield from sender.send_ipi(receiver.index, IPI_RESCHEDULE_VECTOR)
            arrival = yield received["event"]
            hist.record(arrival - start)
            if cap is not None:
                cap.observe(start, start, arrival)
            yield 3000  # let the receiver settle back into idle

    sim.spawn(receiver_loop(), "ipi-rx")
    proc = sim.spawn(sender_loop(), "ipi-tx")
    sim.run()
    if not proc.done:
        raise RuntimeError("SendIPI benchmark deadlocked")
    return hist.mean()


MICROBENCHMARKS = {
    "Hypercall": _bench_hypercall,
    "DevNotify": _bench_devnotify,
    "ProgramTimer": _bench_program_timer,
    "SendIPI": _bench_send_ipi,
}


def run_microbenchmark(stack: Stack, name: str, iterations: int = 50) -> float:
    """Run one microbenchmark on a built stack; returns cycles per op."""
    try:
        bench = MICROBENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown microbenchmark {name!r}; choose from {sorted(MICROBENCHMARKS)}"
        ) from None
    return bench(stack, iterations)


def run_all_microbenchmarks(stack_factory, iterations: int = 50) -> Dict[str, float]:
    """Run every microbenchmark, each on a freshly built stack (so armed
    timers and counters don't leak between them)."""
    return {
        name: run_microbenchmark(stack_factory(), name, iterations)
        for name in MICROBENCHMARKS
    }
