"""Workloads: the paper's microbenchmarks (Table 1) and applications
(Table 2)."""

from repro.workloads.apps import APPLICATIONS, PAPER_NATIVE, app_names, run_app
from repro.workloads.engines import (
    AppResult,
    HackbenchSpec,
    RRSpec,
    StreamSpec,
    run_hackbench,
    run_rr,
    run_stream,
)
from repro.workloads.microbench import (
    MICROBENCHMARKS,
    run_all_microbenchmarks,
    run_microbenchmark,
)

__all__ = [
    "APPLICATIONS",
    "PAPER_NATIVE",
    "app_names",
    "run_app",
    "AppResult",
    "HackbenchSpec",
    "RRSpec",
    "StreamSpec",
    "run_hackbench",
    "run_rr",
    "run_stream",
    "MICROBENCHMARKS",
    "run_all_microbenchmarks",
    "run_microbenchmark",
]
