"""Workload engines: closed-loop request/response, bulk streaming, IPC.

Three engines cover the paper's seven application benchmarks (Table 2):

* :func:`run_rr` — closed-loop request/response with a remote client
  (netperf TCP_RR, Apache+ab, memcached+memtier, MySQL+SysBench);
* :func:`run_stream` — bulk transfer in either direction with windowed
  flow control (netperf TCP_STREAM / TCP_MAERTS);
* :func:`run_hackbench` — pure scheduler/IPC load, no network.

Engines drive the *real* simulated datapaths: driver rings, doorbell
exits, backend relays, interrupt chains, timers, IPIs and idle all take
their configuration-dependent costs, so the Figure 7/8/9/10 shapes
emerge from the same mechanisms as in the paper.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, List

from repro.hw.lapic import IPI_RESCHEDULE_VECTOR, VIRTIO_VECTOR_BASE
from repro.metrics.hist import Histogram, exact_percentile

__all__ = ["RRSpec", "StreamSpec", "HackbenchSpec", "AppResult",
           "run_rr", "run_stream", "run_hackbench"]

#: Protocol (Ethernet+IP+TCP) header overhead on the wire.
WIRE_OVERHEAD = 1.062
#: Far-future timer deadline used by re-arming paths (10 ms).
TIMER_HORIZON_S = 0.010


@dataclass
class AppResult:
    """Outcome of one workload run."""

    name: str
    value: float
    unit: str
    higher_is_better: bool
    elapsed_s: float
    txns: int
    #: Per-transaction client-observed latencies in cycles (closed-loop
    #: request/response workloads only; empty otherwise).
    latencies: List[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.latencies is None:
            self.latencies = []

    def latency_percentile(self, p: float) -> float:
        """Client-observed transaction latency percentile, in seconds
        (assumes the 2.2 GHz simulated clock).  The nearest-rank math
        lives in :func:`repro.metrics.hist.exact_percentile`."""
        if not self.latencies:
            raise ValueError(f"{self.name} recorded no latencies")
        return exact_percentile(self.latencies, p) / 2.2e9

    @property
    def mean_latency_s(self) -> float:
        if not self.latencies:
            raise ValueError(f"{self.name} recorded no latencies")
        return sum(self.latencies) / len(self.latencies) / 2.2e9

    def latency_histogram(self) -> Histogram:
        """The recorded latencies bucketed into a mergeable
        :class:`~repro.metrics.hist.Histogram` (cycles)."""
        hist = Histogram()
        for lat in self.latencies:
            hist.record(lat)
        return hist

    def overhead_vs(self, native: "AppResult") -> float:
        """The paper's Figure 7 y-axis: performance overhead relative to
        native execution (1.0 = native speed; lower is better).

        Elapsed-time metrics are normalized per transaction so runs with
        different (scaled) transaction counts compare correctly.
        """
        if self.higher_is_better:
            return native.value / self.value
        return (self.value / self.txns) / (native.value / native.txns)


# ======================================================================
# Request/response engine
# ======================================================================
@dataclass
class RRSpec:
    """A closed-loop request/response workload."""

    name: str
    txns: int
    concurrency: int
    queries_per_txn: int = 1
    request_size: int = 64
    response_size: int = 64
    response_seg: int = 16384  # segmentation of large responses
    kick_every: int = 1  # TX doorbell batching
    acks_per_query: int = 0  # bare TCP ACK segments sent per query
    compute: int = 6000  # worker cycles per query
    ipi_rate: float = 0.0  # IPIs per query (wakeups, locking)
    timer_rate: float = 1.0  # timer programmings per query
    blk_per_txn: int = 0  # flush-writes at transaction end (MySQL)
    blk_size: int = 16384
    workers: int = 4
    unit: str = "trans/s"
    higher_is_better: bool = True
    metric: str = "tps"  # or "elapsed"
    #: Arrival model: "closed" (each completion triggers the next
    #: transaction — the classic netperf shape) or "poisson" (open
    #: loop: transactions arrive at ``offered_tps`` regardless of
    #: completions, so queueing delay shows up in the latency tail —
    #: the million-user model a closed loop structurally hides).
    arrival: str = "closed"
    offered_tps: float = 0.0  # open-loop offered load, transactions/s


class _RRState:
    __slots__ = (
        "done",
        "done_event",
        "completed",
        "next_txn",
        "started",
        "t0",
        "rx_bytes",
        "txn_start",
        "txn_enqueue",
        "pending",
        "outstanding",
        "latencies",
    )

    def __init__(self, sim):
        self.done = False
        self.done_event = sim.event("rr-done")
        self.completed = 0
        self.next_txn = 0
        self.started = 0
        self.t0 = 0
        self.rx_bytes: Dict[int, int] = {}  # txn -> response bytes seen
        self.txn_start: Dict[int, int] = {}  # txn -> first-query send time
        self.txn_enqueue: Dict[int, int] = {}  # txn -> arrival time (open loop)
        self.pending: Deque[int] = deque()  # arrival times awaiting a slot
        self.outstanding = 0  # transactions in flight (open loop)
        self.latencies: List[int] = []


def run_rr(stack, spec: RRSpec, settle: bool = True) -> AppResult:
    """Run a request/response workload on a built stack.

    ``settle=False`` skips the initial drain — use when other processes
    (e.g. a live migration) must run concurrently with the workload."""
    sim = stack.sim
    machine = stack.machine
    costs = machine.costs
    net = stack.net
    workers = min(spec.workers, len(stack.ctxs))
    state = _RRState(sim)
    if spec.arrival not in ("closed", "poisson"):
        raise ValueError(f"unknown arrival model {spec.arrival!r}")
    open_loop = spec.arrival == "poisson"
    if open_loop and spec.offered_tps <= 0:
        raise ValueError("poisson arrivals need offered_tps > 0")
    #: Request-lifecycle capture, or None = off (the default): every
    #: observation below is behind a None check, so the off path does
    #: no extra work — same zero-cost contract as span tracing.
    cap = machine.request_capture

    # RSS: queue i -> worker i.
    for i in range(workers):
        net.bind_queue(i, stack.ctxs[i], VIRTIO_VECTOR_BASE + i)

    # Steady-state fast-forward: transaction completions are the epoch
    # boundaries.  Only the strictly periodic shape is eligible — a
    # single closed loop, one worker, one query per transaction, and
    # integer per-query IPI/timer rates (fractional credit accumulators
    # carry hidden state across transactions, so consecutive epochs are
    # not identical even when two adjacent deltas match).
    ff = sim.ff
    ff_src = None
    if (
        ff.enabled
        and spec.arrival == "closed"
        and spec.concurrency == 1
        and workers == 1
        and spec.queries_per_txn == 1
        and spec.blk_per_txn == 0
        and float(spec.ipi_rate).is_integer()
        and float(spec.timer_rate).is_integer()
    ):
        ff_src = ff.source(f"rr:{spec.name}")

    # ------------------------------------------------------------------
    # Client (remote machine, never the bottleneck)
    # ------------------------------------------------------------------
    def send_query(txn_id: int, q_idx: int) -> None:
        machine.client.send(
            stack.flow,
            spec.request_size,
            payload=("req", txn_id, q_idx),
            queue_hint=txn_id % workers,
        )

    def start_txn() -> None:
        if state.started >= spec.txns:
            return
        if ff_src is not None and state.latencies:
            # Transaction *starts* are the epoch boundaries: in the
            # halt-wake phase of the cycle the server worker is parked
            # on its wakeup event here (nothing of the steady state
            # sits live on the heap), so whole cycles can be skipped.
            # On a skip the clock and metrics have already advanced;
            # replay the client-side bookkeeping: skipped transactions
            # consume ids and record the fingerprinted latencies, so
            # the tail transactions run micro-step with the same ids a
            # full run would use.
            n = ff_src.observe(
                spec.txns - state.completed, extra=state.latencies[-1]
            )
            if n:
                state.completed += n
                state.next_txn += n
                state.started += n
                state.latencies.extend(ff_src.skipped_extras)
        txn_id = state.next_txn
        state.next_txn += 1
        state.started += 1
        state.txn_start[txn_id] = sim.now
        send_query(txn_id, 0)

    # ------------------------------------------------------------------
    # Open-loop (Poisson) arrivals: transactions arrive on their own
    # clock; at most ``concurrency`` are in flight, the rest queue at
    # the client with their arrival time — so the latency a request
    # observes includes the time it spent waiting for a slot.
    # ------------------------------------------------------------------
    def dispatch(enqueue_at: int) -> None:
        txn_id = state.next_txn
        state.next_txn += 1
        state.started += 1
        state.txn_enqueue[txn_id] = enqueue_at
        state.txn_start[txn_id] = sim.now
        send_query(txn_id, 0)

    def arrive() -> None:
        if state.done:
            return
        if state.outstanding < spec.concurrency:
            state.outstanding += 1
            dispatch(sim.now)
        else:
            state.pending.append(sim.now)

    def on_response(packet) -> None:
        kind, txn_id, q_idx = packet.payload
        if kind != "resp":
            return  # bare ACK segments carry no transaction progress
        seen = state.rx_bytes.get(txn_id, 0) + packet.size
        state.rx_bytes[txn_id] = seen
        if seen < spec.response_size:
            return  # more segments of this response to come
        state.rx_bytes[txn_id] = 0
        if q_idx + 1 < spec.queries_per_txn:
            sim.call_after(
                costs.client_turnaround, lambda: send_query(txn_id, q_idx + 1)
            )
            return
        state.completed += 1
        start = state.txn_start.pop(txn_id, sim.now)
        enq = state.txn_enqueue.pop(txn_id, start) if open_loop else start
        state.latencies.append(sim.now - enq)
        if cap is not None:
            cap.observe(enq, start, sim.now)
        if state.completed >= spec.txns:
            state.done = True
            state.done_event.trigger(sim.now)
            for ctx in stack.ctxs[:workers]:
                ctx.lapic.set_irr(IPI_RESCHEDULE_VECTOR)
                ctx.pcpu.wake()
        elif open_loop:
            state.outstanding -= 1
            if state.pending:
                state.outstanding += 1
                queued_at = state.pending.popleft()
                sim.call_after(
                    costs.client_turnaround, lambda: dispatch(queued_at)
                )
        else:
            sim.call_after(costs.client_turnaround, start_txn)

    machine.client.on_receive(stack.flow, on_response)

    # ------------------------------------------------------------------
    # Server workers
    # ------------------------------------------------------------------
    timer_horizon = sim.cycles(TIMER_HORIZON_S)

    def worker(i: int) -> Generator:
        ctx = stack.ctxs[i]
        ipi_credit = 0.0
        timer_credit = 0.0
        while not state.done:
            # NAPI-style: poll first, sleep only when the queue is empty
            # (interrupts may have been consumed while blocked on I/O).
            msgs = yield from net.poll_rx(queue=i, ctx=ctx)
            if not msgs:
                yield from ctx.wait_for_interrupt()
                if state.done:
                    break
                yield from ctx.irq_work()
                continue
            for _size, payload in msgs:
                if not payload or payload[0] != "req":
                    continue
                _kind, txn_id, q_idx = payload
                yield from ctx.compute(spec.compute)
                ipi_credit += spec.ipi_rate
                while ipi_credit >= 1.0:
                    ipi_credit -= 1.0
                    yield from ctx.send_ipi(
                        (i + 1) % workers, IPI_RESCHEDULE_VECTOR
                    )
                timer_credit += spec.timer_rate
                while timer_credit >= 1.0:
                    timer_credit -= 1.0
                    yield from ctx.program_timer(ctx.read_tsc() + timer_horizon)
                for _ in range(spec.acks_per_query):
                    yield from net.send(
                        64, payload=("ack", txn_id, q_idx), kick=True,
                        queue=i, ctx=ctx,
                    )
                if spec.blk_per_txn and q_idx == spec.queries_per_txn - 1:
                    for _ in range(spec.blk_per_txn):
                        req = yield from stack.blk.submit(
                            "write", spec.blk_size, ctx=ctx
                        )
                        yield from stack.blk.wait_for(req, ctx=ctx)
                        flush = yield from stack.blk.submit("flush", 0, ctx=ctx)
                        yield from stack.blk.wait_for(flush, ctx=ctx)
                # Response, segmented, with batched doorbells.
                remaining = spec.response_size
                seg_idx = 0
                while remaining > 0:
                    seg = min(spec.response_seg, remaining)
                    remaining -= seg
                    seg_idx += 1
                    kick = (seg_idx % spec.kick_every == 0) or remaining <= 0
                    yield from net.send(
                        seg,
                        payload=("resp", txn_id, q_idx),
                        kick=kick,
                        queue=i,
                        ctx=ctx,
                    )

    # ------------------------------------------------------------------
    if settle:
        stack.settle()
    state.t0 = sim.now
    for i in range(workers):
        sim.spawn(worker(i), f"{spec.name}-w{i}")
    if open_loop:
        # Draw the whole arrival schedule up front (like the control
        # plane draws its randomness in construction): the generator is
        # derived from the simulator's seeded stream, so the schedule
        # is a pure function of the run's seed.
        arrivals = random.Random(sim.rng.getrandbits(64))
        when = sim.now
        for _ in range(spec.txns):
            when += max(1, sim.cycles(arrivals.expovariate(spec.offered_tps)))
            sim.call_at(when, arrive)
    else:
        for _ in range(spec.concurrency):
            start_txn()
    sim.run()
    if not state.done:
        raise RuntimeError(f"{spec.name}: workload did not complete")
    elapsed = sim.seconds(state.done_event.value - state.t0)
    if spec.metric == "elapsed":
        value = elapsed
    else:
        value = spec.txns / elapsed
    return AppResult(
        name=spec.name,
        value=value,
        unit=spec.unit,
        higher_is_better=spec.higher_is_better,
        elapsed_s=elapsed,
        txns=spec.txns,
        latencies=state.latencies,
    )


# ======================================================================
# Streaming engine (TCP_STREAM / TCP_MAERTS)
# ======================================================================
@dataclass
class StreamSpec:
    """Bulk one-way transfer with windowed flow control."""

    name: str
    direction: str  # "rx" (STREAM: client->server) or "tx" (MAERTS)
    msgs: int = 600
    msg_size: int = 16384
    ack_every: int = 2  # ACK (or window update) per this many msgs
    compute_per_msg: int = 1500
    window: int = 262144  # in-flight byte limit
    unit: str = "Mb/s"
    higher_is_better: bool = True


def run_stream(stack, spec: StreamSpec) -> AppResult:
    sim = stack.sim
    machine = stack.machine
    net = stack.net
    ctx = stack.ctxs[0]
    state: Dict[str, Any] = {
        "done": False,
        "done_at": 0,
        "rx_msgs": 0,
        "rx_bytes": 0,
        "in_flight": 0,
        "sent": 0,
        "acked_msgs": 0,
    }
    done_event = sim.event("stream-done")
    # Per-message send -> processed latency capture (None = off; the
    # send-time dict is only populated when capture is on).
    cap = machine.request_capture
    sent_at: Dict[int, int] = {}

    def finish() -> None:
        state["done"] = True
        state["done_at"] = sim.now
        done_event.trigger(sim.now)
        ctx.lapic.set_irr(IPI_RESCHEDULE_VECTOR)
        ctx.pcpu.wake()

    if spec.direction == "rx":
        # Client streams to the server, self-clocked by the wire.
        def pump() -> None:
            if state["sent"] >= spec.msgs or state["done"]:
                return
            if state["in_flight"] >= spec.window:
                return
            state["sent"] += 1
            state["in_flight"] += spec.msg_size
            if cap is not None:
                sent_at[state["sent"]] = sim.now
            machine.client.send(
                stack.flow,
                spec.msg_size,
                payload=("data", state["sent"]),
                wire_size=int(spec.msg_size * WIRE_OVERHEAD),
            )
            machine.sim.call_after(1, pump)

        def on_ack(packet) -> None:
            # Each ACK covers ack_every messages.
            state["in_flight"] = max(
                0, state["in_flight"] - spec.ack_every * spec.msg_size
            )
            pump()

        machine.client.on_receive(stack.flow, on_ack)

        def server() -> Generator:
            unacked = 0
            while not state["done"]:
                yield from ctx.wait_for_interrupt()
                if state["done"]:
                    break
                yield from ctx.irq_work()
                msgs = yield from net.poll_rx(queue=0, ctx=ctx)
                for size, payload in msgs:
                    if not payload or payload[0] != "data":
                        continue
                    yield from ctx.compute(spec.compute_per_msg)
                    state["rx_msgs"] += 1
                    state["rx_bytes"] += size
                    if cap is not None:
                        sent = sent_at.pop(payload[1], sim.now)
                        cap.observe(sent, sent, sim.now)
                    unacked += 1
                    if unacked >= spec.ack_every or state["rx_msgs"] >= spec.msgs:
                        unacked = 0
                        yield from net.send(
                            64, payload=("ack", state["rx_msgs"]), kick=True,
                            queue=0, ctx=ctx,
                        )
                    if state["rx_msgs"] >= spec.msgs:
                        finish()
                        break

        stack.settle()
        t0 = sim.now
        sim.spawn(server(), f"{spec.name}-server")
        pump()
        sim.run()
        if not state["done"]:
            raise RuntimeError(f"{spec.name}: stream did not complete")
        elapsed = sim.seconds(state["done_at"] - t0)
        mbps = state["rx_bytes"] * 8 / 1e6 / elapsed

    else:  # "tx" — MAERTS: server -> client
        def on_client_rx(packet) -> None:
            if packet.payload and packet.payload[0] == "data":
                state["rx_msgs"] += 1
                state["rx_bytes"] += packet.size
                if cap is not None:
                    sent = sent_at.pop(packet.payload[1], sim.now)
                    cap.observe(sent, sent, sim.now)
                if state["rx_msgs"] % spec.ack_every == 0:
                    machine.client.send(
                        stack.flow, 64, payload=("ack", state["rx_msgs"])
                    )
                if state["rx_msgs"] >= spec.msgs:
                    finish()

        machine.client.on_receive(stack.flow, on_client_rx)

        def server() -> Generator:
            while state["sent"] < spec.msgs and not state["done"]:
                if state["in_flight"] + spec.msg_size > spec.window:
                    yield from ctx.wait_for_interrupt()
                    if state["done"]:
                        break
                    yield from ctx.irq_work()
                    acked = yield from net.poll_rx(queue=0, ctx=ctx)
                    for _size, payload in acked:
                        if payload and payload[0] == "ack":
                            state["in_flight"] = max(
                                0,
                                state["in_flight"]
                                - spec.ack_every * spec.msg_size,
                            )
                    continue
                state["sent"] += 1
                state["in_flight"] += spec.msg_size
                if cap is not None:
                    sent_at[state["sent"]] = sim.now
                yield from ctx.compute(spec.compute_per_msg)
                yield from net.send(
                    spec.msg_size,
                    payload=("data", state["sent"]),
                    kick=True,
                    queue=0,
                    ctx=ctx,
                )

        stack.settle()
        t0 = sim.now
        sim.spawn(server(), f"{spec.name}-server")
        sim.run()
        if not state["done"]:
            raise RuntimeError(f"{spec.name}: stream did not complete")
        elapsed = sim.seconds(state["done_at"] - t0)
        mbps = state["rx_bytes"] * 8 / 1e6 / elapsed

    return AppResult(
        name=spec.name,
        value=mbps,
        unit=spec.unit,
        higher_is_better=spec.higher_is_better,
        elapsed_s=elapsed,
        txns=spec.msgs,
    )


# ======================================================================
# Hackbench engine (scheduler/IPC, no network)
# ======================================================================
@dataclass
class HackbenchSpec:
    """Pure IPC/scheduling load: groups of senders/receivers exchanging
    messages over sockets — CPU work, wakeup IPIs, and idle blocking."""

    name: str = "hackbench"
    items: int = 1200
    item_cycles: int = 20000
    block_every: int = 3  # a worker blocks after this many items
    workers: int = 4
    unit: str = "seconds"
    higher_is_better: bool = False


def run_hackbench(stack, spec: HackbenchSpec) -> AppResult:
    sim = stack.sim
    workers = min(spec.workers, len(stack.ctxs))
    state: Dict[str, Any] = {"remaining": spec.items, "waiting": set(), "active": workers}
    cap = stack.machine.request_capture

    def wake_all_waiting() -> None:
        for w in list(state["waiting"]):
            state["waiting"].discard(w)
            ctx = stack.ctxs[w]
            ctx.lapic.set_irr(IPI_RESCHEDULE_VECTOR)
            ctx.pcpu.wake()

    def worker(i: int) -> Generator:
        ctx = stack.ctxs[i]
        processed = 0
        while state["remaining"] > 0:
            state["remaining"] -= 1
            item_t0 = sim.now
            yield from ctx.compute(spec.item_cycles)
            if cap is not None:
                cap.observe(item_t0, item_t0, sim.now)
            processed += 1
            # Writing into the peer's socket wakes it if it was blocked.
            nxt = (i + 1) % workers
            if nxt in state["waiting"]:
                state["waiting"].discard(nxt)
                yield from ctx.send_ipi(nxt, IPI_RESCHEDULE_VECTOR)
            # Periodically this worker's own socket runs dry: block.
            if (
                processed % spec.block_every == 0
                and state["remaining"] > 0
                and len(state["waiting"]) < workers - 1
            ):
                state["waiting"].add(i)
                yield from ctx.wait_for_interrupt()
                state["waiting"].discard(i)
        state["active"] -= 1
        wake_all_waiting()

    stack.settle()
    t0 = sim.now
    procs = [sim.spawn(worker(i), f"hackbench-w{i}") for i in range(workers)]
    sim.run()
    if any(not p.done for p in procs):
        raise RuntimeError("hackbench deadlocked")
    elapsed = sim.seconds(sim.now - t0)
    return AppResult(
        name=spec.name,
        value=elapsed,
        unit=spec.unit,
        higher_is_better=False,
        elapsed_s=elapsed,
        txns=spec.items,
    )
