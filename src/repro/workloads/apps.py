"""The paper's application benchmarks (Table 2), parameterized.

Each spec's *operation mix* — doorbells, interrupts, IPIs, timer
programmings, idle transitions, block flushes per transaction — is
calibrated once against the paper's **native** baselines (§4) and the
VM-level overheads of Figure 7; every other configuration (nested,
passthrough, DVH...) is then pure prediction by the simulator.

Paper native baselines (§4): netperf RR 45,578 trans/s; STREAM 9,413
Mb/s; MAERTS 9,414 Mb/s; Apache 15,469 trans/s; memcached 354,132
trans/s; MySQL 4.45 s; hackbench 10.36 s.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.workloads.engines import (
    AppResult,
    HackbenchSpec,
    RRSpec,
    StreamSpec,
    run_hackbench,
    run_rr,
    run_stream,
)

__all__ = ["APPLICATIONS", "PAPER_NATIVE", "run_app", "app_names"]

#: The paper's native-execution results (§4).
PAPER_NATIVE: Dict[str, float] = {
    "netperf_rr": 45_578.0,  # trans/s
    "netperf_stream": 9_413.0,  # Mb/s
    "netperf_maerts": 9_414.0,  # Mb/s
    "apache": 15_469.0,  # trans/s
    "memcached": 354_132.0,  # trans/s
    "mysql": 4.45,  # seconds (lower is better)
    "hackbench": 10.36,  # seconds (lower is better)
}

#: netperf TCP_RR: single-stream 1-byte ping-pong.  Latency-bound: every
#: transaction wakes the server from idle, re-arms TCP timers, and sends
#: one response.
NETPERF_RR = RRSpec(
    name="netperf_rr",
    txns=300,
    concurrency=1,
    request_size=64,
    response_size=64,
    compute=8_000,
    timer_rate=2.0,  # delayed-ACK + retransmit timer re-arms
    ipi_rate=0.0,
    kick_every=1,
    acks_per_query=1,  # the request's TCP ACK segment
    workers=1,
)

#: Apache serving the 41 KB GCC manual page to ab with 10 concurrent
#: connections: compute-heavy per request plus a burst of MTU segments,
#: worker wakeup IPIs, and TCP timer traffic.
APACHE = RRSpec(
    name="apache",
    txns=160,
    concurrency=10,
    request_size=300,
    response_size=41_000,
    response_seg=1_448,
    kick_every=2,
    compute=450_000,
    ipi_rate=10.0,
    timer_rate=6.0,
    workers=4,
)

#: memcached under memtier: tiny requests at very high rate — virtually
#: all overhead is the device-notification and interrupt path.
MEMCACHED = RRSpec(
    name="memcached",
    txns=1_200,
    concurrency=64,
    request_size=70,
    response_size=1_024,
    response_seg=1_448,
    kick_every=1,
    compute=23_000,
    ipi_rate=0.15,
    timer_rate=0.1,
    workers=4,
)

#: SysBench OLTP against MySQL: ~20 query round trips per transaction
#: plus a synchronous redo-log write+flush at commit.
MYSQL = RRSpec(
    name="mysql",
    txns=48,
    concurrency=8,
    queries_per_txn=20,
    request_size=200,
    response_size=600,
    compute=45_000,
    ipi_rate=0.3,
    timer_rate=0.5,
    blk_per_txn=1,
    blk_size=16_384,
    workers=4,
    metric="elapsed",
    unit="seconds",
    higher_is_better=False,
)

#: netperf TCP_STREAM: client -> server bulk transfer, GRO-batched.
NETPERF_STREAM = StreamSpec(
    name="netperf_stream",
    direction="rx",
    msgs=500,
    msg_size=16_384,
    ack_every=2,
    compute_per_msg=1_500,
)

#: netperf TCP_MAERTS: server -> client bulk transfer; TX-kick heavy.
NETPERF_MAERTS = StreamSpec(
    name="netperf_maerts",
    direction="tx",
    msgs=600,
    msg_size=8_192,
    ack_every=4,
    compute_per_msg=1_200,
)

#: hackbench: 100 process groups x 500 loops over Unix sockets — pure
#: scheduling: compute, wakeup IPIs, and idle blocking, no I/O.
HACKBENCH = HackbenchSpec(
    name="hackbench",
    items=1_200,
    item_cycles=20_000,
    block_every=3,
    workers=4,
)

APPLICATIONS: Dict[str, object] = {
    "netperf_rr": NETPERF_RR,
    "netperf_stream": NETPERF_STREAM,
    "netperf_maerts": NETPERF_MAERTS,
    "apache": APACHE,
    "memcached": MEMCACHED,
    "mysql": MYSQL,
    "hackbench": HACKBENCH,
}


def app_names() -> list:
    """The seven applications in the paper's figure order."""
    return [
        "netperf_rr",
        "netperf_stream",
        "netperf_maerts",
        "apache",
        "memcached",
        "mysql",
        "hackbench",
    ]


def run_app(
    stack,
    name: str,
    scale: float = 1.0,
    arrival: str = "closed",
    offered_tps: float = 0.0,
) -> AppResult:
    """Run one application benchmark on a built stack.

    ``scale`` shrinks the simulated transaction count (deterministic
    simulation converges fast; deep-nesting configs use smaller counts to
    bound wall-clock time).  Throughput/elapsed-per-transaction metrics
    are unaffected by the count except for edge effects.

    ``arrival="poisson"`` switches request/response applications to an
    open-loop client offering ``offered_tps`` transactions per simulated
    second (see :class:`~repro.workloads.engines.RRSpec`) — queueing
    delay then lands in the latency tail instead of throttling offered
    load.  Only request/response apps have an arrival process.
    """
    try:
        spec = APPLICATIONS[name]
    except KeyError:
        raise ValueError(f"unknown application {name!r}; choose from {app_names()}")
    if arrival != "closed" and not isinstance(spec, RRSpec):
        raise ValueError(
            f"arrival={arrival!r} needs a request/response app; "
            f"{name!r} has no arrival process"
        )
    if isinstance(spec, RRSpec):
        if scale != 1.0:
            spec = replace(spec, txns=max(8, int(spec.txns * scale)))
        if arrival != "closed":
            spec = replace(spec, arrival=arrival, offered_tps=offered_tps)
        return run_rr(stack, spec)
    if isinstance(spec, StreamSpec):
        if scale != 1.0:
            spec = replace(spec, msgs=max(40, int(spec.msgs * scale)))
        return run_stream(stack, spec)
    assert isinstance(spec, HackbenchSpec)
    if scale != 1.0:
        spec = replace(spec, items=max(80, int(spec.items * scale)))
    return run_hackbench(stack, spec)
