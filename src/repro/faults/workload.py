"""Loss-tolerant privileged-operation workload for fault runs.

The regular application engines assume a reliable datapath (every
request eventually gets its response).  Under injected faults that
assumption is exactly what we break, so fault campaigns drive this
*op soup* instead: every worker executes a seed-determined interleaving
of privileged operations — hypercalls, doorbells, timer programmings,
IPIs, idle blocking, ring polling — none of which ever waits on a
specific packet.  Blocking waits always arm a safety timer first, so a
dropped interrupt costs latency, never liveness.

The interleavings cover the trap chains the paper's mechanisms
shorten: each op lands in L0's exit dispatcher and is either emulated
there (DVH) or forwarded up the hypervisor stack, so a fuzzed schedule
of ops *is* a fuzzed schedule of trap chains through native/L1/L2/L3.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List, Optional

from repro.hw.lapic import IPI_RESCHEDULE_VECTOR, TIMER_VECTOR, VIRTIO_VECTOR_BASE
from repro.hw.ops import Op

__all__ = ["run_fault_workload", "OPS"]

#: Safety-timer horizon for blocking waits (must survive a dropped
#: wakeup: generous but bounded).
SAFETY_TIMER_CYCLES = 400_000

#: The op vocabulary with selection weights (roughly matching how often
#: real guests perform each privileged operation).
OPS = (
    ("hypercall", 3),
    ("cpuid", 2),
    ("send", 4),
    ("timer", 3),
    ("ipi", 2),
    ("block", 3),
    ("poll", 3),
)


def _weighted_ops(rng: random.Random, n: int) -> List[str]:
    names = [name for name, _ in OPS]
    weights = [w for _, w in OPS]
    return rng.choices(names, weights=weights, k=n)


def run_fault_workload(
    stack,
    ops_per_worker: int = 30,
    seed: int = 0,
    workers: Optional[int] = None,
    settle: bool = True,
) -> Dict[str, int]:
    """Run the op soup on a built stack; returns op counts actually
    executed.  Deterministic: op schedules come from ``seed`` alone and
    never from the simulator's generator.

    Raises ``RuntimeError`` if any worker fails to finish — under the
    safety-timer discipline that can only mean a genuinely lost wakeup,
    which is exactly what fuzz invariants want to surface.
    """
    sim = stack.sim
    machine = stack.machine
    net = stack.net
    nworkers = workers if workers is not None else len(stack.ctxs)
    nworkers = min(nworkers, len(stack.ctxs))
    executed: Dict[str, int] = {name: 0 for name, _ in OPS}

    # RSS so each worker owns its queue (mirrors the app engines).
    for i in range(nworkers):
        if hasattr(net, "bind_queue"):
            net.bind_queue(i, stack.ctxs[i], VIRTIO_VECTOR_BASE + i)

    # The client echoes a small reply per soup packet, driving the RX
    # half of every datapath.  Nobody *waits* for an echo, so losing
    # one (or all) is harmless.
    def echo(packet) -> None:
        payload = packet.payload
        if payload and isinstance(payload, tuple) and payload[0] == "soup":
            machine.client.send(
                stack.flow,
                64,
                payload=("echo",) + tuple(payload[1:]),
                queue_hint=payload[1] % nworkers,
            )

    machine.client.on_receive(stack.flow, echo)

    def worker(i: int) -> Generator:
        ctx = stack.ctxs[i]
        rng = random.Random(seed * 1_000_003 + i * 8_191 + 17)
        schedule = _weighted_ops(rng, ops_per_worker)
        timer_horizon = SAFETY_TIMER_CYCLES
        for op in schedule:
            executed[op] += 1
            if op == "hypercall":
                yield from ctx.execute(Op.VMCALL)
            elif op == "cpuid":
                yield from ctx.execute(Op.CPUID)
            elif op == "send":
                size = rng.choice((64, 512, 1448, 4096))
                yield from net.send(
                    size,
                    payload=("soup", i, executed[op]),
                    kick=True,
                    queue=min(i, _num_queues(net) - 1),
                    ctx=ctx,
                )
            elif op == "timer":
                yield from ctx.program_timer(
                    ctx.read_tsc() + rng.randrange(50_000, 1_000_000),
                    TIMER_VECTOR,
                )
            elif op == "ipi":
                target = (i + 1 + rng.randrange(max(1, nworkers - 1))) % nworkers
                if target != i:
                    yield from ctx.send_ipi(target, IPI_RESCHEDULE_VECTOR)
            elif op == "block":
                # Arm the safety timer *before* blocking: a dropped
                # device interrupt then costs one timer period, never
                # liveness.
                yield from ctx.program_timer(
                    ctx.read_tsc() + timer_horizon, TIMER_VECTOR
                )
                yield from ctx.wait_for_interrupt()
                yield from ctx.irq_work()
            elif op == "poll":
                yield from net.poll_rx(
                    queue=min(i, _num_queues(net) - 1), ctx=ctx
                )
            yield from ctx.compute(rng.randrange(1_000, 20_000))

    if settle:
        stack.settle()
    procs = [
        sim.spawn(worker(i), f"fault-soup-w{i}") for i in range(nworkers)
    ]
    sim.run()
    stuck = [p.name for p in procs if not p.done]
    if stuck:
        raise RuntimeError(f"fault workload stranded workers: {stuck}")
    return executed


def _num_queues(net) -> int:
    device = getattr(net, "device", None)
    if device is not None:
        return device.num_queue_pairs
    return len(getattr(net, "_rx", {0: None}))
