"""repro.faults — deterministic fault injection and trap-chain fuzzing.

The subsystem has three parts (see docs/faults.md):

* :mod:`repro.faults.plan` / :mod:`repro.faults.injector` — declarative,
  seed-reproducible fault plans and the injector that turns them into
  hook installs and scheduled events on one machine;
* hypervisor *hardening* living in the subsystems themselves (bounded
  migration retries, virtio notification-timeout requeues,
  malformed-descriptor drops, DMA aborts, DVH capability fallback), all
  counted in :class:`repro.metrics.Metrics`;
* :mod:`repro.faults.fuzz` — NecoFuzz-style trap-chain fuzzing with
  per-episode invariants and byte-identical replay.
"""

from repro.faults.chains import ChainTracker
from repro.faults.fuzz import (
    CampaignResult,
    EpisodeResult,
    TrapChainFuzzer,
    build_faulted_stack,
    check_invariants,
    state_digest,
)
from repro.faults.injector import FaultInjector, degrade_config
from repro.faults.plan import FaultClass, FaultPlan, FaultSpec
from repro.faults.report import render_campaign, render_plan_run
from repro.faults.workload import run_fault_workload

__all__ = [
    "ChainTracker",
    "FaultClass",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "degrade_config",
    "TrapChainFuzzer",
    "EpisodeResult",
    "CampaignResult",
    "build_faulted_stack",
    "check_invariants",
    "state_digest",
    "run_fault_workload",
    "render_campaign",
    "render_plan_run",
]
