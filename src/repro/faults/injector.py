"""The fault injector: turns a :class:`FaultPlan` into hook installs
and scheduled events on one machine.

Design rules that make injection deterministic and non-perturbing:

* The injector owns its **own** ``random.Random(seed)``; it never
  touches the simulator's generator, so the workload's random choices
  are identical with and without faults.
* Hooks are only installed for fault classes the plan actually
  contains, and randomness is only consumed when a hook fires.  An
  empty plan therefore leaves the machine bit-for-bit untouched.
* Point faults (spurious interrupts, ring corruption) are scheduled on
  the simulation clock at attach time, so their firing times are a pure
  function of ``(plan, seed)``.

Recovery paths exercised by the injector's faults:

* lost kicks -> a one-shot notification-timeout probe calls the
  backend's ``requeue_lost_notification`` (counted ``virtio_requeue``);
* malformed descriptors -> hardened backends complete them with zero
  bytes (``virtio_malformed_drop``);
* injected IOMMU faults -> DMA aborts, device stays alive
  (``dma_abort``);
* migration link flaps -> bounded retry-with-backoff in
  :class:`~repro.core.migration.LiveMigration` (``migration_retry``);
* faulted DVH capability bits -> :func:`degrade_config` falls back to
  the paravirtual I/O model (``dvh_fallback``).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import List, Optional

from repro.core.features import fallback_io_model, negotiate
from repro.faults.plan import FaultClass, FaultPlan, FaultSpec
from repro.hw.lapic import VIRTIO_VECTOR_BASE
from repro.hv.virtio_backend import KICK_VECTOR, NOTIFY_TIMEOUT_CYCLES

__all__ = ["FaultInjector", "degrade_config"]

#: Vectors the irq_drop class may swallow: virtio completion vectors and
#: backend kick wakeups.  Timer and IPI vectors are exempt so safety
#: timers stay reliable and blocked vCPUs always have a way back.
_DROPPABLE_VECTORS = frozenset(
    range(VIRTIO_VECTOR_BASE, VIRTIO_VECTOR_BASE + 8)
) | {KICK_VECTOR}

#: Truncated size a corrupted packet arrives with.
_CORRUPT_SIZE = 1


def degrade_config(config, plan: FaultPlan, metrics=None):
    """Apply a plan's DVH capability faults to a stack config *before*
    building: capability negotiation drops the faulted mechanisms and the
    I/O model falls back gracefully (virtual-passthrough -> virtio).

    Returns ``(config, dropped_mechanisms)``.  The config is returned
    unchanged when the plan has no ``dvh_cap_fault`` spec.
    """
    from dataclasses import replace

    mechanisms = plan.faulted_mechanisms()
    if not mechanisms:
        return config, []
    granted, dropped = negotiate(config.dvh, mechanisms)
    io_model = fallback_io_model(config.io_model, granted)
    # Only the faulted mechanisms count as injections: negotiation also
    # prunes dependency-unsatisfied defaults, which is not a fault.
    faulted_drops = [m for m in dropped if m in mechanisms]
    if metrics is not None:
        for _mech in faulted_drops:
            metrics.record_fault(FaultClass.DVH_CAP_FAULT)
        if faulted_drops:
            metrics.record_recovery("dvh_fallback")
    return replace(config, dvh=granted, io_model=io_model), dropped


class FaultInjector:
    """Injects one plan's faults into one machine, deterministically."""

    def __init__(self, machine, plan: FaultPlan, seed: int = 0) -> None:
        self.machine = machine
        self.plan = plan
        self.seed = seed
        self.rng = random.Random((seed << 1) ^ 0x5EED_FA01)
        #: Local mirror of what was injected (metrics hold the same
        #: counts; this survives metric diffs/copies).
        self.injected: Counter = Counter()
        self._attached = False

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, stack=None) -> "FaultInjector":
        """Install hooks and schedule point faults.  ``stack`` gives
        access to devices/backends/vCPUs; without it only the machine's
        own NIC/IOMMU hooks and the migration wire are covered."""
        if self._attached:
            raise RuntimeError("injector already attached")
        self._attached = True
        self.machine.faults = self
        plan = self.plan
        if plan.is_empty:
            return self
        # The "machine" may also be a cluster Fabric (it quacks enough:
        # sim + metrics); hardware hooks then simply have nowhere to go.
        nic = getattr(self.machine, "nic", None)
        if nic is not None and (
            plan.spec_for(FaultClass.NIC_DROP)
            or plan.spec_for(FaultClass.NIC_CORRUPT)
        ):
            nic.fault_hook = self._nic_hook
        iommu = getattr(self.machine, "iommu", None)
        if iommu is not None and plan.spec_for(FaultClass.IOMMU_FAULT):
            iommu.fault_hook = self._iommu_hook
        if stack is not None:
            if plan.spec_for(FaultClass.VIRTIO_KICK_DROP):
                self._hook_kicks(stack)
            if plan.spec_for(FaultClass.IRQ_DROP):
                for ctx in stack.ctxs:
                    if hasattr(ctx, "lapic"):
                        ctx.lapic.fault_hook = self._irq_hook
            spec = plan.spec_for(FaultClass.IRQ_SPURIOUS)
            if spec is not None:
                self._schedule_spurious(stack, spec)
            spec = plan.spec_for(FaultClass.VIRTIO_MALFORMED)
            if spec is not None:
                self._schedule_corruption(stack, spec)
        spec = plan.spec_for(FaultClass.OOH_GRANT_REVOKE)
        if spec is not None:
            self._schedule_grant_revoke(spec)
        return self

    def _hook_kicks(self, stack) -> None:
        """Lost doorbells on host-provided devices, each paired with a
        notification-timeout probe that requeues the stranded work."""
        for hv in stack.hvs:
            for device, backend in getattr(hv, "backends", {}).items():
                if not hasattr(backend, "requeue_lost_notification"):
                    continue
                device.fault_hook = self._make_kick_hook(backend)

    def _make_kick_hook(self, backend):
        spec = self.plan.spec_for(FaultClass.VIRTIO_KICK_DROP)
        sim = self.machine.sim

        def hook(queue_index: int) -> bool:
            if not spec.active(sim.now):
                return False
            if self.rng.random() >= spec.rate:
                return False
            self._record(FaultClass.VIRTIO_KICK_DROP)
            # The hardening under test: a one-shot watchdog probe fires
            # after the notification timeout and requeues lost work.
            sim.call_after(
                NOTIFY_TIMEOUT_CYCLES, backend.requeue_lost_notification
            )
            return True

        return hook

    # ------------------------------------------------------------------
    # Hook implementations (rate-based)
    # ------------------------------------------------------------------
    def _record(self, kind: str) -> None:
        self.injected[kind] += 1
        self.machine.metrics.record_fault(kind)

    def _nic_hook(self, direction: str, packet):
        now = self.machine.sim.now
        spec = self.plan.spec_for(FaultClass.NIC_DROP)
        if spec is not None and spec.active(now):
            if self.rng.random() < spec.rate:
                self._record(FaultClass.NIC_DROP)
                return None
        spec = self.plan.spec_for(FaultClass.NIC_CORRUPT)
        if spec is not None and spec.active(now):
            if self.rng.random() < spec.rate:
                self._record(FaultClass.NIC_CORRUPT)
                import dataclasses

                return dataclasses.replace(
                    packet, size=_CORRUPT_SIZE, payload=None
                )
        return packet

    def _irq_hook(self, vector: int) -> bool:
        if vector not in _DROPPABLE_VECTORS:
            return False
        spec = self.plan.spec_for(FaultClass.IRQ_DROP)
        if spec is None or not spec.active(self.machine.sim.now):
            return False
        if self.rng.random() < spec.rate:
            self._record(FaultClass.IRQ_DROP)
            return True
        return False

    def _iommu_hook(self, device, iova: int, write: bool) -> bool:
        spec = self.plan.spec_for(FaultClass.IOMMU_FAULT)
        if spec is None or not spec.active(self.machine.sim.now):
            return False
        if self.rng.random() < spec.rate:
            self._record(FaultClass.IOMMU_FAULT)
            return True
        return False

    # ------------------------------------------------------------------
    # Scheduled point faults
    # ------------------------------------------------------------------
    def _fire_times(self, spec: FaultSpec) -> List[int]:
        sim = self.machine.sim
        lo = max(spec.start, sim.now + 1)
        hi = spec.end if spec.end is not None else lo + 20_000_000
        if hi <= lo:
            hi = lo + 1_000_000
        return sorted(self.rng.randrange(lo, hi) for _ in range(spec.count))

    def _schedule_spurious(self, stack, spec: FaultSpec) -> None:
        """Spurious virtio-completion interrupts on worker vCPUs."""
        ctxs = [c for c in stack.ctxs if hasattr(c, "lapic")]
        if not ctxs:
            return
        sim = self.machine.sim
        for t in self._fire_times(spec):
            ctx = self.rng.choice(ctxs)
            vector = VIRTIO_VECTOR_BASE + self.rng.randrange(4)
            sim.call_at(t, self._make_spurious(ctx, vector))

    def _make_spurious(self, ctx, vector: int):
        def fire() -> None:
            self._record(FaultClass.IRQ_SPURIOUS)
            ctx.lapic.irr.add(vector)  # bypass the drop hook: this IS a fault
            if hasattr(ctx, "pcpu"):
                ctx.pcpu.wake()

        return fire

    def _schedule_corruption(self, stack, spec: FaultSpec) -> None:
        """Malform pending TX descriptors on host-provided devices at
        scheduled points; hardened backends must drop, not crash."""
        devices = []
        for hv in stack.hvs:
            for device, backend in getattr(hv, "backends", {}).items():
                # Net devices only: their flat queue layout is rx/tx
                # pairs, so tx_q() is well-defined.
                if getattr(device, "kind", None) == "net" and len(device.queues) >= 2:
                    devices.append(device)
        if not devices:
            return
        sim = self.machine.sim
        for t in self._fire_times(spec):
            device = self.rng.choice(devices)
            pair = self.rng.randrange(device.num_queue_pairs)
            bad_len = self.rng.choice((0, -1, 1 << 28))
            sim.call_at(t, self._make_corruption(device, pair, bad_len))

    def _make_corruption(self, device, pair: int, bad_len: int):
        def fire() -> None:
            q = device.tx_q(pair)
            if q.corrupt_next_avail(length=bad_len):
                self._record(FaultClass.VIRTIO_MALFORMED)

        return fire

    def _schedule_grant_revoke(self, spec: FaultSpec) -> None:
        """Revoke OoH grants at the spec's start time: the host reclaims
        the real virtual hardware and the guest hypervisor's granted
        exits fall back to forwarded emulation (counted as the
        ``ooh_fallback`` recovery)."""
        ooh = getattr(self.machine, "ooh", None)
        if ooh is None:
            return
        sim = self.machine.sim
        features = spec.mechanisms or ooh.configured_names()

        def fire() -> None:
            for feature in features:
                if ooh.revoke(feature):
                    self._record(FaultClass.OOH_GRANT_REVOKE)
                    self.machine.metrics.record_recovery("ooh_fallback")

        sim.call_at(max(spec.start, sim.now + 1), fire)

    # ------------------------------------------------------------------
    # Migration-wire consultation (duck-typed by LiveMigration)
    # ------------------------------------------------------------------
    def migration_bandwidth_factor(self) -> float:
        spec = self.plan.spec_for(FaultClass.MIG_BANDWIDTH)
        if spec is None or not spec.active(self.machine.sim.now):
            return 1.0
        self._record(FaultClass.MIG_BANDWIDTH)
        return spec.param if spec.param is not None else 0.5

    def migration_link_down(self) -> bool:
        spec = self.plan.spec_for(FaultClass.MIG_LINK_FLAP)
        if spec is None:
            return False
        if spec.active(self.machine.sim.now):
            self._record(FaultClass.MIG_LINK_FLAP)
            return True
        return False

    def migration_loss_rate(self) -> float:
        spec = self.plan.spec_for(FaultClass.MIG_LOSS)
        if spec is None or not spec.active(self.machine.sim.now):
            return 0.0
        self._record(FaultClass.MIG_LOSS)
        return spec.param if spec.param is not None else 0.05

    # ------------------------------------------------------------------
    # Fabric consultation (duck-typed by repro.cluster.fabric.Fabric).
    # A cluster attaches one injector to the Fabric itself — it exposes
    # ``sim`` and ``metrics`` like a Machine, so the same injector class
    # covers both scopes.  ``spec.mechanisms`` names the targeted hosts
    # (empty tuple = the fault hits every host).
    # ------------------------------------------------------------------
    def _fabric_window_active(self, kind: str, host: Optional[str]) -> bool:
        spec = self.plan.spec_for(kind)
        if spec is None or not spec.active(self.machine.sim.now):
            return False
        if spec.mechanisms and host is not None and host not in spec.mechanisms:
            return False
        self._record(kind)
        return True

    def fabric_link_down(self, host: Optional[str] = None) -> bool:
        """Is ``host``'s ToR link inside a partition window right now?"""
        return self._fabric_window_active(FaultClass.FABRIC_PARTITION, host)

    def fabric_host_lost(self, host: Optional[str] = None) -> bool:
        """Has ``host`` dropped off the fabric entirely?"""
        return self._fabric_window_active(FaultClass.FABRIC_HOST_LOSS, host)

    def fabric_bandwidth_factor(self) -> float:
        """Fraction of nominal link bandwidth currently available."""
        spec = self.plan.spec_for(FaultClass.FABRIC_DEGRADE)
        if spec is None or not spec.active(self.machine.sim.now):
            return 1.0
        self._record(FaultClass.FABRIC_DEGRADE)
        return spec.param if spec.param is not None else 0.25

    # ------------------------------------------------------------------
    def summary(self) -> Counter:
        """Faults injected so far, by class."""
        return Counter(self.injected)
