"""NecoFuzz-style trap-chain fuzzing.

Each episode builds a fresh stack at a fuzzer-chosen depth (native, L1,
L2, L3) and I/O model, attaches a seed-derived :class:`FaultPlan`, and
drives randomized privileged-op interleavings through it (the op soup of
:mod:`repro.faults.workload`).  After the simulation drains, per-episode
invariants are checked:

* **Exit conservation** — every hardware exit is either handled by L0 or
  forwarded to exactly one guest hypervisor (preemption-timer ticks are
  L0-internal bookkeeping) — checked machine-wide *and* per exit chain
  (the dispatch core's chain ids, tallied by
  :class:`repro.faults.chains.ChainTracker`);
* **No stranded vCPU** — every worker finished; with safety timers armed
  around every blocking wait, a stranded worker means a lost wakeup;
* **No lost wakeup** — no halted physical CPU has a vCPU with pending
  interrupts parked on it;
* **Cycle conservation** — charged cycles are non-negative and bounded
  by wall-cycles times the CPU count;
* **Replay determinism** — re-running an episode from its seed gives a
  byte-identical outcome digest (checked every ``replay_every``-th
  episode).

Everything derives from the campaign seed: same seed, same campaign.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.audit.checks import lifecycle_violations
from repro.core.features import DvhFeatures
from repro.faults.chains import ChainTracker
from repro.faults.injector import FaultInjector, degrade_config
from repro.faults.plan import FaultClass, FaultPlan
from repro.faults.workload import run_fault_workload

__all__ = [
    "EpisodeResult",
    "CampaignResult",
    "TrapChainFuzzer",
    "build_faulted_stack",
    "check_invariants",
    "state_digest",
]

#: Fault classes a fuzz episode draws from (migration-wire classes are
#: exercised by the migration tests/benchmarks, not the op soup).
FUZZ_CLASSES: Tuple[str, ...] = (
    FaultClass.NIC_DROP,
    FaultClass.NIC_CORRUPT,
    FaultClass.VIRTIO_MALFORMED,
    FaultClass.VIRTIO_KICK_DROP,
    FaultClass.IRQ_DROP,
    FaultClass.IRQ_SPURIOUS,
    FaultClass.IOMMU_FAULT,
    FaultClass.DVH_CAP_FAULT,
    FaultClass.OOH_GRANT_REVOKE,
)


def build_faulted_stack(config, plan: FaultPlan, seed: int = 0):
    """Degrade the config per the plan's capability faults, build the
    stack, and attach an injector.  Returns ``(stack, injector)``."""
    from repro.hv.stack import build_stack

    config, dropped = degrade_config(config, plan)
    stack = build_stack(config)
    # Per-chain exit accounting for check_invariants; lives outside
    # Metrics so episode digests are unchanged by its presence.
    stack.machine.chain_tracker = ChainTracker()
    faulted_drops = [m for m in dropped if m in plan.faulted_mechanisms()]
    if faulted_drops:
        for _ in faulted_drops:
            stack.metrics.record_fault(FaultClass.DVH_CAP_FAULT)
        stack.metrics.record_recovery("dvh_fallback")
    injector = FaultInjector(stack.machine, plan, seed=seed).attach(stack)
    return stack, injector


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
def check_invariants(stack, injector: Optional[FaultInjector] = None) -> List[str]:
    """Check post-run invariants; returns a list of violation strings
    (empty = all green)."""
    violations: List[str] = []
    metrics = stack.metrics
    machine = stack.machine

    # Exit conservation across levels.  Preemption-timer ticks are
    # L0-internal bookkeeping (recorded, never handled/forwarded), and a
    # vCPU parked inside L0's HLT emulation at drain time has its exit
    # recorded but completes the handled side only on wake — so the only
    # legal slack is up to one in-flight ``hlt`` per halted pCPU.
    total = metrics.total_exits()
    handled = sum(metrics.l0_handled.values())
    forwarded = sum(metrics.forwards.values())
    preempt = metrics.exits_for_reason("preemption_timer")
    slack = total - handled - forwarded - preempt
    halted = sum(1 for cpu in machine.cpus if cpu.halted)
    if not 0 <= slack <= halted:
        violations.append(
            f"exit conservation: {total} exits != {handled} L0-handled + "
            f"{forwarded} forwarded + {preempt} preemption ticks "
            f"(slack {slack} outside [0, {halted} halted pCPUs])"
        )
    else:
        # The slack must be entirely in-flight HLTs, nothing else.
        hlt_slack = (
            metrics.exits_for_reason("hlt")
            - metrics.l0_handled.get("hlt", 0)
            - sum(n for (_l, r, _o), n in metrics.forwards.items() if r == "hlt")
        )
        if slack != hlt_slack:
            violations.append(
                f"exit conservation: non-hlt imbalance "
                f"(total slack {slack}, hlt slack {hlt_slack})"
            )

    # Per-chain exit conservation: the same balance must hold within
    # every individual exit chain, not just machine-wide — an exit
    # mis-attributed between chains cancels in the aggregate but not here.
    tracker = machine.chain_tracker
    if tracker is not None:
        violations.extend(tracker.violations())
        total_chain_slack = sum(
            tracker.chain_slack(cid) for cid in tracker.exits
        )
        if total_chain_slack != slack:
            violations.append(
                f"chain conservation: per-chain slack {total_chain_slack} "
                f"!= machine-wide slack {slack}"
            )

    # No lost wakeup: a halted pCPU must not be parking a vCPU with
    # pending interrupts.
    for vm in stack.vms:
        for vcpu in vm.vcpus:
            pcpu = getattr(vcpu, "pcpu", None)
            if pcpu is not None and pcpu.halted and vcpu.lapic.irr:
                violations.append(
                    f"lost wakeup: pcpu{pcpu.idx} halted while "
                    f"{vcpu.name if hasattr(vcpu, 'name') else vcpu} has "
                    f"pending irr {sorted(vcpu.lapic.irr)}"
                )

    # Resource lifecycle (see repro.audit): nothing may leak a
    # migration-held resource — no dirty log left attached to any VM's
    # memory, no backend left paused or still dirty-logging.  Campaigns
    # fail on the leaked-state bug class even when no invariant above
    # notices the corruption.
    violations.extend(lifecycle_violations(stack))

    # Cycle conservation: charges non-negative, and the total bounded by
    # wall-cycles across all CPUs.  Boot-time work ("setup": IOMMU
    # page-pinning at device assignment) is charged while the stack is
    # *built* — before the clock ever runs — so it lies outside the
    # wall-cycle budget; a short run over a big passthrough domain would
    # otherwise flag a false violation.
    for category, cycles in metrics.cycles.items():
        if cycles < 0:
            violations.append(f"negative cycle charge: {category}={cycles}")
    wall_budget = machine.sim.now * len(machine.cpus)
    charged = sum(metrics.cycles.values()) - metrics.cycles.get("setup", 0)
    if machine.sim.now > 0 and charged > wall_budget:
        violations.append(
            f"cycle conservation: {charged} charged > "
            f"{wall_budget} wall-cycle budget"
        )

    return violations


def state_digest(stack, injector: Optional[FaultInjector] = None) -> str:
    """A stable digest of the run's observable outcome: final clock,
    every counter, and what was injected.  Two runs are *the same run*
    iff their digests match."""
    snapshot = stack.metrics.snapshot()
    payload = {
        "now": stack.sim.now,
        "metrics": {
            table: {str(k): v for k, v in sorted(counters.items(), key=lambda kv: str(kv[0]))}
            for table, counters in snapshot.items()
        },
        "injected": dict(sorted(injector.summary().items())) if injector else {},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# Episodes and campaigns
# ----------------------------------------------------------------------
@dataclass
class EpisodeResult:
    index: int
    seed: int
    config_desc: str
    plan_desc: str
    ops: Dict[str, int]
    injected: Dict[str, int]
    recoveries: Dict[str, int]
    violations: List[str]
    digest: str
    replay_checked: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignResult:
    seed: int
    episodes: List[EpisodeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.episodes)

    @property
    def failures(self) -> List[EpisodeResult]:
        return [e for e in self.episodes if not e.ok]

    def injected_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for e in self.episodes:
            for kind, n in e.injected.items():
                totals[kind] = totals.get(kind, 0) + n
        return totals

    def recovery_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for e in self.episodes:
            for kind, n in e.recoveries.items():
                totals[kind] = totals.get(kind, 0) + n
        return totals


class TrapChainFuzzer:
    """Drives fuzz campaigns.  Deterministic per ``seed``."""

    def __init__(
        self,
        seed: int = 0,
        episodes: int = 50,
        levels: Sequence[int] = (0, 1, 2, 3),
        classes: Sequence[str] = FUZZ_CLASSES,
        ops_per_worker: int = 20,
        workers: int = 2,
        intensity: float = 0.08,
        replay_every: int = 10,
        audit: bool = False,
    ) -> None:
        self.seed = seed
        self.episodes = episodes
        self.levels = tuple(levels)
        self.classes = tuple(classes)
        self.ops_per_worker = ops_per_worker
        self.workers = workers
        self.intensity = intensity
        self.replay_every = replay_every
        #: Attach a fresh repro.audit.Auditor to every episode's stack
        #: and fold its finish-time violations into the episode's.  The
        #: auditor only observes, so episode digests (and the replay
        #: check) are identical with auditing on or off.
        self.audit = audit

    # ------------------------------------------------------------------
    def episode_seed(self, index: int) -> int:
        return self.seed * 1_000_003 + index

    def _episode_config(self, rng: random.Random):
        """Pick a stack shape for one episode (pure function of rng).
        The draws live in :mod:`repro.scenarios.generator` — one
        generator feeds the fuzzer, the audit matrix and the sweeps —
        and their rng-consumption order is frozen there, so campaign
        seeds keep reproducing the same episodes."""
        from repro.scenarios.generator import draw_stack_shape

        return draw_stack_shape(rng, self.levels, self.workers)

    def _episode_grants(self, rng: random.Random, levels, io_model, dvh):
        """Maybe grant OoH features, drawing only from the combinations
        StackConfig.validate accepts for this episode's shape (so the
        fuzzer explores grant *behavior*, not rejected configs)."""
        from repro.scenarios.generator import draw_grants

        return draw_grants(rng, levels, io_model, dvh)

    def _run_once(self, index: int):
        """One full episode execution; returns everything the digest and
        the result need.  Called twice for replay checks."""
        eseed = self.episode_seed(index)
        rng = random.Random(eseed)
        config = self._episode_config(rng)
        plan = FaultPlan.random(
            rng.randrange(1 << 30),
            classes=self.classes,
            intensity=self.intensity,
        )
        stack, injector = build_faulted_stack(config, plan, seed=eseed)
        auditor = None
        if self.audit:
            from repro.audit import Auditor

            auditor = Auditor().attach_stack(stack)
        violations: List[str] = []
        ops: Dict[str, int] = {}
        try:
            ops = run_fault_workload(
                stack,
                ops_per_worker=self.ops_per_worker,
                seed=eseed,
                workers=self.workers,
            )
        except RuntimeError as exc:
            violations.append(f"stranded: {exc}")
        except Exception as exc:  # invariant: hardened stacks never crash
            violations.append(f"crash: {type(exc).__name__}: {exc}")
        violations.extend(check_invariants(stack, injector))
        if auditor is not None:
            violations.extend(str(v) for v in auditor.finish().violations)
        digest = state_digest(stack, injector)
        return stack, injector, config, plan, ops, violations, digest

    def run_episode(self, index: int) -> EpisodeResult:
        stack, injector, config, plan, ops, violations, digest = self._run_once(
            index
        )
        replay_checked = False
        if self.replay_every and index % self.replay_every == 0:
            *_rest, replay_digest = self._run_once(index)
            replay_checked = True
            if replay_digest != digest:
                violations.append(
                    f"replay divergence: {digest[:16]} != {replay_digest[:16]}"
                )
        return EpisodeResult(
            index=index,
            seed=self.episode_seed(index),
            config_desc=(
                f"L{config.levels}/{config.io_model}"
                + ("+dvh" if config.dvh.any_enabled else "")
            ),
            plan_desc=plan.describe(),
            ops=ops,
            injected=dict(injector.summary()),
            recoveries=dict(stack.metrics.recoveries),
            violations=violations,
            digest=digest,
            replay_checked=replay_checked,
        )

    def run(
        self, progress: Optional[Callable[[EpisodeResult], None]] = None
    ) -> CampaignResult:
        campaign = CampaignResult(seed=self.seed)
        for index in range(self.episodes):
            result = self.run_episode(index)
            campaign.episodes.append(result)
            if progress is not None:
                progress(result)
        return campaign
