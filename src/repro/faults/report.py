"""Rendering for fault-injection runs and fuzz campaigns."""

from __future__ import annotations

from typing import List

from repro.metrics.report import _table, fault_report

__all__ = ["render_plan_run", "render_campaign"]


def render_plan_run(stack, injector, ops=None) -> str:
    """Report for one plan run: the plan, what fired, what recovered."""
    parts: List[str] = [
        f"Fault plan (seed {injector.seed}):",
        injector.plan.describe(),
        "",
    ]
    if ops:
        rows = [[name, str(n)] for name, n in sorted(ops.items())]
        parts += ["Workload ops", _table(["op", "count"], rows), ""]
    parts.append(fault_report(stack.metrics))
    metrics = stack.metrics
    parts += [
        "",
        (
            f"{metrics.total_faults():,} faults injected, "
            f"{metrics.total_recoveries():,} recoveries, "
            f"{metrics.total_exits():,} hardware exits, "
            f"sim clock {stack.sim.now:,} cycles"
        ),
    ]
    return "\n".join(parts)


def render_campaign(campaign, verbose: bool = False) -> str:
    """Report for a fuzz campaign: per-class totals, episode failures."""
    episodes = campaign.episodes
    replayed = sum(1 for e in episodes if e.replay_checked)
    parts: List[str] = [
        f"Fuzz campaign: seed {campaign.seed}, {len(episodes)} episodes, "
        f"{replayed} replay-verified",
        "",
    ]
    rows = [
        [kind, str(n)] for kind, n in sorted(campaign.injected_totals().items())
    ] or [["(none)", "0"]]
    parts += ["Injected faults", _table(["class", "count"], rows), ""]
    rows = [
        [kind, str(n)] for kind, n in sorted(campaign.recovery_totals().items())
    ] or [["(none)", "0"]]
    parts += ["Recoveries", _table(["class", "count"], rows), ""]

    failures = campaign.failures
    if failures:
        parts.append(f"FAILURES ({len(failures)}):")
        for episode in failures:
            parts.append(
                f"  episode {episode.index} (seed {episode.seed}, "
                f"{episode.config_desc}):"
            )
            for violation in episode.violations:
                parts.append(f"    - {violation}")
            if verbose:
                for line in episode.plan_desc.splitlines():
                    parts.append(f"    plan: {line}")
    else:
        parts.append("All invariants green.")
    return "\n".join(parts)
