"""Per-chain exit accounting for the fuzzer's invariants.

The dispatch core threads a chain id through every exit a single guest
operation ultimately causes (see :class:`repro.hv.dispatch.ExitContext`).
The :class:`ChainTracker` hangs off ``machine.chain_tracker`` and hears
about every trap frame, letting :func:`repro.faults.fuzz.check_invariants`
tighten exit conservation from a machine-wide sum to **per-chain**
conservation: within one chain, every hardware exit must be either
handled by L0 or forwarded to exactly one guest hypervisor, with at most
one in-flight HLT as the only legal slack.  A bookkeeping bug that
merely *moves* an exit between chains — invisible to the aggregate
check — trips this one.

The tracker deliberately lives outside :class:`repro.metrics.Metrics`:
fuzz replay digests hash the metrics snapshot, and attaching a tracker
must not change any episode's digest.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.hw.ops import ExitReason

__all__ = ["ChainTracker"]


class ChainTracker:
    """Counts exits / L0-handled / forwards per exit chain.

    Wired into the dispatch path by assignment to
    ``machine.chain_tracker``: :class:`~repro.hv.dispatch.ExitContext`
    calls :meth:`on_exit` at frame creation, the L0 dispatcher calls
    :meth:`on_l0_handled` / :meth:`on_forward` at resolution.
    """

    def __init__(self) -> None:
        self.exits: Counter = Counter()
        self.handled: Counter = Counter()
        self.forwards: Counter = Counter()
        #: HLT-only versions of the three, for slack attribution.
        self.hlt_exits: Counter = Counter()
        self.hlt_handled: Counter = Counter()
        self.hlt_forwards: Counter = Counter()
        #: chain id -> (origin level, root exit reason) of the root frame.
        self.roots: Dict[int, Tuple[int, str]] = {}
        #: Deepest frame depth seen per chain (exit multiplication).
        self.max_depth: Counter = Counter()

    # ------------------------------------------------------------------
    # Dispatch-side hooks
    # ------------------------------------------------------------------
    def on_exit(self, ectx) -> None:
        cid = ectx.chain_id
        self.exits[cid] += 1
        if ectx.depth == 0:
            self.roots[cid] = (ectx.origin_level, ectx.exit_.reason._value_)
        if ectx.depth > self.max_depth[cid]:
            self.max_depth[cid] = ectx.depth
        if ectx.exit_.reason is ExitReason.HLT:
            self.hlt_exits[cid] += 1

    def on_l0_handled(self, ectx) -> None:
        self.handled[ectx.chain_id] += 1
        if ectx.exit_.reason is ExitReason.HLT:
            self.hlt_handled[ectx.chain_id] += 1

    def on_forward(self, ectx, owner: int) -> None:
        self.forwards[ectx.chain_id] += 1
        if ectx.exit_.reason is ExitReason.HLT:
            self.hlt_forwards[ectx.chain_id] += 1

    # ------------------------------------------------------------------
    # Invariants and reporting
    # ------------------------------------------------------------------
    @property
    def chain_count(self) -> int:
        return len(self.exits)

    def chain_slack(self, cid: int) -> int:
        return self.exits[cid] - self.handled[cid] - self.forwards[cid]

    def violations(self) -> List[str]:
        """Per-chain exit conservation: every chain's exits fully resolve
        (handled or forwarded), except at most one in-flight HLT parked
        in L0's halt emulation at drain time."""
        out: List[str] = []
        for cid in sorted(self.exits):
            slack = self.chain_slack(cid)
            origin_level, reason = self.roots.get(cid, (-1, "?"))
            where = f"chain #{cid} (L{origin_level} {reason})"
            if not 0 <= slack <= 1:
                out.append(
                    f"chain conservation: {where}: {self.exits[cid]} exits != "
                    f"{self.handled[cid]} L0-handled + "
                    f"{self.forwards[cid]} forwarded (slack {slack})"
                )
                continue
            hlt_slack = (
                self.hlt_exits[cid] - self.hlt_handled[cid] - self.hlt_forwards[cid]
            )
            if slack != hlt_slack:
                out.append(
                    f"chain conservation: {where}: non-hlt imbalance "
                    f"(slack {slack}, hlt slack {hlt_slack})"
                )
        return out

    def summary(self) -> Dict[str, int]:
        return {
            "chains": self.chain_count,
            "exits": sum(self.exits.values()),
            "forwards": sum(self.forwards.values()),
            "max_depth": max(self.max_depth.values(), default=0),
        }
