"""Fault plans: declarative, seed-reproducible fault schedules.

A :class:`FaultPlan` is pure data — *what* can go wrong, how often, and
when.  The :class:`~repro.faults.injector.FaultInjector` turns a plan
into concrete hook installations and scheduled events against one
machine; all randomness comes from the injector's own seeded generator,
so the same ``(plan, seed)`` pair always injects the same faults at the
same simulated cycles.

An empty plan is the identity: attaching it installs no hooks, schedules
no events, and consumes no randomness, so runs with an empty-plan
injector are byte-identical to runs without one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["FaultClass", "FaultSpec", "FaultPlan"]


class FaultClass:
    """The fault classes the injector understands."""

    #: Physical NIC drops a packet on rx/tx.
    NIC_DROP = "nic_drop"
    #: Physical NIC truncates a packet's payload (bit-rot on the wire).
    NIC_CORRUPT = "nic_corrupt"
    #: A descriptor on a virtio ring is malformed before the backend
    #: services it (guest bug / shared-ring corruption).
    VIRTIO_MALFORMED = "virtio_malformed"
    #: A doorbell notification is lost in flight (missed ioeventfd).
    VIRTIO_KICK_DROP = "virtio_kick_drop"
    #: A device interrupt is dropped before it latches in the LAPIC.
    IRQ_DROP = "irq_drop"
    #: A spurious device interrupt is latched with no data behind it.
    IRQ_SPURIOUS = "irq_spurious"
    #: The IOMMU faults a DMA translation that should have succeeded.
    IOMMU_FAULT = "iommu_fault"
    #: Migration wire runs at a fraction of nominal bandwidth.
    MIG_BANDWIDTH = "mig_bandwidth"
    #: Migration wire goes down for whole windows of simulated time.
    MIG_LINK_FLAP = "mig_link_flap"
    #: Migration wire loses a fraction of bytes (retransmitted).
    MIG_LOSS = "mig_loss"
    #: DVH capability bits read as unavailable during negotiation.
    DVH_CAP_FAULT = "dvh_cap_fault"
    #: Datacenter fabric: a host's ToR link is partitioned for a window
    #: of simulated time (see repro.cluster.fabric).
    FABRIC_PARTITION = "fabric_partition"
    #: Datacenter fabric: a whole host drops off the fabric (power/kernel
    #: loss); traffic to or from it is undeliverable while active.
    FABRIC_HOST_LOSS = "fabric_host_loss"
    #: Datacenter fabric: links run at a fraction of nominal bandwidth
    #: (incast congestion, a flapping optic renegotiating rates).
    FABRIC_DEGRADE = "fabric_degrade"
    #: OoH feature grants are revoked mid-run (host reclaims the real
    #: virtual hardware); granted exits fall back to forwarding.
    #: ``mechanisms`` names the features to revoke (empty = all
    #: configured grants).
    OOH_GRANT_REVOKE = "ooh_grant_revoke"

    ALL: Tuple[str, ...] = (
        NIC_DROP,
        NIC_CORRUPT,
        VIRTIO_MALFORMED,
        VIRTIO_KICK_DROP,
        IRQ_DROP,
        IRQ_SPURIOUS,
        IOMMU_FAULT,
        MIG_BANDWIDTH,
        MIG_LINK_FLAP,
        MIG_LOSS,
        DVH_CAP_FAULT,
        FABRIC_PARTITION,
        FABRIC_HOST_LOSS,
        FABRIC_DEGRADE,
        OOH_GRANT_REVOKE,
    )

    #: Classes expressed as a per-opportunity probability (hook faults).
    RATE_BASED: Tuple[str, ...] = (
        NIC_DROP,
        NIC_CORRUPT,
        VIRTIO_KICK_DROP,
        IRQ_DROP,
        IOMMU_FAULT,
    )
    #: Classes injected as scheduled point events.
    SCHEDULED: Tuple[str, ...] = (IRQ_SPURIOUS, VIRTIO_MALFORMED)
    #: Classes consulted lazily by the migration wire.
    MIGRATION: Tuple[str, ...] = (MIG_BANDWIDTH, MIG_LINK_FLAP, MIG_LOSS)
    #: Classes consulted lazily by the cluster fabric (the injector is
    #: attached to the Fabric, not to a host machine).
    FABRIC: Tuple[str, ...] = (FABRIC_PARTITION, FABRIC_HOST_LOSS, FABRIC_DEGRADE)


@dataclass(frozen=True)
class FaultSpec:
    """One fault class with its intensity and activity window.

    ``rate`` is the per-opportunity probability for
    :attr:`FaultClass.RATE_BASED` classes; ``count`` is the number of
    point injections for :attr:`FaultClass.SCHEDULED` classes; ``param``
    carries the class-specific magnitude (bandwidth factor for
    ``mig_bandwidth``, loss fraction for ``mig_loss``, flap length in
    cycles for ``mig_link_flap``, bandwidth factor for
    ``fabric_degrade``); ``mechanisms`` names the DVH capability bits a
    ``dvh_cap_fault`` knocks out — or, for the fabric classes, the host
    names a partition/loss targets (empty = every host).
    """

    kind: str
    rate: float = 0.0
    count: int = 0
    #: Active window on the simulation clock; ``end=None`` = forever.
    start: int = 0
    end: Optional[int] = None
    param: Optional[float] = None
    mechanisms: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FaultClass.ALL:
            raise ValueError(f"unknown fault class {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if self.count < 0:
            raise ValueError("count must be >= 0")

    def active(self, now: int) -> bool:
        return now >= self.start and (self.end is None or now < self.end)


class FaultPlan:
    """An immutable set of :class:`FaultSpec` entries."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        by_kind = {}
        for spec in self.specs:
            if spec.kind in by_kind:
                raise ValueError(f"duplicate spec for {spec.kind!r}")
            by_kind[spec.kind] = spec
        self._by_kind = by_kind

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultPlan":
        """The identity plan: nothing ever goes wrong."""
        return cls()

    @classmethod
    def random(
        cls,
        seed: int,
        classes: Optional[Iterable[str]] = None,
        intensity: float = 0.05,
        horizon: int = 20_000_000,
        max_classes: int = 4,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan: pick up to ``max_classes``
        fault classes and give each a seed-derived intensity.  The same
        seed always yields the same plan."""
        rng = random.Random(seed)
        pool = list(classes) if classes is not None else list(FaultClass.ALL)
        for kind in pool:
            if kind not in FaultClass.ALL:
                raise ValueError(f"unknown fault class {kind!r}")
        count = rng.randint(1, min(max_classes, len(pool)))
        chosen = rng.sample(sorted(pool), count)
        specs: List[FaultSpec] = []
        for kind in chosen:
            if kind in FaultClass.RATE_BASED:
                specs.append(
                    FaultSpec(kind=kind, rate=intensity * rng.uniform(0.2, 1.0))
                )
            elif kind in FaultClass.SCHEDULED:
                specs.append(
                    FaultSpec(
                        kind=kind,
                        count=rng.randint(1, 4),
                        start=rng.randrange(horizon // 4),
                        end=horizon,
                    )
                )
            elif kind == FaultClass.MIG_BANDWIDTH:
                specs.append(FaultSpec(kind=kind, param=rng.uniform(0.25, 0.9)))
            elif kind == FaultClass.MIG_LOSS:
                specs.append(FaultSpec(kind=kind, param=rng.uniform(0.01, 0.2)))
            elif kind in (FaultClass.MIG_LINK_FLAP, FaultClass.FABRIC_PARTITION,
                          FaultClass.FABRIC_HOST_LOSS):
                start = rng.randrange(horizon // 2)
                specs.append(
                    FaultSpec(
                        kind=kind,
                        start=start,
                        end=start + rng.randrange(100_000, 2_000_000),
                    )
                )
            elif kind == FaultClass.FABRIC_DEGRADE:
                specs.append(FaultSpec(kind=kind, param=rng.uniform(0.05, 0.5)))
            elif kind == FaultClass.OOH_GRANT_REVOKE:
                from repro.ooh.grants import OOH_FEATURES

                n = rng.randint(1, 2)
                specs.append(
                    FaultSpec(
                        kind=kind,
                        start=rng.randrange(horizon // 2),
                        mechanisms=tuple(rng.sample(OOH_FEATURES, n)),
                    )
                )
            else:  # DVH_CAP_FAULT
                from repro.core.features import DVH_MECHANISMS

                n = rng.randint(1, 2)
                specs.append(
                    FaultSpec(
                        kind=kind,
                        mechanisms=tuple(rng.sample(DVH_MECHANISMS, n)),
                    )
                )
        return cls(specs)

    # ------------------------------------------------------------------
    def spec_for(self, kind: str) -> Optional[FaultSpec]:
        return self._by_kind.get(kind)

    def kinds(self) -> Set[str]:
        return set(self._by_kind)

    def faulted_mechanisms(self) -> Tuple[str, ...]:
        """DVH mechanisms a ``dvh_cap_fault`` spec knocks out."""
        spec = self.spec_for(FaultClass.DVH_CAP_FAULT)
        return spec.mechanisms if spec is not None else ()

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def describe(self) -> str:
        """One line per spec, for reports."""
        if not self.specs:
            return "(empty plan)"
        lines = []
        for spec in self.specs:
            bits = [spec.kind]
            if spec.rate:
                bits.append(f"rate={spec.rate:.4f}")
            if spec.count:
                bits.append(f"count={spec.count}")
            if spec.param is not None:
                bits.append(f"param={spec.param:.3f}")
            if spec.mechanisms:
                bits.append("mechanisms=" + ",".join(spec.mechanisms))
            if spec.start or spec.end is not None:
                bits.append(f"window=[{spec.start}, {spec.end})")
            lines.append("  ".join(bits))
        return "\n".join(lines)
