"""repro.study — the baseline vs DVH vs OoH vs DVH+OoH head-to-head.

``python -m repro study`` runs the 4-variant configuration matrix over
Table-3 micro-ops (KVM and Xen guest hypervisors), app workloads, and
two live-migration scenarios, then prints a ranked report showing where
each approach wins and where they compose.  See
:mod:`repro.study.harness` for the variant definitions and determinism
guarantees.
"""

from repro.study.harness import (
    CLUSTER_GRANTS,
    VARIANTS,
    StudyResult,
    StudySpec,
    run_study,
    study_cell,
    study_tasks,
    variant_config,
)
from repro.study.report import render_study, scenario_rankings

__all__ = [
    "CLUSTER_GRANTS",
    "VARIANTS",
    "StudyResult",
    "StudySpec",
    "run_study",
    "study_cell",
    "study_tasks",
    "variant_config",
    "render_study",
    "scenario_rankings",
]
