"""The head-to-head study harness: baseline vs DVH vs OoH vs DVH+OoH.

DVH (the paper) gives nested VMs *virtual hardware* that L0 emulates
directly; OoH (the grant layer in :mod:`repro.ooh`) instead hands
selected *real* hardware virtualization features to the L1 guest
hypervisor.  The two attack the same exit-multiplication problem from
opposite ends, and they compose.  This module runs the same seeds
through a 4-variant configuration matrix:

===========  ==========================================================
baseline     virtio I/O, no DVH, the OoH layer installed but empty
             (every feature forwarded) — the paper's nested baseline.
dvh          DVH full (virtual timer/IPI/idle + virtual-passthrough
             I/O); no OoH grants, so dirty tracking stays forwarded.
ooh          no DVH; OoH full grants (dirty_ring + posted_interrupts +
             timer_deadline) to the L1 guest hypervisor.
dvh+ooh      DVH full for the I/O and timer/IPI paths, plus the one OoH
             grant that composes with it: dirty_logging (the timer and
             posted-interrupt grants would collide with the DVH virtual
             timer/IPI ownership claims — rejected at build time).
===========  ==========================================================

across four scenario families — Table-3 micro-ops (KVM and Xen guest
hypervisors), Figure-7/8-style app workloads, a single-machine nested
live migration with an active dirtier, and a cross-host cluster
migration with per-tenant dirty-log grants.

Every cell is a pure function of its plain-tuple task (module-level
workers, so ``--jobs`` fans them over processes), results are assembled
in task order, and the study digest is a sha256 over the canonical JSON
of the rows: serial vs ``--jobs N`` and fast-forward on vs off are
byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.parallel import map_cells
from repro.bench.runner import fast_forward_override
from repro.core.features import DvhFeatures
from repro.hv.stack import StackConfig
from repro.ooh.grants import GrantSet

__all__ = [
    "VARIANTS",
    "StudySpec",
    "StudyResult",
    "variant_config",
    "study_tasks",
    "study_cell",
    "run_study",
]

#: The four head-to-head variants, in report order.
VARIANTS: Tuple[str, ...] = ("baseline", "dvh", "ooh", "dvh+ooh")

#: Per-tenant OoH grants each variant asks for in the cluster scenario.
CLUSTER_GRANTS: Dict[str, Tuple[str, ...]] = {
    "baseline": (),
    "dvh": (),
    "ooh": ("dirty_ring",),
    "dvh+ooh": ("dirty_logging",),
}


def variant_config(
    variant: str, guest_hv: str = "kvm", levels: int = 2
) -> StackConfig:
    """The stack configuration one study variant runs on.

    Every variant installs the OoH layer (``ooh`` non-None) so dirty
    tracking is priced on all of them — forwarded where no grant is
    active, granted otherwise.  That keeps the migration comparison
    apples-to-apples: a variant without the layer would charge nothing.
    """
    if variant == "baseline":
        return StackConfig(
            levels=levels, io_model="virtio", guest_hv=guest_hv,
            ooh=GrantSet.none(),
        )
    if variant == "dvh":
        return StackConfig(
            levels=levels, io_model="vp", dvh=DvhFeatures.full(),
            guest_hv=guest_hv, ooh=GrantSet.none(),
        )
    if variant == "ooh":
        return StackConfig(
            levels=levels, io_model="virtio", guest_hv=guest_hv,
            ooh=GrantSet.full(),
        )
    if variant == "dvh+ooh":
        return StackConfig(
            levels=levels, io_model="vp", dvh=DvhFeatures.full(),
            guest_hv=guest_hv, ooh=GrantSet.migration(),
        )
    raise ValueError(f"unknown study variant {variant!r}; choose from {VARIANTS}")


# ----------------------------------------------------------------------
# Spec: what the matrix covers (JSON-loadable, see examples/)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StudySpec:
    """The study matrix, as data.  The defaults are the full 4-scenario
    head-to-head; a JSON spec file (``--spec``) can trim or reshape it."""

    name: str = "default"
    variants: Tuple[str, ...] = VARIANTS
    micro_benches: Tuple[str, ...] = (
        "Hypercall", "DevNotify", "ProgramTimer", "SendIPI",
    )
    micro_guest_hvs: Tuple[str, ...] = ("kvm", "xen")
    micro_iterations: int = 20
    app_names: Tuple[str, ...] = ("hackbench", "netperf_rr")
    app_scale: float = 0.1
    #: Single-machine nested live migration with an active dirtier.
    migration: bool = True
    #: Cross-host cluster migration host count (0 disables the family).
    cluster_hosts: int = 2

    def __post_init__(self) -> None:
        for variant in self.variants:
            if variant not in VARIANTS:
                raise ValueError(
                    f"unknown study variant {variant!r}; choose from {VARIANTS}"
                )
        from repro.workloads.microbench import MICROBENCHMARKS

        for bench in self.micro_benches:
            if bench not in MICROBENCHMARKS:
                raise ValueError(f"unknown microbenchmark {bench!r}")
        for hv in self.micro_guest_hvs:
            if hv not in ("kvm", "xen"):
                raise ValueError(f"guest_hv must be kvm or xen, got {hv!r}")

    @classmethod
    def from_dict(cls, data: dict) -> "StudySpec":
        known = {
            "name", "variants", "micro_benches", "micro_guest_hvs",
            "micro_iterations", "app_names", "app_scale", "migration",
            "cluster_hosts",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown study spec keys: {sorted(unknown)}")
        kwargs = dict(data)
        for key in ("variants", "micro_benches", "micro_guest_hvs", "app_names"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "StudySpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass
class StudyResult:
    """Everything one study run produced, in deterministic task order."""

    spec_name: str
    seed: int
    rows: List[dict] = field(default_factory=list)
    digest: str = ""

    def by_scenario(self, scenario: str) -> List[dict]:
        return [r for r in self.rows if r["scenario"] == scenario]

    def to_json(self) -> dict:
        return {
            "spec": self.spec_name,
            "seed": self.seed,
            "digest": self.digest,
            "rows": self.rows,
        }


# ----------------------------------------------------------------------
# Task generation (plain tuples: picklable, order = report order)
# ----------------------------------------------------------------------
def study_tasks(spec: StudySpec, seed: int) -> List[tuple]:
    tasks: List[tuple] = []
    for guest_hv in spec.micro_guest_hvs:
        for bench in spec.micro_benches:
            for variant in spec.variants:
                tasks.append(
                    ("micro", variant, guest_hv, bench,
                     spec.micro_iterations, seed)
                )
    for app in spec.app_names:
        for variant in spec.variants:
            tasks.append(("app", variant, app, spec.app_scale, seed))
    if spec.migration:
        for variant in spec.variants:
            tasks.append(("migration", variant, seed))
    if spec.cluster_hosts:
        for variant in spec.variants:
            tasks.append(("cluster", variant, spec.cluster_hosts, seed))
    return tasks


# ----------------------------------------------------------------------
# Cell workers (module-level so they pickle under spawn)
# ----------------------------------------------------------------------
def study_cell(task: tuple) -> dict:
    """Run one study cell; returns a plain JSON-serializable row."""
    kind = task[0]
    if kind == "micro":
        return _micro_cell(*task[1:])
    if kind == "app":
        return _app_cell(*task[1:])
    if kind == "migration":
        return _migration_cell(*task[1:])
    if kind == "cluster":
        return _cluster_cell(*task[1:])
    raise ValueError(f"unknown study task kind {kind!r}")


def _micro_cell(variant, guest_hv, bench, iterations, seed) -> dict:
    from repro.hv.stack import build_stack
    from repro.workloads.microbench import run_microbenchmark

    config = replace(variant_config(variant, guest_hv=guest_hv), seed=seed)
    stack = build_stack(config)
    cycles = run_microbenchmark(stack, bench, iterations)
    granted, forwarded = stack.metrics.ooh_split()
    return {
        "scenario": "micro",
        "variant": variant,
        "guest_hv": guest_hv,
        "bench": bench,
        "cycles": cycles,
        "ooh_granted": granted,
        "ooh_forwarded": forwarded,
    }


def _app_cell(variant, app, scale, seed) -> dict:
    from repro.hv.stack import build_stack
    from repro.workloads.apps import run_app

    config = replace(variant_config(variant), seed=seed)
    stack = build_stack(config)
    result = run_app(stack, app, scale=scale)
    granted, forwarded = stack.metrics.ooh_split()
    return {
        "scenario": "app",
        "variant": variant,
        "app": app,
        "value": result.value,
        "unit": result.unit,
        "higher_is_better": result.higher_is_better,
        "elapsed_s": result.elapsed_s,
        "txns": result.txns,
        "ooh_granted": granted,
        "ooh_forwarded": forwarded,
    }


#: Pages the migration-scenario dirtier re-touches per burst, and the
#: compute cycles between bursts — calibrated so pre-copy still
#: converges but drains a meaningful dirty stream every round.
_DIRTIER_PAGES = 64
_DIRTIER_COMPUTE = 200_000
_DIRTIER_SPAN = 1_024


def _spawn_dirtier(stack, proc) -> None:
    """A tenant workload that keeps re-dirtying a sliding window of
    pages while the migration runs (feeds the pre-copy dirty logs)."""
    from repro.hw.mem import PAGE_SIZE

    ctx = stack.ctx(0)

    def dirtier():
        i = 0
        while not proc.done:
            yield from ctx.compute(_DIRTIER_COMPUTE)
            start = (i * _DIRTIER_PAGES) % _DIRTIER_SPAN
            ctx.mem_write(
                0x2000_0000 + start * PAGE_SIZE, _DIRTIER_PAGES * PAGE_SIZE
            )
            i += 1

    stack.sim.spawn(dirtier(), "study-dirtier")


def _migration_cell(variant, seed) -> dict:
    from repro.core.migration import LiveMigration
    from repro.hv.stack import build_stack

    config = replace(variant_config(variant), seed=seed)
    stack = build_stack(config)
    stack.settle()
    devices = [stack.net.device] if config.io_model == "vp" else []
    mig = LiveMigration(stack.machine, stack.leaf_vm, devices=devices)
    proc = stack.sim.spawn(mig.run(), f"study-mig-{variant}")
    _spawn_dirtier(stack, proc)
    stack.sim.run()
    res = proc.result
    metrics = stack.metrics
    granted, forwarded = metrics.ooh_split()
    return {
        "scenario": "migration",
        "variant": variant,
        "total_s": res.total_s,
        "downtime_s": res.downtime_s,
        "rounds": res.rounds,
        "bytes_transferred": res.bytes_transferred,
        "dirty_tracking_cycles": metrics.cycles.get("dirty_tracking", 0),
        "pages_granted": granted,
        "pages_forwarded": forwarded,
        "dirty_mode": stack.machine.ooh.dirty_mode() or "forwarded",
    }


def _cluster_cell(variant, hosts, seed) -> dict:
    from repro.cluster import Cluster, TenantSpec
    from repro.ooh.grants import GrantTable

    grants = CLUSTER_GRANTS[variant]
    cluster = Cluster(num_hosts=hosts, seed=seed, policy="spread")
    # Install the (possibly empty) grant layer on every host so dirty
    # tracking is priced under all variants — forwarded where no grant
    # lands, granted where the tenant's spec asks for one.
    for host in cluster.hosts:
        host.ensure_booted()
        if host.machine.ooh is None:
            host.machine.ooh = GrantTable(GrantSet.none(), host.machine.metrics)
    cluster.place(
        TenantSpec(name="t0", io_model="vp", memory_gb=8, grants=grants)
    )
    src = cluster.host_of("t0")
    dst = next(h for h in cluster.hosts if h.name != src.name)
    record = cluster.migrate("t0", dst.name)
    res = record.result
    tracking = 0
    granted = forwarded = 0
    for host in cluster.hosts:
        if host.machine is None:
            continue
        tracking += host.machine.metrics.cycles.get("dirty_tracking", 0)
        g, f = host.machine.metrics.ooh_split()
        granted += g
        forwarded += f
    return {
        "scenario": "cluster",
        "variant": variant,
        "outcome": record.outcome,
        "downtime_s": res.downtime_s,
        "rounds": res.rounds,
        "bytes_transferred": res.bytes_transferred,
        "fabric_migration_bytes": cluster.fabric.metrics.cross_host_bytes(
            "migration"
        ),
        "dirty_tracking_cycles": tracking,
        "pages_granted": granted,
        "pages_forwarded": forwarded,
        "grants": list(grants),
    }


# ----------------------------------------------------------------------
def _digest(rows: List[dict]) -> str:
    blob = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def run_study(
    spec: Optional[StudySpec] = None,
    seed: int = 0,
    jobs: int = 1,
    fast_forward: Optional[bool] = None,
) -> StudyResult:
    """Run the whole matrix.  ``jobs`` fans cells over worker processes
    (0 = one per CPU); ``fast_forward`` forces epoch skipping on/off for
    every cell (None = ambient default).  The result — including its
    digest — is byte-identical across jobs counts and either
    fast-forward mode."""
    spec = spec if spec is not None else StudySpec()
    tasks = study_tasks(spec, seed)
    with fast_forward_override(fast_forward):
        rows = map_cells(study_cell, tasks, jobs)
    return StudyResult(
        spec_name=spec.name, seed=seed, rows=rows, digest=_digest(rows)
    )
