"""Render a :class:`~repro.study.harness.StudyResult` as a ranked
head-to-head report: per-scenario tables plus the headline comparisons
(where OoH beats DVH, where DVH beats OoH, and where they compose)."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.study.harness import StudyResult

__all__ = ["render_study", "scenario_rankings"]


def _rank(rows: List[dict], key: str, higher_is_better: bool = False
          ) -> List[Tuple[str, float]]:
    """(variant, value) pairs, best first."""
    pairs = [(r["variant"], r[key]) for r in rows]
    return sorted(pairs, key=lambda kv: -kv[1] if higher_is_better else kv[1])


def scenario_rankings(result: StudyResult) -> Dict[str, List[Tuple[str, float]]]:
    """Best-first variant rankings per scenario cell, keyed
    ``scenario/qualifier`` — the machine-readable ranking the text
    report renders."""
    rankings: Dict[str, List[Tuple[str, float]]] = {}
    micro = result.by_scenario("micro")
    for guest_hv in dict.fromkeys(r["guest_hv"] for r in micro):
        for bench in dict.fromkeys(
            r["bench"] for r in micro if r["guest_hv"] == guest_hv
        ):
            cell = [
                r for r in micro
                if r["guest_hv"] == guest_hv and r["bench"] == bench
            ]
            rankings[f"micro/{guest_hv}/{bench}"] = _rank(cell, "cycles")
    apps = result.by_scenario("app")
    for app in dict.fromkeys(r["app"] for r in apps):
        cell = [r for r in apps if r["app"] == app]
        hib = cell[0]["higher_is_better"]
        rankings[f"app/{app}"] = _rank(cell, "value", higher_is_better=hib)
    for scenario in ("migration", "cluster"):
        cell = result.by_scenario(scenario)
        if cell:
            rankings[f"{scenario}/dirty_tracking"] = _rank(
                cell, "dirty_tracking_cycles"
            )
    return rankings


def _winner_counts(rankings: Dict[str, List[Tuple[str, float]]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for ranked in rankings.values():
        if ranked:
            winner = ranked[0][0]
            counts[winner] = counts.get(winner, 0) + 1
    return counts


def render_study(result: StudyResult) -> str:
    lines = [
        f"head-to-head study '{result.spec_name}' (seed {result.seed})",
        f"digest {result.digest[:16]} (byte-identical across --jobs and "
        "fast-forward modes)",
    ]
    variants = list(dict.fromkeys(r["variant"] for r in result.rows))
    width = max((len(v) for v in variants), default=8) + 2

    micro = result.by_scenario("micro")
    if micro:
        lines.append("")
        lines.append("Table-3 micro-ops (cycles/op, lower is better):")
        header = f"  {'bench':<22}" + "".join(f"{v:>{width + 6}}" for v in variants)
        lines.append(header)
        for guest_hv in dict.fromkeys(r["guest_hv"] for r in micro):
            lines.append(f"  [{guest_hv} guest hypervisor]")
            for bench in dict.fromkeys(
                r["bench"] for r in micro if r["guest_hv"] == guest_hv
            ):
                cell = {
                    r["variant"]: r["cycles"]
                    for r in micro
                    if r["guest_hv"] == guest_hv and r["bench"] == bench
                }
                best = min(cell.values())
                row = f"  {bench:<22}"
                for v in variants:
                    mark = "*" if cell[v] == best else " "
                    row += f"{cell[v]:>{width + 5},.0f}{mark}"
                lines.append(row)

    apps = result.by_scenario("app")
    if apps:
        lines.append("")
        lines.append("application workloads (* = best):")
        for app in dict.fromkeys(r["app"] for r in apps):
            cell = [r for r in apps if r["app"] == app]
            hib = cell[0]["higher_is_better"]
            best = (max if hib else min)(r["value"] for r in cell)
            unit = cell[0]["unit"]
            row = f"  {app:<22}"
            for v in variants:
                r = next(c for c in cell if c["variant"] == v)
                mark = "*" if r["value"] == best else " "
                row += f"{r['value']:>{width + 5},.1f}{mark}"
            lines.append(row + f"  [{unit}]")

    for scenario, title in (
        ("migration", "nested live migration (single machine)"),
        ("cluster", "cross-host cluster migration"),
    ):
        cell = result.by_scenario(scenario)
        if not cell:
            continue
        lines.append("")
        lines.append(f"{title}:")
        lines.append(
            f"  {'variant':<{width}} {'tracking cy':>14} {'downtime ms':>12} "
            f"{'granted pg':>11} {'forwarded pg':>13}"
        )
        best = min(r["dirty_tracking_cycles"] for r in cell)
        for r in cell:
            mark = "*" if r["dirty_tracking_cycles"] == best else " "
            lines.append(
                f"  {r['variant']:<{width}} "
                f"{r['dirty_tracking_cycles']:>13,}{mark} "
                f"{r['downtime_s'] * 1e3:>12.3f} "
                f"{r['pages_granted']:>11,} {r['pages_forwarded']:>13,}"
            )

    rankings = scenario_rankings(result)
    lines.append("")
    lines.append("headline (wins per scenario cell, best-ranked variant):")
    for variant, wins in sorted(
        _winner_counts(rankings).items(), key=lambda kv: -kv[1]
    ):
        lines.append(f"  {variant:<{width}} {wins} cell(s)")

    # The composition story, spelled out where the data shows it.
    def ranked(key):
        return {v: i for i, (v, _val) in enumerate(rankings.get(key, []))}

    io_cells = [k for k in rankings if k.startswith("micro/") and "DevNotify" in k]
    for k in io_cells:
        order = ranked(k)
        if "dvh" in order and "ooh" in order and order["dvh"] < order["ooh"]:
            lines.append(
                f"  DVH beats OoH on the I/O path ({k}): virtual-passthrough "
                "short-circuits device notifications OoH still forwards"
            )
            break
    for k in ("migration/dirty_tracking", "cluster/dirty_tracking"):
        order = ranked(k)
        if "dvh" in order and "ooh" in order and order["ooh"] < order["dvh"]:
            lines.append(
                f"  OoH beats DVH on dirty-logging-heavy migration ({k}): "
                "granted tracking prices per-page work at single-level cost"
            )
            break
    return "\n".join(lines)
