"""Virtual IOMMU: the emulated IOMMU a hypervisor exposes to its guest.

Virtual-passthrough (§3.1) requires the host hypervisor to provide "both a
virtual I/O device to assign as well as a virtual IOMMU": the guest
hypervisor programs the virtual IOMMU with mappings from nested-VM
physical addresses to its own guest-physical addresses, and the provider
composes those with its own tables into a *shadow* table that translates
straight from nested-VM addresses to provider addresses — for recursive
virtual-passthrough, only the L1 virtual IOMMU's shadow table is used at
DMA time (Figure 6).

The ``posted_interrupts`` flag models the paper's addition of posted
interrupt support to QEMU's virtual IOMMU (§4: "We also implemented posted
interrupt support in the virtual IOMMU ... which is missing in QEMU").
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.hw.ept import PageTable, Perm
from repro.hw.ops import Op
from repro.hw.pci import Capability, CapabilityId, PciDevice

__all__ = ["VirtualIommu"]


class VirtualIommu(PciDevice):
    """An emulated (VT-d-like) IOMMU provided to a guest hypervisor."""

    def __init__(
        self,
        name: str,
        provider_hv,
        posted_interrupts: bool = False,
    ) -> None:
        super().__init__(name, 0x8086, 0x9D3E, bar_sizes=[0x1000])
        self.add_capability(Capability(CapabilityId.PCIE, {}))
        self.provider_hv = provider_hv
        #: Whether this vIOMMU can post device interrupts directly into
        #: the VMs behind it (Figure 8's "+ posted interrupts" step).
        self.posted_interrupts = posted_interrupts
        #: Per assigned device: guest-programmed table (device-visible
        #: IOVA -> the programming hypervisor's guest-physical).
        self.guest_tables: dict = {}
        #: Per assigned device: shadow table (IOVA -> provider-physical),
        #: maintained by the provider as the guest programs mappings.
        self.shadow_tables: dict = {}

    def program(
        self,
        ctx,
        device: PciDevice,
        iova_pfn: int,
        target_pfn: int,
        perm: Perm = Perm.RW,
    ) -> Generator:
        """The guest hypervisor (running as ``ctx``) programs one mapping.

        The register write traps to the provider, which updates both the
        guest-visible table and the composed shadow table (building the
        combined mappings the same way shadow page tables are built).
        """
        yield from ctx.execute(
            Op.MMIO_WRITE,
            addr=(self.bars[0].base or 0) + 0x40,
            value=(iova_pfn, target_pfn),
            device=self,
        )
        table = self.guest_tables.setdefault(
            device.bdf, PageTable(name=f"{self.name}/g{device.bdf}")
        )
        table.map(iova_pfn, target_pfn, perm)
        shadow = self.shadow_tables.setdefault(
            device.bdf, PageTable(name=f"{self.name}/s{device.bdf}")
        )
        # Compose: the provider resolves the guest hypervisor's target
        # through the EPT of the VM the guest hypervisor runs in.
        provider_vm = getattr(ctx, "vm", None)
        if provider_vm is not None:
            resolved = provider_vm.ept.lookup(target_pfn)
            if resolved is not None:
                shadow.map(iova_pfn, resolved.target_pfn, perm)
                return None
        shadow.map(iova_pfn, target_pfn, perm)
        return None

    def shadow_for(self, device: PciDevice) -> Optional[PageTable]:
        return self.shadow_tables.get(device.bdf)

    def mmio_write(self, addr: int, value) -> None:
        # Register writes are handled in program(); the trap cost is what
        # matters here.
        return

    def mmio_read(self, addr: int):
        return 0
