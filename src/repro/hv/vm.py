"""Virtual machines and virtual CPUs.

A :class:`VCpu` is the execution context for code inside a VM at any
virtualization level.  Its :meth:`VCpu.execute` is where the
architecture's single-level virtualization support lives: every trapping
operation, from any level, exits to the *host* hypervisor first (paper
§2); the host then handles it directly or forwards it to the owning guest
hypervisor, which is where exit multiplication comes from.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple

from repro.hv.dispatch import ExitContext
from repro.hw.cpu import ExecutionContext, PhysicalCpu
from repro.hw.ept import PageTable
from repro.hw.lapic import Lapic, TIMER_VECTOR
from repro.hw.mem import MemorySpace
from repro.hw.ops import (
    MSR_TSC_DEADLINE,
    MSR_X2APIC_ICR,
    Exit,
    ExitReason,
    Op,
)
from repro.hw.pci import PciBus, PciDevice
from repro.hw.posted import PiDescriptor
from repro.hw.vmx import Vmcs, VmcsField

__all__ = ["VirtualMachine", "VCpu"]


class VirtualMachine:
    """A VM at virtualization level ``level`` (1 = runs on the host)."""

    def __init__(
        self,
        name: str,
        level: int,
        machine,
        manager,
        memory_bytes: int,
    ) -> None:
        if level < 1:
            raise ValueError("VM level starts at 1")
        self.name = name
        self.level = level
        self.machine = machine
        #: The hypervisor that manages (created) this VM; its level is
        #: ``level - 1``.
        self.manager = manager
        self.memory = MemorySpace(memory_bytes, name=f"{name}-ram")
        #: Guest-visible PCI bus (populated by the manager).
        self.bus = PciBus(f"{name}-pci")
        #: Guest-physical -> parent-physical page table, maintained by the
        #: manager (for level 1: by L0, it IS the hardware EPT).
        self.ept = PageTable(name=f"{name}-ept")
        self.vcpus: List["VCpu"] = []
        #: MMIO ranges mapped straight through (passthrough BARs): accesses
        #: do not trap.
        self._no_trap_ranges: List[Tuple[int, int]] = []
        #: Virtual CPU interrupt mapping table (§3.3): guest-physical base
        #: address programmed by the hypervisor *inside* this VM when it
        #: enables virtual IPIs for its nested VM.
        self.vcimtar: Optional[int] = None
        #: Set when a physical device is passed through to this VM or a VM
        #: nested inside it: migration becomes impossible (§1, §3.6).
        self.hardware_coupled = False

    # ------------------------------------------------------------------
    # vCPUs
    # ------------------------------------------------------------------
    def add_vcpu(self, pcpu: PhysicalCpu, parent: Optional["VCpu"]) -> "VCpu":
        vcpu = VCpu(self, len(self.vcpus), pcpu, parent)
        self.vcpus.append(vcpu)
        return vcpu

    # ------------------------------------------------------------------
    # MMIO trapping
    # ------------------------------------------------------------------
    def map_mmio_no_trap(self, base: int, size: int) -> None:
        """Map a BAR window straight through (device passthrough)."""
        self._no_trap_ranges.append((base, base + size))

    def traps_mmio(self, addr: int) -> bool:
        for lo, hi in self._no_trap_ranges:
            if lo <= addr < hi:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VM {self.name} L{self.level} vcpus={len(self.vcpus)}>"


class VCpu(ExecutionContext):
    """A virtual CPU, pinned 1:1 to a physical CPU (paper §4 methodology).

    ``parent`` links the nesting chain: an L2 vCPU's parent is the L1 vCPU
    it runs on, whose parent is None (L1 vCPUs run on physical CPUs).
    """

    def __init__(
        self,
        vm: VirtualMachine,
        index: int,
        pcpu: PhysicalCpu,
        parent: Optional["VCpu"],
    ) -> None:
        self.vm = vm
        self.index = index
        self.level = vm.level
        self.name = f"{vm.name}.vcpu{index}"
        self.pcpu = pcpu
        self.parent = parent
        self.lapic = Lapic(apic_id=index)
        self.pi_desc = PiDescriptor(self.name)
        #: The VMCS the *manager* keeps for this vCPU: vmcs01 when the
        #: manager is L0, a vmcs12 kept in guest memory otherwise.
        self.vmcs = Vmcs(owner_level=vm.level - 1, name=f"{self.name}.vmcs")
        #: Cycles of pending interrupt-injection work this vCPU must absorb
        #: (guest-hypervisor intervention for interrupts that could not be
        #: posted directly; drained at the next wait).
        self.pending_exit_work = 0
        #: The merged VMCS L0 actually runs this vCPU with (only for
        #: nested vCPUs; for L1 vCPUs it is the same object as .vmcs).
        self.merged_vmcs = self.vmcs if vm.level == 1 else Vmcs(0, f"{self.name}.vmcs0n")
        if parent is not None and parent.level != vm.level - 1:
            raise ValueError("parent vCPU must be one level down")
        if vm.level > 1 and parent is None:
            raise ValueError("nested vCPU needs a parent")
        #: Machine metrics, bound once (the machine never swaps it); keeps
        #: the per-exit charge path off the vm.machine property chain.
        self.metrics = vm.machine.metrics
        #: The nesting chain [vcpu_L1, ..., self]; parent links are fixed
        #: at construction, so the chain is precomputed.
        self._chain: Tuple["VCpu", ...] = (
            (self,) if parent is None else parent._chain + (self,)
        )

    # ------------------------------------------------------------------
    # Shortcuts
    # ------------------------------------------------------------------
    @property
    def machine(self):
        return self.vm.machine

    @property
    def memory(self):
        """The guest-physical address space this vCPU addresses."""
        return self.vm.memory

    @property
    def host_hv(self):
        return self.vm.machine.host_hv

    @property
    def costs(self):
        return self.vm.machine.costs

    def chain(self) -> List["VCpu"]:
        """vCPUs from L1 down to this one: [vcpu_L1, ..., self]."""
        return list(self._chain)

    def chain_vcpu(self, level: int) -> "VCpu":
        """The vCPU of the level-``level`` VM on this chain."""
        ch = self._chain
        if not 1 <= level <= len(ch):
            raise ValueError(f"no level-{level} vCPU on chain of {self.name}")
        return ch[level - 1]

    def total_tsc_offset(self) -> int:
        """Sum of VMCS TSC offsets from the host down to this vCPU
        (guest TSC = host TSC + total offset)."""
        return sum(v.vmcs.read(VmcsField.TSC_OFFSET) for v in self._chain)

    # ------------------------------------------------------------------
    # ExecutionContext: compute / memory / time
    # ------------------------------------------------------------------
    def compute(self, cycles: int) -> Generator:
        """Unprivileged guest work runs at native speed (hardware
        virtualization), so it just consumes time.

        Guest-hypervisor handler code computes while a trap frame is
        live on this vCPU; its cycles then belong to that frame's span.
        """
        ectx = self.exit_context
        if ectx is None:
            self.metrics.charge("guest_work", cycles)
        else:
            ectx.charge("guest_work", cycles)
        yield cycles

    def mem_write(self, addr: int, size: int) -> None:
        self.vm.memory.write_range(addr, size)

    def read_tsc(self) -> int:
        """RDTSC does not trap: hardware applies the merged offset."""
        return self.pcpu.tsc + self.total_tsc_offset()

    # ------------------------------------------------------------------
    # ExecutionContext: privileged operations
    # ------------------------------------------------------------------
    def execute(self, op: Op, count: int = 1, **info: Any) -> Generator:
        """Execute a privileged operation ``count`` times.

        VMREAD/VMWRITE on fields covered by VMCS shadowing are satisfied
        from the shadow VMCS without any exit; MMIO to passthrough-mapped
        windows goes straight to the device.  Everything else takes a full
        hardware exit to L0 (single-level virtualization support, §2).
        """
        # --- VMCS shadowing fast path -------------------------------
        if op in (Op.VMREAD, Op.VMWRITE):
            vmcs: Optional[Vmcs] = info.get("vmcs")
            fieldname: Optional[VmcsField] = info.get("field")
            if (
                vmcs is not None
                and fieldname is not None
                and vmcs.is_shadowed(fieldname)
            ):
                yield self.costs.vmcs_shadowed_access * count
                if op is Op.VMWRITE:
                    vmcs.write(fieldname, info.get("value"))
                    return None
                return vmcs.read(fieldname)

        # --- Passthrough MMIO fast path -----------------------------
        if op is Op.MMIO_WRITE and not self.vm.traps_mmio(info.get("addr", 0)):
            yield self.costs.ring_access * count
            device: Optional[PciDevice] = info.get("device")
            if device is not None:
                for _ in range(count):
                    device.mmio_write(info.get("addr", 0), info.get("value"))
            return None

        # --- Full trap path -----------------------------------------
        # The trap site: each trapping operation gets a trap frame
        # (ExitContext) here and carries it, unmodified, through L0
        # dispatch, forwarding, and guest-hypervisor re-entry.  A frame
        # created while a handler's frame is live on this vCPU is a child
        # of the same exit chain.
        result = None
        machine = self.vm.machine
        for _ in range(count):
            exit_ = self._make_exit(op, info)
            ectx = ExitContext(exit_, self, self.exit_context, machine)
            result = yield from self.host_hv.dispatch_exit(self, exit_, ectx)
        return result

    def _make_exit(self, op: Op, info: dict) -> Exit:
        if op is Op.WRMSR:
            msr = info.get("msr")
            if msr == MSR_TSC_DEADLINE:
                reason = ExitReason.APIC_TIMER
            elif msr == MSR_X2APIC_ICR:
                reason = ExitReason.APIC_ICR
            else:
                reason = ExitReason.MSR_WRITE
        elif op is Op.RDMSR:
            reason = ExitReason.MSR_READ
        elif op in (
            Op.VMREAD,
            Op.VMWRITE,
            Op.VMPTRLD,
            Op.VMRESUME,
            Op.VMLAUNCH,
            Op.INVEPT,
        ):
            reason = ExitReason.VMX_INSTRUCTION
        elif op is Op.VMCALL:
            reason = ExitReason.VMCALL
        elif op is Op.HLT:
            reason = ExitReason.HLT
        elif op is Op.CPUID:
            reason = ExitReason.CPUID
        elif op in (Op.MMIO_READ, Op.MMIO_WRITE):
            reason = ExitReason.MMIO
        elif op is Op.PIO_WRITE:
            reason = ExitReason.IO_INSTRUCTION
        else:  # pragma: no cover - exhaustive over Op
            raise ValueError(f"unhandled op {op}")
        return Exit(reason=reason, op=op, from_level=self.level, info=info, vcpu=self)

    # ------------------------------------------------------------------
    # ExecutionContext: timers / IPIs / idle
    # ------------------------------------------------------------------
    def program_timer(self, deadline_tsc: int, vector: int = TIMER_VECTOR) -> Generator:
        self.lapic.arm_timer(deadline_tsc, vector)
        return (
            yield from self.execute(
                Op.WRMSR, msr=MSR_TSC_DEADLINE, deadline=deadline_tsc, vector=vector
            )
        )

    def send_ipi(self, dest_index: int, vector: int) -> Generator:
        return (
            yield from self.execute(
                Op.WRMSR, msr=MSR_X2APIC_ICR, dest=dest_index, vector=vector
            )
        )

    def wait_for_interrupt(self) -> Generator:
        """HLT until an interrupt is pending, then ack it.

        Pending posted interrupts are synced first (hardware does this on
        VM entry), so a wait with work already posted returns immediately.
        """
        self.pi_desc.sync_to(self.lapic)
        while not self.lapic.has_pending():
            yield from self.execute(Op.HLT)
            self.pi_desc.sync_to(self.lapic)
        if self.pending_exit_work:
            # Interrupts delivered without posted-interrupt support made
            # this vCPU exit so the guest hypervisor could inject them.
            work, self.pending_exit_work = self.pending_exit_work, 0
            self.metrics.charge("inject_exits", work)
            yield work
        return self.lapic.ack()

    def irq_work(self) -> Generator:
        """Guest IRQ entry/dispatch/EOI.  EOI is virtualized by APICv and
        does not trap."""
        costs = self.costs
        self.metrics.charge("guest_work", costs.guest_irq_entry)
        yield costs.guest_irq_entry + costs.eoi_virtualized
        self.lapic.eoi()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCpu {self.name} pcpu={self.pcpu.idx}>"
