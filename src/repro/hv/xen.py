"""Xen as a guest hypervisor (paper Figure 10: Xen on KVM).

The paper runs Xen 4.10 as the *guest* hypervisor only ("nested
virtualization support does not work properly in recent Xen versions ...
we ran Xen only as the guest hypervisor"), with KVM as the host.  Being
hypervisor-agnostic is a selling point of virtual-passthrough (§3.1), and
Figure 10 shows DVH-VP delivering passthrough-like performance under Xen
too.

The model: same trap-and-emulate structure as KVM, but with Xen's cost
profile — Xen's nested exit handling performs more trapping privileged
operations (its VMCS handling is less tuned for running *under* another
hypervisor), and its split-driver I/O model (netfront in the guest,
netback in dom0) adds an extra domain crossing per I/O notification.
"""

from __future__ import annotations

from typing import Dict, Generator, Tuple

from repro.hw.ops import ExitReason, Op
from repro.hv.kvm import KvmHypervisor

__all__ = ["XenHypervisor"]


class XenHypervisor(KvmHypervisor):
    """A Xen-flavoured guest hypervisor."""

    #: Xen's handlers perform more trapping VMCS accesses per exit than
    #: KVM-on-KVM (nested Xen cannot exploit VMCS shadowing as well).
    OP_COUNTS: Dict[ExitReason, Tuple[int, int]] = {
        reason: (reads + 5, writes + 4)
        for reason, (reads, writes) in KvmHypervisor.OP_COUNTS.items()
    }
    SHADOWED_ACCESSES = 34

    #: Extra software cycles per I/O notification for the event-channel
    #: hop from the device model to netback in dom0.
    EVENT_CHANNEL_SW = 1400

    def _handle_reason_as_guest(self, ctx, exit_, guest_vmcs) -> Generator:
        if exit_.reason is ExitReason.MMIO:
            # Split-driver model: the trapped notification is converted to
            # an event-channel upcall into dom0's netback, costing an
            # extra hypercall round trip before the backend runs.
            yield from ctx.compute(self.EVENT_CHANNEL_SW)
            yield from ctx.execute(Op.VMCALL, purpose="evtchn_send")
        result = yield from super()._handle_reason_as_guest(ctx, exit_, guest_vmcs)
        return result
