"""Xen as a guest hypervisor (paper Figure 10: Xen on KVM).

The paper runs Xen 4.10 as the *guest* hypervisor only ("nested
virtualization support does not work properly in recent Xen versions ...
we ran Xen only as the guest hypervisor"), with KVM as the host.  Being
hypervisor-agnostic is a selling point of virtual-passthrough (§3.1), and
Figure 10 shows DVH-VP delivering passthrough-like performance under Xen
too.

The model: the same trap-and-emulate structure as KVM — literally the
same dispatch registry and handler code — parameterized by Xen's
declarative :data:`repro.hv.profiles.XEN_PROFILE`: more trapping
privileged operations per nested exit (Xen's VMCS handling is less tuned
for running *under* another hypervisor), and the split-driver I/O model
(netfront in the guest, netback in dom0) adds an event-channel hypercall
per I/O notification.  This class carries **no behavior**, only profile
data.
"""

from __future__ import annotations

from repro.hv.kvm import KvmHypervisor
from repro.hv.profiles import XEN_PROFILE

__all__ = ["XenHypervisor"]


class XenHypervisor(KvmHypervisor):
    """A Xen-flavoured guest hypervisor: KVM's machinery, Xen's profile."""

    profile = XEN_PROFILE

    #: Legacy aliases into the profile (see KvmHypervisor).
    OP_COUNTS = XEN_PROFILE.op_counts
    SHADOWED_ACCESSES = XEN_PROFILE.shadowed_accesses
    EVENT_CHANNEL_SW = XEN_PROFILE.io_notify_sw
