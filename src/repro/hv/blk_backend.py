"""Virtio-blk drivers and backends (the storage counterpart of the net
datapath).

The MySQL workload's commit path is fsync-bound: each transaction submits
writes and flushes and *waits* for the completion interrupt.  The chain
structure mirrors virtio-net: a nested VM's virtio-blk device is served by
its guest hypervisor's backend, which relays through the hypervisor's own
virtio-blk device, bottoming out at the host backend that talks to the
physical SSD (``cache=none``, as the paper configures, §4).
"""

from __future__ import annotations

import itertools
from typing import Dict, Generator, List, Set, Tuple

from repro.hw.devices.block import BlockRequest
from repro.hw.devices.virtio import VirtioDevice
from repro.hw.lapic import VIRTIO_VECTOR_BASE
from repro.hw.ops import Op
from repro.hv.virtio_backend import KICK_VECTOR

__all__ = ["VirtioBlkDriver", "NativeBlkDriver", "HostBlkBackend", "GuestBlkBackend"]

BLK_VECTOR = VIRTIO_VECTOR_BASE + 2
BLK_POOL_BASE = 0x8000_0000


class VirtioBlkDriver:
    """Guest-side virtio-blk driver: submit requests, reap completions."""

    def __init__(self, ctx, device: VirtioDevice, vector: int = BLK_VECTOR) -> None:
        self.ctx = ctx
        self.device = device
        self.vector = vector
        self.irq_dest = ctx
        device.bound_driver = self
        self._ids = itertools.count(1)
        self._completed: Set[int] = set()
        #: Completion interrupt destination per in-flight request (the
        #: submitting context, like a per-thread io completion).
        self._req_ctx: Dict[int, object] = {}

    @property
    def costs(self):
        return self.ctx.machine.costs

    @property
    def queue(self):
        return self.device.queues[0]

    def submit(self, op: str, size: int, ctx=None) -> Generator:
        """Queue one request + kick; returns a request id to wait on.
        ``ctx`` is the submitting context (defaults to the bound one)."""
        ctx = ctx if ctx is not None else self.ctx
        req_id = next(self._ids)
        self._req_ctx[req_id] = ctx
        req = BlockRequest(op=op, size=size, payload=req_id)
        yield from ctx.compute(self.costs.driver_per_packet)
        addr = BLK_POOL_BASE + (req_id % 64) * 0x10000
        ctx.mem_write(addr, min(size, 0x10000) or 1)
        self.queue.add_buffer(addr, size, payload=req)
        yield self.costs.ring_access
        yield from ctx.execute(
            Op.MMIO_WRITE,
            addr=self.device.notify_addr,
            value=0,
            device=self.device,
        )
        return req_id

    def reap_completions(self, ctx=None) -> Generator:
        """Collect completion ids from the used ring.

        The completed-set update must happen in the same simulation
        instant as the ring reap: the queue is shared by all workers, and
        a worker that drains a sibling's completion must publish it
        before any other worker can run, or the sibling checks, finds
        nothing, and sleeps through its own completion."""
        ctx = ctx if ctx is not None else self.ctx
        done = []
        for _desc, _written, payload in self.queue.reap_used():
            req = payload
            done.append(req.payload if isinstance(req, BlockRequest) else req)
        self._completed.update(done)
        if done:
            yield from ctx.compute(self.costs.driver_per_packet)
        return done

    def is_complete(self, req_id: int) -> bool:
        return req_id in self._completed

    def completion_dest(self, req_id: int):
        """(ctx, vector) the completion interrupt should target."""
        return self._req_ctx.get(req_id, self.ctx), self.vector

    def wait_for(self, req_id: int, ctx=None) -> Generator:
        """Block (handling interrupts) until ``req_id`` completes."""
        ctx = ctx if ctx is not None else self._req_ctx.get(req_id, self.ctx)
        yield from self.reap_completions(ctx=ctx)
        while not self.is_complete(req_id):
            yield from ctx.wait_for_interrupt()
            yield from ctx.irq_work()
            yield from self.reap_completions(ctx=ctx)
        self._req_ctx.pop(req_id, None)


class NativeBlkDriver:
    """Bare-metal block driver for the native baseline."""

    def __init__(self, ctx, ssd) -> None:
        self.ctx = ctx
        self.ssd = ssd
        self._ids = itertools.count(1)
        self._completed: Set[int] = set()

    def submit(self, op: str, size: int, ctx=None) -> Generator:
        ctx = ctx if ctx is not None else self.ctx
        req_id = next(self._ids)
        yield from ctx.compute(ctx.machine.costs.driver_per_packet)

        def complete(_req):
            self._completed.add(req_id)
            ctx.machine.deliver_native_interrupt(ctx.cpu.idx, BLK_VECTOR)

        self.ssd.submit(BlockRequest(op=op, size=size, payload=req_id), complete)
        return req_id

    def reap_completions(self, ctx=None) -> Generator:
        yield 0
        return list(self._completed)

    def is_complete(self, req_id: int) -> bool:
        return req_id in self._completed

    def wait_for(self, req_id: int, ctx=None) -> Generator:
        ctx = ctx if ctx is not None else self.ctx
        while not self.is_complete(req_id):
            yield from ctx.wait_for_interrupt()
            yield from ctx.irq_work()


class HostBlkBackend:
    """L0 backend bridging an L0-provided virtio-blk device to the SSD."""

    def __init__(self, l0, device: VirtioDevice, user_vm) -> None:
        self.l0 = l0
        self.machine = l0.machine
        self.device = device
        self.user_vm = user_vm
        self._wake = self.machine.sim.event("blk-wake")
        self._done: List[Tuple[int, BlockRequest]] = []
        #: Migration support hooks (set via the PCI migration capability).
        self.dirty_log = None
        self.paused = False
        device.on_kick = self._on_kick
        l0.backends[device] = self
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.machine.sim.spawn(self._run(), f"blk:{self.device.name}")

    def _on_kick(self, queue_index: int) -> None:
        self._signal()

    def _signal(self) -> None:
        ev = self._wake
        self._wake = self.machine.sim.event("blk-wake")
        ev.trigger()

    def pause(self) -> None:
        """Stop processing (migration stop-and-copy)."""
        self.paused = True

    def resume(self) -> None:
        """Resume processing and drain anything queued while paused."""
        self.paused = False
        self._signal()

    def _run(self) -> Generator:
        c = self.machine.costs
        queue = self.device.queues[0]
        while True:
            had_work = False
            while not self.paused:
                item = queue.pop_avail()
                if item is None:
                    break
                desc_id, _addr, size, req = item
                had_work = True
                self.machine.metrics.charge("vhost", c.vhost_per_packet)
                yield c.vhost_per_packet
                self.machine.ssd.submit(
                    req, lambda r, d=desc_id: self._complete(d, r)
                )
            while self._done and not self.paused:
                desc_id, req = self._done.pop(0)
                had_work = True
                yield c.vhost_per_packet // 2
                queue.push_used(desc_id, req.size, payload=req)
                driver = self.device.bound_driver
                if driver is not None:
                    dest, vector = driver.completion_dest(
                        req.payload if isinstance(req.payload, int) else 0
                    )
                    yield from self.l0.deliver_l0_device_interrupt(dest, vector)
            if not had_work:
                yield self._wake

    def _complete(self, desc_id: int, req: BlockRequest) -> None:
        self._done.append((desc_id, req))
        self._signal()


class GuestBlkBackend:
    """A guest hypervisor's virtio-blk backend: relays its nested VM's
    requests through the hypervisor's own block driver."""

    def __init__(self, hv, guest_device: VirtioDevice, lower, ctx) -> None:
        self.hv = hv
        self.machine = hv.machine
        self.guest_device = guest_device
        self.lower = lower  # VirtioBlkDriver one level down
        self.ctx = ctx
        lower.irq_dest = ctx
        guest_device.on_kick = lambda q: None
        hv.backends[guest_device] = self
        #: lower request id -> (guest desc id, guest request)
        self._inflight: Dict[int, Tuple[int, BlockRequest]] = {}
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.machine.sim.spawn(
                self._run(), f"gblk-L{self.hv.level}:{self.guest_device.name}"
            )

    def notify_from_guest(self, handler_ctx) -> Generator:
        yield 450  # ioeventfd signal
        self.ctx.pi_desc.post(KICK_VECTOR)
        self.ctx.pcpu.wake()

    def _run(self) -> Generator:
        c = self.machine.costs
        queue = self.guest_device.queues[0]
        while True:
            yield from self.ctx.wait_for_interrupt()
            # Relay new guest requests downward.
            while True:
                item = queue.pop_avail()
                if item is None:
                    break
                desc_id, _addr, size, req = item
                self.machine.metrics.charge("ghv_vhost", c.vhost_per_packet)
                yield from self.ctx.compute(c.vhost_per_packet)
                lower_id = yield from self.lower.submit(req.op, req.size, ctx=self.ctx)
                self._inflight[lower_id] = (desc_id, req)
            # Complete guest requests whose lower requests finished.
            yield from self.lower.reap_completions(ctx=self.ctx)
            completed_dests = []
            for lower_id in list(self._inflight):
                if self.lower.is_complete(lower_id):
                    desc_id, req = self._inflight.pop(lower_id)
                    yield from self.ctx.compute(c.vhost_per_packet // 2)
                    queue.push_used(desc_id, req.size, payload=req)
                    driver = self.guest_device.bound_driver
                    completed_dests.append(
                        driver.completion_dest(
                            req.payload if isinstance(req.payload, int) else 0
                        )
                    )
            for dest, vector in completed_dests:
                yield from self.hv.inject_interrupt(self.ctx, dest, vector)
                l0 = self.hv._hv_at(0)
                l0.charge_injection(dest, "blk")
                l0.wake_target(dest)
