"""Registry-based exit dispatch: the trap frame and the handler registry.

This module is the architectural spine of the trap path.  Two pieces:

* :class:`ExitContext` — a first-class trap frame created at the trap
  site (``VCpu.execute``) and threaded **unmodified** through L0
  dispatch, guest-hypervisor forwarding, re-entry, and the DVH
  emulation handlers.  It carries the exit-chain identity (a chain id
  shared by every exit a single guest operation ultimately causes), the
  origin level, the forwarding hop count, and — when span tracing is on
  — the open :class:`repro.metrics.spans.Span` cycles are attributed to.

* :class:`ExitHandlerRegistry` — maps ``(ExitReason, profile)`` to
  handler generators, and ``ExitReason`` to *ownership claims*.  L0
  emulation handlers and guest-hypervisor handlers are registered by
  :mod:`repro.hv.kvm`; hypervisor flavours are declarative
  :class:`repro.hv.profiles.HypervisorProfile` values; and each DVH
  feature module (:mod:`repro.core.vtimer`, :mod:`repro.core.vipi`,
  :mod:`repro.core.vidle`, :mod:`repro.core.vpassthrough`) registers the
  ownership claim for the exit reason it short-circuits, instead of the
  host hypervisor string-matching control-bit names.

The registry carries no simulation state; one process-wide
:data:`DEFAULT_REGISTRY` serves every machine.  All mutable per-chain
state lives in the :class:`ExitContext`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.hw.ops import Exit, ExitReason

__all__ = [
    "DispatchTableError",
    "ExitContext",
    "ExitHandlerRegistry",
    "DEFAULT_REGISTRY",
    "recursive_dvh_owner",
]


class DispatchTableError(LookupError):
    """An ``ExitReason`` has no registered handler for the active
    profile.

    Subclasses :class:`LookupError` so pre-existing ``except LookupError``
    call sites keep working; raised eagerly by
    :meth:`ExitHandlerRegistry.validate_tables` at stack-build time so a
    mis-registered (e.g. arch-conditional) reason fails loudly instead of
    ``None``-dispatching on first occurrence at runtime.
    """

#: An L0 emulation handler: ``fn(l0_hv, ectx) -> Generator[cost]``.
L0Handler = Callable[[Any, "ExitContext"], Generator]
#: A guest-hypervisor handler: ``fn(guest_hv, ctx, ectx, guest_vmcs)``.
GuestHandler = Callable[[Any, Any, "ExitContext", Any], Generator]
#: An ownership claim: ``fn(vcpu, exit_) -> owner level``.
OwnershipClaim = Callable[[Any, Exit], int]


class ExitContext:
    """The trap frame of one hardware VM exit.

    Lifecycle: created at the trap site, passed by reference through the
    whole dispatch (never copied, never rebuilt at a forwarding hop), and
    closed when L0 re-enters the guest.  A privileged operation executed
    *by a handler* while this frame is live traps into a **child**
    context: same ``chain_id``, ``depth + 1`` — which is exactly the
    paper's exit multiplication, made observable.
    """

    __slots__ = (
        "exit_",
        "vcpu",
        "chain_id",
        "origin_level",
        "hops",
        "depth",
        "parent",
        "metrics",
        "span",
        "handler",
        "granted",
    )

    def __init__(
        self,
        exit_: Exit,
        vcpu: Any,
        parent: Optional["ExitContext"],
        machine: Any,
    ) -> None:
        self.exit_ = exit_
        self.vcpu = vcpu
        self.parent = parent
        self.origin_level = vcpu.level
        #: Forwarding legs this exit traversed (0 = handled by L0 directly).
        self.hops = 0
        self.metrics = machine.metrics
        #: Who ended up handling the exit ("l0", "l0:dvh", "l0:ooh", or
        #: the owning guest hypervisor's name); set by the dispatcher.
        self.handler = ""
        #: Whether an OoH feature grant short-circuited this exit (set
        #: by the dispatcher; handlers price granted exits flat).
        self.granted = False
        if parent is None:
            self.chain_id = machine.new_chain_id()
            self.depth = 0
        else:
            self.chain_id = parent.chain_id
            self.depth = parent.depth + 1
        tracker = machine.chain_tracker
        if tracker is not None:
            tracker.on_exit(self)
        collector = machine.spans
        self.span = (
            collector.open(self) if collector is not None and collector.enabled
            else None
        )

    # ------------------------------------------------------------------
    def charge(self, category: str, cycles: float) -> None:
        """Charge cycles to the machine metrics, attributing them to the
        open span when tracing is enabled."""
        self.metrics.charge(category, cycles)
        if self.span is not None:
            self.span.add(category, cycles)

    def note_hop(self) -> None:
        self.hops += 1

    def chain(self) -> List["ExitContext"]:
        """Ancestry from the chain root down to this frame."""
        out: List[ExitContext] = []
        node: Optional[ExitContext] = self
        while node is not None:
            out.append(node)
            node = node.parent
        out.reverse()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ExitContext #{self.chain_id}.{self.depth} "
            f"{self.exit_.reason.value} L{self.origin_level} hops={self.hops}>"
        )


# ----------------------------------------------------------------------
# Ownership helpers
# ----------------------------------------------------------------------
def recursive_dvh_owner(vcpu: Any, enabled: Callable[[Any], bool]) -> int:
    """The §3.5 recursive-enable walk, generic over the enable bit.

    DVH handles the exit at L0 only if every intervening hypervisor set
    the enable bit for its guest (the bits AND together).  Otherwise
    forwarding descends from the innermost level: the first hypervisor
    (from the VM's own manager downward) whose enable bit for its guest
    is clear must emulate.  ``enabled`` reads the feature's enable bit
    off an :class:`repro.hw.vmx.ExecControl` — a direct attribute access
    supplied by the feature module, not a string-matched name.
    """
    for m in range(vcpu.level, 1, -1):
        if not enabled(vcpu.chain_vcpu(m).vmcs.controls):
            return m - 1
    return 0


class ExitHandlerRegistry:
    """Maps ``(ExitReason, profile)`` to handlers and reasons to claims."""

    def __init__(self) -> None:
        self._l0: Dict[ExitReason, Tuple[L0Handler, bool]] = {}
        self._l0_default: Optional[Tuple[L0Handler, bool]] = None
        self._guest: Dict[Tuple[ExitReason, Optional[str]], GuestHandler] = {}
        self._guest_default: Optional[GuestHandler] = None
        self._claims: Dict[ExitReason, OwnershipClaim] = {}
        #: OoH grant gates: reason -> grantable feature name.  Consulted
        #: *before* the ownership claims for level-2 vCPUs, so an active
        #: grant short-circuits forwarding exactly where a DVH claim
        #: would (see repro.ooh.grants.register_ownership).
        self._grant_gates: Dict[ExitReason, str] = {}
        self._claims_installed = False
        # Flattened lookup tables indexed by ExitReason.index, with the
        # defaults/fallbacks folded in.  Built lazily on first use and
        # dropped on any (re-)registration; the dispatch hot path never
        # pays a dict lookup or a fallback chain per exit.
        self._l0_table: Optional[List[Optional[Tuple[L0Handler, bool]]]] = None
        self._guest_tables: Dict[Optional[str], List[Optional[GuestHandler]]] = {}
        self._claims_table: Optional[List[Optional[OwnershipClaim]]] = None
        self._gate_table: Optional[List[Optional[str]]] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_l0(
        self, *reasons: ExitReason, dvh_capable: bool = False, default: bool = False
    ) -> Callable[[L0Handler], L0Handler]:
        """Register an L0 emulation handler for ``reasons``.

        ``dvh_capable`` marks reasons whose direct L0 handling of a
        nested VM's exit *is* a DVH mechanism (timer, ICR, HLT, MMIO);
        the dispatcher uses it for the ``dvh_handled`` attribution.
        ``default`` additionally installs the handler as the fallback.
        """

        def deco(fn: L0Handler) -> L0Handler:
            for reason in reasons:
                if reason in self._l0:
                    raise ValueError(f"duplicate L0 handler for {reason}")
                self._l0[reason] = (fn, dvh_capable)
            if default:
                self._l0_default = (fn, dvh_capable)
            self._l0_table = None
            return fn

        return deco

    def register_guest(
        self,
        *reasons: ExitReason,
        profile: Optional[str] = None,
        default: bool = False,
    ) -> Callable[[GuestHandler], GuestHandler]:
        """Register a guest-hypervisor handler for ``reasons``.

        ``profile=None`` registers the base handler shared by every
        flavour; a named profile overrides the base for that flavour
        only.  ``default`` installs the handler as the base fallback.
        """

        def deco(fn: GuestHandler) -> GuestHandler:
            for reason in reasons:
                key = (reason, profile)
                if key in self._guest:
                    raise ValueError(f"duplicate guest handler for {key}")
                self._guest[key] = fn
            if default:
                self._guest_default = fn
            self._guest_tables.clear()
            return fn

        return deco

    def claim_ownership(self, reason: ExitReason, claim: OwnershipClaim) -> None:
        """A DVH feature claims routing authority over ``reason``."""
        if reason in self._claims:
            raise ValueError(f"duplicate ownership claim for {reason}")
        self._claims[reason] = claim
        self._claims_table = None
        self._gate_table = None

    def claim_grant_gate(self, reason: ExitReason, feature: str) -> None:
        """An OoH grantable ``feature`` claims the pre-routing gate for
        ``reason`` — the grant-layer analogue of :meth:`claim_ownership`,
        with the same duplicate rejection."""
        if reason in self._grant_gates:
            raise ValueError(f"duplicate grant gate for {reason}")
        self._grant_gates[reason] = feature
        self._claims_table = None
        self._gate_table = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _build_l0_table(self) -> List[Optional[Tuple[L0Handler, bool]]]:
        default = self._l0_default
        table = [self._l0.get(reason, default) for reason in ExitReason]
        self._l0_table = table
        return table

    def l0_handler(self, reason: ExitReason) -> Tuple[L0Handler, bool]:
        table = self._l0_table
        if table is None:
            table = self._build_l0_table()
        entry = table[reason.index]
        if entry is None:
            raise DispatchTableError(f"no L0 handler for {reason}")
        return entry

    def _build_guest_table(
        self, profile_name: Optional[str]
    ) -> List[Optional[GuestHandler]]:
        guest = self._guest
        default = self._guest_default
        table = [
            guest.get((reason, profile_name))
            or guest.get((reason, None))
            or default
            for reason in ExitReason
        ]
        self._guest_tables[profile_name] = table
        return table

    def guest_handler(self, reason: ExitReason, profile: Any) -> GuestHandler:
        name = profile.name
        table = self._guest_tables.get(name)
        if table is None:
            table = self._build_guest_table(name)
        fn = table[reason.index]
        if fn is None:
            raise DispatchTableError(f"no guest handler for {reason}")
        return fn

    def validate_tables(self, profile_name: Optional[str] = None) -> None:
        """Build-time audit of the flattened dispatch tables.

        Walks the full ``ExitReason`` enum and raises
        :class:`DispatchTableError` naming every reason that would have
        ``None``-dispatched at runtime: missing L0 entries always, and
        missing guest entries when ``profile_name`` is given (a stack
        with a guest hypervisor needs both tables complete).  Called by
        :func:`repro.hv.stack.build_stack` for the active profile.
        """
        l0_table = self._l0_table
        if l0_table is None:
            l0_table = self._build_l0_table()
        missing = [
            reason.value
            for reason, entry in zip(ExitReason, l0_table)
            if entry is None
        ]
        if missing:
            raise DispatchTableError(
                f"L0 dispatch table incomplete: no handler for {missing}"
            )
        if profile_name is not None:
            guest_table = self._guest_tables.get(profile_name)
            if guest_table is None:
                guest_table = self._build_guest_table(profile_name)
            missing = [
                reason.value
                for reason, fn in zip(ExitReason, guest_table)
                if fn is None
            ]
            if missing:
                raise DispatchTableError(
                    f"guest dispatch table for profile {profile_name!r} "
                    f"incomplete: no handler for {missing}"
                )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _build_claims_table(self) -> List[Optional[OwnershipClaim]]:
        if not self._claims_installed:
            self._install_default_claims()
        claims = self._claims
        # Unclaimed reasons route statically; folding the static policy
        # into the table keeps route() a single indexed call.  Shadow-EPT
        # maintenance is the host hypervisor's job; everything else
        # (hypercalls, VMX instructions, CPUID, MSRs) goes to the VM's
        # own manager.
        table: List[Optional[OwnershipClaim]] = []
        for reason in ExitReason:
            claim = claims.get(reason)
            if claim is None:
                if reason is ExitReason.EPT_VIOLATION:
                    claim = lambda vcpu, exit_: 0
                else:
                    claim = lambda vcpu, exit_: vcpu.level - 1
            table.append(claim)
        gates = self._grant_gates
        self._gate_table = [gates.get(reason) for reason in ExitReason]
        self._claims_table = table
        return table

    def route(self, vcpu: Any, exit_: Exit) -> int:
        """Return the level of the hypervisor that must handle the exit
        (0 = the host hypervisor handles it directly)."""
        if vcpu.level == 1:
            return 0
        table = self._claims_table
        if table is None:
            table = self._build_claims_table()
        if vcpu.level == 2:
            # OoH grant gates: an active grant to the L1 guest
            # hypervisor short-circuits forwarding for its reason.  A
            # revoked or absent grant falls through to the claims —
            # graceful degradation to forwarding.  Deeper levels always
            # fall through (grants cover one guest-hypervisor level).
            feature = self._gate_table[exit_.reason.index]
            if feature is not None:
                ooh = vcpu.vm.machine.ooh
                if ooh is not None and ooh.active(feature):
                    return 0
        return table[exit_.reason.index](vcpu, exit_)

    def _install_default_claims(self) -> None:
        """Let each DVH feature module register its ownership claim.

        Deferred to first routing (rather than import time) so the
        registry module stays import-cycle-free: the feature modules may
        import :mod:`repro.hv.dispatch` for helpers.
        """
        self._claims_installed = True
        from repro.core import vidle, vipi, vpassthrough, vtimer
        from repro.ooh import grants as ooh_grants

        for feature in (vpassthrough, vtimer, vipi, vidle, ooh_grants):
            feature.register_ownership(self)


#: The process-wide registry every machine dispatches through.
DEFAULT_REGISTRY = ExitHandlerRegistry()
