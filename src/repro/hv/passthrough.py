"""Device assignment: the passthrough model (Figure 2b).

Assigning a device to a (nested) VM means: unbind it from the current
driver, map its BAR windows into the VM without trapping, build the IOMMU
DMA mappings from device-visible IOVAs (the VM's guest-physical addresses)
to host-physical addresses — composed across every nesting level — and
point the device's interrupts at the VM's vCPU through VT-d posted
interrupts.

This is also the machinery virtual-passthrough reuses unchanged in the
guest hypervisors ("what the guest hypervisor does with virtual-passthrough
is exactly the same as what it does with the regular passthrough model",
§3.1); the virtual-device variant lives in :mod:`repro.core.vpassthrough`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Tuple

from repro.hw.ept import PageTable, Perm
from repro.hw.iommu import Irte, IrteMode
from repro.hw.mem import PAGE_SHIFT
from repro.hw.pci import PciDevice

__all__ = [
    "assign_physical_device",
    "MigrationNotSupported",
    "dma_pool_pfns",
    "resolve_through_chain",
    "resolve_many_through_chain",
]

#: Pages each driver pre-maps for DMA (RX + TX pools).
from repro.hv.virtio_backend import QUEUE_POOL_STRIDE, RX_POOL_BASE, TX_POOL_BASE


class MigrationNotSupported(RuntimeError):
    """Raised when migrating a VM that uses physical device passthrough —
    the key limitation DVH removes (§1, §3.6)."""


@lru_cache(maxsize=16)
def _dma_pool_pfns_cached(
    buffers: int, buf_size: int, queues: int
) -> Tuple[int, ...]:
    pfns = set()
    for base in (RX_POOL_BASE, TX_POOL_BASE):
        for q in range(queues):
            qbase = base + q * QUEUE_POOL_STRIDE
            for i in range(buffers):
                addr = qbase + i * buf_size
                start = addr >> PAGE_SHIFT
                end = (addr + buf_size - 1) >> PAGE_SHIFT
                pfns.update(range(start, end + 1))
    return tuple(sorted(pfns))


def dma_pool_pfns(
    buffers: int = 128, buf_size: int = 65536, queues: int = 4
) -> List[int]:
    """Guest page frames of the standard driver DMA pools (covering every
    multiqueue pool stride).

    The pool layout is a pure function of its parameters and this is
    called for every stack build, so the computed frame set is cached;
    callers get a fresh list they are free to mutate.
    """
    return list(_dma_pool_pfns_cached(buffers, buf_size, queues))


def resolve_through_chain(leaf_vm, pfn: int) -> int:
    """Translate a leaf-VM page frame to a host page frame by walking the
    EPTs of every nesting level (the shadow-table composition of §3.5)."""
    vm = leaf_vm
    current = pfn
    while vm is not None:
        pte = vm.ept.lookup(current)
        if pte is None:
            raise KeyError(
                f"{vm.name}: pfn {current:#x} not mapped in its EPT"
            )
        current = pte.target_pfn
        vm = vm.manager.vm if vm.manager is not None else None
    return current


def resolve_many_through_chain(leaf_vm, pfns: Iterable[int]) -> List[int]:
    """Batch :func:`resolve_through_chain`: one pass per nesting level,
    with the radix walk amortized over pfns sharing a leaf node."""
    current = list(pfns)
    vm = leaf_vm
    while vm is not None:
        ptes = vm.ept.lookup_many(current)
        if None in ptes:
            pfn = current[ptes.index(None)]
            raise KeyError(f"{vm.name}: pfn {pfn:#x} not mapped in its EPT")
        current = [pte.target_pfn for pte in ptes]
        vm = vm.manager.vm if vm.manager is not None else None
    return current


def assign_physical_device(
    machine,
    device: PciDevice,
    leaf_vm,
    pfns: Iterable[int],
) -> PageTable:
    """Assign a physical device (e.g. an SR-IOV VF) to ``leaf_vm``.

    Builds the physical IOMMU domain with composed mappings and maps the
    device BARs through without trapping.  Marks the VM (and every VM on
    its chain) as having a hardware dependency, which blocks migration.
    Returns the IOMMU domain table.
    """
    costs = machine.costs
    device.assigned_to = leaf_vm
    # BARs visible (and non-trapping) inside the leaf.
    for bar in device.bars:
        if bar.base is not None:
            leaf_vm.map_mmio_no_trap(bar.base, bar.size)
    domain = machine.iommu.attach(device)
    levels = leaf_vm.level
    pfn_list = list(pfns)
    domain.map_many(
        zip(pfn_list, resolve_many_through_chain(leaf_vm, pfn_list)), Perm.RW
    )
    machine.metrics.charge(
        "setup", costs.shadow_iommu_map_page * levels * len(pfn_list)
    )
    # VT-d posted interrupts straight to the leaf's first vCPU.
    if leaf_vm.vcpus:
        machine.iommu.set_irte(
            device,
            0,
            Irte(
                mode=IrteMode.POSTED,
                vector=0x40,
                pi_descriptor=leaf_vm.vcpus[0].pi_desc,
            ),
        )
    # Physical passthrough couples the VM to the hardware: flag the whole
    # chain as unmigratable.
    vm = leaf_vm
    while vm is not None:
        vm.hardware_coupled = True
        vm = vm.manager.vm if vm.manager is not None else None
    return domain
