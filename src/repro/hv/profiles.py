"""Declarative hypervisor profiles.

A :class:`HypervisorProfile` captures everything that distinguishes one
guest-hypervisor flavour from another as **data**: how many trapping
VMCS accesses its exit handlers perform per reason, how much of the exit
information VMCS shadowing absorbs, and any extra I/O-notification work
its driver model imposes.  The dispatch core
(:mod:`repro.hv.dispatch`) and the shared exit handlers in
:mod:`repro.hv.kvm` consult the profile; adding a hypervisor flavour
means writing a profile, not subclass method surgery.

Three profiles ship:

* ``kvm`` — the paper's host and guest hypervisor (Linux/KVM 4.18);
* ``xen`` — Xen 4.10 as the guest hypervisor (Figure 10): heavier
  trapping VMCS access patterns (its nested exit handling is less tuned
  for running *under* another hypervisor) and a split-driver I/O model
  whose notifications hop through an event channel into dom0.
* ``hs`` — a RISC-V H-extension hypervisor running in HS-mode
  (``arch="riscv"`` only): leaner per-exit CSR traffic than a VMCS, no
  shadowing equivalent, and — the H-extension's headline feature —
  *trap delegation*: causes listed in :attr:`delegated_reasons` are
  vectored by hardware (``hedeleg``/``hideleg``) straight into the
  first guest hypervisor's handler, short-circuiting L0's forwarding
  software.

The paper runs Xen as the *guest* hypervisor only ("nested
virtualization support does not work properly in recent Xen versions
... we ran Xen only as the guest hypervisor"), with KVM as the host.
Being hypervisor-agnostic is a selling point of virtual-passthrough
(§3.1), and Figure 10 shows DVH-VP delivering passthrough-like
performance under Xen too.  A Xen guest hypervisor is literally the
same dispatch registry and handler code as KVM, parameterized by
:data:`XEN_PROFILE` — the stack builder instantiates
:class:`repro.hv.kvm.KvmHypervisor` with ``profile=PROFILES["xen"]``;
there is no Xen subclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from repro.hw.ops import ExitReason

__all__ = [
    "HypervisorProfile",
    "HS_PROFILE",
    "KVM_PROFILE",
    "XEN_PROFILE",
    "PROFILES",
]


#: Trapping (read, write) VMCS-access counts per handled exit reason for
#: KVM's handlers: the residual non-shadowed accesses made with VMCS
#: shadowing enabled.
_KVM_OP_COUNTS: Dict[ExitReason, Tuple[int, int]] = {
    ExitReason.VMCALL: (8, 8),
    ExitReason.CPUID: (7, 6),
    ExitReason.MSR_READ: (7, 6),
    ExitReason.MSR_WRITE: (7, 6),
    ExitReason.VMX_INSTRUCTION: (9, 8),
    ExitReason.MMIO: (11, 9),
    ExitReason.EPT_VIOLATION: (8, 7),
    ExitReason.IO_INSTRUCTION: (10, 9),
    ExitReason.APIC_TIMER: (10, 8),
    ExitReason.APIC_ICR: (9, 7),
    ExitReason.HLT: (4, 3),
    ExitReason.EXTERNAL_INTERRUPT: (3, 2),
    ExitReason.PREEMPTION_TIMER: (3, 2),
}


@dataclass(frozen=True)
class HypervisorProfile:
    """One guest-hypervisor flavour, as pure data."""

    #: Profile key: guest handlers registered for this profile override
    #: the base handlers registered with ``profile=None``.
    name: str
    #: Trapping (read, write) VMCS accesses per handled exit reason.
    op_counts: Dict[ExitReason, Tuple[int, int]] = field(default_factory=dict)
    #: (read, write) fallback for reasons missing from :attr:`op_counts`.
    default_op_counts: Tuple[int, int] = (9, 8)
    #: Shadowed (non-trapping) VMCS accesses per handled exit.
    shadowed_accesses: int = 26
    #: Trapped (read, write) accesses on the wake path after an emulated
    #: HLT returns.
    wake_ops: Tuple[int, int] = (2, 1)
    #: Extra software cycles per I/O notification before the backend runs
    #: (Xen: the event-channel hop from the device model to netback in
    #: dom0).  Zero disables the hop entirely.
    io_notify_sw: int = 0
    #: Purpose tag of the hypercall the I/O-notification hop performs
    #: (the trapped ``VMCALL`` is charged like any other exit).
    io_notify_hypercall: Optional[str] = None
    #: Exit reasons hardware vectors directly into the first guest
    #: hypervisor (RISC-V ``hedeleg``/``hideleg``).  A delegated exit is
    #: still *forwarded* for accounting purposes — the guest hypervisor's
    #: handler runs in full — but L0's forwarding software is replaced by
    #: the cheap ``CostModel.delegated_vector`` hardware redirect.  Empty
    #: on architectures without a delegation mechanism.
    delegated_reasons: FrozenSet[ExitReason] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        # Flattened per-reason (read, write) table indexed by
        # ExitReason.index — the exit hot path reads this instead of
        # doing a dict lookup per exit.  Built once per (frozen) profile.
        table = tuple(
            self.op_counts.get(reason, self.default_op_counts)
            for reason in ExitReason
        )
        object.__setattr__(self, "op_count_table", table)

    def reason_op_counts(self, reason: ExitReason) -> Tuple[int, int]:
        return self.op_count_table[reason.index]


KVM_PROFILE = HypervisorProfile(name="kvm", op_counts=dict(_KVM_OP_COUNTS))

#: Xen's handlers perform more trapping VMCS accesses per exit than
#: KVM-on-KVM (nested Xen cannot exploit VMCS shadowing as well), and its
#: split-driver model adds an event-channel hypercall per notification.
XEN_PROFILE = HypervisorProfile(
    name="xen",
    op_counts={
        reason: (reads + 5, writes + 4)
        for reason, (reads, writes) in _KVM_OP_COUNTS.items()
    },
    shadowed_accesses=34,
    io_notify_sw=1400,
    io_notify_hypercall="evtchn_send",
)

#: Trapping (read, write) control-CSR access counts per handled exit
#: reason for an HS-mode RISC-V hypervisor.  There is no shadowing, so
#: every access traps, but the H-extension latches the trap reason in
#: directly-readable CSRs (``scause``/``htval``/``htinst``), so handlers
#: need fewer reads than KVM's VMCS-walking paths.
_HS_OP_COUNTS: Dict[ExitReason, Tuple[int, int]] = {
    reason: (max(reads - 1, 1), max(writes - 1, 1))
    for reason, (reads, writes) in _KVM_OP_COUNTS.items()
}

#: Cause classes a real HS-mode hypervisor delegates via
#: ``hedeleg``/``hideleg``: environment calls from VS-mode (the
#: ``VMCALL`` analogue of ``ecall``), guest CSR accesses (the
#: ``MSR_*`` analogue), and ``wfi`` (the ``HLT`` analogue).  MMIO/page
#: faults stay undelegated: the G-stage tables live at L0.
HS_PROFILE = HypervisorProfile(
    name="hs",
    op_counts=dict(_HS_OP_COUNTS),
    default_op_counts=(8, 7),
    shadowed_accesses=0,
    delegated_reasons=frozenset(
        {
            ExitReason.VMCALL,
            ExitReason.MSR_READ,
            ExitReason.MSR_WRITE,
            ExitReason.HLT,
        }
    ),
)

PROFILES: Dict[str, HypervisorProfile] = {
    KVM_PROFILE.name: KVM_PROFILE,
    XEN_PROFILE.name: XEN_PROFILE,
    HS_PROFILE.name: HS_PROFILE,
}
