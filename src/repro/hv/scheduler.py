"""Guest-hypervisor scheduling of sibling nested VMs (§3.4's policy).

The paper's virtual-idle section ends with a scheduling argument: a
guest hypervisor should only let the host handle its nested VM's HLT
when it has nothing else to run — "when there are other nested VMs that
can be run by the guest hypervisor, it is useful to return to the guest
hypervisor to allow it to schedule another nested VM to execute.
Otherwise, the host hypervisor will schedule the CPU to run other VMs
that it knows about and may not include any other nested VMs managed by
the respective guest hypervisor."

This module makes that trade-off executable: a :class:`SiblingLoad`
models a second, compute-hungry nested VM sharing the guest hypervisor,
and :class:`NestedVmScheduler` runs its quanta whenever the primary
nested VM idles *into the guest hypervisor*.  If virtual idle is
(wrongly) engaged while the sibling is runnable, the HLT bypasses the
guest hypervisor and the sibling starves — exactly the failure mode the
paper's policy avoids.

Switching between nested VMs uses the §3.2 virtual-timer save/restore
protocol: the guest hypervisor reads the outgoing VM's virtual timer and
restores the incoming VM's.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.vtimer import restore_virtual_timer, save_virtual_timer
from repro.hw.ops import Op
from repro.hw.vmx import VmcsField

__all__ = ["SiblingLoad", "NestedVmScheduler", "attach_sibling"]

#: Cycles of sibling work run per scheduling opportunity.
DEFAULT_QUANTUM = 50_000


class SiblingLoad:
    """A second nested VM with pending compute work.

    Tracked in the abstract: the scheduler runs its quanta on the shared
    physical CPU whenever the primary nested VM yields through the guest
    hypervisor.  ``progress`` counts cycles of sibling work completed —
    the starvation metric.
    """

    def __init__(self, vm, total_work: int = 10_000_000) -> None:
        self.vm = vm
        self.total_work = total_work
        self.progress = 0

    @property
    def runnable(self) -> bool:
        return self.progress < self.total_work

    @property
    def done(self) -> bool:
        return not self.runnable

    def take_quantum(self, quantum: int) -> int:
        work = min(quantum, self.total_work - self.progress)
        self.progress += work
        return work


class NestedVmScheduler:
    """The guest hypervisor's run queue over its nested VMs."""

    def __init__(self, hv, quantum: int = DEFAULT_QUANTUM) -> None:
        self.hv = hv
        self.quantum = quantum
        self.sibling: Optional[SiblingLoad] = None
        #: Number of nested-VM context switches performed.
        self.switches = 0

    def attach(self, sibling: SiblingLoad) -> None:
        self.sibling = sibling
        self.hv.other_runnable_guests = 1 if sibling.runnable else 0

    @property
    def has_runnable_sibling(self) -> bool:
        return self.sibling is not None and self.sibling.runnable

    # ------------------------------------------------------------------
    def run_sibling_quantum(self, ctx, idle_vcpu) -> Generator:
        """Called from the guest hypervisor's HLT handler: switch to the
        sibling nested VM, run one quantum, switch back.

        ``ctx`` is the guest hypervisor's execution context (its own
        vCPU), ``idle_vcpu`` the nested vCPU that just went idle.  The
        switch performs the §3.2 virtual-timer save/restore and an
        (emulated) VMRESUME of the sibling — all of which trap, so the
        cost is configuration-dependent like everything else.
        """
        sibling = self.sibling
        if sibling is None or not sibling.runnable:
            return None
        costs = self.hv.costs
        self.switches += 1
        # Save the idle VM's virtual-hardware state (§3.2).
        save_virtual_timer(idle_vcpu)
        yield from ctx.execute(
            Op.VMWRITE,
            vmcs=idle_vcpu.vmcs,
            field=VmcsField.GUEST_ACTIVITY_STATE,
            value="halted",
        )
        # Enter the sibling (emulated nested entry, expensive) and run
        # its quantum on this physical CPU.
        yield from ctx.execute(Op.VMRESUME, target_vcpu=None, vmcs=None)
        work = sibling.take_quantum(self.quantum)
        self.hv.metrics.charge("sibling_work", work)
        yield work
        if not sibling.runnable:
            # Sibling finished: re-evaluate the §3.4 policy so virtual
            # idle can engage from now on.
            self.hv.other_runnable_guests = 0
            from repro.core.vidle import update_virtual_idle_policy

            if self.hv.dvh_virtual_idle_available:
                update_virtual_idle_policy(self.hv, idle_vcpu.vm)
        # Switch back toward the idle VM's state (restore on next resume).
        restore_virtual_timer(idle_vcpu)
        return None


def attach_sibling(stack, hv_level: int = 1, total_work: int = 10_000_000,
                   quantum: int = DEFAULT_QUANTUM) -> SiblingLoad:
    """Give the guest hypervisor at ``hv_level`` a second runnable nested
    VM and re-evaluate the virtual-idle policy (§3.4)."""
    hv = stack.hvs[hv_level]
    sibling_vm = hv.create_vm(f"L{hv_level + 1}-sibling", memory_bytes=1 << 30)
    load = SiblingLoad(sibling_vm, total_work=total_work)
    scheduler = NestedVmScheduler(hv, quantum=quantum)
    scheduler.attach(load)
    hv.scheduler = scheduler
    # The policy: with a runnable sibling, keep trapping HLT.
    from repro.core.vidle import update_virtual_idle_policy

    primary_vm = hv.guests[0]
    update_virtual_idle_policy(hv, primary_vm)
    return load
