"""Stack builder: assemble native / VM / nested / L3 configurations.

Reproduces the paper's four measurement configurations (§4):

* **native** — bare metal, 4 cores;
* **VM** — an L1 VM with 4 worker vCPUs;
* **nested VM** — an L2 VM on an L1 KVM (or Xen) guest hypervisor;
* **L3 VM** — one more level.

Each level's hypervisor gets extra cores for its backends ("two cores and
12 GB RAM were added for the hypervisor at each virtualization level"),
and every vCPU is pinned 1:1 to a physical CPU, as the paper does.

The I/O model and DVH feature set are per-configuration knobs, giving the
six bars of Figures 7/9 and the increments of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.features import DvhFeatures
from repro.core.vidle import enable_virtual_idle
from repro.core.vipi import setup_virtual_ipis
from repro.core.vpassthrough import assign_virtual_device, populate_chain_epts
from repro.core.migration import add_migration_capability
from repro.core.vtimer import enable_virtual_timers
from repro.hw.devices.virtio import VirtioDevice
from repro.hw.machine import GB, Machine
from repro.hv.blk_backend import (
    GuestBlkBackend,
    HostBlkBackend,
    NativeBlkDriver,
    VirtioBlkDriver,
)
from repro.hv.kvm import KvmHypervisor
from repro.hv.passthrough import assign_physical_device, dma_pool_pfns
from repro.hv.profiles import PROFILES
from repro.hv.virtio_backend import (
    GuestVhost,
    HostVhost,
    NativeNicDriver,
    VfNicDriver,
    VirtioDriver,
)
from repro.ooh.grants import GrantSet, GrantTable

__all__ = ["StackConfig", "Stack", "build_stack"]

#: Deepest supported virtualization level (the paper's testbed stops at
#: 3; the simulator goes further to exercise recursive DVH).
MAX_LEVELS = 5

#: Network I/O models.
IO_VIRTIO = "virtio"  # Figure 2a cascade ("paravirtual I/O")
IO_PASSTHROUGH = "passthrough"  # Figure 2b (SR-IOV VF)
IO_VIRTUAL_PASSTHROUGH = "vp"  # Figure 2c (DVH virtual-passthrough)
IO_NATIVE = "native"


@dataclass
class StackConfig:
    """One measurement configuration."""

    #: 0 = native, 1 = VM, 2 = nested VM, 3 = L3 VM.  The paper stops at
    #: L3 ("additional virtualization levels are not supported by KVM");
    #: the simulator supports deeper stacks up to MAX_LEVELS, exercising
    #: recursive DVH (S3.5) beyond what the authors could measure.
    levels: int = 1
    io_model: str = IO_VIRTIO
    dvh: DvhFeatures = field(default_factory=DvhFeatures.none)
    #: "kvm", "xen", or "hs" — the guest hypervisor flavour (Figure 10;
    #: "hs" is the RISC-V HS-mode hypervisor and requires arch="riscv",
    #: where a default of "kvm" coerces to it).
    guest_hv: str = "kvm"
    #: Leaf worker vCPUs (the paper's measured config has 4 cores).
    workers: int = 4
    flow: str = "bench"
    seed: int = 0
    #: Ablation: disable VMCS shadowing in the platform.
    vmcs_shadowing: bool = True
    #: L0 timer-emulation backend: "hrtimer" or "preemption" (S3.2).
    timer_backend: str = "hrtimer"
    #: Platform cost profile: "x86" (the paper's testbed), "arm"
    #: (S3/S4: DVH-VP measured on ARM too) or "riscv" (H-extension;
    #: ROADMAP item 4).  I/O models are platform-agnostic.
    arch: str = "x86"
    #: Steady-state fast-forward (epoch skipping): None = follow the
    #: ``REPRO_FAST_FORWARD`` env default, True/False force it for this
    #: stack.  Simulated results are byte-identical either way.
    fast_forward: object = None
    #: OoH feature grants to the L1 guest hypervisor (see repro.ooh), or
    #: None = the grant layer is absent entirely (byte-identical to a
    #: pre-OoH build).  An empty GrantSet installs the layer with no
    #: grants: granted-vs-forwarded attribution and dirty-tracking
    #: pricing run, everything forwards.
    ooh: Optional[GrantSet] = None

    def validate(self) -> None:
        if self.levels < 0 or self.levels > MAX_LEVELS:
            raise ValueError(f"levels must be 0..{MAX_LEVELS}")
        if self.levels == 0 and self.io_model != IO_NATIVE:
            object.__setattr__(self, "io_model", IO_NATIVE)
        if self.io_model == IO_VIRTUAL_PASSTHROUGH and self.levels < 2:
            raise ValueError("virtual-passthrough targets nested VMs")
        if self.guest_hv not in ("kvm", "xen", "hs"):
            raise ValueError("guest_hv must be kvm, xen, or hs")
        if self.timer_backend not in ("hrtimer", "preemption"):
            raise ValueError("timer_backend must be hrtimer or preemption")
        if self.arch not in ("x86", "arm", "riscv"):
            raise ValueError("arch must be x86, arm, or riscv")
        if self.arch == "riscv":
            if self.guest_hv == "kvm":
                # KVM's RISC-V port *is* an HS-mode hypervisor: the
                # default guest-hv flavour resolves to the HS profile,
                # mirroring the io_model coercion above.
                object.__setattr__(self, "guest_hv", "hs")
            elif self.guest_hv != "hs":
                raise ValueError(
                    f"guest_hv {self.guest_hv!r} is not modeled on riscv"
                )
        elif self.guest_hv == "hs":
            raise ValueError("guest_hv 'hs' requires arch='riscv'")
        if self.ooh is not None:
            # Typed GrantError/GrantConflictError at build time: a
            # misconfigured grant never reaches a built stack.
            self.ooh.validate(self.levels, self.io_model, self.dvh)


class Stack:
    """A built configuration, ready to run workloads."""

    def __init__(self, config: StackConfig, machine: Machine) -> None:
        self.config = config
        self.machine = machine
        #: Leaf execution contexts for workload workers.
        self.ctxs: List = []
        #: Network driver bound to worker 0.
        self.net = None
        #: Block driver bound to worker 0.
        self.blk = None
        self.vms: List = []
        self.hvs: List = []  # [l0, hv1, ...] or [] for native
        self.vp_assignment = None

    @property
    def sim(self):
        return self.machine.sim

    @property
    def metrics(self):
        return self.machine.metrics

    @property
    def leaf_vm(self):
        return self.vms[-1] if self.vms else None

    @property
    def flow(self) -> str:
        return self.config.flow

    def ctx(self, i: int = 0):
        return self.ctxs[i]

    def settle(self) -> None:
        """Run the simulation until everything is blocked (backends have
        entered their idle waits).  Useful before counter-based tests so
        startup HLT exits don't pollute measurements."""
        self.sim.run()


def build_stack(config: StackConfig, machine: Machine = None) -> Stack:
    """Build the whole configuration: machine, hypervisors, VMs, devices,
    backends, and DVH feature enablement.

    ``machine`` lets a caller supply a pre-built :class:`Machine` — the
    cluster layer (:mod:`repro.cluster`) uses this to boot several hosts
    on one shared simulator so the whole datacenter marches on a single
    deterministic clock.  When omitted, a fresh machine (and simulator)
    is created from the config, exactly as before.
    """
    config.validate()
    if machine is None:
        from repro.sim.costs import costs_for_arch

        costs = None if config.arch == "x86" else costs_for_arch(config.arch)
        machine = Machine(
            seed=config.seed, costs=costs, fast_forward=config.fast_forward
        )
    if config.ooh is not None:
        machine.ooh = GrantTable(config.ooh, machine.metrics)
    stack = Stack(config, machine)
    if config.levels == 0:
        return _build_native(stack)
    return _build_virtualized(stack)


# ----------------------------------------------------------------------
# Native
# ----------------------------------------------------------------------
def _build_native(stack: Stack) -> Stack:
    machine = stack.machine
    stack.ctxs = machine.native_contexts(stack.config.workers)
    stack.net = NativeNicDriver(stack.ctxs[0], machine.nic, stack.config.flow)
    stack.blk = NativeBlkDriver(stack.ctxs[0], machine.ssd)
    return stack


# ----------------------------------------------------------------------
# Virtualized (1-3 levels)
# ----------------------------------------------------------------------
def _build_virtualized(stack: Stack) -> Stack:
    config = stack.config
    machine = stack.machine
    levels = config.levels
    workers = config.workers

    # --- hypervisors ---------------------------------------------
    l0 = KvmHypervisor(machine, level=0, dvh=config.dvh)
    l0.capability.vmcs_shadowing = (
        config.vmcs_shadowing and config.arch == "x86"
    )
    l0.timer_backend = config.timer_backend
    machine.host_hv = l0
    machine.hv_stack = [l0]
    stack.hvs = [l0]
    # Fail loudly now (typed DispatchTableError) if any ExitReason would
    # None-dispatch at runtime for the active guest-hv profile.
    l0.registry.validate_tables(config.guest_hv if levels >= 2 else None)

    # --- VMs and vCPU chains -------------------------------------
    # Worker chains on pCPUs 0..workers-1; backend vCPUs for level j's
    # hypervisor live on dedicated pCPUs (net and blk workers).
    def net_backend_pcpu(j: int) -> int:
        return workers + 2 * (j - 1)

    def blk_backend_pcpu(j: int) -> int:
        return workers + 2 * (j - 1) + 1

    vms: List = []
    vcpu_at: Dict = {}  # (level, pcpu_idx) -> VCpu
    for m in range(1, levels + 1):
        mgr = stack.hvs[m - 1]
        vm = mgr.create_vm(f"L{m}", memory_bytes=(12 + 12 * (levels - m)) * GB)
        vms.append(vm)
        pcpus = list(range(workers))
        for j in range(m, levels):  # backend pCPUs this VM must cover
            pcpus.append(net_backend_pcpu(j))
            pcpus.append(blk_backend_pcpu(j))
        for p in pcpus:
            parent = vcpu_at.get((m - 1, p))
            vcpu = vm.add_vcpu(machine.cpus[p], parent)
            vcpu.vmcs.set_base_tsc_offset(-(m * 1009 + p * 13))
            if m >= 2 and l0.capability.vmcs_shadowing:
                vcpu.vmcs.controls.shadow_vmcs = True
            vcpu.vmcs.controls.apicv = True
            vcpu.vmcs.controls.posted_interrupts = True
            vcpu_at[(m, p)] = vcpu
        if m < levels:
            ghv = KvmHypervisor(
                machine, level=m, vm=vm, profile=PROFILES[config.guest_hv]
            )
            stack.hvs[m - 1].expose_capability_to(ghv)
            machine.hv_stack.append(ghv)
            stack.hvs.append(ghv)
    stack.vms = vms
    leaf_vm = vms[-1]
    stack.ctxs = [vcpu_at[(levels, p)] for p in range(workers)]

    # --- DVH feature enablement (the §3.5 recursive AND) ----------
    if levels >= 2:
        if config.dvh.virtual_timer:
            enable_virtual_timers(stack.hvs, leaf_vm)
        if config.dvh.virtual_ipi:
            setup_virtual_ipis(stack.hvs, leaf_vm)
        if config.dvh.virtual_idle:
            enable_virtual_idle(stack.hvs, leaf_vm)

    # --- network I/O ----------------------------------------------
    flow = config.flow
    if config.io_model == IO_PASSTHROUGH:
        vf = machine.nic.create_vf()
        pfns = dma_pool_pfns()
        populate_chain_epts(leaf_vm, pfns)
        # BAR address must exist before mapping it through.
        machine.bus.plug(vf)
        assign_physical_device(machine, vf, leaf_vm, pfns)
        stack.net = VfNicDriver(stack.ctxs[0], vf, flow)
    elif config.io_model == IO_VIRTUAL_PASSTHROUGH:
        dev = VirtioDevice(
            "virtio-net-vp",
            kind="net",
            num_queues=2 * workers,
            provider_level=0,
        )
        leaf_vm.bus.plug(dev)
        add_migration_capability(dev)
        assignment = assign_virtual_device(
            machine,
            dev,
            leaf_vm,
            posted_interrupts=config.dvh.viommu_posted_interrupts,
        )
        stack.vp_assignment = assignment
        vhost = HostVhost(
            l0, dev, user_vm=leaf_vm, flow=flow, translate=assignment.translate
        )
        vhost.start()
        stack.net = VirtioDriver(stack.ctxs[0], dev)
    else:  # IO_VIRTIO cascade
        net_devs = []
        for m in range(1, levels + 1):
            dev = VirtioDevice(
                f"virtio-net-L{m}",
                kind="net",
                num_queues=2 * workers,
                provider_level=m - 1,
            )
            vms[m - 1].bus.plug(dev)
            net_devs.append(dev)
        add_migration_capability(net_devs[0])
        vhost = HostVhost(l0, net_devs[0], user_vm=vms[0], flow=flow)
        vhost.start()
        lower_driver = None
        for m in range(1, levels):
            backend_ctx = vcpu_at[(m, net_backend_pcpu(m))]
            lower_driver = VirtioDriver(backend_ctx, net_devs[m - 1])
            gv = GuestVhost(stack.hvs[m], net_devs[m], lower_driver, backend_ctx)
            gv.start()
        stack.net = VirtioDriver(stack.ctxs[0], net_devs[-1])

    # --- block I/O -------------------------------------------------
    if config.io_model == IO_VIRTUAL_PASSTHROUGH:
        bdev = VirtioDevice("virtio-blk-vp", kind="blk", num_queues=1, provider_level=0)
        leaf_vm.bus.plug(bdev)
        hb = HostBlkBackend(l0, bdev, user_vm=leaf_vm)
        hb.start()
        stack.blk = VirtioBlkDriver(stack.ctxs[0], bdev)
    else:
        blk_devs = []
        for m in range(1, levels + 1):
            bdev = VirtioDevice(
                f"virtio-blk-L{m}", kind="blk", num_queues=1, provider_level=m - 1
            )
            vms[m - 1].bus.plug(bdev)
            blk_devs.append(bdev)
        hb = HostBlkBackend(l0, blk_devs[0], user_vm=vms[0])
        hb.start()
        for m in range(1, levels):
            backend_ctx = vcpu_at[(m, blk_backend_pcpu(m))]
            lower = VirtioBlkDriver(backend_ctx, blk_devs[m - 1])
            gb = GuestBlkBackend(stack.hvs[m], blk_devs[m], lower, backend_ctx)
            gb.start()
        stack.blk = VirtioBlkDriver(stack.ctxs[0], blk_devs[-1])

    return stack
