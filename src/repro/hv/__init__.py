"""Hypervisor substrate: KVM/Xen, VMs, vCPUs, backends, stacks."""

from repro.hv.kvm import KvmHypervisor
from repro.hv.profiles import KVM_PROFILE, PROFILES, XEN_PROFILE, HypervisorProfile
from repro.hv.scheduler import NestedVmScheduler, SiblingLoad, attach_sibling
from repro.hv.stack import MAX_LEVELS, Stack, StackConfig, build_stack
from repro.hv.vm import VCpu, VirtualMachine

__all__ = [
    "KvmHypervisor",
    "HypervisorProfile",
    "KVM_PROFILE",
    "XEN_PROFILE",
    "PROFILES",
    "NestedVmScheduler",
    "SiblingLoad",
    "attach_sibling",
    "MAX_LEVELS",
    "Stack",
    "StackConfig",
    "build_stack",
    "VCpu",
    "VirtualMachine",
]
