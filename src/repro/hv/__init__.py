"""Hypervisor substrate: KVM/Xen, VMs, vCPUs, backends, stacks."""

from repro.hv.kvm import KvmHypervisor
from repro.hv.scheduler import NestedVmScheduler, SiblingLoad, attach_sibling
from repro.hv.stack import MAX_LEVELS, Stack, StackConfig, build_stack
from repro.hv.vm import VCpu, VirtualMachine
from repro.hv.xen import XenHypervisor

__all__ = [
    "KvmHypervisor",
    "NestedVmScheduler",
    "SiblingLoad",
    "attach_sibling",
    "MAX_LEVELS",
    "Stack",
    "StackConfig",
    "build_stack",
    "VCpu",
    "VirtualMachine",
    "XenHypervisor",
]
