"""Virtio drivers and backends: the I/O datapaths of every configuration.

The paper's Figure 2 I/O models map onto these classes:

* **Virtual I/O (Figure 2a)** — a cascade: the leaf guest's
  :class:`VirtioDriver` kicks its device, whose :class:`GuestVhost`
  backend (in the guest hypervisor) relays through *its own*
  :class:`VirtioDriver` one level down, ending at the host's
  :class:`HostVhost`, which talks to the physical NIC.  Every backend
  level costs forwarded exits.
* **Passthrough (Figure 2b)** — :class:`VfNicDriver` drives an SR-IOV VF
  directly: doorbells don't trap, DMA goes through the physical IOMMU,
  interrupts are posted by VT-d.
* **Virtual-passthrough (Figure 2c)** — the leaf guest's
  :class:`VirtioDriver` is bound to a device *provided by L0*, so kicks
  exit straight to L0's :class:`HostVhost` and the guest hypervisors
  never intervene.

All network drivers support multiqueue (one RX/TX pair per worker, RSS
steering via :attr:`Packet.queue_hint`), matching the multi-worker
application benchmarks.  The native baseline uses
:class:`NativeNicDriver`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.hw.devices.nic import Packet, PhysicalNic, VirtualFunction
from repro.hw.devices.virtio import VirtioDevice
from repro.hw.ept import EptViolation
from repro.hw.iommu import IommuFault
from repro.hw.lapic import VIRTIO_VECTOR_BASE
from repro.hw.mem import PAGE_SIZE, DirtyLog
from repro.hw.ops import Op

__all__ = [
    "VirtioDriver",
    "NativeNicDriver",
    "VfNicDriver",
    "HostVhost",
    "GuestVhost",
    "KICK_VECTOR",
    "RX_POOL_BASE",
    "TX_POOL_BASE",
    "MAX_DESC_LEN",
    "NOTIFY_TIMEOUT_CYCLES",
    "descriptor_ok",
]

#: Vector a backend vCPU receives when its guest kicks (ioeventfd wake).
KICK_VECTOR = 0x30
#: Base guest addresses of driver buffer pools (per-queue strides).
RX_POOL_BASE = 0x4000_0000
TX_POOL_BASE = 0x6000_0000
QUEUE_POOL_STRIDE = 0x0800_0000
#: ioeventfd signalling cost (host-side wake of a vhost worker).
IOEVENTFD_SIGNAL = 450
#: Buffers posted per RX queue.
RX_BUFFERS = 128
#: Largest descriptor length a backend accepts; anything bigger (or
#: non-positive, or with a negative address) is malformed and must be
#: completed with zero bytes instead of moving garbage.
MAX_DESC_LEN = 1 << 20
#: Cycles a backend waits for an expected notification before its
#: watchdog re-checks the rings (the requeue path for lost kicks).
NOTIFY_TIMEOUT_CYCLES = 500_000


def descriptor_ok(addr: int, length: int) -> bool:
    """Sanity-check a descriptor a backend is about to service."""
    return 0 <= addr and 0 < length <= MAX_DESC_LEN


class VirtioDriver:
    """Guest-side virtio-net driver (any level, multiqueue)."""

    def __init__(
        self,
        ctx,
        device: VirtioDevice,
        buf_size: int = 65536,
    ) -> None:
        self.ctx = ctx  # default context (queue 0 owner)
        self.device = device
        self.buf_size = buf_size
        device.bound_driver = self
        #: Per queue pair: (context, vector) receiving its interrupts.
        self._queue_dest: Dict[int, Tuple[Any, int]] = {}
        self._tx_seq: Dict[int, int] = {}
        for pair in range(device.num_queue_pairs):
            self.bind_queue(pair, ctx, VIRTIO_VECTOR_BASE + pair)
            for i in range(min(RX_BUFFERS, device.rx_q(pair).size // 2)):
                device.rx_q(pair).add_buffer(
                    self._rx_addr(pair, i), buf_size
                )

    # ------------------------------------------------------------------
    def _rx_addr(self, pair: int, slot: int) -> int:
        return RX_POOL_BASE + pair * QUEUE_POOL_STRIDE + slot * self.buf_size

    def _tx_addr(self, pair: int, slot: int) -> int:
        return TX_POOL_BASE + pair * QUEUE_POOL_STRIDE + slot * self.buf_size

    def bind_queue(self, pair: int, ctx, vector: int) -> None:
        """Route queue ``pair``'s interrupts to ``ctx`` (RSS/irq affinity)."""
        self._queue_dest[pair] = (ctx, vector)
        self.device.msi_vectors[pair] = vector

    def queue_dest(self, pair: int) -> Tuple[Any, int]:
        return self._queue_dest[pair]

    # Compatibility accessors for single-queue users (blk-style).
    @property
    def irq_dest(self):
        return self._queue_dest[0][0]

    @irq_dest.setter
    def irq_dest(self, ctx) -> None:
        for pair in list(self._queue_dest):
            self._queue_dest[pair] = (ctx, self._queue_dest[pair][1])

    @property
    def rx_vector(self) -> int:
        return self._queue_dest[0][1]

    @property
    def costs(self):
        return self.ctx.machine.costs

    # ------------------------------------------------------------------
    # TX
    # ------------------------------------------------------------------
    def send(
        self,
        size: int,
        payload: Any = None,
        kick: bool = True,
        queue: int = 0,
        ctx=None,
    ) -> Generator:
        """Queue one message on TX queue ``queue`` and optionally kick.
        ``ctx`` overrides the executing context (a worker sending on its
        own queue)."""
        ctx = ctx if ctx is not None else self._queue_dest[queue][0]
        c = self.costs
        yield from ctx.compute(
            int(c.driver_per_packet + c.guest_per_byte * min(size, 16384))
        )
        # Opportunistically reclaim completed TX descriptors (drivers do
        # this on the send path to avoid TX-completion interrupts).
        self.device.tx_q(queue).reap_used()
        seq = self._tx_seq.get(queue, 0)
        self._tx_seq[queue] = seq + 1
        addr = self._tx_addr(queue, seq % 128)
        ctx.mem_write(addr, min(size, self.buf_size))
        self.device.tx_q(queue).add_buffer(addr, size, payload=payload)
        yield c.ring_access
        if kick:
            yield from self.kick(queue, ctx=ctx)

    def kick(self, queue: int = 0, ctx=None) -> Generator:
        ctx = ctx if ctx is not None else self._queue_dest[queue][0]
        yield from ctx.execute(
            Op.MMIO_WRITE,
            addr=self.device.notify_addr,
            value=2 * queue + 1,  # tx queue index in the flat layout
            device=self.device,
        )

    # ------------------------------------------------------------------
    # RX
    # ------------------------------------------------------------------
    def poll_rx(self, queue: int = 0, ctx=None) -> Generator:
        """Reap received messages from queue ``queue``; repost buffers.
        Returns ``[(size, payload), ...]``."""
        ctx = ctx if ctx is not None else self._queue_dest[queue][0]
        c = self.costs
        rxq = self.device.rx_q(queue)
        out: List[Tuple[int, Any]] = []
        total = 0
        for _desc, written, payload in rxq.reap_used():
            out.append((written, payload))
            total += written
        for _ in out:
            rxq.add_buffer(self._rx_addr(queue, rxq.avail_idx % RX_BUFFERS), self.buf_size)
        if out:
            yield from ctx.compute(
                int(len(out) * c.driver_per_packet + c.guest_per_byte * min(total, 65536))
            )
        return out

    def poll_all(self, ctx=None) -> Generator:
        """Poll every queue (single-threaded backend helper)."""
        out: List[Tuple[int, Any]] = []
        for pair in range(self.device.num_queue_pairs):
            got = yield from self.poll_rx(pair, ctx=ctx)
            out.extend(got)
        return out


class NativeNicDriver:
    """Bare-metal NIC driver for the native baseline (multiqueue)."""

    def __init__(self, ctx, nic: PhysicalNic, flow: str) -> None:
        self.ctx = ctx
        self.nic = nic
        self.flow = flow
        self._queue_dest: Dict[int, Tuple[Any, int]] = {0: (ctx, VIRTIO_VECTOR_BASE)}
        self._rx: Dict[int, List[Packet]] = {0: []}
        nic.register_flow(flow, self._on_rx)

    @property
    def costs(self):
        return self.ctx.machine.costs

    def bind_queue(self, pair: int, ctx, vector: int) -> None:
        self._queue_dest[pair] = (ctx, vector)
        self._rx.setdefault(pair, [])

    def queue_dest(self, pair: int):
        return self._queue_dest[pair]

    def _on_rx(self, packet: Packet) -> None:
        q = packet.queue_hint if packet.queue_hint in self._queue_dest else 0
        self._rx[q].append(packet)
        ctx, vector = self._queue_dest[q]
        self.ctx.machine.deliver_native_interrupt(ctx.cpu.idx, vector)

    def send(self, size: int, payload: Any = None, kick: bool = True,
             queue: int = 0, ctx=None) -> Generator:
        ctx = ctx if ctx is not None else self._queue_dest[queue][0]
        c = self.costs
        yield from ctx.compute(
            int(c.driver_per_packet + c.guest_per_byte * min(size, 16384))
        )
        machine = self.ctx.machine
        self.nic.tx(Packet(self.flow, size, payload=payload), machine.client.receive)

    def poll_rx(self, queue: int = 0, ctx=None) -> Generator:
        ctx = ctx if ctx is not None else self._queue_dest[queue][0]
        c = self.costs
        packets = self._rx[queue]
        out = [(p.size, p.payload) for p in packets]
        total = sum(p.size for p in packets)
        packets.clear()
        if out:
            yield from ctx.compute(
                int(len(out) * c.driver_per_packet + c.guest_per_byte * min(total, 65536))
            )
        return out


class VfNicDriver:
    """Driver for a passed-through SR-IOV virtual function (Figure 2b)."""

    def __init__(
        self,
        ctx,
        vf: VirtualFunction,
        flow: str,
        buf_size: int = 65536,
    ) -> None:
        self.ctx = ctx
        self.vf = vf
        self.flow = flow
        self.buf_size = buf_size
        self._queue_dest: Dict[int, Tuple[Any, int]] = {0: (ctx, VIRTIO_VECTOR_BASE)}
        self._rx: Dict[int, List[Packet]] = {0: []}
        self._rx_slot = 0
        vf.bound_driver = self
        vf.pf.register_flow(flow, self._on_rx)

    @property
    def machine(self):
        return self.ctx.machine

    @property
    def costs(self):
        return self.machine.costs

    def bind_queue(self, pair: int, ctx, vector: int) -> None:
        self._queue_dest[pair] = (ctx, vector)
        self._rx.setdefault(pair, [])

    def queue_dest(self, pair: int):
        return self._queue_dest[pair]

    def _on_rx(self, packet: Packet) -> None:
        """VF hardware RX: IOMMU-translated DMA + VT-d posted interrupt."""
        machine = self.machine
        q = packet.queue_hint if packet.queue_hint in self._queue_dest else 0
        iova = RX_POOL_BASE + (self._rx_slot % RX_BUFFERS) * self.buf_size
        self._rx_slot += 1
        try:
            host_addr = machine.iommu.translate(self.vf, iova, write=True)
        except IommuFault:
            # The IOMMU blocked the DMA write: the packet is dropped on
            # the floor, exactly like real VT-d fault-logging hardware.
            machine.metrics.record_recovery("dma_abort")
            machine.metrics.count("rx_drops")
            return
        machine.memory.write_range(host_addr, min(packet.size, self.buf_size))
        self._rx[q].append(packet)
        ctx, vector = self._queue_dest[q]
        ctx.mem_write(iova, min(packet.size, self.buf_size))
        ctx.pi_desc.post(vector)
        machine.metrics.record_interrupt("vf", "posted")
        ctx.pcpu.wake()

    def send(self, size: int, payload: Any = None, kick: bool = True,
             queue: int = 0, ctx=None) -> Generator:
        ctx = ctx if ctx is not None else self._queue_dest[queue][0]
        c = self.costs
        yield from ctx.compute(
            int(c.driver_per_packet + c.guest_per_byte * min(size, 16384))
        )
        # Doorbell: the BAR is mapped through, so this does not trap.
        yield from ctx.execute(
            Op.MMIO_WRITE, addr=self._doorbell_addr(), value=0, device=self.vf
        )
        machine = self.machine
        try:
            machine.iommu.translate(self.vf, TX_POOL_BASE, write=False)  # DMA read
        except IommuFault:
            machine.metrics.record_recovery("dma_abort")
            return
        self.vf.pf.tx(Packet(self.flow, size, payload=payload), machine.client.receive)

    def _doorbell_addr(self) -> int:
        base = self.vf.bars[0].base
        return (base if base is not None else 0) + 0x100

    def poll_rx(self, queue: int = 0, ctx=None) -> Generator:
        ctx = ctx if ctx is not None else self._queue_dest[queue][0]
        c = self.costs
        packets = self._rx[queue]
        out = [(p.size, p.payload) for p in packets]
        total = sum(p.size for p in packets)
        packets.clear()
        if out:
            yield from ctx.compute(
                int(len(out) * c.driver_per_packet + c.guest_per_byte * min(total, 65536))
            )
        return out

    def poll_all(self, ctx=None) -> Generator:
        out: List[Tuple[int, Any]] = []
        for pair in list(self._rx):
            got = yield from self.poll_rx(pair, ctx=ctx)
            out.extend(got)
        return out


class HostVhost:
    """L0 vhost worker: bridges an L0-provided virtio device to the NIC.

    Serves both the classic virtual-I/O model (device used by the L1 VM)
    and virtual-passthrough (device assigned through to a nested VM —
    then ``translate`` goes through the shadow IOMMU table and RX writes
    feed the device dirty log used by DVH migration, §3.6).
    """

    def __init__(
        self,
        l0,
        device: VirtioDevice,
        user_vm,
        flow: str,
        translate: Optional[Callable[[int, bool], int]] = None,
    ) -> None:
        self.l0 = l0
        self.machine = l0.machine
        self.device = device
        self.user_vm = user_vm
        self.flow = flow
        self.translate = translate
        self._wake = self.machine.sim.event("vhost-wake")
        self._rx_backlog: List[Packet] = []
        self._running = False
        #: DVH migration support (§3.6): pages the device DMAs into, in
        #: user-VM guest-physical frames (drained via the PCI migration
        #: capability).
        self.dirty_log: Optional[DirtyLog] = None
        #: Pause flag for the stop-and-copy migration phase.
        self.paused = False
        device.on_kick = self._on_kick
        self.machine.nic.register_flow(flow, self.on_rx_packet)
        l0.backends[device] = self

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self._running:
            self._running = True
            self.machine.sim.spawn(self._run(), f"vhost:{self.device.name}")

    def _on_kick(self, queue_index: int) -> None:
        self.machine.metrics.count("vhost_kicks")
        self._signal()

    def on_rx_packet(self, packet: Packet) -> None:
        self._rx_backlog.append(packet)
        self._signal()

    def _signal(self) -> None:
        ev = self._wake
        self._wake = self.machine.sim.event("vhost-wake")
        ev.trigger()

    def pause(self) -> None:
        """Stop processing (migration stop-and-copy)."""
        self.paused = True

    def resume(self) -> None:
        """Resume processing and drain anything queued while paused."""
        self.paused = False
        self._signal()

    # ------------------------------------------------------------------
    def has_pending_work(self) -> bool:
        """Whether any ring or backlog holds unserviced work."""
        if self._rx_backlog:
            return True
        return any(
            self.device.tx_q(pair).avail_pending
            for pair in range(self.device.num_queue_pairs)
        )

    def requeue_lost_notification(self) -> bool:
        """Notification-timeout watchdog: if work is pending but no
        signal arrived (a kick was lost in flight), re-signal the worker
        so the request is requeued instead of stranded.  Returns True if
        a requeue was needed."""
        if self.paused or not self.has_pending_work():
            return False
        self.machine.metrics.record_recovery("virtio_requeue")
        self._signal()
        return True

    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        c = self.machine.costs
        while True:
            had_work = False
            if not self.paused:
                # --- TX: guest -> wire (all queues) ----------------
                for pair in range(self.device.num_queue_pairs):
                    txq = self.device.tx_q(pair)
                    while True:
                        item = txq.pop_avail()
                        if item is None:
                            break
                        desc_id, addr, size, payload = item
                        had_work = True
                        if not descriptor_ok(addr, size):
                            # Malformed descriptor (guest bug or ring
                            # corruption): complete with zero bytes so
                            # the ring stays consistent, never touch the
                            # bogus address.
                            self.machine.metrics.record_recovery(
                                "virtio_malformed_drop"
                            )
                            txq.push_used(desc_id, 0)
                            continue
                        self.machine.metrics.charge(
                            "vhost", c.vhost_per_packet + c.vhost_per_byte * size
                        )
                        yield int(c.vhost_per_packet + c.vhost_per_byte * size)
                        if self.translate is not None:
                            try:
                                self.translate(addr, False)
                            except (EptViolation, IommuFault):
                                # DMA translation fault: abort this
                                # request, keep the device alive.
                                self.machine.metrics.record_recovery(
                                    "dma_abort"
                                )
                                txq.push_used(desc_id, 0)
                                continue
                        txq.push_used(desc_id, size)
                        self.machine.nic.tx(
                            Packet(self.flow, size, payload=payload),
                            self.machine.client.receive,
                        )
                # --- RX: wire -> guest ------------------------------
                while self._rx_backlog:
                    packet = self._rx_backlog.pop(0)
                    pair = (
                        packet.queue_hint
                        if packet.queue_hint < self.device.num_queue_pairs
                        else 0
                    )
                    rxq = self.device.rx_q(pair)
                    slot = rxq.pop_avail()
                    if slot is None:
                        self.machine.metrics.count("rx_drops")
                        continue
                    desc_id, addr, _buflen, _ = slot
                    had_work = True
                    if not descriptor_ok(addr, _buflen):
                        self.machine.metrics.record_recovery(
                            "virtio_malformed_drop"
                        )
                        rxq.push_used(desc_id, 0)
                        continue
                    self.machine.metrics.charge(
                        "vhost", c.vhost_per_packet + c.vhost_per_byte * packet.size
                    )
                    yield int(c.vhost_per_packet + c.vhost_per_byte * packet.size)
                    if self.translate is not None:
                        try:
                            self.translate(addr, True)
                        except (EptViolation, IommuFault):
                            self.machine.metrics.record_recovery("dma_abort")
                            rxq.push_used(desc_id, 0)
                            continue
                    self.user_vm.memory.write_range(
                        addr, min(packet.size, PAGE_SIZE * 16)
                    )
                    if self.dirty_log is not None:
                        self.dirty_log.pages.update(
                            range(addr >> 12, ((addr + packet.size - 1) >> 12) + 1)
                        )
                    rxq.push_used(desc_id, packet.size, payload=packet.payload)
                    driver = self.device.bound_driver
                    if driver is not None:
                        ctx, vector = driver.queue_dest(pair)
                        yield from self.l0.deliver_l0_device_interrupt(ctx, vector)
            if not had_work:
                yield self._wake


class GuestVhost:
    """A guest hypervisor's virtio backend for its nested VM's device.

    Runs on a dedicated backend vCPU of the hypervisor's VM (a vhost
    worker thread), relaying all queues through the hypervisor's own
    device one level down — Figure 2a's cascade of virtual I/O devices.
    """

    def __init__(self, hv, guest_device: VirtioDevice, lower, ctx) -> None:
        self.hv = hv
        self.machine = hv.machine
        self.guest_device = guest_device
        self.lower = lower  # VirtioDriver (or VfNicDriver) one level down
        self.ctx = ctx  # backend vCPU of the hypervisor's VM
        # All lower-device interrupts land on the backend vCPU (a single
        # vhost worker thread services every queue).
        if hasattr(lower, "device"):
            for pair in range(lower.device.num_queue_pairs):
                lower.bind_queue(pair, ctx, VIRTIO_VECTOR_BASE + pair)
        guest_device.on_kick = lambda q: None  # kicks arrive via MMIO exits
        hv.backends[guest_device] = self
        self._running = False

    def start(self) -> None:
        if not self._running:
            self._running = True
            self.machine.sim.spawn(
                self._run(), f"gvhost-L{self.hv.level}:{self.guest_device.name}"
            )

    # ------------------------------------------------------------------
    def notify_from_guest(self, handler_ctx) -> Generator:
        """Called inside the hypervisor's MMIO exit handler: signal the
        vhost worker (ioeventfd + worker wakeup)."""
        yield IOEVENTFD_SIGNAL
        self.ctx.pi_desc.post(KICK_VECTOR)
        self.ctx.pcpu.wake()

    def has_pending_work(self) -> bool:
        """Whether any guest TX ring holds unserviced buffers."""
        return any(
            self.guest_device.tx_q(pair).avail_pending
            for pair in range(self.guest_device.num_queue_pairs)
        )

    def requeue_lost_notification(self) -> bool:
        """Notification-timeout watchdog (same contract as
        :meth:`HostVhost.requeue_lost_notification`): re-post the kick
        vector to the backend vCPU when work is stranded."""
        if not self.has_pending_work():
            return False
        self.machine.metrics.record_recovery("virtio_requeue")
        self.ctx.pi_desc.post(KICK_VECTOR)
        self.ctx.pcpu.wake()
        return True

    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        c = self.machine.costs
        while True:
            yield from self.ctx.wait_for_interrupt()
            # --- TX: nested VM -> lower device ---------------------
            for pair in range(self.guest_device.num_queue_pairs):
                txq = self.guest_device.tx_q(pair)
                while True:
                    item = txq.pop_avail()
                    if item is None:
                        break
                    desc_id, _addr, size, payload = item
                    if not descriptor_ok(_addr, size):
                        self.machine.metrics.record_recovery(
                            "virtio_malformed_drop"
                        )
                        txq.push_used(desc_id, 0)
                        continue
                    self.machine.metrics.charge(
                        "ghv_vhost", c.vhost_per_packet + c.vhost_per_byte * size
                    )
                    yield from self.ctx.compute(
                        int(c.vhost_per_packet + c.vhost_per_byte * size)
                    )
                    txq.push_used(desc_id, size)
                    yield from self.lower.send(
                        size, payload=payload, kick=True,
                        queue=min(pair, self.lower.device.num_queue_pairs - 1)
                        if hasattr(self.lower, "device") else 0,
                        ctx=self.ctx,
                    )
            # --- RX: lower device -> nested VM ---------------------
            # Track which guest queues got data so each bound worker is
            # interrupted exactly once per batch.
            touched: Dict[int, int] = {}
            for pair in range(self.guest_device.num_queue_pairs):
                lower_pair = (
                    min(pair, self.lower.device.num_queue_pairs - 1)
                    if hasattr(self.lower, "device")
                    else pair
                )
                received = yield from self.lower.poll_rx(lower_pair, ctx=self.ctx)
                rxq = self.guest_device.rx_q(pair)
                for packet_size, payload in received:
                    slot = rxq.pop_avail()
                    if slot is None:
                        self.machine.metrics.count("rx_drops")
                        break
                    desc_id, addr, _buflen, _ = slot
                    if not descriptor_ok(addr, _buflen):
                        self.machine.metrics.record_recovery(
                            "virtio_malformed_drop"
                        )
                        rxq.push_used(desc_id, 0)
                        continue
                    self.machine.metrics.charge(
                        "ghv_vhost",
                        c.vhost_per_packet + c.vhost_per_byte * packet_size,
                    )
                    yield from self.ctx.compute(
                        int(c.vhost_per_packet + c.vhost_per_byte * packet_size)
                    )
                    rxq.push_used(desc_id, packet_size, payload=payload)
                    vm = self.guest_device.bound_driver.irq_dest.vm
                    vm.memory.write_range(addr, min(packet_size, PAGE_SIZE * 16))
                    touched[pair] = touched.get(pair, 0) + 1
            for pair in touched:
                driver = self.guest_device.bound_driver
                ctx, vector = driver.queue_dest(pair)
                yield from self.hv.inject_interrupt(self.ctx, ctx, vector)
                l0 = self.hv._hv_at(0)
                # Without posted-interrupt support reaching the nested VM,
                # the target also pays a guest-hypervisor-mediated
                # injection exit.
                l0.charge_injection(ctx, "virtio")
                l0.wake_target(ctx)
