"""The KVM-like hypervisor: exit dispatch, forwarding, emulation, DVH.

One class plays both roles of the paper's terminology:

* the **host hypervisor** (level 0, ``L0``) owns the hardware, takes every
  exit first (single-level architectural virtualization support, §2), and
  either handles it directly or *forwards* it to the owning guest
  hypervisor;
* a **guest hypervisor** (level >= 1) runs inside a VM; its exit handlers
  execute as guest code, so every privileged operation they perform traps
  back to L0 (or, for deeper nesting, to an even longer chain).  This is
  the mechanism — not a formula — that produces exit multiplication.

The dispatch machinery itself lives in :mod:`repro.hv.dispatch`: every
hardware exit arrives here wrapped in an
:class:`~repro.hv.dispatch.ExitContext` (the trap frame created at the
trap site in :meth:`repro.hv.vm.VCpu.execute`), routing consults the
:class:`~repro.hv.dispatch.ExitHandlerRegistry` (where each DVH feature
registered its ownership claim), and the reason-specific emulation is
performed by the module-level handler functions below, registered per
``(ExitReason, profile)``.  Hypervisor flavours are declarative
:class:`repro.hv.profiles.HypervisorProfile` data — Xen is a profile, not
method overrides.

The four DVH mechanisms short-circuit routing through their ownership
claims: when the VM-execution controls of every intervening level carry
the DVH enable bit (§3.5's AND rule), exits that would have been
forwarded are handled by L0 directly.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, Generator, List, Optional, Tuple

from repro.core.features import DvhFeatures
from repro.hv.dispatch import DEFAULT_REGISTRY, ExitContext, ExitHandlerRegistry
from repro.hv.profiles import KVM_PROFILE, HypervisorProfile
from repro.hv.vm import VCpu, VirtualMachine
from repro.hw.lapic import TIMER_VECTOR
from repro.hw.ops import (
    MSR_TSC_DEADLINE,
    MSR_X2APIC_ICR,
    Exit,
    ExitReason,
    Op,
)
from repro.hw.vmx import (
    VCIMT_ENTRY_SIZE,
    ExecControl,
    Vmcs,
    VmcsField,
    VmxCapability,
)

__all__ = ["KvmHypervisor"]


class KvmHypervisor:
    """KVM at any virtualization level (level 0 = the host hypervisor)."""

    #: The declarative flavour of this hypervisor (subclasses swap the
    #: profile, nothing else).
    profile: ClassVar[HypervisorProfile] = KVM_PROFILE
    #: The registry exits are routed and dispatched through.
    registry: ClassVar[ExitHandlerRegistry] = DEFAULT_REGISTRY

    #: Legacy aliases into the profile (kept for tests and callers that
    #: predate hv.profiles).
    OP_COUNTS: ClassVar[Dict[ExitReason, Tuple[int, int]]] = KVM_PROFILE.op_counts
    SHADOWED_ACCESSES: ClassVar[int] = KVM_PROFILE.shadowed_accesses
    WAKE_OPS: ClassVar[Tuple[int, int]] = KVM_PROFILE.wake_ops

    def __init__(
        self,
        machine,
        level: int = 0,
        vm: Optional[VirtualMachine] = None,
        dvh: Optional[DvhFeatures] = None,
        name: str = "",
        profile: Optional[HypervisorProfile] = None,
    ) -> None:
        if (level == 0) != (vm is None):
            raise ValueError("host hypervisor has no VM; guest hypervisors need one")
        if profile is not None:
            # Flavour as data: an instance-level profile (e.g. XEN_PROFILE)
            # shadows the class default; no subclass needed.
            self.profile = profile
        self.machine = machine
        #: Machine metrics, bound once (the machine never swaps it); the
        #: dispatch path charges it on every exit.
        self.metrics = machine.metrics
        self.level = level
        self.vm = vm
        self.name = name or (f"{self.profile.name}-L{level}" if level else "kvm-host")
        #: DVH mechanisms this hypervisor *provides* to its guests.  Only
        #: meaningful at L0 in the paper's design; guest hypervisors
        #: re-expose what they discover (recursive DVH, §3.5).
        self.dvh = dvh if dvh is not None else DvhFeatures.none()
        #: What this hypervisor discovers about the platform it runs on
        #: (set by the level below / the stack builder).
        self.capability = VmxCapability()
        self.guests: List[VirtualMachine] = []
        #: Per-vCPU armed hrtimer handles (cancelled on reprogram, so
        #: stale arms leave only inert heap entries behind and never
        #: block a fast-forward window).
        self._timer_handles: Dict[VCpu, Any] = {}
        #: Virtio backends: device -> backend object (set by stack builder).
        self.backends: Dict[Any, Any] = {}
        #: §3.4 policy: number of *other* runnable nested VMs; virtual
        #: idle is only engaged when this is zero.
        self.other_runnable_guests = 0
        #: Timer-emulation backend (§3.2 names both options): "hrtimer"
        #: (Linux high-resolution timers — what the paper's KVM
        #: implementation uses) or "preemption" (the VMX-Preemption
        #: Timer: expiry arrives as a VM exit on the running vCPU).
        self.timer_backend = "hrtimer"
        #: Optional run queue over sibling nested VMs (§3.4 scheduling;
        #: see repro.hv.scheduler).
        self.scheduler = None

    # ------------------------------------------------------------------
    # Shortcuts
    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.machine.sim

    @property
    def costs(self):
        return self.machine.costs

    def _hv_at(self, level: int) -> "KvmHypervisor":
        return self.machine.hv_stack[level]

    # ==================================================================
    # VM lifecycle
    # ==================================================================
    def create_vm(self, name: str, memory_bytes: int) -> VirtualMachine:
        """Create a VM one level above this hypervisor."""
        vm = VirtualMachine(
            name=name,
            level=self.level + 1,
            machine=self.machine,
            manager=self,
            memory_bytes=memory_bytes,
        )
        self.guests.append(vm)
        return vm

    # ==================================================================
    # L0: exit dispatch
    # ==================================================================
    def dispatch_exit(
        self, vcpu: VCpu, exit_: Exit, ectx: Optional[ExitContext] = None
    ) -> Generator:
        """Entry point for every hardware VM exit (L0 only, §2).

        ``ectx`` is the trap frame created at the trap site; direct
        callers (tests, softirq paths) may omit it and get a fresh root
        frame.  The frame travels the whole dispatch unmodified — the
        span it carries closes exactly when L0 re-enters the guest.
        """
        assert self.level == 0, "only the host hypervisor takes hardware exits"
        if ectx is None:
            ectx = ExitContext(exit_, vcpu, None, self.machine)
        c = self.costs
        metrics = self.metrics
        reason_name = exit_.reason._value_
        try:
            metrics.record_exit(vcpu.level, reason_name)
            ectx.charge("hw_switch", c.hw_exit)
            ectx.charge("l0_emul", c.l0_dispatch)
            yield c.hw_exit + c.l0_dispatch
            if vcpu.level >= 2 and self.dvh.any_enabled:
                # L0 consults the DVH bits in the (merged) VM-execution
                # controls before routing (§3.2-3.4).
                ectx.charge("l0_emul", c.dvh_route_check)
                yield c.dvh_route_check
            owner = self.registry.route(vcpu, exit_)
            ooh = self.machine.ooh
            if ooh is not None and vcpu.level >= 2:
                # OoH attribution: every exit whose reason a configured
                # grant gates is counted granted or forwarded — revoked
                # grants keep showing up in the forwarded bucket.
                feature = ooh.feature_for(exit_.reason)
                if feature is not None:
                    granted = (
                        owner == 0
                        and vcpu.level == 2
                        and ooh.active(feature)
                    )
                    ooh.record(feature, granted)
                    if granted:
                        ectx.granted = True
                        ectx.charge("ooh_emul", c.ooh_grant_check)
                        yield c.ooh_grant_check
            tracker = self.machine.chain_tracker
            if owner == 0:
                handler, dvh_capable = self.registry.l0_handler(exit_.reason)
                dvh_used = vcpu.level >= 2 and dvh_capable and not ectx.granted
                if ectx.granted:
                    ectx.handler = "l0:ooh"
                else:
                    ectx.handler = "l0:dvh" if dvh_used else "l0"
                result = yield from handler(self, ectx)
                metrics.record_l0_handled(reason_name, dvh=dvh_used)
                if tracker is not None:
                    tracker.on_l0_handled(ectx)
                ectx.charge("hw_switch", c.hw_entry)
                yield c.hw_entry
                return result
            metrics.record_forward(vcpu.level, reason_name, owner)
            if tracker is not None:
                tracker.on_forward(ectx, owner)
            if exit_.reason in self._hv_at(1).profile.delegated_reasons:
                # Trap delegation (RISC-V hedeleg/hideleg): hardware
                # vectors the trap straight into the first guest
                # hypervisor; L0's forwarding software never runs.  The
                # exit remains a forward for conservation accounting —
                # only the state-save price is replaced.
                metrics.count("delegated_traps")
                ectx.charge("hw_switch", c.delegated_vector)
                yield c.delegated_vector
            else:
                ectx.charge("l0_emul", c.forward_state_save)
                yield c.forward_state_save
            return (yield from self._deliver(vcpu, exit_, owner, 1, ectx))
        finally:
            if ectx.span is not None and self.machine.spans is not None:
                self.machine.spans.close(ectx)

    def _deliver(
        self, vcpu: VCpu, exit_: Exit, owner: int, via: int, ectx: ExitContext
    ) -> Generator:
        """Reflect an exit into the guest hypervisor at ``via``; recurse
        one level at a time until the owner handles it (§2: "the L0
        hypervisor ... will forward it to the L1 hypervisor, which will
        forward it to the L2 hypervisor via the L0 hypervisor")."""
        c = self.costs
        ectx.charge("hw_switch", c.hw_entry)
        yield c.hw_entry  # enter the via-level hypervisor's context
        hv = self._hv_at(via)
        ctx = vcpu.chain_vcpu(via)
        ectx.note_hop()
        # The via-level handler runs as guest code on ``ctx`` while this
        # frame is live: its trapping ops become child frames of this
        # exit chain.
        saved = ctx.exit_context
        ctx.exit_context = ectx
        try:
            if via == owner:
                ectx.handler = hv.name
                return (yield from hv.handle_guest_exit(ctx, exit_, ectx))
            yield from hv.reinject_exit(ctx, exit_, ectx)
        finally:
            ctx.exit_context = saved
        return (yield from self._deliver(vcpu, exit_, owner, via + 1, ectx))

    # ------------------------------------------------------------------
    # Routing: who owns this exit?
    # ------------------------------------------------------------------
    def _route(self, vcpu: VCpu, exit_: Exit) -> int:
        """Return the level of the hypervisor that must handle the exit
        (0 = L0 handles directly).  Thin shim over the registry, whose
        ownership claims were registered by the DVH feature modules."""
        return self.registry.route(vcpu, exit_)

    # ==================================================================
    # L0: timer plumbing (shared by the L0 and guest timer handlers)
    # ==================================================================
    def _arm_hrtimer(
        self, vcpu: VCpu, host_deadline: int, vector: int, provider_level: int
    ) -> None:
        """Arm (or re-arm) the per-vCPU hrtimer backing timer emulation."""
        stale = self._timer_handles.get(vcpu)
        if stale is not None:
            stale.cancel()
        fire_at = max(self.sim.now, host_deadline - vcpu.pcpu.tsc_boot_offset)

        def fire() -> None:
            self.sim.spawn(
                self._timer_fire(vcpu, vector, provider_level),
                f"timer-fire:{vcpu.name}",
            )

        self._timer_handles[vcpu] = self.sim.timer_at(fire_at, fire)

    def _timer_fire(self, vcpu: VCpu, vector: int, provider_level: int) -> Generator:
        """Timer expiry: deliver the timer interrupt to the vCPU.

        With DVH (provider 0) the host delivers directly using posted
        interrupts (§3.2's optimization); otherwise the providing guest
        hypervisor's injection sequence runs first — trapping all the
        way down.
        """
        c = self.costs
        if self.timer_backend == "preemption":
            # VMX-Preemption Timer: expiry IS a VM exit on the running
            # vCPU (no softirq), then the host injects on re-entry.
            vcpu.pending_exit_work += c.l0_roundtrip(c.emul_trivial)
            self.metrics.record_exit(vcpu.level, "preemption_timer")
        else:
            self.metrics.charge("l0_emul", c.hrtimer_fire)
            yield c.hrtimer_fire
        vcpu.lapic.fire_timer()  # latches the vector in the vCPU's IRR
        if provider_level >= 1:
            hv = self._hv_at(provider_level)
            ctx = vcpu.chain_vcpu(provider_level)
            yield from hv.inject_interrupt(ctx, vcpu, vector)
            self.charge_injection(vcpu, "timer")
            self.wake_target(vcpu)
        elif vcpu.level >= 2 and not self.dvh.vtimer_direct_delivery:
            # Virtual timer without the posted-interrupt optimization:
            # expiry is handed to the guest hypervisor to inject, like a
            # regular emulated timer's would be.
            hv = self._hv_at(vcpu.level - 1)
            ctx = vcpu.chain_vcpu(vcpu.level - 1)
            yield from hv.inject_interrupt(ctx, vcpu, vector)
            self.charge_injection(vcpu, "timer")
            self.wake_target(vcpu)
        else:
            self.metrics.record_interrupt("timer", "posted")
            self.deliver_posted(vcpu, vector)
            self.wake_target(vcpu)

    def _vcimt_lookup(self, vcpu: VCpu, dest_index: int) -> VCpu:
        """Read the VCIMT entry for ``dest_index`` from the memory the
        guest hypervisor registered via the VCIMTAR."""
        vcimtar = vcpu.vmcs.read(VmcsField.VCIMTAR)
        if not vcimtar:
            raise RuntimeError(
                f"virtual IPI enabled for {vcpu.name} but no VCIMT registered"
            )
        manager_vm = vcpu.vm.manager.vm  # the VM the guest hypervisor runs in
        entry = manager_vm.memory.read(vcimtar + VCIMT_ENTRY_SIZE * dest_index)
        if entry is None:
            raise RuntimeError(f"VCIMT has no entry for vCPU {dest_index}")
        return entry

    def _host_controls(self) -> ExecControl:
        ctl = ExecControl()
        ctl.hlt_exiting = True
        ctl.apicv = self.capability.apicv
        ctl.posted_interrupts = self.capability.posted_interrupts
        return ctl

    # ==================================================================
    # L0: interrupt delivery plumbing
    # ==================================================================
    def deliver_posted(
        self, vcpu: VCpu, vector: int, ectx: Optional[ExitContext] = None
    ) -> None:
        """Post ``vector`` to a vCPU (no exit if it is running)."""
        vcpu.pi_desc.post(vector)
        if ectx is not None:
            ectx.charge("l0_emul", self.costs.posted_interrupt_delivery)
        else:
            self.metrics.charge("l0_emul", self.costs.posted_interrupt_delivery)

    def wake_target(self, vcpu: VCpu) -> bool:
        """Wake the physical CPU a vCPU is pinned to if it is halted."""
        return vcpu.pcpu.wake()

    def injection_exit_cost(self, vcpu: VCpu) -> int:
        """Estimated cycles the target vCPU's physical CPU spends when an
        interrupt must be *injected* (not posted) into a nested VM: the
        VM exits, the owning guest hypervisor's injection handler runs
        (trapping along the way), and the VM is re-entered via an
        emulated VMRESUME.  Recursively more expensive per level.
        """
        c = self.costs

        def handler_op(j: int) -> int:
            # One trapped op executed by the hypervisor at level j.
            if j <= 1:
                return c.l0_roundtrip(c.emul_vmcs_access)
            return forwarded(j)

        def forwarded(m: int) -> int:
            # A full exit from level m handled by the hypervisor below.
            if m <= 1:
                return c.l0_roundtrip(c.emul_trivial)
            reads, writes = self.profile.reason_op_counts(
                ExitReason.EXTERNAL_INTERRUPT
            )
            base = c.hw_exit + c.l0_dispatch + c.forward_state_save + c.hw_entry
            resume = (
                c.l0_roundtrip(c.emul_vmresume_merge)
                if m == 2
                else forwarded(m - 1)
            )
            return (
                base
                + c.ghv_handler_sw
                + (reads + writes) * handler_op(m - 1)
                + resume
            )

        return forwarded(vcpu.level)

    def charge_injection(self, vcpu: VCpu, kind: str) -> None:
        """Record that ``vcpu`` will absorb a guest-hypervisor-mediated
        interrupt injection at its next scheduling point.

        A halted target is exempt: its wake path already unwinds through
        the guest hypervisor's HLT handler, which performs the injection
        as part of resuming the nested VM."""
        ooh = self.machine.ooh
        if (
            ooh is not None
            and vcpu.level >= 2
            and ooh.active("posted_interrupts")
        ):
            # OoH posted_interrupts grant: the injection used the real
            # posted-interrupt path, so the target absorbs no exit.
            self.metrics.record_interrupt(kind, "posted")
            return
        if not vcpu.pcpu.halted:
            vcpu.pending_exit_work += self.injection_exit_cost(vcpu)
        self.metrics.record_interrupt(kind, "injected")

    def deliver_l0_device_interrupt(self, vcpu: VCpu, vector: int) -> Generator:
        """Deliver an interrupt from an L0-provided virtio device.

        For an L1 vCPU (or a nested vCPU whose virtual IOMMU supports
        posted interrupts — Figure 8's increment), APICv posts directly.
        Otherwise the interrupt is remapped to the L1 hypervisor, whose
        intervention costs the nested VM a forwarded exit.
        """
        c = self.costs
        if vcpu.level == 1 or self.dvh.viommu_posted_interrupts:
            self.metrics.record_interrupt("virtio", "posted")
            self.deliver_posted(vcpu, vector)
            yield c.posted_interrupt_delivery
            self.wake_target(vcpu)
            return None
        vcpu.pi_desc.post(vector)
        yield c.posted_interrupt_delivery
        self.charge_injection(vcpu, "virtio")
        self.wake_target(vcpu)
        return None

    # ==================================================================
    # Guest hypervisor: exit handling (runs as guest code!)
    # ==================================================================
    def op_counts(self, reason: ExitReason) -> Tuple[int, int]:
        reads, writes = self.profile.reason_op_counts(reason)
        if not self.capability.vmcs_shadowing:
            # Ablation: without shadowing, every access traps.
            extra = self.costs.ghv_vmcs_unshadowed_total - (reads + writes)
            reads += (extra + 1) // 2
            writes += extra // 2
        return reads, writes

    def handle_guest_exit(
        self, ctx: VCpu, exit_: Exit, ectx: Optional[ExitContext] = None
    ) -> Generator:
        """Handle an exit from this hypervisor's own guest.

        ``ctx`` is the vCPU of the VM this hypervisor runs in: all
        privileged operations below trap to L0 (and further, if ``ctx``
        is itself nested) — the paper's exit multiplication.
        """
        assert self.level >= 1, "L0 handles exits through the registry, not here"
        if ectx is None:
            ectx = ExitContext(exit_, exit_.vcpu, None, self.machine)
        c = self.costs
        guest_vmcs = exit_.vcpu.chain_vcpu(self.level + 1).vmcs
        reads, writes = self.op_counts(exit_.reason)
        # Exit-information reads: shadowed (free) + residual trapping ones.
        yield from ctx.execute(
            Op.VMREAD,
            count=self.profile.shadowed_accesses,
            vmcs=guest_vmcs,
            field=VmcsField.EXIT_REASON,
        )
        yield from ctx.execute(
            Op.VMREAD, count=reads, vmcs=guest_vmcs, field=VmcsField.PROC_CONTROLS
        )
        ectx.charge("ghv_handler", c.ghv_handler_sw)
        yield from ctx.compute(c.ghv_handler_sw)
        handler = self.registry.guest_handler(exit_.reason, self.profile)
        result = yield from handler(self, ctx, ectx, guest_vmcs)
        yield from ctx.execute(
            Op.VMWRITE,
            count=writes,
            vmcs=guest_vmcs,
            field=VmcsField.PROC_CONTROLS,
            value=0,
        )
        yield from ctx.execute(
            Op.VMRESUME, target_vcpu=exit_.vcpu, vmcs=guest_vmcs
        )
        return result

    def reinject_exit(
        self, ctx: VCpu, exit_: Exit, ectx: Optional[ExitContext] = None
    ) -> Generator:
        """Pass an exit owned by a deeper hypervisor one level up (§2)."""
        if ectx is None:
            ectx = ExitContext(exit_, exit_.vcpu, None, self.machine)
        c = self.costs
        guest_vmcs = exit_.vcpu.chain_vcpu(self.level + 1).vmcs
        ectx.charge("ghv_handler", c.ghv_reinject_sw)
        yield from ctx.compute(c.ghv_reinject_sw)
        yield from ctx.execute(
            Op.VMWRITE,
            count=c.ghv_reinject_trapped,
            vmcs=guest_vmcs,
            field=VmcsField.ENTRY_INTR_INFO,
            value=exit_.reason.value,
        )
        yield from ctx.execute(Op.VMRESUME, target_vcpu=exit_.vcpu, vmcs=guest_vmcs)

    # ------------------------------------------------------------------
    def inject_interrupt(self, ctx: VCpu, target: VCpu, vector: int) -> Generator:
        """This guest hypervisor injects an interrupt into its (possibly
        nested) guest using posted interrupts: update the PI descriptor,
        then ask the physical CPU to send the notification — which traps
        (Figure 4 steps 3-5)."""
        c = self.costs
        ectx = ctx.exit_context
        if ectx is not None:
            # Inside a dispatch: attribute to the live trap frame's span.
            ectx.charge("ghv_handler", c.ghv_inject_sw)
        else:
            # Softirq path (timer fire): no frame, plain metrics charge.
            self.metrics.charge("ghv_handler", c.ghv_inject_sw)
        yield from ctx.compute(c.ghv_inject_sw)
        yield c.pi_descriptor_update
        target.pi_desc.post(vector)
        ooh = self.machine.ooh
        if self.level == 1 and ooh is not None and ooh.active("posted_interrupts"):
            # OoH posted_interrupts grant: this guest hypervisor drives
            # the real posted-interrupt hardware, so the notification is
            # a plain physical IPI — no trapped ICR write, no L0
            # intervention (Figure 4's trap simply never happens).
            ooh.record("posted_interrupts", True)
            cost = c.ooh_apply + c.physical_ipi
            if ectx is not None:
                ectx.charge("ooh_emul", cost)
            else:
                self.metrics.charge("ooh_emul", cost)
            yield cost
            host = self._hv_at(0)
            host.deliver_posted(target, vector, ectx)
            host.wake_target(target)
            return None
        yield from ctx.execute(
            Op.WRMSR,
            msr=MSR_X2APIC_ICR,
            notify_only=True,
            target=target,
            vector=vector,
        )
        return None

    @property
    def dvh_virtual_idle_available(self) -> bool:
        """Whether the platform (ultimately L0) provides virtual idle."""
        host = self.machine.host_hv
        return host is not None and host.dvh.virtual_idle

    # ==================================================================
    # Configuration helpers (used by the stack builder and DVH setup)
    # ==================================================================
    def expose_capability_to(self, guest_hv: "KvmHypervisor") -> None:
        """Set what a hypervisor running in our guest VM can discover.

        DVH bits appear as *hardware* capabilities even though L0
        implements them in software (§3: "virtual hardware appears to
        intervening layers of hypervisors as additional hardware
        capabilities")."""
        cap = self.capability.copy()
        if self.level == 0:
            cap.virtual_timer = self.dvh.virtual_timer
            cap.virtual_ipi = self.dvh.virtual_ipi
            ooh = self.machine.ooh
            if ooh is not None:
                # OoH grants surface to the L1 guest hypervisor as
                # hardware capability bits, like DVH's discovery bits.
                cap.ooh_grants = ooh.configured_names()
        guest_hv.capability = cap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


# ======================================================================
# L0 emulation handlers
# ======================================================================
# Each handler is ``fn(hv, ectx)`` where ``hv`` is the host hypervisor
# and ``ectx`` the trap frame; the vCPU and the exit ride in the frame.
# ``dvh_capable`` marks reasons whose direct L0 handling of a *nested*
# VM's exit is a DVH mechanism (virtual timer/IPI/idle/passthrough).


@DEFAULT_REGISTRY.register_l0(ExitReason.VMCALL)
def _l0_hypercall(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    c = hv.costs
    ectx.charge("l0_emul", c.emul_hypercall)
    yield c.emul_hypercall
    return None


@DEFAULT_REGISTRY.register_l0(
    ExitReason.CPUID, ExitReason.MSR_READ, ExitReason.MSR_WRITE, default=True
)
def _l0_trivial(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    c = hv.costs
    ectx.charge("l0_emul", c.emul_trivial)
    yield c.emul_trivial
    return None


@DEFAULT_REGISTRY.register_l0(ExitReason.EPT_VIOLATION)
def _l0_ept_violation(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    c = hv.costs
    ectx.charge("l0_emul", c.ept_violation_fix)
    yield c.ept_violation_fix
    return None


@DEFAULT_REGISTRY.register_l0(ExitReason.VMX_INSTRUCTION)
def _l0_vmx(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    """Emulate a VMX instruction executed by a guest hypervisor."""
    c = hv.costs
    op = ectx.exit_.op
    info = ectx.exit_.info
    if op in (Op.VMREAD, Op.VMWRITE):
        ectx.charge("l0_emul", c.emul_vmcs_access)
        yield c.emul_vmcs_access
        vmcs: Optional[Vmcs] = info.get("vmcs")
        fieldname: Optional[VmcsField] = info.get("field")
        if vmcs is not None and fieldname is not None:
            if op is Op.VMWRITE:
                vmcs.write(fieldname, info.get("value"))
                return None
            return vmcs.read(fieldname)
        return None
    if op is Op.VMPTRLD:
        ectx.charge("l0_emul", c.emul_vmptrld)
        yield c.emul_vmptrld
        return None
    if op in (Op.VMRESUME, Op.VMLAUNCH):
        # The expensive part of nested virtualization: merge the guest
        # hypervisor's vmcs12 into the VMCS L0 actually runs with.
        ectx.charge("l0_emul", c.emul_vmresume_merge)
        yield c.emul_vmresume_merge
        target: Optional[VCpu] = info.get("target_vcpu")
        if target is not None and target.level >= 2:
            target.merged_vmcs.merge_from(target.vmcs, hv._host_controls())
            target.merged_vmcs.write(
                VmcsField.TSC_OFFSET, target.total_tsc_offset()
            )
            # Hardware syncs pending posted interrupts on VM entry.
            target.pi_desc.sync_to(target.lapic)
        return None
    ectx.charge("l0_emul", c.emul_trivial)
    yield c.emul_trivial
    return None


@DEFAULT_REGISTRY.register_l0(ExitReason.APIC_TIMER, dvh_capable=True)
def _l0_timer(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    """LAPIC TSC-deadline emulation; for nested vCPUs this is the DVH
    virtual timer (§3.2), reached only when routing said so."""
    c = hv.costs
    vcpu = ectx.vcpu
    info = ectx.exit_.info
    if vcpu.level >= 2:
        if ectx.granted:
            # OoH timer_deadline grant: the L1 guest hypervisor owns a
            # real deadline-timer slot, so L0 applies the program at
            # flat single-level cost — no per-level VMCS walk.
            ectx.charge("ooh_emul", c.ooh_apply)
            yield c.ooh_apply
        else:
            # Virtual timer: combine the TSC offsets of every level
            # (already folded into the merged VMCS by §3.2's rule).
            walk = (vcpu.level - 1) * c.dvh_nested_emul
            ectx.charge("dvh_emul", walk)
            yield walk
    ectx.charge("l0_emul", c.emul_timer_program)
    yield c.emul_timer_program
    if info.get("shadow_only"):
        # A guest hypervisor programming its own hardware timer as
        # part of emulating its guest's timer: the authoritative
        # nested-timer record was registered by that hypervisor.
        return None
    deadline_guest = info["deadline"]
    vector = info.get("vector", TIMER_VECTOR)
    host_deadline = deadline_guest - vcpu.total_tsc_offset()
    hv._arm_hrtimer(vcpu, host_deadline, vector, provider_level=0)
    return None


@DEFAULT_REGISTRY.register_l0(ExitReason.APIC_ICR, dvh_capable=True)
def _l0_ipi(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    """ICR-write emulation: normal for L1 vCPUs, DVH virtual IPI
    (§3.3) for nested vCPUs."""
    c = hv.costs
    vcpu = ectx.vcpu
    info = ectx.exit_.info
    if info.get("notify_only"):
        # Figure 4 step 4/5: a (guest) hypervisor already updated the
        # PI descriptor; send the physical notification.  Do NOT post
        # the vector again here — if the target consumed it between the
        # injector's descriptor update and this trapped notification, a
        # re-post would manufacture a phantom interrupt.
        target: VCpu = info["target"]
        ectx.charge("l0_emul", c.emul_ipi_send + c.physical_ipi)
        yield c.emul_ipi_send + c.physical_ipi
        ectx.charge("l0_emul", c.posted_interrupt_delivery)
        hv.wake_target(target)
        return None
    dest_index = info["dest"]
    vector = info["vector"]
    if vcpu.level >= 2 and ectx.granted:
        # OoH posted_interrupts grant: the L1 guest hypervisor drives
        # the real posted-interrupt machinery, so L0 resolves the
        # destination within the VM directly — flat cost, no VCIMT.
        ectx.charge("ooh_emul", c.ooh_apply)
        yield c.ooh_apply
        dest = vcpu.vm.vcpus[dest_index]
    elif vcpu.level >= 2:
        # Virtual IPI: find the destination through the virtual CPU
        # interrupt mapping table the guest hypervisor registered
        # (§3.3, Figure 5).  The emulation is a bit costlier than the
        # L1 path: reading the table from guest memory and validating
        # the virtual ICR state per level.
        extra = c.vcimt_lookup + (vcpu.level - 1) * c.dvh_nested_emul
        ectx.charge("dvh_emul", extra)
        yield extra
        dest = hv._vcimt_lookup(vcpu, dest_index)
    else:
        dest = vcpu.vm.vcpus[dest_index]
    ectx.charge("l0_emul", c.emul_ipi_send)
    yield c.emul_ipi_send
    ectx.charge("l0_emul", c.pi_descriptor_update + c.physical_ipi)
    yield c.pi_descriptor_update
    dest.pi_desc.post(vector)
    yield c.physical_ipi
    hv.metrics.record_interrupt("ipi", "posted")
    hv.deliver_posted(dest, vector, ectx)
    hv.wake_target(dest)
    return None


@DEFAULT_REGISTRY.register_l0(ExitReason.HLT, dvh_capable=True)
def _l0_hlt(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    """Block the physical CPU until an interrupt arrives."""
    c = hv.costs
    vcpu = ectx.vcpu
    if vcpu.lapic.has_pending() or vcpu.pi_desc.has_pending:
        # Interrupt already pending: don't block (the wait loop will
        # pick it up on re-entry).
        yield c.emul_trivial
        return None
    hv.metrics.count("halts")
    pcpu = vcpu.pcpu
    pcpu.running_vcpu = None
    ev = pcpu.block()
    yield ev
    pcpu.running_vcpu = vcpu
    ectx.charge("l0_emul", c.halt_wake_sched)
    yield c.halt_wake_sched
    return None


@DEFAULT_REGISTRY.register_l0(ExitReason.MMIO, dvh_capable=True)
def _l0_mmio(hv: KvmHypervisor, ectx: ExitContext) -> Generator:
    """Trapped MMIO: decode, then emulate the device access."""
    c = hv.costs
    vcpu = ectx.vcpu
    info = ectx.exit_.info
    ectx.charge("l0_emul", c.emul_mmio_decode)
    yield c.emul_mmio_decode
    device = info.get("device")
    if device is None:
        yield c.emul_trivial
        return None
    if vcpu.level >= 2:
        # Virtual-passthrough doorbell from a nested VM: L0 must walk
        # the VM's EPT to check the faulting address before handling
        # the access itself (§4's explanation of the DevNotify gap).
        walk = c.vp_nested_ept_walk + (vcpu.level - 2) * c.ept_violation_fix
        ectx.charge("dvh_emul", walk)
        yield walk
    ectx.charge("l0_emul", c.emul_virtio_kick)
    yield c.emul_virtio_kick
    device.mmio_write(info.get("addr", 0), info.get("value"))
    return None


# ======================================================================
# Guest-hypervisor handlers (run as guest code on ``ctx``)
# ======================================================================
# Each handler is ``fn(hv, ctx, ectx, guest_vmcs)``: ``hv`` is the owning
# guest hypervisor, ``ctx`` the vCPU its handler code runs on, ``ectx``
# the (unchanged) trap frame of the forwarded exit.  Flavour differences
# come from ``hv.profile`` — base handlers are registered with
# ``profile=None`` and serve every flavour.


@DEFAULT_REGISTRY.register_guest(ExitReason.APIC_TIMER)
def _guest_timer(hv, ctx: VCpu, ectx: ExitContext, guest_vmcs: Vmcs) -> Generator:
    """Emulate the nested VM's timer with this hypervisor's own
    (which itself traps when programmed — recursion)."""
    exit_ = ectx.exit_
    info = exit_.info
    deadline_for_me = info["deadline"] - exit_.vcpu.vmcs.read(VmcsField.TSC_OFFSET)
    if not info.get("shadow_only"):
        host_deadline = deadline_for_me - ctx.total_tsc_offset()
        hv._hv_at(0)._arm_hrtimer(
            exit_.vcpu,
            host_deadline,
            info.get("vector", TIMER_VECTOR),
            provider_level=hv.level,
        )
    yield from ctx.execute(
        Op.WRMSR,
        msr=MSR_TSC_DEADLINE,
        deadline=deadline_for_me,
        vector=TIMER_VECTOR,
        shadow_only=True,
    )
    return None


@DEFAULT_REGISTRY.register_guest(ExitReason.APIC_ICR)
def _guest_ipi(hv, ctx: VCpu, ectx: ExitContext, guest_vmcs: Vmcs) -> Generator:
    exit_ = ectx.exit_
    info = exit_.info
    if info.get("notify_only"):
        # Forwarding a notification request from a deeper
        # hypervisor: send it on its behalf.
        yield from ctx.execute(
            Op.WRMSR,
            msr=MSR_X2APIC_ICR,
            notify_only=True,
            target=info["target"],
            vector=info.get("vector", 0),
        )
        return None
    dest = exit_.vcpu.vm.vcpus[info["dest"]]
    yield from hv.inject_interrupt(ctx, dest, info["vector"])
    hv._hv_at(0).wake_target(dest)
    return None


@DEFAULT_REGISTRY.register_guest(ExitReason.HLT)
def _guest_hlt(hv, ctx: VCpu, ectx: ExitContext, guest_vmcs: Vmcs) -> Generator:
    yield from ctx.compute(300)  # run-queue check
    # §3.4: with another runnable nested VM, schedule it on this
    # physical CPU instead of idling.
    idle_vcpu = ectx.exit_.vcpu
    scheduler = hv.scheduler
    if scheduler is not None:
        while scheduler.has_runnable_sibling and not (
            idle_vcpu.lapic.has_pending() or idle_vcpu.pi_desc.has_pending
        ):
            yield from scheduler.run_sibling_quantum(ctx, idle_vcpu)
    if not (idle_vcpu.lapic.has_pending() or idle_vcpu.pi_desc.has_pending):
        # Nothing else to run: idle this hypervisor itself
        # (multi-level low-power entry).
        yield from ctx.execute(Op.HLT)
    # Woken: sync pending state into the nested VM and resume it
    # (costs fall out of the trapped ops + the VMRESUME tail).
    wr, ww = hv.profile.wake_ops
    yield from ctx.execute(
        Op.VMREAD, count=wr, vmcs=guest_vmcs, field=VmcsField.PIN_CONTROLS
    )
    yield from ctx.execute(
        Op.VMWRITE,
        count=ww,
        vmcs=guest_vmcs,
        field=VmcsField.ENTRY_INTR_INFO,
        value=0,
    )
    return None


@DEFAULT_REGISTRY.register_guest(ExitReason.MMIO)
def _guest_mmio(hv, ctx: VCpu, ectx: ExitContext, guest_vmcs: Vmcs) -> Generator:
    c = hv.costs
    info = ectx.exit_.info
    profile = hv.profile
    if profile.io_notify_sw:
        # Split-driver model (Xen): the trapped notification is converted
        # to an event-channel upcall into dom0's netback, costing an
        # extra hypercall round trip before the backend runs.
        yield from ctx.compute(profile.io_notify_sw)
        yield from ctx.execute(Op.VMCALL, purpose=profile.io_notify_hypercall)
    device = info.get("device")
    backend = hv.backends.get(device)
    ectx.charge("ghv_handler", c.emul_mmio_decode)
    yield from ctx.compute(c.emul_mmio_decode)
    if device is not None:
        device.mmio_write(info.get("addr", 0), info.get("value"))
    if backend is not None:
        yield from backend.notify_from_guest(ctx)
    return None


@DEFAULT_REGISTRY.register_guest(ExitReason.VMX_INSTRUCTION)
def _guest_vmx(hv, ctx: VCpu, ectx: ExitContext, guest_vmcs: Vmcs) -> Generator:
    """Emulate a VMX instruction for a nested hypervisor: touch the
    deeper vmcs in guest memory, then the tail VMRESUME re-runs
    the nested guest."""
    c = hv.costs
    exit_ = ectx.exit_
    info = exit_.info
    op = exit_.op
    vmcs: Optional[Vmcs] = info.get("vmcs")
    fieldname: Optional[VmcsField] = info.get("field")
    yield from ctx.compute(c.emul_vmcs_access)
    if op is Op.VMWRITE and vmcs is not None and fieldname is not None:
        vmcs.write(fieldname, info.get("value"))
        return None
    if op is Op.VMREAD and vmcs is not None and fieldname is not None:
        return vmcs.read(fieldname)
    if op in (Op.VMRESUME, Op.VMLAUNCH):
        target: Optional[VCpu] = info.get("target_vcpu")
        if target is not None:
            yield from ctx.compute(c.emul_vmresume_merge // 4)
        return None
    return None


@DEFAULT_REGISTRY.register_guest(ExitReason.VMCALL)
def _guest_vmcall(hv, ctx: VCpu, ectx: ExitContext, guest_vmcs: Vmcs) -> Generator:
    yield from ctx.compute(hv.costs.emul_hypercall)
    return None


@DEFAULT_REGISTRY.register_guest(default=True)
def _guest_trivial(hv, ctx: VCpu, ectx: ExitContext, guest_vmcs: Vmcs) -> Generator:
    # CPUID / MSR / IO / EPT...
    yield from ctx.compute(hv.costs.emul_trivial)
    return None
