"""Out-of-Hypervisor (OoH) feature grants.

DVH (the source paper) attacks nested-virtualization overhead from
below: L0 gives the *nested VM* direct virtual hardware so its exits
never need the guest hypervisor.  The Out-of-Hypervisor approach attacks
the same overhead from the opposite side: L0 selectively exposes
hardware virtualization features *directly to the L1 guest hypervisor*,
so the guest hypervisor programs the real feature and its exits are
handled at single-level cost — forwarding never happens for granted
features.

This package supplies:

* :class:`~repro.ooh.grants.GrantSet` — the declarative per-feature
  grant configuration (validated at stack-build time);
* :class:`~repro.ooh.grants.GrantTable` — the runtime grant state hung
  off ``machine.ooh`` (revocable mid-run; revoked features fall back to
  forwarding, counted);
* :mod:`repro.ooh.pricing` — the granted-vs-forwarded cycle pricing for
  dirty-page tracking during live pre-copy migration.

Grant gates register in the exit-dispatch registry exactly like the DVH
feature modules do (see ``register_ownership`` in
:mod:`repro.ooh.grants` and
:meth:`repro.hv.dispatch.ExitHandlerRegistry.claim_grant_gate`).
"""

from repro.ooh.grants import (
    GATED_REASONS,
    OOH_FEATURES,
    GrantConflictError,
    GrantError,
    GrantSet,
    GrantTable,
    UnknownGrantError,
    register_ownership,
)
from repro.ooh.pricing import (
    PML_BUFFER_ENTRIES,
    dirty_tracking_cycles,
    forwarded_dirty_page_cycles,
    granted_dirty_page_cycles,
)

__all__ = [
    "GATED_REASONS",
    "OOH_FEATURES",
    "GrantConflictError",
    "GrantError",
    "GrantSet",
    "GrantTable",
    "UnknownGrantError",
    "register_ownership",
    "PML_BUFFER_ENTRIES",
    "dirty_tracking_cycles",
    "forwarded_dirty_page_cycles",
    "granted_dirty_page_cycles",
]
