"""Granted-vs-forwarded pricing for dirty-page tracking.

During live pre-copy migration of a *nested* VM, every page the guest
dirties must be observed by whoever owns the dirty log.  Three regimes:

* **forwarded** (no grant): each dirty page is a write-protection fault
  taken by the L1 guest hypervisor — a full forwarded exit chain: the
  fault exits to L0, is reflected into the guest hypervisor, whose
  handler performs its trapping VMCS accesses and an emulated VMRESUME.
  Tens of thousands of cycles per page.
* **dirty_logging grant**: L0 fixes the write-protection fault and sets
  the bit in the guest hypervisor's log directly — one L0 round trip
  per page.
* **dirty_ring grant** (PML-style): hardware appends the dirty GPA to a
  buffer; the only exits are buffer-full flushes every
  :data:`PML_BUFFER_ENTRIES` pages.  Tens of cycles per page.

The hypervisor-instruction timing-simulation literature grounds the
shape: composite costs are sums of the same leaf costs the trap path
charges (:class:`repro.sim.costs.CostModel`), with the forwarded regime
priced from the owning guest hypervisor's per-exit op counts.
"""

from __future__ import annotations

from repro.hw.ops import ExitReason

__all__ = [
    "PML_BUFFER_ENTRIES",
    "forwarded_dirty_page_cycles",
    "granted_dirty_page_cycles",
    "dirty_ring_cycles",
    "dirty_tracking_cycles",
]

#: Entries in the hardware page-modification-log buffer (Intel PML: 512
#: 8-byte GPA entries per 4 KB buffer page).
PML_BUFFER_ENTRIES = 512


def forwarded_dirty_page_cycles(costs, profile) -> int:
    """One dirty page tracked by the L1 guest hypervisor *without* a
    grant: the write-protection fault is forwarded, the guest
    hypervisor's EPT-violation handler runs (trapping per its profile's
    op counts), and the nested VM resumes via an emulated VMRESUME."""
    c = costs
    reads, writes = profile.reason_op_counts(ExitReason.EPT_VIOLATION)
    return (
        c.hw_exit
        + c.l0_dispatch
        + c.forward_state_save
        + c.hw_entry
        + c.ghv_handler_sw
        + c.dirty_fault_fix
        + (reads + writes) * c.l0_roundtrip(c.emul_vmcs_access)
        + c.l0_roundtrip(c.emul_vmresume_merge)
    )


def granted_dirty_page_cycles(costs) -> int:
    """One dirty page with the ``dirty_logging`` grant: L0 fixes the
    write-protection fault and marks the granted log in one round trip."""
    return costs.l0_roundtrip(costs.dirty_fault_fix)


def dirty_ring_cycles(costs, pages: int) -> int:
    """``pages`` dirty pages with the ``dirty_ring`` grant: hardware
    logs each GPA; only full-buffer flushes exit."""
    if pages <= 0:
        return 0
    flushes = -(-pages // PML_BUFFER_ENTRIES)  # ceil division
    return pages * costs.pml_log_entry + flushes * costs.l0_roundtrip(
        costs.pml_flush
    )


def dirty_tracking_cycles(costs, profile, pages: int, mode) -> int:
    """Cycles to track ``pages`` dirty pages under ``mode`` (None or
    "forwarded" = no grant; "dirty_logging"; "dirty_ring")."""
    if pages <= 0:
        return 0
    if mode == "dirty_ring":
        return dirty_ring_cycles(costs, pages)
    if mode == "dirty_logging":
        return pages * granted_dirty_page_cycles(costs)
    return pages * forwarded_dirty_page_cycles(costs, profile)
