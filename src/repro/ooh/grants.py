"""OoH grant declarations and runtime grant state.

A :class:`GrantSet` names the hardware virtualization features L0 hands
directly to the L1 guest hypervisor:

=================  ====================================================
dirty_logging      Write-protection dirty-page tracking: the guest
                   hypervisor's pre-copy dirty faults are fixed at L0
                   in one round trip instead of a forwarded exit chain.
dirty_ring         The PML-style variant: hardware logs dirty GPAs into
                   a buffer the guest hypervisor drains; only buffer
                   flushes exit at all.  Mutually exclusive with
                   ``dirty_logging`` (they drive the same EPT state).
posted_interrupts  The guest hypervisor drives the real
                   posted-interrupt machinery: its injections into
                   nested vCPUs need no trapped ICR write, and a nested
                   VM's ICR writes are applied at L0 at flat cost.
timer_deadline     The guest hypervisor owns a real TSC-deadline timer
                   slot: a nested VM's timer programs are applied at L0
                   at flat cost with no per-level VMCS walk.
=================  ====================================================

Grants are *exposed to the L1 guest hypervisor only*; exits from
level-2 vCPUs short-circuit through the grant gates in
:meth:`repro.hv.dispatch.ExitHandlerRegistry.route`.  Deeper levels
fall back to ordinary forwarding (a documented simplification: the OoH
papers target one guest-hypervisor level).

Misconfiguration is rejected at stack-build time with typed errors;
revocation mid-run (operator action or the ``ooh_grant_revoke`` fault
class) downgrades the feature to forwarding, counted in metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.hw.ops import ExitReason

__all__ = [
    "OOH_FEATURES",
    "GATED_REASONS",
    "GrantError",
    "UnknownGrantError",
    "GrantConflictError",
    "GrantSet",
    "GrantTable",
    "register_ownership",
]

#: Every grantable feature, in declaration order.
OOH_FEATURES: Tuple[str, ...] = (
    "dirty_logging",
    "dirty_ring",
    "posted_interrupts",
    "timer_deadline",
)

#: Exit reasons gated by a grant: a level-2 exit for a gated reason is
#: handled by L0 at flat cost while the named feature's grant is active.
#: The dirty-tracking grants have no exit reason of their own — they are
#: priced at the migration dirty-log drain sites (see repro.ooh.pricing).
GATED_REASONS: Dict[ExitReason, str] = {
    ExitReason.APIC_TIMER: "timer_deadline",
    ExitReason.APIC_ICR: "posted_interrupts",
}


class GrantError(ValueError):
    """Base class for OoH grant misconfiguration."""


class UnknownGrantError(GrantError):
    """A grant name outside :data:`OOH_FEATURES`."""


class GrantConflictError(GrantError):
    """A grant combination the platform cannot honor (grant vs grant,
    grant vs DVH mechanism, or grant vs stack shape)."""


@dataclass(frozen=True, slots=True)
class GrantSet:
    """Declarative per-feature grants to the L1 guest hypervisor."""

    dirty_logging: bool = False
    dirty_ring: bool = False
    posted_interrupts: bool = False
    timer_deadline: bool = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "GrantSet":
        return cls()

    @classmethod
    def migration(cls) -> "GrantSet":
        """Just dirty logging: the live-migration grant."""
        return cls(dirty_logging=True)

    @classmethod
    def full(cls) -> "GrantSet":
        """Every mutually compatible grant (dirty_ring supersedes
        dirty_logging as the cheaper tracking mode)."""
        return cls(dirty_ring=True, posted_interrupts=True, timer_deadline=True)

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "GrantSet":
        """Build from grant names; unknown names raise
        :class:`UnknownGrantError`."""
        values = {}
        for name in names:
            if name not in OOH_FEATURES:
                raise UnknownGrantError(
                    f"unknown OoH grant {name!r}; choose from {OOH_FEATURES}"
                )
            values[name] = True
        return cls(**values)

    def with_(self, **overrides: bool) -> "GrantSet":
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Granted feature names, in declaration order."""
        return tuple(f.name for f in fields(self) if getattr(self, f.name))

    @property
    def any_granted(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))

    # ------------------------------------------------------------------
    # Build-time validation
    # ------------------------------------------------------------------
    def validate(self, levels: int, io_model: str, dvh) -> None:
        """Reject combinations the platform cannot honor.

        Called from :meth:`repro.hv.stack.StackConfig.validate`, so a
        misconfigured grant never reaches a built stack.
        """
        if not self.any_granted:
            return
        if levels < 2:
            raise GrantConflictError(
                "OoH grants target the L1 guest hypervisor; the stack "
                f"needs >= 2 levels, got {levels}"
            )
        if self.dirty_logging and self.dirty_ring:
            raise GrantConflictError(
                "dirty_logging and dirty_ring drive the same EPT "
                "dirty-tracking state; grant one, not both"
            )
        if self.timer_deadline and getattr(dvh, "virtual_timer", False):
            raise GrantConflictError(
                "timer_deadline grant collides with the DVH virtual "
                "timer: both claim the APIC_TIMER exit"
            )
        if self.posted_interrupts and getattr(dvh, "virtual_ipi", False):
            raise GrantConflictError(
                "posted_interrupts grant collides with the DVH virtual "
                "IPI: both claim the APIC_ICR exit"
            )
        if (self.dirty_logging or self.dirty_ring) and io_model == "passthrough":
            raise GrantConflictError(
                "dirty-tracking grants cannot cover a hardware-coupled "
                "passthrough tenant: device DMA bypasses the granted log"
            )


class GrantTable:
    """Runtime grant state for one machine (hung off ``machine.ooh``).

    Tracks which configured grants are currently *active*: a grant
    revoked mid-run (operator action, or the ``ooh_grant_revoke`` fault
    class) stays configured — so its exits keep being attributed — but
    routes fall back to forwarding, and the revocation is counted.
    """

    def __init__(self, grants: Optional[GrantSet] = None, metrics=None) -> None:
        self._configured: Set[str] = set(grants.names()) if grants else set()
        self._active: Set[str] = set(self._configured)
        self.metrics = metrics
        #: Grants revoked so far (each revocation counted once).
        self.revocations = 0

    # ------------------------------------------------------------------
    def install(self, grants: GrantSet) -> None:
        """Merge more grants in (cluster hosts accumulate per-tenant
        grants onto one shared machine)."""
        for name in grants.names():
            self._configured.add(name)
            self._active.add(name)

    def configured(self, feature: str) -> bool:
        return feature in self._configured

    def active(self, feature: str) -> bool:
        return feature in self._active

    def revoke(self, feature: str) -> bool:
        """Revoke a grant; returns whether it was active.  Subsequent
        exits for the feature fall back to forwarding."""
        was_active = feature in self._active
        self._active.discard(feature)
        if was_active:
            self.revocations += 1
        return was_active

    def restore(self, feature: str) -> None:
        """Re-activate a configured (previously revoked) grant."""
        if feature in self._configured:
            self._active.add(feature)

    def configured_names(self) -> Tuple[str, ...]:
        return tuple(f for f in OOH_FEATURES if f in self._configured)

    def active_names(self) -> Tuple[str, ...]:
        return tuple(f for f in OOH_FEATURES if f in self._active)

    # ------------------------------------------------------------------
    def feature_for(self, reason: ExitReason) -> Optional[str]:
        """The configured grant gating ``reason``, or None.  Returns the
        feature even when revoked, so fallback exits stay attributed."""
        feature = GATED_REASONS.get(reason)
        if feature is not None and feature in self._configured:
            return feature
        return None

    def dirty_mode(self) -> Optional[str]:
        """The active dirty-tracking grant ("dirty_ring" wins when both
        are somehow active), or None when tracking must be forwarded."""
        if "dirty_ring" in self._active:
            return "dirty_ring"
        if "dirty_logging" in self._active:
            return "dirty_logging"
        return None

    def dirty_feature(self) -> str:
        """The dirty-tracking feature name attribution should use,
        whether or not its grant is (still) active."""
        if "dirty_ring" in self._configured:
            return "dirty_ring"
        return "dirty_logging"

    def record(self, feature: str, granted: bool, n: int = 1) -> None:
        """Attribute ``n`` exits (or dirty pages) to the feature's
        granted or forwarded bucket."""
        if self.metrics is not None:
            self.metrics.record_ooh(feature, granted, n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<GrantTable active={sorted(self._active)} "
            f"configured={sorted(self._configured)}>"
        )


def register_ownership(registry) -> None:
    """Register the grant gates in the exit-dispatch registry — the same
    entry point signature the DVH feature modules use (called from
    ``ExitHandlerRegistry._install_default_claims``)."""
    for reason, feature in GATED_REASONS.items():
        registry.claim_grant_gate(reason, feature)
