"""Discrete-event simulation engine and cycle-cost model."""

from repro.sim.costs import CostModel, arm_costs, default_costs
from repro.sim.engine import (
    Event,
    Process,
    SimulationError,
    Simulator,
    TimerHandle,
    fast_forward_default,
)
from repro.sim.fastforward import FastForward, PeriodicSource

__all__ = [
    "CostModel",
    "arm_costs",
    "default_costs",
    "Event",
    "FastForward",
    "PeriodicSource",
    "Process",
    "SimulationError",
    "Simulator",
    "TimerHandle",
    "fast_forward_default",
]
