"""Discrete-event simulation engine and cycle-cost model."""

from repro.sim.costs import CostModel, arm_costs, default_costs
from repro.sim.engine import Event, Process, SimulationError, Simulator

__all__ = [
    "CostModel",
    "arm_costs",
    "default_costs",
    "Event",
    "Process",
    "SimulationError",
    "Simulator",
]
