"""Discrete-event simulation engine and cycle-cost model."""

from repro.sim.costs import (
    ARCH_COSTS,
    CostModel,
    arm_costs,
    costs_for_arch,
    default_costs,
    riscv_costs,
)
from repro.sim.engine import (
    Event,
    Process,
    SimulationError,
    Simulator,
    TimerHandle,
    fast_forward_default,
)
from repro.sim.fastforward import FastForward, PeriodicSource

__all__ = [
    "ARCH_COSTS",
    "CostModel",
    "arm_costs",
    "costs_for_arch",
    "default_costs",
    "riscv_costs",
    "Event",
    "FastForward",
    "PeriodicSource",
    "Process",
    "SimulationError",
    "Simulator",
    "TimerHandle",
    "fast_forward_default",
]
