"""Cycle-cost model for the simulated machine.

Every latency the simulator charges flows through a :class:`CostModel`
instance.  These are the *leaf* costs only — e.g. the price of one hardware
world switch, or of the host hypervisor emulating one VMREAD on behalf of a
guest hypervisor.  Composite costs (a forwarded exit, an L3 trap chain, a
virtio relay through two hypervisors) are **not** tabulated anywhere: they
emerge from hypervisor handler code in :mod:`repro.hv` executing sequences
of privileged operations through the trap machinery.

Calibration provenance
----------------------
The defaults are calibrated so that the emergent microbenchmark costs land
near the paper's Table 3 (Intel Xeon Silver 4114, 2.2 GHz, Linux 4.18 KVM
with VMCS shadowing):

====================  =========  ==========  ==========
microbenchmark        VM         nested VM   L3 VM
====================  =========  ==========  ==========
Hypercall             1,575      37,733      857,578
DevNotify             4,984      48,390      1,008,935
ProgramTimer          2,005      43,359      1,033,946
SendIPI               3,273      39,456      787,971
====================  =========  ==========  ==========

The structural facts the calibration encodes, all taken from the paper:

* a hardware exit+entry round trip to L0 with a trivial handler costs
  ~1.6K cycles (Table 3, Hypercall/VM);
* an exit forwarded to a guest hypervisor is >20x more expensive, because
  the guest hypervisor's handler executes ~20 privileged operations that
  each trap to L0, plus an emulated VMRESUME whose vmcs12->vmcs02 merge is
  expensive (Section 2, "exit multiplication");
* each additional virtualization level multiplies the cost by roughly the
  same ~20-25x factor (Table 3, L3 column).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = [
    "ARCH_COSTS",
    "CostModel",
    "arm_costs",
    "costs_for_arch",
    "default_costs",
    "riscv_costs",
]


@dataclass(slots=True)
class CostModel:
    """All leaf cycle costs charged by the simulator.

    Instances are immutable by convention; use :meth:`scaled` or
    ``dataclasses.replace`` to derive variants for ablation studies.
    ``slots=True`` keeps the many per-trap field reads on the dispatch
    hot path off the instance-dict lookup path.
    """

    # ------------------------------------------------------------------
    # Hardware world-switch costs (VMX transitions)
    # ------------------------------------------------------------------
    #: VM exit: guest -> root mode, state save, reason latch.
    hw_exit: int = 680
    #: VM entry: root -> guest mode, state load, checks.
    hw_entry: int = 560
    #: L0 software dispatch on every exit (KVM vcpu_run loop, reason decode).
    l0_dispatch: int = 240

    # ------------------------------------------------------------------
    # L0 direct emulation costs (ops from an L1 guest, or DVH-handled ops)
    # ------------------------------------------------------------------
    #: Trivial hypercall handling (no work, per Table 1).
    emul_hypercall: int = 95
    #: Emulate one VMREAD/VMWRITE for a guest hypervisor (vmcs12 access).
    emul_vmcs_access: int = 130
    #: Emulate VMPTRLD / shadow VMCS maintenance.
    emul_vmptrld: int = 900
    #: vmcs12 -> vmcs02 merge + consistency checks on emulated VMRESUME.
    emul_vmresume_merge: int = 6400
    #: Decode a trapped MMIO instruction (EPT violation on device BAR).
    emul_mmio_decode: int = 860
    #: Virtio doorbell handling in the host (ioeventfd wakeup + queue check).
    emul_virtio_kick: int = 2540
    #: Extra nested-EPT walk virtual-passthrough pays on each doorbell from a
    #: nested VM (Section 4: DVH DevNotify costs more than VM DevNotify
    #: because L0 must walk the VM's EPT to validate the faulting address).
    vp_nested_ept_walk: int = 7600
    #: Program an hrtimer for LAPIC TSC-deadline emulation.
    emul_timer_program: int = 420
    #: Emulate an ICR write: destination lookup + posted-interrupt update.
    emul_ipi_send: int = 640
    #: Look up the virtual CPU interrupt mapping table (DVH virtual IPIs).
    vcimt_lookup: int = 260
    #: Per-intervening-level overhead of DVH emulation at L0 (reading the
    #: chain's VMCS state, validating virtual-hardware registers).
    dvh_nested_emul: int = 800
    #: L0 checks DVH bits in the VM-execution controls before routing.
    dvh_route_check: int = 120
    #: Emulate a CPUID / generic trivial exit.
    emul_trivial: int = 150

    # ------------------------------------------------------------------
    # Guest-hypervisor world switches (forwarding machinery)
    # ------------------------------------------------------------------
    #: L0 saves the nested guest state and prepares the guest hypervisor's
    #: VMCS before reflecting an exit into it (vmcs02 -> vmcs12 writeback).
    forward_state_save: int = 1750
    #: Hardware-delegated trap vectoring (RISC-V hedeleg/hideleg): the CPU
    #: redirects a delegated VS-level trap straight into the guest
    #: hypervisor's handler — swapping a handful of CSRs — so L0's
    #: forwarding software (``forward_state_save``) never runs.  Unused
    #: (and unreachable) on profiles with no delegated causes.
    delegated_vector: int = 400
    #: Software cycles a guest hypervisor spends per handled exit outside
    #: of privileged instructions (its own handler logic).
    ghv_handler_sw: int = 980
    #: Software cycles for a guest hypervisor to re-inject an exit one
    #: level further up (recursive nesting, Section 2).
    ghv_reinject_sw: int = 620

    # ------------------------------------------------------------------
    # Guest-hypervisor handler op counts (the exit-multiplication factor)
    # ------------------------------------------------------------------
    #: Non-shadowed VMCS accesses a KVM guest hypervisor makes per handled
    #: exit (these each trap).  With VMCS shadowing most reads/writes are
    #: absorbed; these are the residual trapping ones.
    ghv_vmcs_trapped_reads: int = 9
    ghv_vmcs_trapped_writes: int = 8
    #: Shadowed VMCS accesses (satisfied by the shadow VMCS, no trap).
    ghv_vmcs_shadowed: int = 26
    #: Cost of one shadowed access (plain instruction).
    vmcs_shadowed_access: int = 18
    #: Trapping VMCS accesses when re-injecting an exit to a deeper level.
    ghv_reinject_trapped: int = 7
    #: Trapping accesses when *VMCS shadowing is disabled* (ablation).
    ghv_vmcs_unshadowed_total: int = 43

    # ------------------------------------------------------------------
    # Interrupts, timers, idle
    # ------------------------------------------------------------------
    #: Deliver a posted interrupt to a *running* vCPU (no exit).
    posted_interrupt_delivery: int = 320
    #: Update a posted-interrupt descriptor (set PIR bit + ON bit).
    pi_descriptor_update: int = 140
    #: Physical IPI send (ICR write at L0, bare metal).
    physical_ipi: int = 210
    #: Wake a vCPU halted at L0 (scheduler wakeup + run-queue insert).
    halt_wake_sched: int = 610
    #: Guest-hypervisor interrupt injection sequence software cost (per
    #: level) when an interrupt must be injected without posted interrupts.
    ghv_inject_sw: int = 540
    #: LAPIC timer interrupt delivery software path at L0 (hrtimer callback).
    hrtimer_fire: int = 380
    #: Guest OS IRQ entry/ack/EOI software path (charged in the guest).
    guest_irq_entry: int = 450
    #: EOI write (virtualized by APICv: no exit).
    eoi_virtualized: int = 60

    # ------------------------------------------------------------------
    # OoH feature grants (repro.ooh)
    # ------------------------------------------------------------------
    #: L0 validates a granted exit against the grant table before
    #: applying the feature's effect.
    ooh_grant_check: int = 90
    #: Apply a granted feature's effect at single-level cost: the L1
    #: guest hypervisor programmed the real virtual feature, so there is
    #: no per-level VMCS walk to perform.
    ooh_apply: int = 350
    #: Fix one write-protection dirty fault and set the dirty-log bit
    #: (page-table update + bitmap write), whoever owns the log.
    dirty_fault_fix: int = 1800
    #: Hardware appends one dirty GPA to the PML buffer (dirty ring).
    pml_log_entry: int = 12
    #: Drain a full PML buffer into the owning dirty log.
    pml_flush: int = 2400

    # ------------------------------------------------------------------
    # Memory / EPT
    # ------------------------------------------------------------------
    #: Hardware page walk on EPT fill (violation handling software cost).
    ept_violation_fix: int = 2100
    #: Per-level shadow IOMMU table composition cost (per mapped page).
    shadow_iommu_map_page: int = 480
    #: Plain guest memory access batch (ring descriptor read/write).
    ring_access: int = 90

    # ------------------------------------------------------------------
    # Devices and wire
    # ------------------------------------------------------------------
    #: Host-side vhost worker cost per packet/request processed.
    vhost_per_packet: int = 1450
    #: Host-side vhost per-byte copy cost (cycles/byte).
    vhost_per_byte: float = 0.28
    #: Guest driver per-packet cost (skb alloc, ring fill).
    driver_per_packet: int = 620
    #: Guest per-byte touch cost (checksum/copy, cycles/byte).
    guest_per_byte: float = 0.42
    #: Physical NIC wire rate in bits per second (dual-port Intel X520).
    nic_bps: float = 10_000_000_000.0
    #: One-way client<->server wire+switch latency, in cycles (includes
    #: client NIC and switch port latency; ~7.7 us at 2.2 GHz).
    wire_latency: int = 17_000
    #: Remote client per-transaction turnaround cost, in cycles.
    client_turnaround: int = 3_000
    #: SSD per-request service latency, in cycles (~36 us — the S3500's
    #: write path with its capacitor-backed cache).
    ssd_latency: int = 80_000
    #: Migration transfer bandwidth in bits per second (QEMU default used
    #: in the paper's migration experiment: 268 Mbps).
    migration_bps: float = 268_000_000.0

    # ------------------------------------------------------------------
    # Datacenter fabric (repro.cluster)
    # ------------------------------------------------------------------
    #: Per-host link rate to the top-of-rack switch, in bits per second
    #: (40 GbE host uplinks; the 10 Gb X520 ports face the clients).
    fabric_bps: float = 40_000_000_000.0
    #: One-way host<->ToR latency in cycles (cable + switch port,
    #: ~0.6 us at 2.2 GHz).
    fabric_latency: int = 1_300
    #: Store-and-forward latency through the switching core, in cycles.
    fabric_switch_latency: int = 700

    # ------------------------------------------------------------------
    # Spine tier (repro.dc spine-leaf fabrics)
    # ------------------------------------------------------------------
    #: One-way leaf<->spine trunk propagation latency in cycles (longer
    #: runs between rows, ~1.2 us at 2.2 GHz).
    spine_latency: int = 2_600
    #: Store-and-forward latency through a spine switching core, in
    #: cycles (bigger crossbar than a ToR).
    spine_switch_latency: int = 900

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def l0_roundtrip(self, handler: int = 0) -> int:
        """Cost of a full exit to L0 and re-entry with ``handler`` cycles
        of emulation work (the cheapest possible trap)."""
        return self.hw_exit + self.l0_dispatch + handler + self.hw_entry

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        """All cost fields as a plain dict (for reports)."""
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def default_costs() -> CostModel:
    """The calibrated default cost model (see module docstring)."""
    return CostModel()


def arm_costs() -> CostModel:
    """A cost profile for an ARM server (the paper's §3: "DVH can be
    realized on a range of different architectures"; §4 reports DVH-VP
    gains on ARM, omitted for space).

    Structural differences vs the x86 profile, following the published
    ARM virtualization measurements the paper cites (Dall et al., NEVE):

    * hypervisor traps are cheaper (no VMCS load/store machinery);
    * there is no VMCS-shadowing equivalent — every control-structure
      access by a guest hypervisor traps, so the *count* of trapping
      operations per forwarded exit is much higher;
    * the emulated nested-entry copy of the (memory-backed) VGIC and
      system-register state is cheaper per operation but there are more
      of them.

    Net effect, as in the NEVE paper: nested exits are even more
    expensive relative to direct ones than on x86 — which is exactly why
    removing guest-hypervisor interventions pays off there too.
    """
    base = CostModel()
    return base.scaled(
        hw_exit=360,
        hw_entry=310,
        l0_dispatch=210,
        emul_vmcs_access=90,
        emul_vmresume_merge=4_100,
        ghv_vmcs_trapped_reads=16,
        ghv_vmcs_trapped_writes=14,
        ghv_vmcs_shadowed=0,
        ghv_reinject_trapped=11,
    )


def riscv_costs() -> CostModel:
    """A cost profile for a RISC-V host with the hypervisor (H)
    extension, run by an HS-mode hypervisor (ROADMAP item 4; the paper's
    §3 architecture-generality claim exercised on a third ISA).

    Structural facts the overrides encode:

    * a trap from VS/VU-mode to HS-mode is a lightweight mode switch —
      ``scause``/``htval``/``htinst`` latch the reason and there is no
      VMCS-sized state block to load or store — so the raw world switch
      is the cheapest of the three ISAs;
    * like ARM, there is no VMCS-shadowing equivalent: every
      control-CSR access a nested guest hypervisor makes traps, though
      each trapped CSR swap is cheap;
    * the emulated nested entry (``sret`` into VS-mode on behalf of a
      deeper level) copies ``hstatus``/``vsstatus``/``htimedelta`` and
      friends — far less state than a vmcs12->vmcs02 merge;
    * two-stage translation (VS-stage then G-stage) makes a nested page
      walk quadratic in depth, so a guest-page-fault fill is *dearer*
      than an x86 EPT fill;
    * trap delegation (``hedeleg``/``hideleg``) lets hardware vector
      whole cause classes straight into the guest hypervisor —
      that short-circuit is ``delegated_vector`` (see
      :data:`repro.hv.profiles.HS_PROFILE`), not a scaled field here.
    """
    base = CostModel()
    return base.scaled(
        hw_exit=290,
        hw_entry=250,
        l0_dispatch=190,
        emul_hypercall=80,
        emul_vmcs_access=70,
        emul_vmptrld=320,
        emul_vmresume_merge=2_900,
        forward_state_save=1_450,
        ghv_vmcs_trapped_reads=14,
        ghv_vmcs_trapped_writes=12,
        ghv_vmcs_shadowed=0,
        ghv_reinject_trapped=10,
        ghv_vmcs_unshadowed_total=36,
        ept_violation_fix=2_700,
    )


#: Architecture name -> cost-model factory, the single selection point
#: used by :func:`repro.hv.stack.build_stack` and the cluster layer.
ARCH_COSTS = {
    "x86": default_costs,
    "arm": arm_costs,
    "riscv": riscv_costs,
}


def costs_for_arch(arch: str) -> CostModel:
    """Return the cost model for ``arch`` (``x86``/``arm``/``riscv``)."""
    try:
        factory = ARCH_COSTS[arch]
    except KeyError:
        raise ValueError(
            f"unknown arch {arch!r}; expected one of {sorted(ARCH_COSTS)}"
        ) from None
    return factory()
