"""Structured event tracing for debugging and analysis.

A :class:`Tracer` is a bounded ring buffer of timestamped events.  Attach
one to a machine's metrics-adjacent hooks (or emit from your own code)
and render a timeline.  Used by tests that need to assert *ordering* of
events rather than counts, and invaluable when debugging lost-wakeup
class bugs in the trap chains.

    tracer = Tracer(sim)
    tracer.emit("exit", vcpu="L2.vcpu0", reason="hlt")
    ...
    print(tracer.render(last=20))
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["Tracer", "TraceEvent"]


class TraceEvent:
    """One trace record."""

    __slots__ = ("time", "category", "fields")

    def __init__(self, time: int, category: str, fields: Dict[str, Any]) -> None:
        self.time = time
        self.category = category
        self.fields = fields

    def __repr__(self) -> str:
        body = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"<{self.time} {self.category} {body}>"


class Tracer:
    """A bounded, filterable trace buffer bound to a simulator clock."""

    def __init__(self, sim, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._filters: List[Callable[[TraceEvent], bool]] = []
        self.enabled = True
        #: Events rejected by a filter predicate (never entered the buffer).
        self.dropped = 0
        #: Events pushed out of the full ring buffer by newer ones.  Kept
        #: separate from :attr:`dropped`: a filter rejection is policy, an
        #: eviction means the buffer was too small for the window traced.
        self.evicted = 0

    # ------------------------------------------------------------------
    def emit(self, category: str, **fields: Any) -> None:
        """Record one event at the current simulation time."""
        if not self.enabled:
            return
        event = TraceEvent(self.sim.now, category, fields)
        for predicate in self._filters:
            if not predicate(event):
                self.dropped += 1
                return
        if len(self._events) == self.capacity:
            self.evicted += 1
        self._events.append(event)

    def add_filter(self, predicate: Callable[[TraceEvent], bool]) -> None:
        """Only record events the predicate accepts."""
        self._filters.append(predicate)

    # ------------------------------------------------------------------
    def events(
        self,
        category: Optional[str] = None,
        since: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Events, optionally restricted by category and start time."""
        out = []
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if since is not None and event.time < since:
                continue
            out.append(event)
        return out

    def categories(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._events)

    def digest(self) -> str:
        """A stable content hash of the buffered events (time, category,
        fields, in order) plus the drop/evict tallies.  The fast-forward
        equivalence suite compares these digests with epoch skipping on
        vs off: span tracing vetoes skipping, so an attached tracer must
        see the identical timeline either way."""
        import hashlib

        h = hashlib.sha256()
        for event in self._events:
            h.update(repr((event.time, event.category,
                           sorted(event.fields.items()))).encode())
        h.update(f"dropped={self.dropped} evicted={self.evicted}".encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    def render(self, last: Optional[int] = None, freq_hz: Optional[int] = None) -> str:
        """A human-readable timeline (most recent ``last`` events)."""
        events = list(self._events)
        if last is not None:
            events = events[-last:]
        lines = []
        for event in events:
            if freq_hz:
                stamp = f"{event.time / freq_hz * 1e3:10.4f}ms"
            else:
                stamp = f"{event.time:>12,}"
            body = " ".join(f"{k}={v}" for k, v in event.fields.items())
            lines.append(f"{stamp}  {event.category:<12s} {body}")
        if self.dropped:
            lines.append(f"({self.dropped} events filtered out)")
        if self.evicted:
            lines.append(f"({self.evicted} events evicted from the ring buffer)")
        return "\n".join(lines)
