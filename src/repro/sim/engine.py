"""Deterministic discrete-event simulation engine.

The whole reproduction runs on this engine.  Time is measured in CPU
*cycles* (integers) of the simulated machine's base clock, matching how the
paper reports microbenchmark costs (Table 3 is in cycles).  All concurrency
is expressed as generator-based processes; the engine is fully
deterministic: event ordering ties are broken by a monotonically increasing
sequence number and the only randomness comes from a seeded ``random.Random``
owned by the simulator.

Process protocol
----------------
A *process* is a Python generator.  It may yield:

``int`` or ``float``
    Sleep for that many cycles.
``Event``
    Suspend until the event is triggered; the ``yield`` expression
    evaluates to the value passed to :meth:`Event.trigger`.
``Process``
    Join another process; the ``yield`` evaluates to its return value.

Sub-routines compose with plain ``yield from``, which is how the hypervisor
exit-handler chains in :mod:`repro.hv` nest arbitrarily deep.

Fast-forward
------------
Each simulator owns a :class:`~repro.sim.fastforward.FastForward` manager
(``sim.ff``).  Periodic workloads register sources with it; once a source
proves its epochs identical, it may collapse runs of them through
:meth:`Simulator.fast_advance`, which jumps the clock over a window that
contains nothing live.  Cancellable timers (:meth:`Simulator.timer_at`)
exist so re-armed hrtimers leave only *inert* heap entries behind instead
of stale closures that would block every fast-forward window.
"""

from __future__ import annotations

import heapq
import os
import random
from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Dict, Generator, Iterator, List, Optional, Tuple

from repro.sim.fastforward import FastForward

__all__ = ["Simulator", "Event", "Process", "TimerHandle", "SimulationError"]

#: Cycles per second of the simulated machine (2.2 GHz Xeon Silver 4114,
#: the paper's testbed CPU).
DEFAULT_FREQ_HZ = 2_200_000_000

def fast_forward_default() -> bool:
    """Module default for :class:`Simulator`'s ``fast_forward`` argument.

    ``REPRO_FAST_FORWARD=0`` disables epoch skipping everywhere.  Read at
    construction time (not import time) so the CLI's ``--no-fast-forward``
    flag — and worker subprocesses inheriting the environment — take
    effect after imports.
    """
    return os.environ.get("REPRO_FAST_FORWARD", "").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


class SimulationError(RuntimeError):
    """Raised for violations of the engine's protocol (bad yields, etc.)."""


class Event:
    """A one-shot waitable event.

    Processes wait on an event by yielding it.  Triggering wakes all
    waiters at the current simulation time (in deterministic FIFO order)
    and records a value that each waiter's ``yield`` evaluates to.
    Waiting on an already-triggered event resumes immediately.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters at the current time."""
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        waiters = self._waiters
        if waiters:
            sim = self.sim
            seq = sim._seq
            ready = sim._ready
            for proc in waiters:
                seq += 1
                ready.append((seq, proc, value))
            sim._seq = seq
            self._waiters = []

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Process:
    """A running generator, scheduled by the simulator."""

    __slots__ = ("sim", "name", "gen", "done", "result", "cancelled", "_joiners")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.gen = gen
        self.done = False
        self.cancelled = False
        self.result: Any = None
        self._joiners: List["Process"] = []

    def cancel(self) -> bool:
        """Stop the process; it never runs again.  Joiners resume with
        ``None``.  Returns False if it had already finished."""
        if self.done:
            return False
        self.done = True
        self.cancelled = True
        self.gen.close()
        for joiner in self._joiners:
            self.sim._resume(joiner, None)
        self._joiners.clear()
        return True

    def _add_joiner(self, proc: "Process") -> None:
        if self.done:
            self.sim._resume(proc, self.result)
        else:
            self._joiners.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


class TimerHandle:
    """A cancellable scheduled callback (see :meth:`Simulator.timer_at`).

    Cancellation is O(1): ``fn`` is cleared and the heap entry goes
    *inert*.  The run loop drains inert entries without executing
    anything (still advancing the clock to them, exactly like the stale
    guard closures they replace), and the fast-forward machinery may
    purge them from a skip window entirely — a cancelled timer is always
    superseded by a strictly-later re-arm, so it can never determine the
    final simulation time.
    """

    __slots__ = ("when", "fn")

    def __init__(self, when: int, fn: Optional[Callable[[], None]]) -> None:
        self.when = when
        self.fn = fn

    def cancel(self) -> None:
        self.fn = None

    @property
    def active(self) -> bool:
        return self.fn is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "armed" if self.fn is not None else "cancelled"
        return f"<TimerHandle @{self.when} {state}>"


class Simulator:
    """The discrete-event simulator: clock, event heap, process scheduler.

    Scheduling uses two structures that together form one totally ordered
    queue (ties broken by a global sequence number, so ordering is exactly
    FIFO among same-time work):

    * ``_heap`` — ``(when, seq, item)`` records for *future* work, where
      ``item`` is a plain callable (:meth:`call_at`), a
      :class:`TimerHandle` (:meth:`timer_at`), or a :class:`Process` to
      resume with ``None`` (a delay yield);
    * ``_ready`` — a FIFO deque of ``(seq, process, value)`` resume
      records for work at the *current* time (event triggers, joins,
      spawns).  Draining these from a deque instead of the heap is the
      engine's fast path: no per-resume closure allocation and no
      O(log n) heap churn for the zero-delay resumes that dominate
      generator-based workloads.

    The run loop advances the clock *inline* when a process yields a
    delay and nothing else can possibly run before that delay expires
    (ready queue empty, heap top strictly later), and *chains* through
    same-time event waits: when a process parks on an un-triggered event
    while a resume is already queued at this timestamp (the ping-pong
    shape), the loop steps straight into the resumed process without
    bouncing through the outer scheduler.
    """

    def __init__(
        self,
        freq_hz: int = DEFAULT_FREQ_HZ,
        seed: int = 0,
        fast_forward: Optional[bool] = None,
    ) -> None:
        self.freq_hz = int(freq_hz)
        self.now = 0
        self.rng = random.Random(seed)
        self._heap: List[Tuple[int, int, Any]] = []
        self._ready: Deque[Tuple[int, "Process", Any]] = deque()
        self._seq = 0
        self._event_count = 0
        self._ready_hits = 0
        self._heap_hits = 0
        self._inline_hits = 0
        self._last_run_events = 0
        self._last_run_wall_s = 0.0
        if fast_forward is None:
            fast_forward = fast_forward_default()
        self.ff = FastForward(self, enabled=bool(fast_forward))

    # ------------------------------------------------------------------
    # Time helpers
    # ------------------------------------------------------------------
    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self.now / self.freq_hz

    def cycles(self, seconds: float) -> int:
        """Convert seconds to cycles of the simulated clock."""
        return int(round(seconds * self.freq_hz))

    def seconds(self, cycles: int) -> float:
        """Convert cycles of the simulated clock to seconds."""
        return cycles / self.freq_hz

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None, name: str = "timeout") -> Event:
        """An event that triggers ``delay`` cycles from now."""
        ev = Event(self, name)
        self.call_after(delay, lambda: ev.trigger(value))
        return ev

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute time ``when`` (cycles)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (int(when), self._seq, fn))

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self.now + int(delay), fn)

    def timer_at(self, when: int, fn: Callable[[], None]) -> TimerHandle:
        """Schedule ``fn`` at ``when`` with O(1) cancellation.

        Use this for anything re-armed repeatedly (hrtimers): cancelling
        leaves an inert heap entry instead of a live stale closure, so
        fast-forward windows stay open across re-arm churn.
        """
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        handle = TimerHandle(int(when), fn)
        self._seq += 1
        heapq.heappush(self._heap, (handle.when, self._seq, handle))
        return handle

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a new process from generator ``gen``; runs from time now."""
        if not isinstance(gen, Iterator):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}"
            )
        proc = Process(self, gen, name)
        self._resume(proc, None)
        return proc

    # ------------------------------------------------------------------
    # Process machinery
    # ------------------------------------------------------------------
    def _resume(self, proc: Process, value: Any) -> None:
        """Schedule a zero-delay resume at the current time (FIFO)."""
        self._seq += 1
        self._ready.append((self._seq, proc, value))

    # ------------------------------------------------------------------
    # Fast-forward primitives
    # ------------------------------------------------------------------
    def ff_window(self) -> Optional[int]:
        """Earliest time anything *live* is scheduled; None when nothing
        is pending at all.  Inert (cancelled) timer handles at the heap
        top are purged on the way — they cannot affect anything, and a
        re-arm always supersedes them with a strictly later entry."""
        if self._ready:
            return self.now
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            when, _seq, item = heap[0]
            if item.__class__ is TimerHandle and item.fn is None:
                heappop(heap)
                continue
            return when
        return None

    def fast_advance(self, cycles: int) -> int:
        """Jump the clock ``cycles`` forward without executing anything —
        the macro-event primitive behind fast-forward.  Refuses (raises)
        if any live work is scheduled inside the window; inert timer
        handles in the window are purged."""
        if cycles < 0:
            raise SimulationError(f"negative fast_advance: {cycles}")
        if self._ready:
            raise SimulationError("fast_advance with pending ready work")
        target = self.now + int(cycles)
        heap = self._heap
        heappop = heapq.heappop
        while heap and heap[0][0] <= target:
            item = heap[0][2]
            if item.__class__ is TimerHandle and item.fn is None:
                heappop(heap)
                continue
            raise SimulationError(
                f"fast_advance over live work at {heap[0][0]} "
                f"(target {target})"
            )
        self.now = target
        return target

    def ff_scan(self, horizon: int) -> tuple:
        """Partition the live heap around ``now + horizon`` for the
        fast-forward machinery.

        Returns ``(carriers, window)``: ``carriers`` is the list of live
        *Process* heap entries due within the horizon, sorted by
        ``(when, seq)`` — the cycle-carrier candidates a macro-event may
        displace forward (see :meth:`ff_shift`); ``window`` is the
        earliest ``when`` of every *other* live entry (timers, plain
        callables, and anything beyond the horizon), or None.  Returns
        ``(None, None)`` when the ready queue is non-empty — there is no
        quiescent boundary to reason from.  As a side effect the scan
        drops inert (cancelled) timer handles, compacting the heap.
        """
        if self._ready:
            return None, None
        heap = self._heap
        limit = self.now + horizon
        carriers = []
        window: Optional[int] = None
        live = []
        for entry in heap:
            item = entry[2]
            if item.__class__ is TimerHandle and item.fn is None:
                continue
            live.append(entry)
            if entry[0] <= limit and item.__class__ is Process:
                carriers.append(entry)
            elif window is None or entry[0] < window:
                window = entry[0]
        if len(live) != len(heap):
            heap[:] = live
            heapq.heapify(heap)
        carriers.sort()
        return carriers, window

    def ff_shift(self, carriers, delta: int) -> int:
        """Displace ``carriers`` (live heap entries from :meth:`ff_scan`)
        ``delta`` cycles into the future and advance the clock with them.

        This is the macro-event primitive for steady states that never
        go fully quiescent (closed-loop request/response cycles): the
        carriers are mid-cycle sleepers whose wakeup offsets repeat
        every period, so moving them — in FIFO order, with fresh
        sequence numbers — to the same offsets past the skipped span
        reproduces exactly the heap a micro-stepped run would reach.
        Refuses (raises) if any *other* live work falls inside the
        window.
        """
        if delta < 0:
            raise SimulationError(f"negative ff_shift: {delta}")
        if self._ready:
            raise SimulationError("ff_shift with pending ready work")
        target = self.now + int(delta)
        heap = self._heap
        if carriers:
            drop = {id(entry) for entry in carriers}
            heap[:] = [entry for entry in heap if id(entry) not in drop]
        for when, _seq, item in heap:
            if when <= target and not (
                item.__class__ is TimerHandle and item.fn is None
            ):
                raise SimulationError(
                    f"ff_shift over live work at {when} (target {target})"
                )
        for when, _seq, item in carriers:
            self._seq += 1
            heap.append((when + delta, self._seq, item))
        heapq.heapify(heap)
        self.now = target
        return target

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queues drain, ``until`` cycles pass, or
        ``max_events`` callbacks have run *in this call* (the budget is
        per-call, not cumulative over the simulator's lifetime).
        Returns the final time.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        executed = 0
        ready_hits = heap_hits = inline_hits = 0
        wall_start = perf_counter()
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    return self.now
                proc: Optional[Process] = None
                if ready:
                    # A heap entry at the current time that was scheduled
                    # earlier (smaller seq) runs before the oldest resume.
                    if heap and heap[0][0] == self.now and heap[0][1] < ready[0][0]:
                        item = heappop(heap)[2]
                        cls = item.__class__
                        if cls is Process:
                            heap_hits += 1
                            proc, value = item, None
                        elif cls is TimerHandle:
                            fn = item.fn
                            if fn is None:
                                continue
                            heap_hits += 1
                            executed += 1
                            fn()
                            continue
                        else:
                            heap_hits += 1
                            executed += 1
                            item()
                            continue
                    else:
                        _seq, proc, value = ready.popleft()
                        ready_hits += 1
                elif heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return self.now
                    item = heappop(heap)[2]
                    self.now = when
                    cls = item.__class__
                    if cls is Process:
                        heap_hits += 1
                        proc, value = item, None
                    elif cls is TimerHandle:
                        # Inert handles still advance the clock (above),
                        # matching the stale-closure drains they replace,
                        # but execute and count nothing.
                        fn = item.fn
                        if fn is None:
                            continue
                        heap_hits += 1
                        executed += 1
                        fn()
                        continue
                    else:
                        heap_hits += 1
                        executed += 1
                        item()
                        continue
                else:
                    if until is not None and until > self.now:
                        self.now = until
                    return self.now

                # ---- step the process, chaining uncontended work ----
                while True:
                    executed += 1
                    if proc.done:
                        break  # cancelled while a resume was in flight
                    try:
                        yielded = proc.gen.send(value)
                    except StopIteration as stop:
                        proc.done = True
                        proc.result = stop.value
                        joiners = proc._joiners
                        if joiners:
                            for joiner in joiners:
                                self._seq += 1
                                ready.append((self._seq, joiner, stop.value))
                            proc._joiners = []
                        break
                    ycls = yielded.__class__
                    if ycls is int or ycls is float or isinstance(yielded, (int, float)):
                        if yielded < 0:
                            raise SimulationError(
                                f"process {proc.name} yielded negative delay {yielded}"
                            )
                        when = self.now + int(yielded)
                        # Inline fast path: nothing can run before `when`,
                        # so advance the clock and resume directly.
                        if not ready and (
                            (until is None or when <= until)
                            and (max_events is None or executed < max_events)
                        ):
                            if not heap or heap[0][0] > when:
                                self.now = when
                                inline_hits += 1
                                value = None
                                continue
                            # Inert cancelled timers are the only thing in
                            # the way: drop them here instead of bouncing
                            # through the outer loop once per stale arm.
                            while True:
                                top = heap[0][2]
                                if (
                                    top.__class__ is TimerHandle
                                    and top.fn is None
                                    and heap[0][0] <= when
                                ):
                                    heappop(heap)
                                    if heap:
                                        continue
                                break
                            if not heap or heap[0][0] > when:
                                self.now = when
                                inline_hits += 1
                                value = None
                                continue
                        self._seq += 1
                        heappush(heap, (when, self._seq, proc))
                        break
                    if ycls is Event or isinstance(yielded, Event):
                        if yielded.triggered:
                            # FIFO: queue behind any already-ready work,
                            # exactly like a trigger would have.
                            self._seq += 1
                            ready.append((self._seq, proc, yielded.value))
                            break
                        yielded._waiters.append(proc)
                        # Ping-pong chain: this process just parked and a
                        # resume is already queued at this timestamp (its
                        # partner, in the two-process shape) — step into
                        # it directly instead of re-entering the outer
                        # scheduler, unless an earlier-scheduled heap
                        # entry at this time must run first.
                        if (
                            ready
                            and (max_events is None or executed < max_events)
                            and not (
                                heap
                                and heap[0][0] == self.now
                                and heap[0][1] < ready[0][0]
                            )
                        ):
                            _seq, proc, value = ready.popleft()
                            inline_hits += 1
                            continue
                        break
                    if ycls is Process or isinstance(yielded, Process):
                        yielded._add_joiner(proc)
                        break
                    raise SimulationError(
                        f"process {proc.name} yielded unsupported "
                        f"{type(yielded).__name__}"
                    )
        finally:
            wall = perf_counter() - wall_start
            self._event_count += executed
            self._ready_hits += ready_hits
            self._heap_hits += heap_hits
            self._inline_hits += inline_hits
            self._last_run_events = executed
            self._last_run_wall_s = wall

    def run_process(self, gen: Generator, name: str = "main") -> Any:
        """Spawn ``gen``, run the simulation until it finishes, and return
        its result.  Raises if the heap drains before it completes
        (deadlock).
        """
        proc = self.spawn(gen, name)
        self.run()
        if not proc.done:
            raise SimulationError(f"deadlock: process {name} never finished")
        return proc.result

    @property
    def pending_events(self) -> int:
        """Number of callbacks currently queued."""
        return len(self._heap) + len(self._ready)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Engine throughput counters.

        Returns lifetime totals (``events_executed`` plus the split
        between ready-queue, heap, and inline hits), the cost of the most
        recent :meth:`run` call (events, host wall seconds, events/sec),
        and the fast-forward counters (epochs observed/detected/skipped,
        macro-events, invalidations by cause).  Surfaced by
        ``repro.metrics.report`` so experiment reports show simulator
        cost next to simulated cycles — skipped work is never silently
        unobservable.
        """
        last_wall = self._last_run_wall_s
        last_events = self._last_run_events
        out: Dict[str, Any] = {
            "events_executed": self._event_count,
            "ready_hits": self._ready_hits,
            "heap_hits": self._heap_hits,
            "inline_hits": self._inline_hits,
            "pending_events": self.pending_events,
            "last_run_events": last_events,
            "last_run_wall_s": last_wall,
            "last_run_events_per_sec": (
                last_events / last_wall if last_wall > 0 else 0.0
            ),
        }
        out.update(self.ff.stats())
        return out
