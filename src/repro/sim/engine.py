"""Deterministic discrete-event simulation engine.

The whole reproduction runs on this engine.  Time is measured in CPU
*cycles* (integers) of the simulated machine's base clock, matching how the
paper reports microbenchmark costs (Table 3 is in cycles).  All concurrency
is expressed as generator-based processes; the engine is fully
deterministic: event ordering ties are broken by a monotonically increasing
sequence number and the only randomness comes from a seeded ``random.Random``
owned by the simulator.

Process protocol
----------------
A *process* is a Python generator.  It may yield:

``int`` or ``float``
    Sleep for that many cycles.
``Event``
    Suspend until the event is triggered; the ``yield`` expression
    evaluates to the value passed to :meth:`Event.trigger`.
``Process``
    Join another process; the ``yield`` evaluates to its return value.

Sub-routines compose with plain ``yield from``, which is how the hypervisor
exit-handler chains in :mod:`repro.hv` nest arbitrarily deep.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Dict, Generator, Iterator, List, Optional, Tuple

__all__ = ["Simulator", "Event", "Process", "SimulationError"]

#: Cycles per second of the simulated machine (2.2 GHz Xeon Silver 4114,
#: the paper's testbed CPU).
DEFAULT_FREQ_HZ = 2_200_000_000


class SimulationError(RuntimeError):
    """Raised for violations of the engine's protocol (bad yields, etc.)."""


class Event:
    """A one-shot waitable event.

    Processes wait on an event by yielding it.  Triggering wakes all
    waiters at the current simulation time (in deterministic FIFO order)
    and records a value that each waiter's ``yield`` evaluates to.
    Waiting on an already-triggered event resumes immediately.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters at the current time."""
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.sim._resume(proc, value)
        self._waiters.clear()

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Process:
    """A running generator, scheduled by the simulator."""

    __slots__ = ("sim", "name", "gen", "done", "result", "cancelled", "_joiners")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.gen = gen
        self.done = False
        self.cancelled = False
        self.result: Any = None
        self._joiners: List["Process"] = []

    def cancel(self) -> bool:
        """Stop the process; it never runs again.  Joiners resume with
        ``None``.  Returns False if it had already finished."""
        if self.done:
            return False
        self.done = True
        self.cancelled = True
        self.gen.close()
        for joiner in self._joiners:
            self.sim._resume(joiner, None)
        self._joiners.clear()
        return True

    def _add_joiner(self, proc: "Process") -> None:
        if self.done:
            self.sim._resume(proc, self.result)
        else:
            self._joiners.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The discrete-event simulator: clock, event heap, process scheduler.

    Scheduling uses two structures that together form one totally ordered
    queue (ties broken by a global sequence number, so ordering is exactly
    FIFO among same-time work):

    * ``_heap`` — ``(when, seq, item)`` records for *future* work, where
      ``item`` is either a plain callable (:meth:`call_at`) or a
      :class:`Process` to resume with ``None`` (a delay yield);
    * ``_ready`` — a FIFO deque of ``(seq, process, value)`` resume
      records for work at the *current* time (event triggers, joins,
      spawns).  Draining these from a deque instead of the heap is the
      engine's fast path: no per-resume closure allocation and no
      O(log n) heap churn for the zero-delay resumes that dominate
      generator-based workloads.

    The run loop additionally advances the clock *inline* when a process
    yields a delay and nothing else can possibly run before that delay
    expires (ready queue empty, heap top strictly later), turning long
    uncontended handler chains into a tight send loop that never touches
    the heap.
    """

    def __init__(self, freq_hz: int = DEFAULT_FREQ_HZ, seed: int = 0) -> None:
        self.freq_hz = int(freq_hz)
        self.now = 0
        self.rng = random.Random(seed)
        self._heap: List[Tuple[int, int, Any]] = []
        self._ready: Deque[Tuple[int, "Process", Any]] = deque()
        self._seq = 0
        self._event_count = 0
        self._ready_hits = 0
        self._heap_hits = 0
        self._inline_hits = 0
        self._last_run_events = 0
        self._last_run_wall_s = 0.0

    # ------------------------------------------------------------------
    # Time helpers
    # ------------------------------------------------------------------
    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self.now / self.freq_hz

    def cycles(self, seconds: float) -> int:
        """Convert seconds to cycles of the simulated clock."""
        return int(round(seconds * self.freq_hz))

    def seconds(self, cycles: int) -> float:
        """Convert cycles of the simulated clock to seconds."""
        return cycles / self.freq_hz

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None, name: str = "timeout") -> Event:
        """An event that triggers ``delay`` cycles from now."""
        ev = Event(self, name)
        self.call_after(delay, lambda: ev.trigger(value))
        return ev

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute time ``when`` (cycles)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (int(when), self._seq, fn))

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self.now + int(delay), fn)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a new process from generator ``gen``; runs from time now."""
        if not isinstance(gen, Iterator):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}"
            )
        proc = Process(self, gen, name)
        self._resume(proc, None)
        return proc

    # ------------------------------------------------------------------
    # Process machinery
    # ------------------------------------------------------------------
    def _resume(self, proc: Process, value: Any) -> None:
        """Schedule a zero-delay resume at the current time (FIFO)."""
        self._seq += 1
        self._ready.append((self._seq, proc, value))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the queues drain, ``until`` cycles pass, or
        ``max_events`` callbacks have run *in this call* (the budget is
        per-call, not cumulative over the simulator's lifetime).
        Returns the final time.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        heappush = heapq.heappush
        executed = 0
        ready_hits = heap_hits = inline_hits = 0
        wall_start = perf_counter()
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    return self.now
                proc: Optional[Process] = None
                if ready:
                    # A heap entry at the current time that was scheduled
                    # earlier (smaller seq) runs before the oldest resume.
                    if heap and heap[0][0] == self.now and heap[0][1] < ready[0][0]:
                        item = heappop(heap)[2]
                        heap_hits += 1
                        if item.__class__ is Process:
                            proc, value = item, None
                        else:
                            executed += 1
                            item()
                            continue
                    else:
                        _seq, proc, value = ready.popleft()
                        ready_hits += 1
                elif heap:
                    when = heap[0][0]
                    if until is not None and when > until:
                        self.now = until
                        return self.now
                    item = heappop(heap)[2]
                    self.now = when
                    heap_hits += 1
                    if item.__class__ is Process:
                        proc, value = item, None
                    else:
                        executed += 1
                        item()
                        continue
                else:
                    if until is not None and until > self.now:
                        self.now = until
                    return self.now

                # ---- step the process, chaining uncontended delays ----
                while True:
                    executed += 1
                    if proc.done:
                        break  # cancelled while a resume was in flight
                    try:
                        yielded = proc.gen.send(value)
                    except StopIteration as stop:
                        proc.done = True
                        proc.result = stop.value
                        joiners = proc._joiners
                        if joiners:
                            for joiner in joiners:
                                self._seq += 1
                                ready.append((self._seq, joiner, stop.value))
                            proc._joiners = []
                        break
                    ycls = yielded.__class__
                    if ycls is int or ycls is float or isinstance(yielded, (int, float)):
                        if yielded < 0:
                            raise SimulationError(
                                f"process {proc.name} yielded negative delay {yielded}"
                            )
                        when = self.now + int(yielded)
                        # Inline fast path: nothing can run before `when`,
                        # so advance the clock and resume directly.
                        if (
                            not ready
                            and (not heap or heap[0][0] > when)
                            and (until is None or when <= until)
                            and (max_events is None or executed < max_events)
                        ):
                            self.now = when
                            inline_hits += 1
                            value = None
                            continue
                        self._seq += 1
                        heappush(heap, (when, self._seq, proc))
                        break
                    if ycls is Event or isinstance(yielded, Event):
                        yielded._add_waiter(proc)
                        break
                    if ycls is Process or isinstance(yielded, Process):
                        yielded._add_joiner(proc)
                        break
                    raise SimulationError(
                        f"process {proc.name} yielded unsupported "
                        f"{type(yielded).__name__}"
                    )
        finally:
            wall = perf_counter() - wall_start
            self._event_count += executed
            self._ready_hits += ready_hits
            self._heap_hits += heap_hits
            self._inline_hits += inline_hits
            self._last_run_events = executed
            self._last_run_wall_s = wall

    def run_process(self, gen: Generator, name: str = "main") -> Any:
        """Spawn ``gen``, run the simulation until it finishes, and return
        its result.  Raises if the heap drains before it completes
        (deadlock).
        """
        proc = self.spawn(gen, name)
        self.run()
        if not proc.done:
            raise SimulationError(f"deadlock: process {name} never finished")
        return proc.result

    @property
    def pending_events(self) -> int:
        """Number of callbacks currently queued."""
        return len(self._heap) + len(self._ready)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Engine throughput counters.

        Returns lifetime totals (``events_executed`` plus the split
        between ready-queue, heap, and inline-advance hits) and the cost
        of the most recent :meth:`run` call (events, host wall seconds,
        events/sec).  Surfaced by ``repro.metrics.report`` so experiment
        reports show simulator cost next to simulated cycles.
        """
        last_wall = self._last_run_wall_s
        last_events = self._last_run_events
        return {
            "events_executed": self._event_count,
            "ready_hits": self._ready_hits,
            "heap_hits": self._heap_hits,
            "inline_hits": self._inline_hits,
            "pending_events": self.pending_events,
            "last_run_events": last_events,
            "last_run_wall_s": last_wall,
            "last_run_events_per_sec": (
                last_events / last_wall if last_wall > 0 else 0.0
            ),
        }
