"""Deterministic discrete-event simulation engine.

The whole reproduction runs on this engine.  Time is measured in CPU
*cycles* (integers) of the simulated machine's base clock, matching how the
paper reports microbenchmark costs (Table 3 is in cycles).  All concurrency
is expressed as generator-based processes; the engine is fully
deterministic: event ordering ties are broken by a monotonically increasing
sequence number and the only randomness comes from a seeded ``random.Random``
owned by the simulator.

Process protocol
----------------
A *process* is a Python generator.  It may yield:

``int`` or ``float``
    Sleep for that many cycles.
``Event``
    Suspend until the event is triggered; the ``yield`` expression
    evaluates to the value passed to :meth:`Event.trigger`.
``Process``
    Join another process; the ``yield`` evaluates to its return value.

Sub-routines compose with plain ``yield from``, which is how the hypervisor
exit-handler chains in :mod:`repro.hv` nest arbitrarily deep.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Generator, Iterator, List, Optional, Tuple

__all__ = ["Simulator", "Event", "Process", "SimulationError"]

#: Cycles per second of the simulated machine (2.2 GHz Xeon Silver 4114,
#: the paper's testbed CPU).
DEFAULT_FREQ_HZ = 2_200_000_000


class SimulationError(RuntimeError):
    """Raised for violations of the engine's protocol (bad yields, etc.)."""


class Event:
    """A one-shot waitable event.

    Processes wait on an event by yielding it.  Triggering wakes all
    waiters at the current simulation time (in deterministic FIFO order)
    and records a value that each waiter's ``yield`` evaluates to.
    Waiting on an already-triggered event resumes immediately.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event, waking all waiters at the current time."""
        if self.triggered:
            return
        self.triggered = True
        self.value = value
        for proc in self._waiters:
            self.sim._resume(proc, value)
        self._waiters.clear()

    def _add_waiter(self, proc: "Process") -> None:
        if self.triggered:
            self.sim._resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "set" if self.triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Process:
    """A running generator, scheduled by the simulator."""

    __slots__ = ("sim", "name", "gen", "done", "result", "cancelled", "_joiners")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.gen = gen
        self.done = False
        self.cancelled = False
        self.result: Any = None
        self._joiners: List["Process"] = []

    def cancel(self) -> bool:
        """Stop the process; it never runs again.  Joiners resume with
        ``None``.  Returns False if it had already finished."""
        if self.done:
            return False
        self.done = True
        self.cancelled = True
        self.gen.close()
        for joiner in self._joiners:
            self.sim._resume(joiner, None)
        self._joiners.clear()
        return True

    def _add_joiner(self, proc: "Process") -> None:
        if self.done:
            self.sim._resume(proc, self.result)
        else:
            self._joiners.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """The discrete-event simulator: clock, event heap, process scheduler."""

    def __init__(self, freq_hz: int = DEFAULT_FREQ_HZ, seed: int = 0) -> None:
        self.freq_hz = int(freq_hz)
        self.now = 0
        self.rng = random.Random(seed)
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._event_count = 0

    # ------------------------------------------------------------------
    # Time helpers
    # ------------------------------------------------------------------
    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self.now / self.freq_hz

    def cycles(self, seconds: float) -> int:
        """Convert seconds to cycles of the simulated clock."""
        return int(round(seconds * self.freq_hz))

    def seconds(self, cycles: int) -> float:
        """Convert cycles of the simulated clock to seconds."""
        return cycles / self.freq_hz

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: int, value: Any = None, name: str = "timeout") -> Event:
        """An event that triggers ``delay`` cycles from now."""
        ev = Event(self, name)
        self.call_after(delay, lambda: ev.trigger(value))
        return ev

    def call_at(self, when: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute time ``when`` (cycles)."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (int(when), self._seq, fn))

    def call_after(self, delay: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self.now + int(delay), fn)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a new process from generator ``gen``; runs from time now."""
        if not isinstance(gen, Iterator):
            raise SimulationError(
                f"spawn() needs a generator, got {type(gen).__name__}"
            )
        proc = Process(self, gen, name)
        self._resume(proc, None)
        return proc

    # ------------------------------------------------------------------
    # Process machinery
    # ------------------------------------------------------------------
    def _resume(self, proc: Process, value: Any) -> None:
        self.call_after(0, lambda: self._step(proc, value))

    def _step(self, proc: Process, send_value: Any) -> None:
        if proc.done:
            return  # cancelled while a resume was in flight
        try:
            yielded = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.done = True
            proc.result = stop.value
            for joiner in proc._joiners:
                self._resume(joiner, proc.result)
            proc._joiners.clear()
            return
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {proc.name} yielded negative delay {yielded}"
                )
            self.call_after(int(yielded), lambda: self._step(proc, None))
        elif isinstance(yielded, Event):
            yielded._add_waiter(proc)
        elif isinstance(yielded, Process):
            yielded._add_joiner(proc)
        else:
            raise SimulationError(
                f"process {proc.name} yielded unsupported {type(yielded).__name__}"
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until the heap drains, ``until`` cycles pass, or
        ``max_events`` callbacks have run.  Returns the final time.
        """
        while self._heap:
            when, _seq, fn = self._heap[0]
            if until is not None and when > until:
                self.now = until
                break
            if max_events is not None and self._event_count >= max_events:
                break
            heapq.heappop(self._heap)
            self.now = when
            self._event_count += 1
            fn()
        else:
            if until is not None and until > self.now:
                self.now = until
        return self.now

    def run_process(self, gen: Generator, name: str = "main") -> Any:
        """Spawn ``gen``, run the simulation until it finishes, and return
        its result.  Raises if the heap drains before it completes
        (deadlock).
        """
        proc = self.spawn(gen, name)
        self.run()
        if not proc.done:
            raise SimulationError(f"deadlock: process {name} never finished")
        return proc.result

    @property
    def pending_events(self) -> int:
        """Number of callbacks currently queued."""
        return len(self._heap)
