"""Steady-state fast-forward: epoch-skipping macro-events.

The reproduction's workloads spend most of their simulated time in
strictly periodic phases — netperf RR round trips, timer re-arm ticks,
idle poll loops, pre-copy chunk cadences.  The engine normally replays
every micro-event of every epoch.  This module detects steady state and
collapses runs of identical epochs into one *macro-event*: the clock
jumps N periods and the fingerprinted per-epoch :class:`Metrics` deltas
are applied N times.  The contract is strict equivalence — a run with
fast-forward enabled produces **byte-identical** metrics, digests, and
final simulated time as a run without it.

How a source earns a skip
-------------------------
A workload registers a :class:`PeriodicSource` and calls
:meth:`PeriodicSource.observe` at every epoch boundary (for example,
after each completed transaction).  The source walks a state machine:

1. **Cycle lock** — the stream of inter-boundary periods must repeat
   with a small cycle length (the *stride*: 1, 2, or 4 epochs).  Many
   steady states are period-2 — e.g. a request/response loop whose
   server alternates between polling and halting — so epochs are
   grouped into *blocks* of ``stride`` epochs and blocks are the unit of
   fingerprinting and skipping.
2. **Fingerprint** — with the cycle locked, the per-block deltas of
   every registered :class:`~repro.metrics.counters.Metrics` object
   (plus the caller-supplied ``extra`` observables, e.g. the transaction
   latencies) must be identical for ``confirm`` consecutive blocks.
3. **Skip** — with a confirmed fingerprint, ``observe`` may collapse
   whole future blocks: it advances the clock via
   :meth:`Simulator.fast_advance` and applies the fingerprint deltas
   scaled by the skip count.  The *last* epoch is always executed
   micro-step so terminal state (armed timers, final events) is
   re-established identically to the slow path.

What blocks a skip
------------------
Skipping is refused — falling back to micro-stepping — whenever epoch
identity cannot be proven:

* a **veto** holds: span tracing, an attached auditor, a fault injector,
  or a chain tracker observe mid-epoch state the macro-event would hide;
* a **perturbation** was signalled (:meth:`FastForward.perturb`, e.g. a
  migration starting): the generation counter bump invalidates every
  source's fingerprint;
* the **window** is too small: anything live on the event heap before
  ``now + n * period`` (a fabric packet in flight, another process's
  delay, a *live* armed timer) bounds the jump — only cancelled
  :class:`~repro.sim.engine.TimerHandle` entries may be jumped over;
* the simulator's **rng state** changed since the fingerprint was
  confirmed (a draw mid-epoch means epochs are not reproducible).

The module is self-contained on purpose: it imports nothing from the
engine, so the engine can own a :class:`FastForward` instance without an
import cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional

__all__ = ["FastForward", "PeriodicSource"]

#: Candidate block strides (epochs per block), smallest preferred.
STRIDES = (1, 2, 4)
#: Consecutive identical period-cycles required to lock a stride (two
#: identical blocks of inter-boundary periods).
MIN_PERIOD_STREAK = 2
#: Consecutive identical metric-delta blocks required to confirm the
#: fingerprint once the cycle is locked.
CONFIRM_BLOCKS = 2
#: Consecutive fingerprint mismatches (with a stable cycle) after which
#: a source gives up until the next perturbation, so a
#: periodic-but-not-identical phase doesn't pay snapshot overhead
#: forever.
MAX_DELTA_FAILS = 16


def _snap_delta(prev: Dict[str, Dict], cur: Dict[str, Dict]) -> Dict[str, Dict]:
    """Per-table counter growth between two Metrics snapshots.

    Counters are monotonic, so keys only appear and values only grow;
    the delta keeps changed keys only.
    """
    out: Dict[str, Dict] = {}
    for table, cur_entries in cur.items():
        prev_entries = prev.get(table)
        if prev_entries is None:
            if cur_entries:
                out[table] = dict(cur_entries)
            continue
        delta = {}
        for key, value in cur_entries.items():
            grown = value - prev_entries.get(key, 0)
            if grown:
                delta[key] = grown
        if delta:
            out[table] = delta
    return out


class PeriodicSource:
    """One registered periodic activity (an epoch stream)."""

    __slots__ = (
        "ff",
        "name",
        "confirm",
        "max_skip",
        "shift_carriers",
        "veto_exempt",
        "skipped_extras",
        "_generation",
        "_last_now",
        "_periods",
        "_extras",
        "_stride",
        "_pattern",
        "_phase",
        "_snaps",
        "_delta",
        "_delta_streak",
        "_block_extras",
        "_profile",
        "_float_log",
        "_rng_state",
        "_delta_fails",
        "_disabled",
        "_veto_active",
        "detections",
        "epochs_skipped",
    )

    def __init__(
        self,
        ff: "FastForward",
        name: str,
        confirm: int = CONFIRM_BLOCKS,
        max_skip: Optional[int] = None,
        shift_carriers: bool = True,
        veto_exempt: tuple = (),
    ) -> None:
        self.ff = ff
        self.name = name
        self.confirm = confirm
        #: Optional cap on epochs skipped per macro-event.
        self.max_skip = max_skip
        #: Whether mid-cycle sleeper processes may be displaced across a
        #: skip (see :meth:`Simulator.ff_shift`).  Sources whose epochs
        #: must not elide *any* concurrent activity (e.g. pre-copy chunk
        #: streams racing a dirtying workload) set this False, making an
        #: empty window the only skippable state.
        self.shift_carriers = shift_carriers
        #: Veto causes this source may ignore (e.g. the migration veto,
        #: for the migration's own chunk-cadence source).
        self.veto_exempt = frozenset(veto_exempt)
        #: After a skip: the ``extra`` observables of the skipped epochs,
        #: in order, for the caller to replay its own bookkeeping.
        self.skipped_extras: List[Any] = []
        self._generation = ff.generation
        self.detections = 0
        self.epochs_skipped = 0
        self._reset()

    # ------------------------------------------------------------------
    def _reset(self) -> None:
        self._last_now: Optional[int] = None
        #: Recent inter-boundary periods / extras (cycle detection).
        self._periods: deque = deque(maxlen=2 * STRIDES[-1])
        self._extras: deque = deque(maxlen=2 * STRIDES[-1])
        self._unlock()
        self._delta_fails = 0
        self._disabled = False
        self._veto_active: Optional[str] = None

    def _unlock(self) -> None:
        self._stride: Optional[int] = None
        self._pattern: Optional[tuple] = None
        self._phase = 0
        self._drop_fingerprint()
        # Stop the float-charge logs too — nobody will drain them until
        # a fingerprint is being confirmed again.
        for m in self.ff._metrics:
            m.ff_stop()

    def _drop_fingerprint(self) -> None:
        self._snaps: Optional[List[Dict[str, Dict]]] = None
        self._delta: Optional[List[Dict[str, Dict]]] = None
        self._delta_streak = 0
        self._block_extras: Any = None
        self._profile: Any = None
        self._float_log: Any = None
        self._rng_state: Any = None

    def _detect_stride(self) -> Optional[int]:
        """Smallest stride whose period cycle repeated twice in a row."""
        periods = self._periods
        have = len(periods)
        for s in STRIDES:
            if have < MIN_PERIOD_STREAK * s:
                continue
            if all(periods[-i] == periods[-s - i] for i in range(1, s + 1)):
                return s
        return None

    # ------------------------------------------------------------------
    def observe(self, remaining: int, extra: Any = None) -> int:
        """Mark an epoch boundary; maybe skip ahead.

        ``remaining`` is the number of identical epochs still ahead of
        the caller; ``extra`` is any additional per-epoch observable the
        caller must be able to replay itself (e.g. the transaction
        latency it appends to a list) — it becomes part of the
        fingerprint.  Returns the number of epochs skipped (0 almost
        always; never more than ``remaining - 1``).  On a skip the clock
        has already advanced and the metric deltas are already applied:
        the caller replays its own bookkeeping from
        :attr:`skipped_extras`.
        """
        ff = self.ff
        if not ff.enabled:
            return 0
        ff.epochs_observed += 1
        if self._generation != ff.generation:
            # A perturbation (migration start, fault window...) was
            # signalled since the last boundary: nothing observed before
            # it can be trusted.
            self._reset()
            self._generation = ff.generation
        if self._disabled:
            return 0
        sim = ff.sim
        now = sim.now
        last = self._last_now
        self._last_now = now
        if last is None:
            return 0

        # ---- 1. cycle lock ----------------------------------------
        period = now - last
        if period <= 0:
            self._periods.clear()
            self._extras.clear()
            self._unlock()
            return 0
        self._periods.append(period)
        self._extras.append(extra)
        stride = self._stride
        if stride is None:
            stride = self._detect_stride()
            if stride is None:
                return 0
            # Locked: the just-completed block is the period pattern,
            # and this boundary anchors the block grid.
            self._stride = stride
            pattern = tuple(self._periods)[-stride:]
            self._pattern = pattern
            self._phase = 0
        else:
            if period != self._pattern[self._phase]:
                # Cycle broke: start re-detection from recent history.
                self._unlock()
                return 0
            self._phase += 1
            if self._phase < stride:
                return 0  # mid-block boundary
            self._phase = 0

        # ---- vetoes (checked before paying for snapshots) ---------
        for veto in ff._vetoes:
            cause = veto()
            if cause and cause not in self.veto_exempt:
                if cause != self._veto_active:
                    self._veto_active = cause
                    ff.invalidate(cause)
                self._drop_fingerprint()
                return 0
        self._veto_active = None

        # ---- 2. fingerprint (at block boundaries only) ------------
        block_period = sum(self._pattern)
        carriers, window = sim.ff_scan(block_period)
        if carriers is None:
            # Runnable work at the boundary: not a quiescent point.
            self._drop_fingerprint()
            return 0
        if carriers and not self.shift_carriers:
            near = carriers[0][0]
            window = near if window is None or near < window else window
            carriers = []
        # The heap profile joins the fingerprint: the mid-cycle sleepers
        # (cycle carriers) must sit at the same offsets every block, and
        # near-term *non*-carrier work (a live timer, a pending callable)
        # shows up as a window that blocks the skip below.
        profile = tuple(
            (entry[0] - now, entry[2].name) for entry in carriers
        )
        block_extras = tuple(self._extras)[-stride:]
        snaps = [m.snapshot() for m in ff._metrics]
        logs: Any = tuple(m.ff_take_log() for m in ff._metrics)
        if None in logs:
            # Logging was off, abandoned (overflow), or stolen by a
            # concurrent source: can't prove float replay this block.
            logs = None
            for m in ff._metrics:
                m.ff_record()
        prev = self._snaps
        self._snaps = snaps
        if prev is None or len(prev) != len(snaps):
            for m in ff._metrics:
                m.ff_record()
            self._block_extras = block_extras
            self._profile = profile
            self._float_log = None
            self._rng_state = sim.rng.getstate()
            return 0
        delta = [_snap_delta(p, c) for p, c in zip(prev, snaps)]
        if (
            delta == self._delta
            and block_extras == self._block_extras
            and profile == self._profile
            and logs is not None
            and logs == self._float_log
        ):
            self._delta_streak += 1
        else:
            if self._delta is not None:
                self._delta_fails += 1
                if self._delta_fails > MAX_DELTA_FAILS:
                    # Periodic but never identical: stop paying for
                    # snapshots until the next perturbation resets us.
                    self._disabled = True
                    for m in ff._metrics:
                        m.ff_stop()
                    ff.invalidate("unstable-delta")
                    return 0
            self._delta = delta
            self._delta_streak = 1
            self._block_extras = block_extras
            self._profile = profile
            self._float_log = logs
            self._rng_state = sim.rng.getstate()
            return 0
        if self._delta_streak == self.confirm:
            self.detections += 1
            ff.detections += 1

        # ---- 3. skip (whole blocks) -------------------------------
        max_epochs = remaining - 1
        if self._delta_streak < self.confirm or max_epochs < stride:
            return 0
        rng_state = sim.rng.getstate()
        if rng_state != self._rng_state:
            ff.invalidate("rng")
            self._drop_fingerprint()
            self._snaps = snaps
            self._rng_state = rng_state
            return 0
        n = max_epochs // stride
        if window is not None:
            gap = window - now
            # The skip target must stay strictly before the first live
            # non-carrier entry: that event, and everything after it,
            # runs micro-step at its natural absolute time.
            n_window = (gap - 1) // block_period
            if n_window <= 0:
                ff.window_blocked += 1
                if stride > 1:
                    # The block grid locked onto an arbitrary phase of
                    # the cycle; this boundary has live near-term work
                    # the carriers cannot absorb.  Rotate the grid one
                    # epoch later — some other phase of the cycle may be
                    # quiescent — and re-confirm there.
                    self._pattern = self._pattern[1:] + self._pattern[:1]
                    self._phase = stride - 1
                    self._drop_fingerprint()
                return 0
            if n_window < n:
                n = n_window
        if self.max_skip is not None and n > self.max_skip // stride:
            n = self.max_skip // stride
        if n <= 0:
            return 0
        sim.ff_shift(carriers, n * block_period)
        for metrics, d, flog in zip(ff._metrics, self._delta, self._float_log):
            metrics.apply_scaled(d, n, flog)
        self._last_now = sim.now
        self._snaps = [m.snapshot() for m in ff._metrics]
        skipped = n * stride
        self.skipped_extras = list(self._block_extras) * n
        self.epochs_skipped += skipped
        ff.epochs_skipped += skipped
        ff.macro_events += 1
        return skipped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PeriodicSource {self.name} stride={self._stride} "
            f"streak={self._delta_streak} skipped={self.epochs_skipped}>"
        )


class FastForward:
    """Per-simulator fast-forward manager: sources, vetoes, counters."""

    __slots__ = (
        "sim",
        "enabled",
        "generation",
        "_metrics",
        "_vetoes",
        "sources",
        "epochs_observed",
        "detections",
        "epochs_skipped",
        "macro_events",
        "window_blocked",
        "invalidations",
    )

    def __init__(self, sim, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        #: Bumped by :meth:`perturb`; every source checks it at each
        #: boundary and drops its state when it moved.
        self.generation = 0
        self._metrics: List[Any] = []
        self._vetoes: List[Callable[[], Optional[str]]] = []
        self.sources: Dict[str, PeriodicSource] = {}
        self.epochs_observed = 0
        self.detections = 0
        self.epochs_skipped = 0
        self.macro_events = 0
        self.window_blocked = 0
        #: cause -> count of fingerprint invalidations / skip refusals.
        self.invalidations: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def register_metrics(self, metrics) -> None:
        """Track a :class:`Metrics` object: its per-epoch deltas join
        every fingerprint and are scaled on every skip.  Machines and
        the cluster fabric register theirs at construction."""
        if metrics not in self._metrics:
            self._metrics.append(metrics)

    def unregister_metrics(self, metrics) -> None:
        """Forget a previously registered :class:`Metrics` object (a
        cluster host being torn down for a kernel upgrade).  Any cached
        fingerprints are invalidated: their per-metrics deltas indexed
        the old registration list."""
        if metrics in self._metrics:
            self._metrics.remove(metrics)
            self.invalidate("metrics_unregistered")

    def add_veto(self, veto: Callable[[], Optional[str]]) -> None:
        """Register a veto callback: return a cause string while
        skipping must be refused (observer attached), None otherwise."""
        self._vetoes.append(veto)

    def remove_veto(self, veto: Callable[[], Optional[str]]) -> None:
        """Drop a veto callback added by :meth:`add_veto` (host
        teardown).  Unknown callbacks are ignored — teardown paths may
        run before a machine ever registered."""
        try:
            self._vetoes.remove(veto)
        except ValueError:
            pass

    def source(
        self,
        name: str,
        confirm: int = CONFIRM_BLOCKS,
        max_skip: Optional[int] = None,
        shift_carriers: bool = True,
        veto_exempt: tuple = (),
    ) -> PeriodicSource:
        """Get-or-create the named periodic source."""
        src = self.sources.get(name)
        if src is None:
            src = PeriodicSource(
                self, name, confirm, max_skip, shift_carriers, veto_exempt
            )
            self.sources[name] = src
        return src

    # ------------------------------------------------------------------
    def perturb(self, cause: str) -> None:
        """Something aperiodic happened (a migration started, a fault
        window opened): invalidate every source's fingerprint."""
        self.generation += 1
        self.invalidate(cause)

    def invalidate(self, cause: str) -> None:
        self.invalidations[cause] = self.invalidations.get(cause, 0) + 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "ff_enabled": self.enabled,
            "ff_epochs_observed": self.epochs_observed,
            "ff_detections": self.detections,
            "ff_epochs_skipped": self.epochs_skipped,
            "ff_macro_events": self.macro_events,
            "ff_window_blocked": self.window_blocked,
            "ff_invalidations": dict(self.invalidations),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<FastForward {state} skipped={self.epochs_skipped} "
            f"macro={self.macro_events}>"
        )
